//! A one-stop facade: compile a program with ProtCC and run it under a
//! Protean protection mechanism — the whole paper in three lines.

use protean_arch::ArchState;
use protean_cc::{compile, compile_with, Pass};
use protean_core::{ProtDelayPolicy, ProtTrackPolicy};
use protean_isa::{Program, SecurityClass};
use protean_sim::{Core, CoreConfig, DefensePolicy, SimResult, UnsafePolicy};

/// Which Protean hardware protection mechanism to use (paper §VI).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mechanism {
    /// ProtDelay: lower hardware complexity.
    Delay,
    /// ProtTrack: best performance (the default).
    #[default]
    Track,
}

/// Result of a secured run: the defended execution plus the unsafe
/// baseline for overhead accounting.
#[derive(Clone, Debug)]
pub struct SecuredRun {
    /// The defended run.
    pub secured: SimResult,
    /// The unsafe baseline on the same core.
    pub baseline: SimResult,
}

impl SecuredRun {
    /// Normalized runtime (defended cycles / baseline cycles).
    pub fn normalized_runtime(&self) -> f64 {
        self.secured.stats.cycles as f64 / self.baseline.stats.cycles as f64
    }
}

/// The full Protean defense: ProtCC compilation plus ProtDelay/ProtTrack
/// enforcement on the simulated out-of-order core.
///
/// # Examples
///
/// ```
/// use protean::{Protean, Mechanism};
/// use protean::isa::{assemble, SecurityClass};
/// use protean::arch::ArchState;
///
/// let program = assemble(
///     "load r1, [0x5000]\nxor r2, r2, r1\nstore [0x6000], r2\nhalt\n",
/// ).unwrap();
/// let run = Protean::new(Mechanism::Track)
///     .secure_run(&program, SecurityClass::Ct, &ArchState::new(), 100_000);
/// assert_eq!(run.secured.exit, protean::sim::SimExit::Halted);
/// assert!(run.normalized_runtime() >= 1.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Protean {
    mechanism: Mechanism,
    core: Option<CoreConfig>,
}

impl Protean {
    /// Creates a Protean defense with the given mechanism on a P-core.
    pub fn new(mechanism: Mechanism) -> Protean {
        Protean {
            mechanism,
            core: None,
        }
    }

    /// Overrides the core configuration (default: P-core).
    pub fn with_core(mut self, core: CoreConfig) -> Protean {
        self.core = Some(core);
        self
    }

    fn policy(&self) -> Box<dyn DefensePolicy> {
        match self.mechanism {
            Mechanism::Delay => Box::new(ProtDelayPolicy::new()),
            Mechanism::Track => Box::new(ProtTrackPolicy::new()),
        }
    }

    fn core_config(&self) -> CoreConfig {
        self.core.clone().unwrap_or_else(CoreConfig::p_core)
    }

    /// Compiles `program` as single-class `class` code and runs it both
    /// defended and unsafe.
    pub fn secure_run(
        &self,
        program: &Program,
        class: SecurityClass,
        initial: &ArchState,
        max_insts: u64,
    ) -> SecuredRun {
        let compiled = compile_with(program, Pass::for_class(class)).program;
        self.run_pair(program, &compiled, initial, max_insts)
    }

    /// Compiles a *multi-class* program (per-function class labels, the
    /// nginx scenario of Fig. 1) and runs it defended and unsafe.
    pub fn secure_run_multiclass(
        &self,
        program: &Program,
        initial: &ArchState,
        max_insts: u64,
    ) -> SecuredRun {
        let compiled = compile(program, Pass::Arch).program;
        self.run_pair(program, &compiled, initial, max_insts)
    }

    fn run_pair(
        &self,
        base: &Program,
        compiled: &Program,
        initial: &ArchState,
        max_insts: u64,
    ) -> SecuredRun {
        let cfg = self.core_config();
        let max_cycles = max_insts.saturating_mul(600);
        let baseline = Core::new(base, cfg.clone(), Box::new(UnsafePolicy), initial)
            .run(max_insts, max_cycles);
        let secured =
            Core::new(compiled, cfg, self.policy(), initial).run(max_insts * 2, max_cycles);
        SecuredRun { secured, baseline }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_isa::assemble;

    #[test]
    fn facade_runs_all_classes_and_mechanisms() {
        let program = assemble(
            "mov rsp, 0x8000\nload r1, [0x5000]\nadd r2, r1, 1\nstore [0x6000], r2\nhalt\n",
        )
        .unwrap();
        for mech in [Mechanism::Delay, Mechanism::Track] {
            for class in SecurityClass::ALL {
                let run = Protean::new(mech).secure_run(&program, class, &ArchState::new(), 10_000);
                assert_eq!(run.secured.exit, protean_sim::SimExit::Halted);
                assert_eq!(run.baseline.exit, protean_sim::SimExit::Halted);
                assert_eq!(run.secured.final_regs, run.baseline.final_regs);
            }
        }
    }

    #[test]
    fn multiclass_facade() {
        let w = protean_workloads::nginx(1, 1, protean_workloads::Scale(1));
        let (program, init) = &w.threads[0];
        let run = Protean::new(Mechanism::Track).secure_run_multiclass(program, init, w.max_insts);
        assert_eq!(run.secured.exit, protean_sim::SimExit::Halted);
        assert!(run.normalized_runtime() > 1.0);
    }
}
