//! # protean
//!
//! A full-system Rust reproduction of *"Protean: A Programmable Spectre
//! Defense"* (HPCA 2026): the ProtISA `PROT`-prefix ISA extension, the
//! ProtCC compiler passes, the ProtDelay/ProtTrack hardware protection
//! mechanisms, the baseline defenses they are evaluated against
//! (NDA/SpecShield, STT, SPT, SPT-SB), a cycle-level out-of-order CPU
//! simulator, an AMuLeT\*-style security-contract fuzzer, and the
//! synthetic workload suites and benchmark harness that regenerate every
//! table and figure of the paper.
//!
//! This crate re-exports the component crates under short names:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`isa`] | `protean-isa` | instructions, `PROT` prefix, programs |
//! | [`arch`] | `protean-arch` | sequential emulator, observer modes |
//! | [`sim`] | `protean-sim` | out-of-order core, caches, predictors |
//! | [`core_defense`] | `protean-core` | ProtDelay, ProtTrack, predictor |
//! | [`baselines`] | `protean-baselines` | NDA, STT, SPT, SPT-SB |
//! | [`cc`] | `protean-cc` | ProtCC compiler passes |
//! | [`amulet`] | `protean-amulet` | contract fuzzer |
//! | [`workloads`] | `protean-workloads` | synthetic benchmark suites |
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! # Quickstart
//!
//! Compile a constant-time function with ProtCC and run it under
//! Protean-Track:
//!
//! ```
//! use protean::arch::ArchState;
//! use protean::core_defense::ProtTrackPolicy;
//! use protean::isa::assemble;
//! use protean::sim::{Core, CoreConfig, SimExit};
//!
//! let prog = assemble("xor r2, r0, r1\nstore [rsp + 8], r2\nhalt\n").unwrap();
//! let core = Core::new(&prog, CoreConfig::p_core(),
//!                      Box::new(ProtTrackPolicy::new()), &ArchState::new());
//! assert_eq!(core.run(1_000, 100_000).exit, SimExit::Halted);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod facade;

pub use facade::{Mechanism, Protean, SecuredRun};

pub use protean_amulet as amulet;
pub use protean_arch as arch;
pub use protean_baselines as baselines;
pub use protean_cc as cc;
pub use protean_core as core_defense;
pub use protean_isa as isa;
pub use protean_sim as sim;
pub use protean_workloads as workloads;
