#!/usr/bin/env bash
# CI gate: hermetic build + tests + formatting, warnings-as-errors.
#
# The workspace has zero external dependencies (see DESIGN.md §"Zero
# dependencies"), so everything runs with --offline: a network-less
# container must pass this script from a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

export RUSTFLAGS="-Dwarnings"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --offline --workspace --all-targets"
cargo build --release --offline --workspace --all-targets

echo "== cargo test -q --release --offline --workspace (PROTEAN_JOBS=1, serial job pool)"
PROTEAN_JOBS=1 cargo test -q --release --offline --workspace

echo "== cargo test -q --release --offline --workspace (PROTEAN_JOBS unset, all cores)"
# Second pass with the job pool at its default width: campaign/bench
# fan-out must be byte-identical to the serial pass (the protean-jobs
# determinism contract), and the pool's panic propagation and ordered
# collection get exercised under real parallelism.
env -u PROTEAN_JOBS cargo test -q --release --offline --workspace

echo "== cargo test -q --offline --workspace (debug profile)"
# Debug-profile pass: overflow checks and debug assertions are on here
# and off in release, so arithmetic-edge bugs (e.g. u64 wrap in the
# cache metadata folds) only surface in this configuration.
cargo test -q --offline --workspace

echo "== golden scheduler equivalence (release + debug)"
# The event-driven scheduler must be observationally identical to the
# scan-based core it replaced; the fixture was generated from the
# pre-scheduler code. Run it explicitly in both profiles so a fixture
# drift is named in CI output rather than buried in the workspace runs,
# and so the debug profile's assertions cover the scheduler paths.
cargo test -q --release --offline -p protean-bench --test golden_scheduler
cargo test -q --offline -p protean-bench --test golden_scheduler

echo "== flat scheduler differential (release + debug)"
# The flat bitset/calendar-queue scheduler must be observationally
# identical to the legacy ordered-set backend on random programs under
# every defense. Run it named in both profiles: debug turns on the
# cached-wheel-minimum recompute assert and the slot/seq consistency
# asserts inside the flat backend.
cargo test -q --release --offline -p protean-bench --test sched_flat_equiv
cargo test -q --offline -p protean-bench --test sched_flat_equiv

echo "== threaded oracle differential (release + debug)"
# The closure-IR oracle fast mode must be bit-identical to the
# reference interpreter — full ExecRecord streams, final state, the
# ProtSet, and every observer projection, across all ProtCC passes.
# Run it named in both profiles: release for the real campaign
# configuration, debug for overflow checks on the width-semantics
# paths the lowering duplicates.
cargo test -q --release --offline -p protean-bench --test threaded_oracle_equiv
cargo test -q --offline -p protean-bench --test threaded_oracle_equiv

echo "== component-model differentials: flat cache + TAGE folds (release + debug)"
# The flat SoA/word-bitmap cache and the incrementally folded TAGE are
# the only implementations on the simulation paths; the boxed-bool
# cache and the reference history fold survive solely as test oracles,
# so these differential suites are the equivalence gate (there is no
# runtime toggle to byte-compare across). The debug pass arms overflow
# checks on the wrapping metadata arithmetic (u64::MAX-spanning ranges).
cargo test -q --release --offline -p protean-sim --test cache_flat_equiv
cargo test -q --offline -p protean-sim --test cache_flat_equiv
cargo test -q --release --offline -p protean-sim --test tage_fold_equiv
cargo test -q --offline -p protean-sim --test tage_fold_equiv

echo "== bench JSON smoke (ablation_fixes --quick + perf_smoke + validate_json)"
# Two bench binaries end to end: write their JSON reports to a scratch
# dir, then check them against the schema shared by all reports.
# perf_smoke also exercises the idle-cycle fast-forward path under the
# real bench corpus (its committed/cycles columns are deterministic).
BENCH_SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$BENCH_SMOKE_DIR"' EXIT
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" \
    cargo run -q --release --offline -p protean-bench --bin ablation_fixes -- --quick >/dev/null
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_BENCH_SAMPLES=1 PROTEAN_BENCH_WARMUP=0 \
    cargo run -q --release --offline -p protean-bench --bin perf_smoke >/dev/null

echo "== section profiler smoke (perf_smoke, PROTEAN_PROFILE=1)"
# The profiler must run end to end and emit a schema-valid profile.json
# (checked by the validate_json pass below) without disturbing the
# simulation — it is a pure observer, same contract as the tracer.
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_PROFILE=1 \
    PROTEAN_BENCH_SAMPLES=1 PROTEAN_BENCH_WARMUP=0 \
    cargo run -q --release --offline -p protean-bench --bin perf_smoke >/dev/null
if [ ! -f "$BENCH_SMOKE_DIR/profile.json" ]; then
    echo "PROTEAN_PROFILE=1 perf_smoke did not write profile.json" >&2
    exit 1
fi

echo "== campaign_perf determinism (--quick, PROTEAN_JOBS=1 vs 4)"
# The campaign-throughput bench writes a second, wall-time-free report
# (campaign_perf_report.json) holding only the deterministic campaign
# results. It must be byte-identical at any job-pool width — the
# determinism contract the reusable Core arena and COW memory are held
# to — so run it serially, stash the report, rerun at width 4, and
# byte-compare. (The .bak suffix keeps the stash out of validate_json's
# *.json glob below.)
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_JOBS=1 PROTEAN_BENCH_SAMPLES=1 PROTEAN_BENCH_WARMUP=0 \
    cargo run -q --release --offline -p protean-bench --bin campaign_perf -- --quick >/dev/null
cp "$BENCH_SMOKE_DIR/campaign_perf_report.json" "$BENCH_SMOKE_DIR/campaign_perf_report.jobs1.bak"
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_JOBS=4 PROTEAN_BENCH_SAMPLES=1 PROTEAN_BENCH_WARMUP=0 \
    cargo run -q --release --offline -p protean-bench --bin campaign_perf -- --quick >/dev/null
cmp "$BENCH_SMOKE_DIR/campaign_perf_report.jobs1.bak" "$BENCH_SMOKE_DIR/campaign_perf_report.json"

echo "== campaign_perf decode-cache equivalence (--quick, PROTEAN_DECODE_CACHE=0)"
# The decode-once µop table is a pure front-end fast path: with it
# disabled (PROTEAN_DECODE_CACHE=0 forces the legacy decode-per-visit
# path), the deterministic campaign report must stay byte-identical.
cp "$BENCH_SMOKE_DIR/campaign_perf_report.json" "$BENCH_SMOKE_DIR/campaign_perf_report.decoded.bak"
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_DECODE_CACHE=0 PROTEAN_JOBS=4 \
    PROTEAN_BENCH_SAMPLES=1 PROTEAN_BENCH_WARMUP=0 \
    cargo run -q --release --offline -p protean-bench --bin campaign_perf -- --quick >/dev/null
cmp "$BENCH_SMOKE_DIR/campaign_perf_report.decoded.bak" "$BENCH_SMOKE_DIR/campaign_perf_report.json"

echo "== campaign_perf scheduler-backend equivalence (--quick, PROTEAN_SCHED=btree)"
# The flat scheduler is the default; forcing the legacy ordered-set
# backend (PROTEAN_SCHED=btree) must leave the deterministic campaign
# report byte-identical — the end-to-end complement of the
# sched_flat_equiv property test above.
cp "$BENCH_SMOKE_DIR/campaign_perf_report.json" "$BENCH_SMOKE_DIR/campaign_perf_report.flat.bak"
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_SCHED=btree PROTEAN_JOBS=4 \
    PROTEAN_BENCH_SAMPLES=1 PROTEAN_BENCH_WARMUP=0 \
    cargo run -q --release --offline -p protean-bench --bin campaign_perf -- --quick >/dev/null
cmp "$BENCH_SMOKE_DIR/campaign_perf_report.flat.bak" "$BENCH_SMOKE_DIR/campaign_perf_report.json"

echo "== campaign_perf oracle equivalence (--quick, PROTEAN_ORACLE=interp, jobs 1 and 4)"
# The threaded-code SEQ oracle is the default; forcing the reference
# interpreter (PROTEAN_ORACLE=interp) must leave the deterministic
# campaign report byte-identical, at serial and parallel pool widths.
cp "$BENCH_SMOKE_DIR/campaign_perf_report.json" "$BENCH_SMOKE_DIR/campaign_perf_report.threaded.bak"
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_ORACLE=interp PROTEAN_JOBS=1 \
    PROTEAN_BENCH_SAMPLES=1 PROTEAN_BENCH_WARMUP=0 \
    cargo run -q --release --offline -p protean-bench --bin campaign_perf -- --quick >/dev/null
cmp "$BENCH_SMOKE_DIR/campaign_perf_report.threaded.bak" "$BENCH_SMOKE_DIR/campaign_perf_report.json"
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_ORACLE=interp PROTEAN_JOBS=4 \
    PROTEAN_BENCH_SAMPLES=1 PROTEAN_BENCH_WARMUP=0 \
    cargo run -q --release --offline -p protean-bench --bin campaign_perf -- --quick >/dev/null
cmp "$BENCH_SMOKE_DIR/campaign_perf_report.threaded.bak" "$BENCH_SMOKE_DIR/campaign_perf_report.json"

echo "== campaign_perf engine-off equivalence (--quick, PROTEAN_CAMPAIGN_ENGINE=1)"
# The campaign engine with every feature off must route each program
# through the same worker as the batch driver and fold identically:
# the deterministic campaign report stays byte-identical when
# campaign_perf is re-pointed at the engine.
cp "$BENCH_SMOKE_DIR/campaign_perf_report.json" "$BENCH_SMOKE_DIR/campaign_perf_report.batch.bak"
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_CAMPAIGN_ENGINE=1 PROTEAN_JOBS=4 \
    PROTEAN_BENCH_SAMPLES=1 PROTEAN_BENCH_WARMUP=0 \
    cargo run -q --release --offline -p protean-bench --bin campaign_perf -- --quick >/dev/null
cmp "$BENCH_SMOKE_DIR/campaign_perf_report.batch.bak" "$BENCH_SMOKE_DIR/campaign_perf_report.json"

echo "== campaign_service kill/resume byte-compare (uninterrupted JOBS=1 vs killed+resumed JOBS=4/2)"
# The resumable-campaign contract, end to end through the service
# binary: an uninterrupted run and a run killed after one chunk per
# campaign then resumed — at different worker counts — must write
# byte-identical campaign_service.json reports, and the engine must
# refuse to write a report while any campaign is incomplete. The
# versioned snapshots land in the smoke dir, so the validate_json pass
# below also checks them against the shared row schema.
CAMPAIGN_A_DIR="$(mktemp -d)"
trap 'rm -rf "$BENCH_SMOKE_DIR" "$CAMPAIGN_A_DIR"' EXIT
PROTEAN_BENCH_DIR="$CAMPAIGN_A_DIR" PROTEAN_JOBS=1 \
    cargo run -q --release --offline -p protean-bench --bin campaign_service >/dev/null
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_JOBS=4 \
    cargo run -q --release --offline -p protean-bench --bin campaign_service -- --kill-after 1 >/dev/null
if [ -f "$BENCH_SMOKE_DIR/campaign_service.json" ]; then
    echo "campaign_service wrote a report for an incomplete campaign" >&2
    exit 1
fi
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" PROTEAN_JOBS=2 \
    cargo run -q --release --offline -p protean-bench --bin campaign_service >/dev/null
cmp "$CAMPAIGN_A_DIR/campaign_service.json" "$BENCH_SMOKE_DIR/campaign_service.json"

echo "== validate_json (all smoke reports + committed BENCH_perf.json)"
PROTEAN_BENCH_DIR="$BENCH_SMOKE_DIR" \
    cargo run -q --release --offline -p protean-bench --bin validate_json
# The committed perf trajectory must stay parseable and in schema.
cargo run -q --release --offline -p protean-bench --bin validate_json -- BENCH_perf.json

echo "CI OK"
