#!/usr/bin/env bash
# CI gate: hermetic build + tests + formatting, warnings-as-errors.
#
# The workspace has zero external dependencies (see DESIGN.md §"Zero
# dependencies"), so everything runs with --offline: a network-less
# container must pass this script from a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

export RUSTFLAGS="-Dwarnings"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --offline --workspace --all-targets"
cargo build --release --offline --workspace --all-targets

echo "== cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "CI OK"
