#!/usr/bin/env bash
# CI gate: hermetic build + tests + formatting, warnings-as-errors.
#
# The workspace has zero external dependencies (see DESIGN.md §"Zero
# dependencies"), so everything runs with --offline: a network-less
# container must pass this script from a clean checkout.
set -euo pipefail
cd "$(dirname "$0")"

export RUSTFLAGS="-Dwarnings"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release --offline --workspace --all-targets"
cargo build --release --offline --workspace --all-targets

echo "== cargo test -q --offline --workspace (PROTEAN_JOBS=1, serial job pool)"
PROTEAN_JOBS=1 cargo test -q --offline --workspace

echo "== cargo test -q --offline --workspace (PROTEAN_JOBS unset, all cores)"
# Second pass with the job pool at its default width: campaign/bench
# fan-out must be byte-identical to the serial pass (the protean-jobs
# determinism contract), and the pool's panic propagation and ordered
# collection get exercised under real parallelism.
env -u PROTEAN_JOBS cargo test -q --offline --workspace

echo "CI OK"
