//! Quickstart: assemble a small program, run it on the out-of-order
//! P-core under the unsafe baseline and under Protean-Track, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use protean::arch::ArchState;
use protean::core_defense::ProtTrackPolicy;
use protean::isa::{assemble, Reg};
use protean::sim::{Core, CoreConfig, DefensePolicy, UnsafePolicy};

fn main() {
    // A toy kernel: sum a table, with a PROT-protected secret mixed in.
    let program = assemble(
        r#"
          mov rsp, 0x80000
          prot load r5, [0x9000]      ; a secret value: protected
          mov r0, 0x10000             ; table base
          mov r1, 0                   ; i
          mov r2, 0                   ; sum
        loop:
          load r3, [r0 + r1*8]
          add r2, r2, r3
          prot xor r5, r5, r2         ; secret-derived: stays protected
          add r1, r1, 1
          cmp r1, 512
          jlt loop
          prot store [0x9008], r5     ; store the (protected) result
          store [0x9010], r2
          halt
        "#,
    )
    .expect("assembles");

    let mut init = ArchState::new();
    for i in 0..512u64 {
        init.mem.write(0x10000 + i * 8, 8, i * 3);
    }
    init.mem.write(0x9000, 8, 0xdeadbeef); // the secret

    for policy in [
        Box::new(UnsafePolicy) as Box<dyn DefensePolicy>,
        Box::new(ProtTrackPolicy::new()),
    ] {
        let name = policy.name();
        let core = Core::new(&program, CoreConfig::p_core(), policy, &init);
        let result = core.run(1_000_000, 10_000_000);
        println!(
            "{name:14} exit={:?}  cycles={:6}  ipc={:.2}  sum={}",
            result.exit,
            result.stats.cycles,
            result.stats.ipc(),
            result.final_regs[Reg::R2.index()],
        );
    }
    println!("\nSame architectural result; Protean only pays where protected data flows.");
}
