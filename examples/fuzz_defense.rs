//! Run a miniature AMuLeT\* campaign against a defense of your choice.
//!
//! ```text
//! cargo run --release --example fuzz_defense -- [unsafe|stt|stt-original|spt|spt-sb|delay|track]
//! ```

use protean::amulet::{fuzz, Adversary, ContractKind, FuzzConfig};
use protean::baselines::{SptPolicy, SptSbPolicy, SttPolicy};
use protean::cc::Pass;
use protean::core_defense::{ProtDelayPolicy, ProtTrackPolicy};
use protean::sim::{DefensePolicy, UnsafePolicy};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "unsafe".into());
    let factory: Box<dyn Fn() -> Box<dyn DefensePolicy> + Sync> = match which.as_str() {
        "unsafe" => Box::new(|| Box::new(UnsafePolicy)),
        "stt" => Box::new(|| Box::new(SttPolicy::fixed())),
        "stt-original" => Box::new(|| Box::new(SttPolicy::original())),
        "spt" => Box::new(|| Box::new(SptPolicy::fixed())),
        "spt-sb" => Box::new(|| Box::new(SptSbPolicy::fixed())),
        "delay" => Box::new(|| Box::new(ProtDelayPolicy::new())),
        "track" => Box::new(|| Box::new(ProtTrackPolicy::new())),
        other => {
            eprintln!("unknown defense `{other}`");
            std::process::exit(2);
        }
    };

    println!("Fuzzing `{which}` against ARCH-SEQ with both adversary models…\n");
    for adversary in [Adversary::CacheTlb, Adversary::Timing] {
        let mut cfg = FuzzConfig::quick(Pass::Arch, ContractKind::ArchSeq, adversary);
        cfg.programs = 25;
        cfg.inputs_per_program = 4;
        let report = fuzz(&cfg, &*factory);
        println!(
            "{:10} adversary: {} tests, {} violations ({} false positives, {} pairs rejected)",
            adversary.name(),
            report.tests,
            report.violations,
            report.false_positives,
            report.pairs_rejected
        );
        for v in report.examples.iter().take(3) {
            println!(
                "    e.g. program seed {} input {} (false positive: {})",
                v.program_seed, v.input_index, v.false_positive
            );
        }
        // Every counterexample carries the leaking run's pipeline trace
        // and defense audit log — show the first one's.
        if let Some(trace) = report.examples.iter().find_map(|v| v.trace.as_deref()) {
            println!("\n  leaking run of the first counterexample:");
            for line in trace.lines() {
                println!("    {line}");
            }
        }
    }
    println!(
        "\nExpected: the unsafe core and `stt-original` (divider channel) show\n\
         violations; all fixed defenses report zero."
    );
}
