//! ProtCC pass showcase: the paper's Fig. 3 example compiled by each
//! pass, with the inserted `PROT` prefixes and identity moves visible in
//! the disassembly.
//!
//! ```text
//! cargo run --release --example protcc_passes
//! ```

use protean::cc::{compile_with, Pass};
use protean::isa::assemble;

fn main() {
    // int foo(int *p) { x = *p; y = 0; if (x >= 0) y = A[x]; return y; }
    let source = r#"
        load r1, [r0]            ; x = *p
        mov r2, 0                ; y = 0
        cmp r1, 0
        jlt skip
        load r2, [r1*4 + 0x1000] ; y = A[x]
      skip:
        ret
    "#;
    let program = assemble(source).expect("assembles");
    println!("=== source (Fig. 3a) ===\n{}", program.disassemble());

    for pass in [Pass::Arch, Pass::Cts, Pass::Ct, Pass::Unr] {
        let out = compile_with(&program, pass);
        println!(
            "=== ProtCC-{} ({} PROT prefixes, {} identity moves) ===",
            pass.name(),
            out.stats.prot_prefixes,
            out.stats.identity_moves
        );
        println!("{}", out.program.disassemble());
    }
    println!(
        "Compare with the paper's Fig. 3b-e: ARCH is a no-op; CTS protects only\n\
         the reload of y and unprotects the public argument p; CT additionally\n\
         protects the first load and the compare (rflags are only *partially*\n\
         transmitted by branches) and declassifies x on the fall-through edge;\n\
         UNR protects everything except the constant."
    );
}
