//! ProtCC extensions (paper §V-C) and the prefix-less ProtISA encoding
//! (§IV): refine an inferred ProtSet with public annotations, and carry
//! the result in an instruction metadata table instead of prefixes.
//!
//! ```text
//! cargo run --release --example annotations
//! ```

use protean::cc::{compile_with, compile_with_hints, Pass, PublicHints};
use protean::isa::{assemble, code_size, ProtMetadataTable, Reg};

fn main() {
    // An "unknown class" kernel the user compiles with ProtCC-UNR for a
    // guarantee (§V-B): a lookup in a public sbox table, keyed material
    // elsewhere.
    let program = assemble(
        r#"
          load r1, [0x1000]        ; sbox[0]      (public table)
          load r2, [0x5000]        ; key word     (secret)
          and r3, r0, 0xf8
          load r4, [0x1000 + r3*1] ; sbox[i]      (public table)
          xor r5, r2, r4
          store [0x6000], r5
          ret
        "#,
    )
    .unwrap();

    let plain = compile_with(&program, Pass::Unr);
    println!(
        "ProtCC-UNR, no annotations:   {} PROT prefixes\n{}",
        plain.stats.prot_prefixes,
        plain.program.disassemble()
    );

    // §V-C: the user declares the sbox public and r0 (the public index
    // argument) public at entry.
    let mut hints = PublicHints::new();
    hints.add_public_range(0x1000, 0x100);
    hints.entry_public.insert(Reg::R0);
    let hinted = compile_with_hints(&program, Pass::Unr, &hints);
    println!(
        "ProtCC-UNR + annotations:     {} PROT prefixes\n{}",
        hinted.stats.prot_prefixes,
        hinted.program.disassemble()
    );

    // §IV: store the ProtSet in a metadata table (for prefix-less ISAs).
    let (stripped, table) = ProtMetadataTable::strip(&hinted.program);
    println!(
        "prefix encoding: {} bytes of code;  metadata-table encoding: {} bytes of code + {} bytes of table ({} protected instructions)",
        code_size(&hinted.program),
        code_size(&stripped),
        table.size_bytes(),
        table.protected_count(),
    );
    let restored = table.apply(&stripped);
    assert_eq!(restored.insts, hinted.program.insts);
    println!("table round-trips exactly.");
}
