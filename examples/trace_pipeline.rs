//! The observability layer, end to end: run a protected-load loop under
//! Protean-Delay with µop tracing enabled, then render the Konata-style
//! pipeline diagram, the defense-decision audit log, and a Chrome
//! trace-event file (load it at `chrome://tracing` or in Perfetto).
//!
//! ```text
//! cargo run --release --example trace_pipeline
//! ```
//!
//! The same views are reachable from the CLI without writing code:
//! `simulate --trace --trace-json out.json prog.s`, or
//! `PROTEAN_TRACE=1` on any embedding of the simulator.

use protean::arch::ArchState;
use protean::core_defense::ProtDelayPolicy;
use protean::isa::assemble;
use protean::sim::{Core, CoreConfig, SimExit};

fn main() {
    // A loop of dependent protected loads with a data-dependent branch:
    // exercises all three defense gates (execute, wakeup, resolve).
    let program = assemble(
        r#"
          mov r3, 0
          mov r7, 0
        loop:
          and r4, r3, 0xf8
          prot load r1, [0x40000 + r4*1]
          and r5, r1, 0xf8
          prot load r2, [0x40000 + r5*1]  ; address depends on protected data
          and r6, r2, 1
          cmp r6, 0
          jeq skip
          add r7, r7, r2
        skip:
          add r3, r3, 1
          cmp r3, 40
          jlt loop
          halt
        "#,
    )
    .expect("assembles");
    let mut init = ArchState::new();
    for i in 0..64u64 {
        init.mem
            .write(0x40000 + i * 8, 8, (i * 0x9e37).rotate_left(11) & 0xff);
    }

    // `cfg.trace = true` is all it takes (or set PROTEAN_TRACE=1 and
    // leave the config alone). Tracing is a pure observer: cycle counts
    // and architectural results are identical with it off.
    let mut cfg = CoreConfig::p_core();
    cfg.trace = true;
    let core = Core::new(&program, cfg, Box::new(ProtDelayPolicy::new()), &init);
    let result = core.run(100_000, 6_000_000);
    assert_eq!(result.exit, SimExit::Halted);

    let trace = result.trace.expect("cfg.trace was set");
    println!("=== pipeline (last 48 µops) ===");
    println!("{}", trace.render_pipeline(48, 140));
    println!("=== defense audit ===");
    println!("{}", trace.render_audit(24));

    let out = std::env::temp_dir().join("protean_trace.json");
    std::fs::write(&out, trace.to_chrome_trace()).expect("write chrome trace");
    println!(
        "chrome trace written to {} — open it at chrome://tracing",
        out.display()
    );
}
