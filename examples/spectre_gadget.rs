//! A Spectre-v1 bounds-check-bypass attack, end to end: the unsafe core
//! leaks a transiently loaded secret into the cache tag state; every
//! defense blocks it.
//!
//! ```text
//! cargo run --release --example spectre_gadget
//! ```

use protean::arch::ArchState;
use protean::baselines::{SptPolicy, SptSbPolicy, SttPolicy};
use protean::core_defense::{ProtDelayPolicy, ProtTrackPolicy};
use protean::isa::assemble;
use protean::sim::{Core, CoreConfig, DefensePolicy, SimResult, UnsafePolicy};

const SECRET_ADDR: u64 = 0x10000 + 16 * 8;

fn run(policy: Box<dyn DefensePolicy>, secret: u64) -> SimResult {
    // if (idx < len) { x = A[idx]; y = B[x * 64]; } with a slow,
    // pointer-chased bound and a trained predictor (see tests/ for the
    // annotated version).
    let program = assemble(
        r#"
          mov r0, 0
          mov r5, 0
          mov r8, 0x100000
        loop:
          cmp r0, 40
          jeq attack
          and r5, r0, 15
          jmp victim
        attack:
          mov r5, 16
        victim:
          load r7, [r8]
          load r7, [r7]
          cmp r5, r7
          juge skip
          load r1, [r5*8 + 0x10000]
          shl r2, r1, 6
          load r3, [r2 + 0x40000]
        skip:
          add r8, r8, 4096
          add r0, r0, 1
          cmp r0, 41
          jlt loop
          halt
        "#,
    )
    .expect("assembles");
    let mut init = ArchState::new();
    for i in 0..16u64 {
        init.mem.write(0x10000 + i * 8, 8, i);
    }
    init.mem.write(SECRET_ADDR, 8, secret);
    for i in 0..42u64 {
        init.mem.write(0x100000 + i * 4096, 8, 0x200000 + i * 4096);
        init.mem.write(0x200000 + i * 4096, 8, 16);
    }
    let mut core = Core::new(&program, CoreConfig::test_tiny(), policy, &init);
    core.record_traces(true);
    core.run(100_000, 5_000_000)
}

fn main() {
    let defenses: Vec<(&str, fn() -> Box<dyn DefensePolicy>)> = vec![
        ("unsafe baseline", || Box::new(UnsafePolicy)),
        ("STT", || Box::new(SttPolicy::fixed())),
        ("SPT", || Box::new(SptPolicy::fixed())),
        ("SPT-SB", || Box::new(SptSbPolicy::fixed())),
        ("Protean-Delay", || Box::new(ProtDelayPolicy::new())),
        ("Protean-Track", || Box::new(ProtTrackPolicy::new())),
    ];
    println!("Running the gadget with two different secrets under each defense:\n");
    for (name, make) in defenses {
        let a = run(make(), 100);
        let b = run(make(), 200);
        let arch_same = a.final_regs == b.final_regs && a.committed_idxs == b.committed_idxs;
        let cache_leak = a.cache_obs != b.cache_obs;
        let timing_leak = a.timing != b.timing;
        println!(
            "{name:16} arch-identical={arch_same}  cache-leak={cache_leak}  \
             timing-leak={timing_leak}  cycles={}",
            a.stats.cycles
        );
    }
    println!(
        "\nThe unsafe core leaks transiently (architectural state identical, \
         cache state secret-dependent); every defense reports no leak."
    );
}
