//! The Fig. 1 story: fully securing a multi-class program.
//!
//! The nginx model mixes non-secret-accessing request handling with
//! CTS/CT/UNR "OpenSSL" functions. SPT-SB — the only prior defense that
//! can fully secure it — must protect *everything* as if unrestricted;
//! ProtCC compiles each function with the pass for its class, so Protean
//! pays only where the code actually handles secrets.
//!
//! ```text
//! cargo run --release --example nginx_multiclass
//! ```

use protean::baselines::SptSbPolicy;
use protean::cc::{compile, Pass};
use protean::core_defense::{ProtDelayPolicy, ProtTrackPolicy};
use protean::sim::{Core, CoreConfig, DefensePolicy, UnsafePolicy};
use protean::workloads::{nginx, Scale};

fn main() {
    let workload = nginx(2, 2, Scale(1));
    let (base_program, init) = &workload.threads[0];

    println!("nginx components and their classes (Fig. 1):");
    for f in &base_program.functions {
        println!(
            "  {:16} {:4}  [{} instructions]",
            f.name,
            f.class.to_string(),
            f.end - f.start
        );
    }

    // ProtCC multi-class compilation: per-function passes.
    let compiled = compile(base_program, Pass::Arch);
    println!(
        "\nProtCC multi-class build: {} PROT prefixes, {} identity moves, \
         {} -> {} instructions",
        compiled.stats.prot_prefixes,
        compiled.stats.identity_moves,
        base_program.len(),
        compiled.program.len()
    );

    let core_cfg = CoreConfig::p_core();
    let cycles = |policy: Box<dyn DefensePolicy>, instrumented: bool| {
        let program = if instrumented {
            &compiled.program
        } else {
            base_program
        };
        let core = Core::new(program, core_cfg.clone(), policy, init);
        let r = core.run(workload.max_insts, workload.max_insts * 600);
        assert_eq!(r.exit, protean::sim::SimExit::Halted);
        r.stats.cycles as f64
    };

    let unsafe_c = cycles(Box::new(UnsafePolicy), false);
    let sptsb = cycles(Box::new(SptSbPolicy::fixed()), false);
    let delay = cycles(Box::new(ProtDelayPolicy::new()), true);
    let track = cycles(Box::new(ProtTrackPolicy::new()), true);

    println!("\nnormalized runtime (P-core):");
    println!("  unsafe          1.000");
    println!(
        "  SPT-SB          {:.3}   (treats all of nginx as unrestricted)",
        sptsb / unsafe_c
    );
    println!(
        "  Protean-Delay   {:.3}   (per-component ProtSets)",
        delay / unsafe_c
    );
    println!("  Protean-Track   {:.3}", track / unsafe_c);
    println!(
        "\nProtean's overhead is {:.0}% / {:.0}% of SPT-SB's (paper: 27% / 18%).",
        (delay - unsafe_c) / (sptsb - unsafe_c) * 100.0,
        (track - unsafe_c) / (sptsb - unsafe_c) * 100.0
    );
}
