//! Multi-core runs under defenses: all threads halt, architectural
//! results are defense-independent, and SPT-SB's makespan dominates.

use protean::baselines::SptSbPolicy;
use protean::core_defense::ProtTrackPolicy;
use protean::sim::{DefensePolicy, Multicore, SimExit, Thread, UnsafePolicy};
use protean::workloads::{parsec, Scale};

fn run(factory: &dyn Fn() -> Box<dyn DefensePolicy>) -> protean::sim::MulticoreResult {
    let ws = parsec(Scale(1));
    let w = ws.iter().find(|w| w.name == "blackscholes.p").unwrap();
    let threads: Vec<Thread<'_>> = w
        .threads
        .iter()
        .map(|(p, init)| Thread {
            program: p,
            initial: init.clone(),
            policy: factory(),
        })
        .collect();
    let r = Multicore::new(protean::sim::CoreConfig::e_core_mt()).run(
        threads,
        w.max_insts,
        w.max_insts * 600,
    );
    for t in &r.threads {
        assert_eq!(t.exit, SimExit::Halted);
    }
    r
}

#[test]
fn multicore_defenses_preserve_results_and_cost_cycles() {
    let base = run(&|| Box::new(UnsafePolicy));
    let track = run(&|| Box::new(ProtTrackPolicy::new()));
    let sptsb = run(&|| Box::new(SptSbPolicy::fixed()));

    for i in 0..base.threads.len() {
        assert_eq!(base.threads[i].final_regs, track.threads[i].final_regs);
        assert_eq!(base.threads[i].final_regs, sptsb.threads[i].final_regs);
    }
    assert!(sptsb.makespan > base.makespan, "SPT-SB must cost cycles");
    assert!(
        sptsb.makespan > track.makespan,
        "ProtTrack must beat SPT-SB on the stack-heavy kernel (§IX-A1): {} vs {}",
        track.makespan,
        sptsb.makespan
    );
    assert_eq!(base.total_committed(), track.total_committed());
}
