//! Cross-crate security properties of ProtCC + ProtISA:
//!
//! 1. ProtCC instrumentation preserves architectural semantics exactly.
//! 2. Lemma 1 (paper §VII-A): for genuinely-CT code, the instrumented
//!    binary's architectural ProtSet always contains every register that
//!    may hold secret data (checked against a dynamic secret-taint
//!    oracle).
//! 3. Lemma 2: the hardware-tracked ProtSet is a superset of the
//!    architectural one at every commit.

use protean::arch::{ArchState, Emulator, ExitStatus};
use protean::cc::{compile_with, Pass};
use protean::isa::{assemble, Program, Reg};

const KEY: u64 = 0x5_0000;

/// A small CT kernel with secret flow through registers and memory.
fn ct_kernel() -> Program {
    assemble(
        r#"
          mov rsp, 0x40000
          load r1, [0x50000]       ; secret key
          mov r2, 0                ; acc
          mov r3, 0                ; i
        loop:
          shl r4, r3, 3
          and r4, r4, 0xff8
          load r5, [r4 + 0x60000]  ; public message
          xor r5, r5, r1           ; mix secret
          add r2, r2, r5
          rol r2, r2, 7
          store [r4 + 0x70000], r5 ; secret-derived output
          add r3, r3, 1
          cmp r3, 64
          jlt loop
          halt
        "#,
    )
    .unwrap()
}

fn init_state() -> ArchState {
    let mut s = ArchState::new();
    s.mem.write(KEY, 8, 0x1122334455667788);
    for i in 0..512u64 {
        s.mem.write(0x60000 + i * 8, 8, i * 13);
    }
    s
}

#[test]
fn instrumentation_preserves_semantics() {
    let base = ct_kernel();
    for pass in [Pass::Arch, Pass::Cts, Pass::Ct, Pass::Unr] {
        let compiled = compile_with(&base, pass).program;
        let mut emu_base = Emulator::new(&base, init_state());
        let (s1, _) = emu_base.run(100_000);
        let mut emu_inst = Emulator::new(&compiled, init_state());
        let (s2, _) = emu_inst.run(200_000);
        assert_eq!(s1, ExitStatus::Halted);
        assert_eq!(s2, ExitStatus::Halted, "pass {}", pass.name());
        for r in Reg::all() {
            assert_eq!(
                emu_base.state.reg(r),
                emu_inst.state.reg(r),
                "pass {} changed {r}",
                pass.name()
            );
        }
        // Memory results match too.
        for i in 0..64u64 {
            let a = 0x70000 + i * 8;
            assert_eq!(
                emu_base.state.mem.read(a, 8),
                emu_inst.state.mem.read(a, 8),
                "pass {} changed mem[{a:#x}]",
                pass.name()
            );
        }
    }
}

/// Dynamic secret-taint oracle: registers/memory derived from the key.
/// After each step of the instrumented binary, every secret-tainted
/// register must be in the architectural ProtSet (Lemma 1).
#[test]
fn ct_pass_protset_covers_secrets() {
    let base = ct_kernel();
    for pass in [Pass::Cts, Pass::Ct, Pass::Unr] {
        let program = compile_with(&base, pass).program;
        let mut emu = Emulator::new(&program, init_state());
        // Secret taint oracle.
        let mut reg_secret = [false; Reg::COUNT];
        let mut mem_secret = std::collections::HashSet::new();
        for i in 0..8u64 {
            mem_secret.insert(KEY + i);
        }
        while let Some(record) = emu.step() {
            // Propagate the oracle.
            let srcs_secret = record.inst.src_regs().iter().any(|r| reg_secret[r.index()]);
            let loaded_secret = record.mem.map_or(false, |m| {
                !m.is_store && (0..m.size).any(|i| mem_secret.contains(&(m.addr + i)))
            });
            let secret_out = srcs_secret || loaded_secret;
            for (r, _, protected) in &record.reg_writes {
                reg_secret[r.index()] = secret_out;
                // LEMMA 1: secret registers are protected.
                if secret_out {
                    assert!(
                        *protected,
                        "pass {}: secret written to unprotected {r} at idx {}",
                        pass.name(),
                        record.idx
                    );
                }
            }
            if let Some(m) = record.mem {
                if m.is_store {
                    for i in 0..m.size {
                        if secret_out || srcs_secret {
                            // Store data secrecy: the data operand only.
                            let data_secret = match record.inst.op {
                                protean::isa::Op::Store {
                                    src: protean::isa::Operand::Reg(r),
                                    ..
                                } => reg_secret[r.index()],
                                _ => false,
                            };
                            if data_secret {
                                mem_secret.insert(m.addr + i);
                                // LEMMA 1 (memory): secret bytes protected.
                                assert!(
                                    emu.prot.mem_protected(m.addr + i, 1),
                                    "pass {}: secret byte {:#x} unprotected",
                                    pass.name(),
                                    m.addr + i
                                );
                            } else {
                                mem_secret.remove(&(m.addr + i));
                            }
                        } else {
                            mem_secret.remove(&(m.addr + i));
                        }
                    }
                }
            }
            if emu.steps() > 100_000 {
                panic!("runaway");
            }
        }
    }
}
