//! Property test across the whole stack: for randomly generated
//! (gadget-biased) programs, every ProtCC pass preserves architectural
//! semantics, and the instrumented binary still runs correctly on the
//! out-of-order core under its matching Protean configuration.

use protean::amulet::{generate, init_cold_chain, GenConfig};
use protean::arch::{ArchState, Emulator, ExitStatus};
use protean::cc::{compile_with, Pass};
use protean::core_defense::ProtTrackPolicy;
use protean::isa::Reg;
use protean::sim::{Core, CoreConfig, SimExit};

/// Whether a final register value is a code pointer (a relocated label
/// PC): those legitimately differ between the base and instrumented
/// binaries, exactly as relocated addresses differ between a stripped
/// and an instrumented ELF.
fn is_code_pointer(program: &protean::isa::Program, value: u64) -> bool {
    value >= program.code_base && value < program.code_base + 4 * program.len() as u64 + 64
}

fn input(seed: u64) -> ArchState {
    let mut s = ArchState::new();
    init_cold_chain(&mut s.mem);
    for i in 0..6 {
        s.set_reg(Reg::gpr(i), seed.wrapping_mul(0x9e3779b9) % 1024);
    }
    for i in 0..64u64 {
        s.mem
            .write(0x11000 + i * 8, 8, seed.wrapping_add(i).wrapping_mul(31));
    }
    s
}

#[test]
fn passes_preserve_semantics_on_random_programs() {
    for seed in 0..12 {
        let program = generate(&GenConfig {
            segments: 4,
            gadget_bias: 0.4,
            seed,
        });
        let init = input(seed);
        let mut base = Emulator::new(&program, init.clone());
        let (s0, _) = base.run(300_000);
        assert_eq!(s0, ExitStatus::Halted, "seed {seed}");
        for pass in [
            Pass::Arch,
            Pass::Cts,
            Pass::Ct,
            Pass::Unr,
            Pass::Rand { prob: 0.3, seed },
        ] {
            let compiled = compile_with(&program, pass).program;
            compiled.validate().expect("instrumented program valid");
            let mut emu = Emulator::new(&compiled, init.clone());
            let (s1, _) = emu.run(500_000);
            assert_eq!(s1, ExitStatus::Halted, "seed {seed} pass {}", pass.name());
            for r in Reg::all() {
                if is_code_pointer(&program, base.state.reg(r)) {
                    continue; // relocated label PCs shift with insertions
                }
                assert_eq!(
                    base.state.reg(r),
                    emu.state.reg(r),
                    "seed {seed} pass {} diverges on {r}",
                    pass.name()
                );
            }
        }
    }
}

#[test]
fn instrumented_binaries_run_on_hardware() {
    for seed in 100..106 {
        let program = generate(&GenConfig {
            segments: 3,
            gadget_bias: 0.5,
            seed,
        });
        let init = input(seed);
        let mut emu = Emulator::new(&program, init.clone());
        let (s0, _) = emu.run(300_000);
        assert_eq!(s0, ExitStatus::Halted);
        for pass in [Pass::Cts, Pass::Ct, Pass::Unr] {
            let compiled = compile_with(&program, pass).program;
            let core = Core::new(
                &compiled,
                CoreConfig::test_tiny(),
                Box::new(ProtTrackPolicy::new()),
                &init,
            );
            let r = core.run(500_000, 60_000_000);
            assert_eq!(r.exit, SimExit::Halted, "seed {seed} pass {}", pass.name());
            for reg in Reg::all() {
                if is_code_pointer(&program, emu.state.reg(reg)) {
                    continue; // relocated label PCs shift with insertions
                }
                assert_eq!(
                    r.final_regs[reg.index()],
                    emu.state.reg(reg),
                    "seed {seed} pass {}: hardware diverges on {reg}",
                    pass.name()
                );
            }
        }
    }
}
