//! Lemma 2 (paper §VII-A), register half: the set of retired
//! architectural registers that ProtISA's *hardware* rename-map bits
//! mark protected equals the reference architectural ProtSet computed by
//! the sequential emulator, for random instrumented programs under both
//! Protean mechanisms.
//!
//! (The memory half is conservative by construction — bytes outside the
//! LSQ/L1D are implicitly protected — and is exercised behaviourally by
//! the eviction tests in `protean-sim` and the security campaigns.)

use protean::amulet::{generate, init_cold_chain, GenConfig};
use protean::arch::{ArchState, Emulator, ExitStatus};
use protean::cc::{compile_with, Pass};
use protean::core_defense::{ProtDelayPolicy, ProtTrackPolicy};
use protean::isa::Reg;
use protean::sim::{Core, CoreConfig, DefensePolicy, SimExit};

#[test]
fn hardware_register_protset_matches_reference() {
    for seed in 0..10u64 {
        let raw = generate(&GenConfig {
            segments: 3,
            gadget_bias: 0.4,
            seed,
        });
        for pass in [Pass::Rand { prob: 0.4, seed }, Pass::Cts, Pass::Unr] {
            let program = compile_with(&raw, pass).program;
            let mut init = ArchState::new();
            init_cold_chain(&mut init.mem);
            let mut emu = Emulator::new(&program, init.clone());
            let (status, _) = emu.run(400_000);
            assert_eq!(status, ExitStatus::Halted, "seed {seed}");

            let mechanisms: Vec<Box<dyn DefensePolicy>> = vec![
                Box::new(ProtDelayPolicy::new()),
                Box::new(ProtTrackPolicy::new()),
            ];
            for policy in mechanisms {
                let name = policy.name();
                let core = Core::new(&program, CoreConfig::test_tiny(), policy, &init);
                let r = core.run(600_000, 60_000_000);
                assert_eq!(r.exit, SimExit::Halted, "seed {seed} {name}");
                for reg in Reg::all() {
                    assert_eq!(
                        r.final_reg_prot[reg.index()],
                        emu.prot.reg_protected(reg),
                        "seed {seed} pass {} {name}: hardware prot bit of {reg} diverges",
                        pass.name()
                    );
                }
            }
        }
    }
}
