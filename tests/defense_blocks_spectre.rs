//! End-to-end security: a Spectre-v1 bounds-check-bypass gadget leaks on
//! the unsafe core and is blocked — in both the cache-tag channel and the
//! stage-timing channel — by every defense that secures the gadget's
//! class.
//!
//! The gadget is non-secret-accessing (ARCH) code: it never holds the
//! secret architecturally, so *every* defense in the repository must
//! fully secure it (ARCH is the narrowest class, Fig. 2).

use protean::arch::ArchState;
use protean::baselines::{AccessDelayPolicy, SptPolicy, SptSbPolicy, SttPolicy};
use protean::core_defense::{ProtDelayPolicy, ProtTrackPolicy};
use protean::isa::{assemble, Program};
use protean::sim::{Core, CoreConfig, DefensePolicy, SimExit, SimResult, UnsafePolicy};

const SECRET: u64 = 0x10000 + 16 * 8;

/// The Spectre-v1 gadget from `protean-sim`'s leak test: trained bounds
/// check with a slow (cold pointer-chased) bound.
fn gadget() -> Program {
    assemble(
        r#"
          mov r0, 0
          mov r5, 0
          mov r8, 0x100000
        loop:
          cmp r0, 40
          jeq attack
          and r5, r0, 15
          jmp victim
        attack:
          mov r5, 16
        victim:
          load r7, [r8]
          load r7, [r7]
          cmp r5, r7
          juge skip
          load r1, [r5*8 + 0x10000]
          shl r2, r1, 6
          load r3, [r2 + 0x40000]
        skip:
          add r8, r8, 4096
          add r0, r0, 1
          cmp r0, 41
          jlt loop
          halt
        "#,
    )
    .unwrap()
}

fn run(policy: Box<dyn DefensePolicy>, secret: u64) -> SimResult {
    let prog = gadget();
    let mut init = ArchState::new();
    for i in 0..16u64 {
        init.mem.write(0x10000 + i * 8, 8, i);
    }
    init.mem.write(SECRET, 8, secret);
    for i in 0..42u64 {
        init.mem.write(0x100000 + i * 4096, 8, 0x200000 + i * 4096);
        init.mem.write(0x200000 + i * 4096, 8, 16);
    }
    let mut core = Core::new(&prog, CoreConfig::test_tiny(), policy, &init);
    core.record_traces(true);
    let r = core.run(100_000, 2_000_000);
    assert_eq!(r.exit, SimExit::Halted);
    r
}

fn assert_blocks(make: &dyn Fn() -> Box<dyn DefensePolicy>, name: &str) {
    let a = run(make(), 100);
    let b = run(make(), 200);
    assert_eq!(
        a.committed_idxs, b.committed_idxs,
        "{name}: architectural execution must not depend on the secret"
    );
    assert_eq!(
        a.cache_obs, b.cache_obs,
        "{name} leaks the transient secret via the cache"
    );
    assert_eq!(
        a.timing, b.timing,
        "{name} leaks the transient secret via stage timing"
    );
}

#[test]
fn unsafe_core_leaks() {
    let a = run(Box::new(UnsafePolicy), 100);
    let b = run(Box::new(UnsafePolicy), 200);
    assert_ne!(a.cache_obs, b.cache_obs, "the gadget must actually leak");
}

#[test]
fn nda_blocks_the_gadget() {
    assert_blocks(&|| Box::new(AccessDelayPolicy::nda()), "NDA");
}

#[test]
fn stt_blocks_the_gadget() {
    assert_blocks(&|| Box::new(SttPolicy::fixed()), "STT");
}

#[test]
fn spt_blocks_the_gadget() {
    assert_blocks(&|| Box::new(SptPolicy::fixed()), "SPT");
}

#[test]
fn spt_sb_blocks_the_gadget() {
    assert_blocks(&|| Box::new(SptSbPolicy::fixed()), "SPT-SB");
}

#[test]
fn protean_delay_blocks_the_gadget() {
    // ARCH code runs unmodified (ProtCC-ARCH is a no-op): unaccessed
    // memory — including the secret — is protected by default.
    assert_blocks(&|| Box::new(ProtDelayPolicy::new()), "Protean-Delay");
}

#[test]
fn protean_track_blocks_the_gadget() {
    assert_blocks(&|| Box::new(ProtTrackPolicy::new()), "Protean-Track");
}

#[test]
fn defenses_preserve_architectural_results() {
    // All defenses commit exactly the unsafe core's instruction stream.
    let reference = run(Box::new(UnsafePolicy), 100);
    let policies: Vec<(&str, Box<dyn DefensePolicy>)> = vec![
        ("NDA", Box::new(AccessDelayPolicy::nda())),
        ("STT", Box::new(SttPolicy::fixed())),
        ("SPT", Box::new(SptPolicy::fixed())),
        ("SPT-SB", Box::new(SptSbPolicy::fixed())),
        ("Protean-Delay", Box::new(ProtDelayPolicy::new())),
        ("Protean-Track", Box::new(ProtTrackPolicy::new())),
    ];
    for (name, p) in policies {
        let r = run(p, 100);
        assert_eq!(r.committed_idxs, reference.committed_idxs, "{name}");
        assert_eq!(r.final_regs, reference.final_regs, "{name}");
    }
}

#[test]
fn overhead_ordering_is_sane() {
    // On ARCH code: unsafe <= Protean-Track <= Protean-Delay and
    // SPT-SB is the slowest of all.
    let unsafe_c = run(Box::new(UnsafePolicy), 100).stats.cycles;
    let track = run(Box::new(ProtTrackPolicy::new()), 100).stats.cycles;
    let delay = run(Box::new(ProtDelayPolicy::new()), 100).stats.cycles;
    let sptsb = run(Box::new(SptSbPolicy::fixed()), 100).stats.cycles;
    assert!(unsafe_c <= track, "unsafe {unsafe_c} vs track {track}");
    assert!(track <= sptsb, "track {track} vs sptsb {sptsb}");
    assert!(delay <= sptsb, "delay {delay} vs sptsb {sptsb}");
}
