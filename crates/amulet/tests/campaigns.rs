//! Miniature versions of the paper's Tab. II campaigns: the unsafe core
//! violates every contract; fixed defenses uphold the contracts they
//! claim; the pre-fix baselines fall to the divider channel and the
//! pending-squash bug — the AMuLeT\* findings of §VII-B4.

use protean_amulet::{fuzz, Adversary, ContractKind, FuzzConfig};
use protean_baselines::{SptPolicy, SptSbPolicy, SttPolicy};
use protean_cc::Pass;
use protean_core::{ProtDelayPolicy, ProtTrackPolicy};
use protean_sim::{DefensePolicy, SpeculationModel, UnsafePolicy};

fn quick(pass: Pass, contract: ContractKind, adversary: Adversary, seed: u64) -> FuzzConfig {
    let mut cfg = FuzzConfig::quick(pass, contract, adversary);
    cfg.programs = 12;
    cfg.inputs_per_program = 3;
    cfg.gen.seed = seed;
    cfg
}

#[test]
fn unsafe_core_violates_arch_seq() {
    let mut cfg = quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb, 1);
    cfg.stop_at_first = true;
    let r = fuzz(&cfg, &|| Box::new(UnsafePolicy));
    assert!(r.violations > 0, "expected violations, got {r:?}");
}

#[test]
fn unsafe_core_violates_ct_seq_via_timing() {
    let mut cfg = quick(Pass::Ct, ContractKind::CtSeq, Adversary::Timing, 2);
    cfg.stop_at_first = true;
    let r = fuzz(&cfg, &|| Box::new(UnsafePolicy));
    assert!(r.violations > 0, "expected violations, got {r:?}");
}

#[test]
fn unsafe_core_violates_unprot_seq_on_rand_binaries() {
    let mut cfg = quick(
        Pass::Rand { prob: 0.5, seed: 7 },
        ContractKind::UnprotSeq,
        Adversary::CacheTlb,
        3,
    );
    cfg.stop_at_first = true;
    let r = fuzz(&cfg, &|| Box::new(UnsafePolicy));
    assert!(r.violations > 0, "expected violations, got {r:?}");
}

fn assert_clean(
    pass: Pass,
    contract: ContractKind,
    factory: &(dyn Fn() -> Box<dyn DefensePolicy> + Sync),
    name: &str,
) {
    for adversary in [Adversary::CacheTlb, Adversary::Timing] {
        let cfg = quick(pass, contract, adversary, 10);
        let r = fuzz(&cfg, factory);
        assert!(r.tests > 0, "{name}/{}: no tests ran", adversary.name());
        assert_eq!(
            r.violations,
            0,
            "{name} violates {} under the {} adversary: {:?}",
            contract.name(),
            adversary.name(),
            r.examples
        );
    }
}

#[test]
fn protean_track_upholds_all_contracts() {
    assert_clean(
        Pass::Arch,
        ContractKind::ArchSeq,
        &|| Box::new(ProtTrackPolicy::new()),
        "Protean-Track(ARCH)",
    );
    assert_clean(
        Pass::Cts,
        ContractKind::CtsSeq,
        &|| Box::new(ProtTrackPolicy::new()),
        "Protean-Track(CTS)",
    );
    assert_clean(
        Pass::Ct,
        ContractKind::CtSeq,
        &|| Box::new(ProtTrackPolicy::new()),
        "Protean-Track(CT)",
    );
    assert_clean(
        Pass::Rand { prob: 0.5, seed: 7 },
        ContractKind::UnprotSeq,
        &|| Box::new(ProtTrackPolicy::new()),
        "Protean-Track(RAND)",
    );
}

#[test]
fn protean_delay_upholds_all_contracts() {
    assert_clean(
        Pass::Arch,
        ContractKind::ArchSeq,
        &|| Box::new(ProtDelayPolicy::new()),
        "Protean-Delay(ARCH)",
    );
    assert_clean(
        Pass::Ct,
        ContractKind::CtSeq,
        &|| Box::new(ProtDelayPolicy::new()),
        "Protean-Delay(CT)",
    );
    assert_clean(
        Pass::Rand { prob: 0.5, seed: 9 },
        ContractKind::UnprotSeq,
        &|| Box::new(ProtDelayPolicy::new()),
        "Protean-Delay(RAND)",
    );
}

#[test]
fn fixed_baselines_uphold_their_contracts() {
    assert_clean(
        Pass::Arch,
        ContractKind::ArchSeq,
        &|| Box::new(SttPolicy::fixed()),
        "STT",
    );
    assert_clean(
        Pass::Arch,
        ContractKind::CtSeq,
        &|| Box::new(SptPolicy::fixed()),
        "SPT",
    );
    assert_clean(
        Pass::Arch,
        ContractKind::CtSeq,
        &|| Box::new(SptSbPolicy::fixed()),
        "SPT-SB",
    );
}

/// §VII-B4b: the original STT misses the divider transmitter — the
/// timing adversary distinguishes secrets routed into a division.
#[test]
fn original_stt_falls_to_divider_channel() {
    let mut cfg = quick(Pass::Arch, ContractKind::ArchSeq, Adversary::Timing, 20);
    cfg.programs = 30;
    cfg.stop_at_first = true;
    let r = fuzz(&cfg, &|| Box::new(SttPolicy::original()));
    assert!(
        r.violations > 0,
        "original STT should leak via divisions: {r:?}"
    );
}

/// Footnote 1: a CONTROL-model defense misses memory-order speculation.
#[test]
fn control_model_misses_memory_order_speculation() {
    let mut cfg = quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb, 30);
    cfg.programs = 40;
    cfg.stop_at_first = true;
    cfg.core.speculation = SpeculationModel::Control;
    let r = fuzz(&cfg, &|| Box::new(SttPolicy::fixed()));
    assert!(
        r.violations > 0,
        "CONTROL-model STT should miss memory-order leaks: {r:?}"
    );
}

/// An extended, slower campaign for thorough validation (run with
/// `cargo test -p protean-amulet --release -- --ignored`).
#[test]
#[ignore = "long-running thorough campaign"]
fn extended_protean_campaigns() {
    for (pass, contract) in [
        (Pass::Arch, ContractKind::ArchSeq),
        (Pass::Cts, ContractKind::CtsSeq),
        (Pass::Ct, ContractKind::CtSeq),
        (Pass::Unr, ContractKind::CtSeq),
        (
            Pass::Rand {
                prob: 0.5,
                seed: 99,
            },
            ContractKind::UnprotSeq,
        ),
    ] {
        for adversary in [Adversary::CacheTlb, Adversary::Timing] {
            let mut cfg = FuzzConfig::quick(pass, contract, adversary);
            cfg.programs = 120;
            cfg.inputs_per_program = 5;
            cfg.gen.seed = 0xfeed;
            for factory in [
                (&|| Box::new(ProtDelayPolicy::new()) as Box<dyn DefensePolicy>)
                    as &(dyn Fn() -> Box<dyn DefensePolicy> + Sync),
                &|| Box::new(ProtTrackPolicy::new()),
            ] {
                let r = fuzz(&cfg, factory);
                assert_eq!(
                    r.violations,
                    0,
                    "{:?} {:?}: {r:?}",
                    contract,
                    adversary.name()
                );
            }
        }
    }
}

/// Per-primitive validation: the unsafe core leaks through *every*
/// speculation primitive the generator models — conditional branches,
/// memory-order speculation, return-stack speculation (Spectre-RSB),
/// and indirect-branch speculation (Spectre-v2) — and Protean blocks
/// them all (the ATCOMMIT comprehensiveness claim, §II-B2).
#[test]
fn every_speculation_primitive_leaks_and_is_blocked() {
    use protean_amulet::GadgetTemplate;
    for template in GadgetTemplate::ALL {
        let mut cfg = quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb, 77);
        cfg.programs = 40;
        cfg.inputs_per_program = 4;
        cfg.gen.gadget_bias = 1.0;
        cfg.only_template = Some(template);
        cfg.stop_at_first = true;
        // The divider template leaks via timing, not cache tags.
        if template == GadgetTemplate::BoundsDiv {
            cfg.adversary = Adversary::Timing;
        }
        let unsafe_r = fuzz(&cfg, &|| Box::new(UnsafePolicy));
        assert!(
            unsafe_r.violations > 0,
            "{template:?}: the unsafe core should leak ({unsafe_r:?})"
        );
        let mut clean_cfg = cfg.clone();
        clean_cfg.stop_at_first = false;
        clean_cfg.programs = 15;
        let protean_r = fuzz(&clean_cfg, &|| Box::new(ProtTrackPolicy::new()));
        assert_eq!(
            protean_r.violations, 0,
            "{template:?}: Protean-Track must block it ({protean_r:?})"
        );
    }
}
