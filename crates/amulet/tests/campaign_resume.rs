//! The campaign engine's crash-consistency contract: a campaign killed
//! after any chunk and resumed from its snapshot finishes with a report
//! **byte-identical** to an uninterrupted run — at any worker count,
//! with every engine feature (prefilter, coverage guidance, triage)
//! enabled. Plus the coverage-map determinism corollary: the same seed
//! produces the same coverage counters regardless of parallelism.

use protean_amulet::{fuzz, run_campaign, Adversary, CampaignConfig, ContractKind, FuzzConfig};
use protean_sim::UnsafePolicy;
use std::path::PathBuf;

fn engine_cfg(workers: usize, capture_traces: bool) -> CampaignConfig {
    let mut fuzz = FuzzConfig::quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb);
    fuzz.programs = 8;
    fuzz.inputs_per_program = 3;
    fuzz.gen.seed = 0xbead;
    fuzz.workers = Some(workers);
    fuzz.capture_traces = capture_traces;
    let mut cfg = CampaignConfig::new(fuzz);
    cfg.chunk_size = 2;
    cfg.coverage_guided = true;
    cfg.prefilter = true;
    cfg.triage = true;
    cfg
}

use protean_cc::Pass;

fn temp_snapshot(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("protean_campaign_resume_tests");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    let _ = std::fs::remove_file(&path);
    path
}

/// Kill the campaign after 1, 2, and 3 chunks (of 4), resume each, and
/// compare against the uninterrupted run — crossing worker counts 1 and
/// 4 between the killed and resuming halves.
#[test]
fn killed_campaign_resumes_byte_identically() {
    let uninterrupted = run_campaign(&engine_cfg(1, false), &|| Box::new(UnsafePolicy));
    assert!(uninterrupted.complete);
    assert!(
        uninterrupted.report.violations > 0,
        "the unsafe core must leak for this test to be meaningful"
    );
    assert!(!uninterrupted.triage.is_empty(), "triage must bucket them");
    assert!(!uninterrupted.coverage.is_empty(), "coverage must populate");

    for kill_after in [1usize, 2, 3] {
        for (kill_workers, resume_workers) in [(1, 4), (4, 1), (4, 4)] {
            let path = temp_snapshot(&format!("kill{kill_after}_w{kill_workers}{resume_workers}"));
            let mut first = engine_cfg(kill_workers, false);
            first.snapshot = Some(path.clone());
            first.max_chunks_per_call = Some(kill_after);
            let partial = run_campaign(&first, &|| Box::new(UnsafePolicy));
            assert!(!partial.complete, "kill after {kill_after} chunks");
            assert_eq!(partial.chunks_done as usize, kill_after);

            let mut second = engine_cfg(resume_workers, false);
            second.snapshot = Some(path.clone());
            let resumed = run_campaign(&second, &|| Box::new(UnsafePolicy));
            assert!(resumed.resumed, "second call must load the snapshot");
            assert!(resumed.complete);
            assert_eq!(
                resumed.digest(),
                uninterrupted.digest(),
                "kill after {kill_after} chunks ({kill_workers}→{resume_workers} workers)"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Example violations — including their rendered base/mutant pipeline
/// traces — survive the snapshot roundtrip byte-identically.
#[test]
fn resumed_examples_keep_their_traces() {
    let uninterrupted = run_campaign(&engine_cfg(1, true), &|| Box::new(UnsafePolicy));
    assert!(uninterrupted
        .report
        .examples
        .iter()
        .any(|e| e.trace.is_some()));

    let path = temp_snapshot("traced_examples");
    let mut first = engine_cfg(4, true);
    first.snapshot = Some(path.clone());
    first.max_chunks_per_call = Some(2);
    run_campaign(&first, &|| Box::new(UnsafePolicy));
    let mut second = engine_cfg(1, true);
    second.snapshot = Some(path.clone());
    let resumed = run_campaign(&second, &|| Box::new(UnsafePolicy));
    assert_eq!(resumed.digest(), uninterrupted.digest());
    let _ = std::fs::remove_file(&path);
}

/// Coverage counters are a pure function of the seed: the same campaign
/// at worker counts 1 and 4 produces identical coverage maps (weights
/// are only updated at chunk boundaries, so intra-chunk completion
/// order cannot leak into scheduling).
#[test]
fn coverage_map_is_worker_count_independent() {
    let a = run_campaign(&engine_cfg(1, false), &|| Box::new(UnsafePolicy));
    let b = run_campaign(&engine_cfg(4, false), &|| Box::new(UnsafePolicy));
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.digest(), b.digest());
}

/// Features-off engine runs reproduce the batch driver byte-identically
/// even across a kill/resume cycle.
#[test]
fn features_off_resume_still_matches_fuzz() {
    let mut base = engine_cfg(1, false);
    base.coverage_guided = false;
    base.prefilter = false;
    base.triage = false;
    let direct = fuzz(&base.fuzz, &|| Box::new(UnsafePolicy));

    let path = temp_snapshot("features_off");
    let mut first = base.clone();
    first.fuzz.workers = Some(4);
    first.snapshot = Some(path.clone());
    first.max_chunks_per_call = Some(1);
    run_campaign(&first, &|| Box::new(UnsafePolicy));
    let mut second = base.clone();
    second.snapshot = Some(path.clone());
    let resumed = run_campaign(&second, &|| Box::new(UnsafePolicy));
    assert_eq!(format!("{direct:?}"), format!("{:?}", resumed.report));
    let _ = std::fs::remove_file(&path);
}
