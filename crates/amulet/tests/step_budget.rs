//! Step-budget divergence handling: the emulator runs for
//! `cfg.max_steps` architectural steps while the hardware gets a
//! `(max_steps, max_steps * 60)` instruction/cycle budget. A program the
//! SEQ oracle cannot finish must be skipped outright — never compared
//! against (possibly truncated) hardware runs — and a hardware run cut
//! off by its budget must never enter an adversary comparison.

use protean_amulet::{fuzz, Adversary, ContractKind, FuzzConfig};
use protean_arch::OracleMode;
use protean_cc::Pass;
use protean_core::ProtTrackPolicy;
use protean_sim::UnsafePolicy;

fn budget_cfg(max_steps: u64) -> FuzzConfig {
    let mut cfg = FuzzConfig::quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb);
    cfg.programs = 6;
    cfg.inputs_per_program = 3;
    cfg.gen.seed = 0xbead;
    cfg.max_steps = max_steps;
    cfg
}

/// Every generated program needs far more than 4 architectural steps:
/// with such a budget the SEQ oracle exits `StepLimit` for every base
/// input, so no hardware run happens at all — no bogus
/// emulator-StepLimit-vs-halted-hardware comparisons, no tests, no
/// violations.
#[test]
fn seq_step_limit_skips_program_entirely() {
    for oracle in [OracleMode::Interp, OracleMode::Threaded] {
        let mut cfg = budget_cfg(4);
        cfg.oracle = oracle;
        let r = fuzz(&cfg, &|| Box::new(UnsafePolicy));
        assert_eq!(r.tests, 0, "no pair may be compared ({oracle:?})");
        assert_eq!(r.violations, 0, "{oracle:?}");
        assert_eq!(r.false_positives, 0, "{oracle:?}");
        assert_eq!(r.pairs_rejected, 0, "{oracle:?}");
        assert_eq!(
            r.committed_uops, 0,
            "no hardware run may happen without a base trace ({oracle:?})"
        );
        assert_eq!(r.hw_truncated, 0, "{oracle:?}");
    }
}

/// With the normal budget, the campaign's hardware runs all halt: the
/// truncation counter stays zero and the report is identical under both
/// oracle backends — including under a stalling defense, where hardware
/// runs take many more cycles than architectural steps.
#[test]
fn full_budget_reports_match_across_oracles() {
    for factory in [
        &(|| Box::new(UnsafePolicy) as Box<dyn protean_sim::DefensePolicy>)
            as &(dyn Fn() -> Box<dyn protean_sim::DefensePolicy> + Sync),
        &|| Box::new(ProtTrackPolicy::new()) as Box<dyn protean_sim::DefensePolicy>,
    ] {
        let mut interp_cfg = budget_cfg(60_000);
        interp_cfg.oracle = OracleMode::Interp;
        let mut threaded_cfg = budget_cfg(60_000);
        threaded_cfg.oracle = OracleMode::Threaded;
        let a = fuzz(&interp_cfg, factory);
        let b = fuzz(&threaded_cfg, factory);
        assert!(a.tests > 0);
        assert_eq!(a.hw_truncated, 0);
        assert_eq!(a.tests, b.tests);
        assert_eq!(a.pairs_rejected, b.pairs_rejected);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.false_positives, b.false_positives);
        assert_eq!(a.committed_uops, b.committed_uops);
        assert_eq!(a.hw_truncated, b.hw_truncated);
    }
}

/// A defense that never lets any µop begin execution: the pipeline
/// commits nothing, the deadlock watchdog fires, and every *base*
/// hardware run ends truncated (`exit != Halted`).
struct StallForeverPolicy;

impl protean_sim::DefensePolicy for StallForeverPolicy {
    fn name(&self) -> String {
        "stall-forever".to_string()
    }

    fn may_execute(
        &self,
        _u: &protean_sim::DynInst,
        _tags: &protean_sim::RegTags,
        _fr: &protean_sim::SpecFrontier,
    ) -> bool {
        false
    }
}

/// When the base hardware run is truncated, no mutant has a comparison
/// partner: the whole mutant loop must be skipped up front — no SEQ
/// traces are paid for, `pairs_rejected` stays untouched (it counts
/// genuine contract non-equivalence, not missing partners), and the
/// skips are accounted under `no_partner`.
#[test]
fn truncated_base_run_skips_mutants_as_no_partner() {
    let cfg = budget_cfg(60_000);
    let r = fuzz(&cfg, &|| Box::new(StallForeverPolicy));
    assert_eq!(
        r.hw_truncated, cfg.programs as u64,
        "every base run must deadlock under the stalling policy"
    );
    assert_eq!(
        r.no_partner,
        (cfg.programs * cfg.inputs_per_program) as u64,
        "every mutant of every program is partnerless"
    );
    assert_eq!(
        r.pairs_rejected, 0,
        "partnerless mutants must not inflate the SEQ rejection stats"
    );
    assert_eq!(r.tests, 0, "nothing may be compared");
    assert_eq!(r.violations, 0);
    assert_eq!(r.false_positives, 0);
    assert_eq!(r.committed_uops, 0, "a fully stalled core commits nothing");
}

/// An in-between budget: some generated programs finish inside it, some
/// do not. The ones that finish are fuzzed normally; the ones that do
/// not are skipped — and the two oracle backends agree exactly on which
/// is which.
#[test]
fn partial_budget_is_consistent_across_oracles() {
    let mut interp_cfg = budget_cfg(1_500);
    interp_cfg.oracle = OracleMode::Interp;
    let mut threaded_cfg = budget_cfg(1_500);
    threaded_cfg.oracle = OracleMode::Threaded;
    let a = fuzz(&interp_cfg, &|| Box::new(UnsafePolicy));
    let b = fuzz(&threaded_cfg, &|| Box::new(UnsafePolicy));
    assert_eq!(a.tests, b.tests);
    assert_eq!(a.pairs_rejected, b.pairs_rejected);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.false_positives, b.false_positives);
    assert_eq!(a.committed_uops, b.committed_uops);
    assert_eq!(a.hw_truncated, b.hw_truncated);
}
