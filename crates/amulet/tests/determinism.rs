//! A fuzzing campaign is a pure function of its seed: two runs with an
//! identical configuration must produce byte-identical reports —
//! counts, false-positive filtering, and every recorded violation
//! example. This is what makes a reported campaign reproducible and is
//! relied on by the regression workflow (re-run the seed from a report
//! to replay its findings).

use protean_amulet::{fuzz, Adversary, ContractKind, FuzzConfig, Report};
use protean_cc::Pass;
use protean_sim::UnsafePolicy;

fn campaign(seed: u64) -> Report {
    let mut cfg = FuzzConfig::quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb);
    cfg.programs = 12;
    cfg.inputs_per_program = 3;
    cfg.gen.seed = seed;
    fuzz(&cfg, &|| Box::new(UnsafePolicy))
}

#[test]
fn same_seed_yields_byte_identical_reports() {
    let first = campaign(0x0dd5_eed5);
    let second = campaign(0x0dd5_eed5);
    // The unsafe core must actually find violations, so the comparison
    // covers the violation examples too, not just zero counters.
    assert!(first.violations > 0, "campaign found nothing: {first:?}");
    assert_eq!(
        format!("{first:?}"),
        format!("{second:?}"),
        "same-seed campaigns diverged"
    );
}

#[test]
fn different_seeds_change_the_campaign() {
    let a = campaign(1);
    let b = campaign(2);
    assert_ne!(
        format!("{a:?}"),
        format!("{b:?}"),
        "seed is not reaching the generator"
    );
}
