//! A fuzzing campaign is a pure function of its seed: two runs with an
//! identical configuration must produce byte-identical reports —
//! counts, false-positive filtering, and every recorded violation
//! example — **at any worker count**. This is what makes a reported
//! campaign reproducible and is relied on by the regression workflow
//! (re-run the seed from a report to replay its findings): a report
//! produced by a 32-worker sweep must replay exactly on a single-worker
//! laptop.

use protean_amulet::{fuzz, Adversary, ContractKind, FuzzConfig, Report};
use protean_cc::Pass;
use protean_sim::UnsafePolicy;

fn campaign_with(seed: u64, workers: usize) -> Report {
    let mut cfg = FuzzConfig::quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb);
    cfg.programs = 12;
    cfg.inputs_per_program = 3;
    cfg.gen.seed = seed;
    cfg.workers = Some(workers);
    fuzz(&cfg, &|| Box::new(UnsafePolicy))
}

fn campaign(seed: u64) -> Report {
    campaign_with(seed, 1)
}

#[test]
fn same_seed_yields_byte_identical_reports() {
    let first = campaign(0x0dd5_eed5);
    let second = campaign(0x0dd5_eed5);
    // The unsafe core must actually find violations, so the comparison
    // covers the violation examples too, not just zero counters.
    assert!(first.violations > 0, "campaign found nothing: {first:?}");
    assert_eq!(
        format!("{first:?}"),
        format!("{second:?}"),
        "same-seed campaigns diverged"
    );
}

#[test]
fn worker_count_does_not_change_the_report() {
    // The parallel campaign driver's contract: per-program jobs merged
    // in program order ⇒ 1 worker and 4 workers produce byte-identical
    // reports, violation examples included.
    let serial = campaign_with(0x0dd5_eed5, 1);
    let parallel = campaign_with(0x0dd5_eed5, 4);
    assert!(serial.violations > 0, "campaign found nothing: {serial:?}");
    // Violation examples embed the leaking run's pipeline trace, so the
    // Debug comparison below also proves the traces are byte-identical
    // across worker counts — make sure that coverage isn't vacuous.
    assert!(
        serial.examples.iter().any(|v| v.trace.is_some()),
        "violation examples must embed pipeline traces"
    );
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "worker count leaked into the report"
    );
}

#[test]
fn worker_count_does_not_change_stop_at_first() {
    // stop_at_first truncates the merge at the first true positive;
    // speculative work by extra workers must be discarded.
    let run = |workers: usize| {
        let mut cfg = FuzzConfig::quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb);
        cfg.programs = 12;
        cfg.inputs_per_program = 3;
        cfg.gen.seed = 0x0dd5_eed5;
        cfg.stop_at_first = true;
        cfg.workers = Some(workers);
        fuzz(&cfg, &|| Box::new(UnsafePolicy))
    };
    let serial = run(1);
    let parallel = run(4);
    assert!(serial.violations > 0, "stop_at_first found nothing");
    assert_eq!(
        format!("{serial:?}"),
        format!("{parallel:?}"),
        "stop_at_first diverged across worker counts"
    );
}

#[test]
fn different_seeds_change_the_campaign() {
    let a = campaign(1);
    let b = campaign(2);
    assert_ne!(
        format!("{a:?}"),
        format!("{b:?}"),
        "seed is not reaching the generator"
    );
}
