//! The persistent, resumable campaign engine (ROADMAP item 3).
//!
//! [`fuzz`](crate::fuzz) is a batch driver: it fans a fixed program
//! count over workers and returns one report. Paper-scale evaluation
//! (§VII-B) instead wants *long-running* campaigns that survive
//! preemption, spend cheap SEQ emulation before expensive cycle-accurate
//! replay, dedup the violation firehose into root-cause buckets, and
//! steer generation toward undercovered microarchitectural behavior.
//! [`run_campaign`] adds those four capabilities on top of the exact
//! same per-program worker:
//!
//! * **Chunked work queue + snapshots.** The program stream is processed
//!   in chunks of [`CampaignConfig::chunk_size`] via
//!   `protean_jobs::map_range_with`; after every chunk the full
//!   accumulator state is written to a versioned JSON snapshot
//!   (`protean_sim::json`, no serde) with an atomic tmp-file rename. A
//!   killed campaign restarted with the same config resumes from the
//!   last chunk boundary and finishes **byte-identical** to an
//!   uninterrupted run, at any `PROTEAN_JOBS` worker count — chunk
//!   boundaries are a pure function of `chunk_size`, and per-chunk
//!   results concatenate to the single-call result (asserted in
//!   `protean-jobs` tests).
//! * **Two-stage cheap-first filter.** All of a program's mutant SEQ
//!   traces (threaded-code oracle, PR 7) are computed *before* any
//!   hardware run; if no mutant is contract-equivalent to the base, the
//!   cycle-accurate core is never constructed for that program.
//!   [`CampaignReport::prefilter_rejected`] / `prefilter_pairs` /
//!   `hw_pairs` quantify the stage-1 hit rate.
//! * **Audit-signature triage.** Each candidate violation is re-run with
//!   pipeline tracing and bucketed on
//!   [`Trace::audit_signature`](protean_sim::Trace::audit_signature) —
//!   the sorted set of `(gate, rule)` defense decisions plus squash
//!   causes. One root cause, one [`TriageBucket`], regardless of how
//!   many seeds re-trigger it.
//! * **Coverage-guided generation.** The traced base run's pipeline
//!   events (squash causes × defense block rules), attributed to the
//!   gadget templates the generator drew, feed a coverage map; template
//!   weights for chunk *k* are derived from the map as of the end of
//!   chunk *k − 1* (`w = 1 + c_max − c`), biasing generation toward
//!   undercovered templates. Updating weights only at chunk boundaries
//!   keeps reports worker-count independent.
//!
//! With every feature flag off, the engine routes each program through
//! the *same* [`fuzz_one_program`] worker as [`fuzz`](crate::fuzz) and
//! merges with the same fold — the resulting [`Report`] is
//! byte-identical to the batch driver's.

use crate::fuzzer::{
    self, derive_program_seed, fuzz_one_program, merge_outcome, FuzzConfig, ProgramOutcome, Report,
    SeqOracle, Violation,
};
use crate::generator::{self, GadgetTemplate, GenConfig};
use protean_arch::{ArchState, ExecRecord};
use protean_cc::compile_with;
use protean_rng::Rng;
use protean_sim::json::Json;
use protean_sim::{Core, DefensePolicy, SimExit};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Campaign-engine configuration: a [`FuzzConfig`] plus the engine
/// feature flags. The defaults leave every feature off, in which state
/// [`run_campaign`] reproduces [`fuzz`](crate::fuzz) byte-identically.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The underlying fuzzing configuration. `fuzz.programs` is the
    /// length of the program stream; `fuzz.workers` resolves the worker
    /// count exactly as in [`fuzz`](crate::fuzz).
    pub fuzz: FuzzConfig,
    /// Programs per work-queue chunk: the snapshot/coverage-update
    /// granularity. Reports are independent of this value only when
    /// coverage guidance is off (weights change at chunk boundaries).
    pub chunk_size: usize,
    /// Snapshot file path. `Some(path)`: state is saved after every
    /// chunk and, if `path` exists when the campaign starts, loaded and
    /// resumed from. `None`: run in memory only.
    pub snapshot: Option<PathBuf>,
    /// Feed pipeline-event coverage back into template selection.
    pub coverage_guided: bool,
    /// Skip a program's hardware runs entirely when the cheap SEQ stage
    /// admits none of its mutant pairs.
    pub prefilter: bool,
    /// Triage candidate violations into audit-signature buckets.
    pub triage: bool,
    /// Stop after this many chunks in this call (the campaign is *not*
    /// complete; a later call resumes from the snapshot). `None`: run to
    /// completion. This is how tests and CI simulate a killed campaign.
    pub max_chunks_per_call: Option<usize>,
}

impl CampaignConfig {
    /// An engine wrapper around `fuzz` with every feature off.
    pub fn new(fuzz: FuzzConfig) -> CampaignConfig {
        CampaignConfig {
            fuzz,
            chunk_size: 8,
            snapshot: None,
            coverage_guided: false,
            prefilter: false,
            triage: false,
            max_chunks_per_call: None,
        }
    }

    /// Whether any per-program engine feature is on (off ⇒ the program
    /// worker is exactly [`fuzz_one_program`]).
    fn engine_features_on(&self) -> bool {
        self.coverage_guided || self.prefilter || self.triage
    }
}

/// One root-cause bucket of the violation triage: every candidate whose
/// traced re-run produced the same audit signature.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TriageBucket {
    /// Candidate violations with this signature (true and false
    /// positives).
    pub count: u64,
    /// How many of them the committed-fingerprint filter rejected.
    pub false_positives: u64,
    /// Program seed of the first candidate in the bucket (a reproducer).
    pub first_program_seed: u64,
    /// Input index of the first candidate.
    pub first_input_index: usize,
}

/// Campaign results: the plain fuzzing [`Report`] plus engine state
/// (progress cursor, prefilter statistics, triage buckets, coverage
/// map). Everything except [`CampaignReport::resumed`] is a
/// deterministic function of `(config, completed chunk count)`.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// The accumulated fuzzing report (same fold as [`fuzz`](crate::fuzz)).
    pub report: Report,
    /// Programs fully processed (the resume cursor).
    pub programs_done: usize,
    /// Chunks fully processed.
    pub chunks_done: u64,
    /// Mutant pairs admitted by the cheap SEQ stage (contract-equivalent).
    pub prefilter_pairs: u64,
    /// Mutant pairs rejected by the cheap SEQ stage (observer traces
    /// differ — never reached hardware).
    pub prefilter_rejected: u64,
    /// Hardware pair replays actually compared (both runs halted).
    pub hw_pairs: u64,
    /// Candidate violations before dedup (true + false positives).
    pub candidates: u64,
    /// Violation triage: audit signature → bucket. Empty unless
    /// [`CampaignConfig::triage`] is on.
    pub triage: BTreeMap<String, TriageBucket>,
    /// Pipeline-event coverage map: `template|event` → count. Empty
    /// unless [`CampaignConfig::coverage_guided`] is on.
    pub coverage: BTreeMap<String, u64>,
    /// `stop_at_first` fired.
    pub stopped: bool,
    /// This call loaded state from a snapshot (session-local; excluded
    /// from [`CampaignReport::digest`] and never persisted).
    pub resumed: bool,
    /// The whole program stream has been processed (or `stop_at_first`
    /// ended the campaign). `false` after a `max_chunks_per_call` exit.
    pub complete: bool,
}

impl CampaignReport {
    /// A deterministic rendering of every field except `resumed`: a
    /// killed-and-resumed campaign must produce the same digest as an
    /// uninterrupted one, and `resumed` is the one field that records
    /// *how* the state was reached rather than what it is.
    pub fn digest(&self) -> String {
        format!(
            "{:?}|programs_done={}|chunks_done={}|prefilter={}/{}|hw_pairs={}|candidates={}|triage={:?}|coverage={:?}|stopped={}|complete={}",
            self.report,
            self.programs_done,
            self.chunks_done,
            self.prefilter_pairs,
            self.prefilter_rejected,
            self.hw_pairs,
            self.candidates,
            self.triage,
            self.coverage,
            self.stopped,
            self.complete,
        )
    }
}

/// Snapshot schema version (bumped on incompatible layout changes; a
/// mismatched snapshot is refused rather than misread).
const SNAPSHOT_VERSION: u64 = 1;

/// Runs (or resumes) a campaign. See the module docs for the engine's
/// contract; in short:
///
/// * with every feature flag off the returned
///   [`CampaignReport::report`] is byte-identical to
///   [`fuzz`](crate::fuzz) on the same [`FuzzConfig`];
/// * killing the campaign after any chunk (simulated via
///   [`CampaignConfig::max_chunks_per_call`], or a real SIGKILL — the
///   snapshot write is atomic) and re-running with the same config
///   resumes and finishes with an identical [`CampaignReport::digest`],
///   at any worker count.
///
/// # Panics
///
/// Panics if an existing snapshot was written by a different config
/// (fingerprint mismatch) or snapshot schema version — resuming a
/// campaign under a silently different configuration would corrupt the
/// determinism contract, so it is refused loudly.
pub fn run_campaign(
    cfg: &CampaignConfig,
    policy_factory: &(dyn Fn() -> Box<dyn DefensePolicy> + Sync),
) -> CampaignReport {
    let fingerprint = config_fingerprint(cfg);
    let mut state = CampaignReport::default();
    if let Some(path) = &cfg.snapshot {
        if path.exists() {
            state = load_snapshot(path, &fingerprint);
            state.resumed = true;
        }
    }

    let workers = cfg.fuzz.workers.unwrap_or_else(protean_jobs::worker_count);
    let total = cfg.fuzz.programs;
    let mut chunks_this_call = 0usize;

    while state.programs_done < total && !state.stopped {
        if let Some(max) = cfg.max_chunks_per_call {
            if chunks_this_call >= max {
                return state; // simulated kill: snapshot already saved
            }
        }
        let start = state.programs_done;
        let end = (start + cfg.chunk_size.max(1)).min(total);
        // Coverage weights are frozen for the whole chunk, derived from
        // the map as of the previous chunk boundary — the scheduling
        // decision is independent of intra-chunk completion order, so
        // reports stay byte-identical at any worker count.
        let weights = cfg
            .coverage_guided
            .then(|| coverage_weights(&state.coverage));
        let outcomes = protean_jobs::map_range_with(workers, start..end, |p| {
            run_one(cfg, p, weights.as_ref(), policy_factory)
        });

        state.programs_done = end;
        for (off, outcome) in outcomes.into_iter().enumerate() {
            let stopped = outcome.outcome.stopped;
            fold_outcome(&mut state, outcome);
            if stopped {
                // stop_at_first: discard later programs of the chunk and
                // pin the cursor to the stopping program, exactly like
                // the batch driver's ordered-merge break.
                state.stopped = true;
                state.programs_done = start + off + 1;
                break;
            }
        }
        state.chunks_done += 1;
        chunks_this_call += 1;
        state.complete = state.programs_done >= total || state.stopped;
        if let Some(path) = &cfg.snapshot {
            save_snapshot(path, &fingerprint, &state);
        }
    }
    state.complete = state.programs_done >= total || state.stopped;
    state
}

/// One program's engine outcome: the plain fuzzing outcome plus the
/// engine-only event streams, all merged in program order.
struct EngineOutcome {
    outcome: ProgramOutcome,
    prefilter_pairs: u64,
    prefilter_rejected: u64,
    hw_pairs: u64,
    candidates: u64,
    /// Coverage events, one `template|event` key per increment.
    coverage: Vec<String>,
    /// Triage events: `(signature, program_seed, input_index, fp)`.
    triage: Vec<(String, u64, usize, bool)>,
}

impl EngineOutcome {
    fn plain(outcome: ProgramOutcome) -> EngineOutcome {
        EngineOutcome {
            outcome,
            prefilter_pairs: 0,
            prefilter_rejected: 0,
            hw_pairs: 0,
            candidates: 0,
            coverage: Vec::new(),
            triage: Vec::new(),
        }
    }
}

fn fold_outcome(state: &mut CampaignReport, eo: EngineOutcome) {
    state.prefilter_pairs += eo.prefilter_pairs;
    state.prefilter_rejected += eo.prefilter_rejected;
    state.hw_pairs += eo.hw_pairs;
    state.candidates += eo.candidates;
    for key in eo.coverage {
        *state.coverage.entry(key).or_insert(0) += 1;
    }
    for (sig, seed, input, fp) in eo.triage {
        let bucket = state.triage.entry(sig).or_insert_with(|| TriageBucket {
            count: 0,
            false_positives: 0,
            first_program_seed: seed,
            first_input_index: input,
        });
        bucket.count += 1;
        if fp {
            bucket.false_positives += 1;
        }
    }
    merge_outcome(&mut state.report, eo.outcome);
}

/// Template weights from the coverage map: `w = 1 + c_max − c`, where
/// `c` sums every event counter attributed to the template. A template
/// at the coverage frontier (max events) keeps weight 1; the least
/// covered template is `1 + (c_max − c_min)` times likelier.
fn coverage_weights(coverage: &BTreeMap<String, u64>) -> [u64; GadgetTemplate::ALL.len()] {
    let mut counts = [0u64; GadgetTemplate::ALL.len()];
    for (i, t) in GadgetTemplate::ALL.iter().enumerate() {
        let prefix = format!("{}|", t.name());
        counts[i] = coverage
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(_, c)| c)
            .sum();
    }
    let c_max = counts.iter().copied().max().unwrap_or(0);
    counts.map(|c| 1 + c_max - c)
}

/// Dispatches one program to the plain worker (features off — exact
/// [`fuzz`](crate::fuzz) behavior) or the engine worker.
fn run_one(
    cfg: &CampaignConfig,
    p: usize,
    weights: Option<&[u64; GadgetTemplate::ALL.len()]>,
    policy_factory: &(dyn Fn() -> Box<dyn DefensePolicy> + Sync),
) -> EngineOutcome {
    if !cfg.engine_features_on() {
        return EngineOutcome::plain(fuzz_one_program(&cfg.fuzz, p, policy_factory));
    }
    engine_one_program(cfg, p, weights, policy_factory)
}

/// The engine's per-program worker: [`fuzz_one_program`] restructured
/// into the two-stage cheap-first shape, with coverage harvesting and
/// audit-signature triage. Pure function of `(cfg, p, weights)`.
fn engine_one_program(
    cc: &CampaignConfig,
    p: usize,
    weights: Option<&[u64; GadgetTemplate::ALL.len()]>,
    policy_factory: &(dyn Fn() -> Box<dyn DefensePolicy> + Sync),
) -> EngineOutcome {
    let cfg = &cc.fuzz;
    let mut report = Report::default();
    let mut stopped = false;
    let mut eo = EngineOutcome::plain(ProgramOutcome {
        report: Report::default(),
        stopped: false,
    });

    let seed = derive_program_seed(cfg.gen.seed, p);
    let gen_cfg = GenConfig {
        seed,
        ..cfg.gen.clone()
    };
    let generated = generator::generate_recorded(&gen_cfg, cfg.only_template, weights);
    let program = compile_with(&generated.program, cfg.pass).program;
    let observer = cfg.contract.observer(&program);
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);
    let mut records: Vec<ExecRecord> = Vec::new();
    let oracle = SeqOracle::new(&program, cfg.oracle);

    if cc.coverage_guided {
        // Template-ran events are recorded even when the hardware stage
        // is skipped, so the weight feedback sees every draw.
        for t in &generated.templates {
            eo.coverage.push(format!("{}|ran", t.name()));
        }
    }

    let base = fuzzer::make_input(&mut rng);
    let Some(base_trace) = fuzzer::seq_trace(
        &program,
        &oracle,
        &base,
        &observer,
        cfg.max_steps,
        &mut records,
    ) else {
        eo.outcome = ProgramOutcome { report, stopped };
        return eo;
    };

    // Stage 1 (cheap): draw every mutant and SEQ-trace it on the
    // threaded oracle before any cycle-accurate hardware run. The
    // mutants are drawn in the same RNG order as the batch driver's
    // interleaved loop, so the admitted inputs are identical.
    let mut admitted: Vec<(usize, ArchState)> = Vec::new();
    for i in 0..cfg.inputs_per_program {
        let mut mutant = base.clone();
        fuzzer::randomize_secrets(&mut mutant, &mut rng);
        let Some(mutant_trace) = fuzzer::seq_trace(
            &program,
            &oracle,
            &mutant,
            &observer,
            cfg.max_steps,
            &mut records,
        ) else {
            continue;
        };
        if mutant_trace != base_trace {
            report.pairs_rejected += 1;
            eo.prefilter_rejected += 1;
            continue;
        }
        eo.prefilter_pairs += 1;
        admitted.push((i, mutant));
    }

    if cc.prefilter && admitted.is_empty() {
        // Stage 1 admitted nothing: the hardware core is never built.
        eo.outcome = ProgramOutcome { report, stopped };
        return eo;
    }

    // Stage 2 (expensive): cycle-accurate replay of the admitted pairs.
    // Coverage mode constructs the core with pipeline tracing on —
    // tracing is observation-only, so every counter matches an untraced
    // run; the base run's trace is the coverage harvest.
    let mut core_cfg = cfg.core.clone();
    if cc.coverage_guided {
        core_cfg.trace = true;
    }
    let mut core = Core::new(&program, core_cfg, policy_factory(), &base);
    core.record_traces(true);
    let base_hw = core.run_mut(cfg.max_steps, cfg.max_steps * 60);
    report.committed_uops += base_hw.stats.committed;
    if cc.coverage_guided {
        if let Some(trace) = &base_hw.trace {
            let causes = trace.squash_causes();
            let mut rules: Vec<String> = trace
                .blocked_by_rule()
                .iter()
                .map(|(point, rule, _)| format!("{}/{rule}", point.name()))
                .collect();
            rules.sort();
            rules.dedup();
            let mut templates = generated.templates.clone();
            templates.sort_by_key(|t| t.name());
            templates.dedup();
            for t in &templates {
                for c in &causes {
                    eo.coverage.push(format!("{}|squash:{c}", t.name()));
                }
                for r in &rules {
                    eo.coverage.push(format!("{}|block:{r}", t.name()));
                }
            }
        }
    }
    if base_hw.exit != SimExit::Halted {
        report.hw_truncated += 1;
        report.no_partner += admitted.len() as u64;
        eo.outcome = ProgramOutcome { report, stopped };
        return eo;
    }

    for (i, mutant) in admitted {
        core.reset(&program, policy_factory(), &mutant);
        core.record_traces(true);
        let mutant_hw = core.run_mut(cfg.max_steps, cfg.max_steps * 60);
        report.committed_uops += mutant_hw.stats.committed;
        if mutant_hw.exit != SimExit::Halted {
            report.hw_truncated += 1;
            continue;
        }
        eo.hw_pairs += 1;
        report.tests += 2;
        if cfg.adversary.observations_differ(&base_hw, &mutant_hw) {
            eo.candidates += 1;
            let fp = base_hw.committed_idxs != mutant_hw.committed_idxs;
            if fp {
                report.false_positives += 1;
            } else {
                report.violations += 1;
            }
            if cc.triage {
                let sig = fuzzer::traced_replay(&program, &mutant, cfg, policy_factory())
                    .map(|t| t.audit_signature())
                    .unwrap_or_else(|| "no-trace".to_string());
                eo.triage.push((sig, seed, i, fp));
            }
            if report.examples.len() < Report::MAX_EXAMPLES {
                report.examples.push(Violation {
                    program_seed: seed,
                    input_index: i,
                    false_positive: fp,
                    trace: if cfg.capture_traces {
                        fuzzer::traced_rerun(&program, &base, &mutant, cfg, policy_factory)
                    } else {
                        None
                    },
                });
            }
            if !fp && cfg.stop_at_first {
                stopped = true;
                break;
            }
        }
    }
    eo.outcome = ProgramOutcome { report, stopped };
    eo
}

/// A cheap FNV-1a fingerprint of every campaign parameter that affects
/// results. The worker count is deliberately excluded — resuming at a
/// different `PROTEAN_JOBS` is exactly what the engine supports. The
/// defense policy is not capturable (it is a closure); callers resuming
/// a snapshot must supply the same policy.
fn config_fingerprint(cfg: &CampaignConfig) -> String {
    let mut canon = cfg.clone();
    canon.fuzz.workers = None;
    canon.max_chunks_per_call = None; // kill simulation, not a result input
    canon.snapshot = None; // the file's location is not its content
    let text = format!("{canon:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

// --- snapshot serialization -----------------------------------------
//
// The snapshot is a BenchReport-schema JSON document (`bench`,
// `schema:1`, uniform flat `rows`) so the existing `validate_json` CI
// gate covers snapshots with no new tooling. State is flattened into
// `{kind, key, value}` string triples: counters, coverage entries,
// triage buckets (value = nested compact JSON string), and recorded
// examples.

fn snapshot_json(fingerprint: &str, state: &CampaignReport) -> Json {
    let mut rows: Vec<Json> = Vec::new();
    let mut row = |kind: &str, key: String, value: String| {
        rows.push(Json::obj([
            ("kind", Json::str(kind)),
            ("key", Json::Str(key)),
            ("value", Json::Str(value)),
        ]));
    };
    row("meta", "version".into(), SNAPSHOT_VERSION.to_string());
    row("meta", "fingerprint".into(), fingerprint.to_string());
    let counters = [
        ("programs_done", state.programs_done as u64),
        ("chunks_done", state.chunks_done),
        ("stopped", state.stopped as u64),
        ("tests", state.report.tests),
        ("pairs_rejected", state.report.pairs_rejected),
        ("violations", state.report.violations),
        ("false_positives", state.report.false_positives),
        ("committed_uops", state.report.committed_uops),
        ("hw_truncated", state.report.hw_truncated),
        ("no_partner", state.report.no_partner),
        ("prefilter_pairs", state.prefilter_pairs),
        ("prefilter_rejected", state.prefilter_rejected),
        ("hw_pairs", state.hw_pairs),
        ("candidates", state.candidates),
    ];
    for (k, v) in counters {
        row("counter", k.into(), v.to_string());
    }
    for (i, v) in state.report.examples.iter().enumerate() {
        let example = Json::obj([
            ("program_seed", Json::U64(v.program_seed)),
            ("input_index", Json::U64(v.input_index as u64)),
            ("false_positive", Json::Bool(v.false_positive)),
            (
                "trace",
                match &v.trace {
                    Some(t) => Json::str(t.clone()),
                    None => Json::Null,
                },
            ),
        ]);
        row("example", i.to_string(), example.render());
    }
    for (k, c) in &state.coverage {
        row("coverage", k.clone(), c.to_string());
    }
    for (sig, b) in &state.triage {
        let bucket = Json::obj([
            ("count", Json::U64(b.count)),
            ("false_positives", Json::U64(b.false_positives)),
            ("first_program_seed", Json::U64(b.first_program_seed)),
            ("first_input_index", Json::U64(b.first_input_index as u64)),
        ]);
        row("triage", sig.clone(), bucket.render());
    }
    Json::obj([
        ("bench", Json::str("campaign_snapshot")),
        ("schema", Json::U64(1)),
        ("rows", Json::Arr(rows)),
    ])
}

fn save_snapshot(path: &PathBuf, fingerprint: &str, state: &CampaignReport) {
    let doc = snapshot_json(fingerprint, state);
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    // Atomic publish: a kill between write and rename leaves the old
    // snapshot intact; a torn write never becomes the snapshot.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, doc.render_pretty())
        .and_then(|()| std::fs::rename(&tmp, path))
        .unwrap_or_else(|e| panic!("cannot write snapshot {}: {e}", path.display()));
}

/// Reads an exact integer field from a parsed snapshot object —
/// `Json::as_f64` would silently round seeds above 2^53.
fn get_u64(obj: &Json, key: &str) -> u64 {
    match obj.get(key) {
        Some(Json::U64(v)) => *v,
        _ => 0,
    }
}

fn load_snapshot(path: &PathBuf, fingerprint: &str) -> CampaignReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read snapshot {}: {e}", path.display()));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| panic!("snapshot {} is not JSON: {e}", path.display()));
    let rows = doc
        .get("rows")
        .and_then(|r| r.as_arr())
        .unwrap_or_else(|| panic!("snapshot {} has no rows", path.display()));

    let mut state = CampaignReport::default();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut examples: Vec<(usize, Violation)> = Vec::new();
    for r in rows {
        let kind = r.get("kind").and_then(|v| v.as_str()).unwrap_or("");
        let key = r.get("key").and_then(|v| v.as_str()).unwrap_or("");
        let value = r.get("value").and_then(|v| v.as_str()).unwrap_or("");
        match kind {
            "meta" => match key {
                "version" => {
                    let v: u64 = value.parse().unwrap_or(0);
                    assert!(
                        v == SNAPSHOT_VERSION,
                        "snapshot {} has version {v}, engine expects {SNAPSHOT_VERSION}",
                        path.display()
                    );
                }
                "fingerprint" => {
                    assert!(
                        value == fingerprint,
                        "snapshot {} was written by a different campaign config \
                         (fingerprint {value} != {fingerprint}); refusing to resume",
                        path.display()
                    );
                }
                _ => {}
            },
            "counter" => {
                counters.insert(key.to_string(), value.parse().unwrap_or(0));
            }
            "coverage" => {
                state
                    .coverage
                    .insert(key.to_string(), value.parse().unwrap_or(0));
            }
            "triage" => {
                let b = Json::parse(value)
                    .unwrap_or_else(|e| panic!("bad triage bucket in snapshot: {e}"));
                let get = |k: &str| get_u64(&b, k);
                state.triage.insert(
                    key.to_string(),
                    TriageBucket {
                        count: get("count"),
                        false_positives: get("false_positives"),
                        first_program_seed: get("first_program_seed"),
                        first_input_index: get("first_input_index") as usize,
                    },
                );
            }
            "example" => {
                let v =
                    Json::parse(value).unwrap_or_else(|e| panic!("bad example in snapshot: {e}"));
                let get = |k: &str| get_u64(&v, k);
                examples.push((
                    key.parse().unwrap_or(0),
                    Violation {
                        program_seed: get("program_seed"),
                        input_index: get("input_index") as usize,
                        false_positive: matches!(v.get("false_positive"), Some(Json::Bool(true))),
                        trace: v
                            .get("trace")
                            .and_then(|t| t.as_str())
                            .map(|t| t.to_string()),
                    },
                ));
            }
            _ => {}
        }
    }
    examples.sort_by_key(|(i, _)| *i);
    state.report.examples = examples.into_iter().map(|(_, v)| v).collect();
    let c = |k: &str| counters.get(k).copied().unwrap_or(0);
    state.programs_done = c("programs_done") as usize;
    state.chunks_done = c("chunks_done");
    state.stopped = c("stopped") != 0;
    state.report.tests = c("tests");
    state.report.pairs_rejected = c("pairs_rejected");
    state.report.violations = c("violations");
    state.report.false_positives = c("false_positives");
    state.report.committed_uops = c("committed_uops");
    state.report.hw_truncated = c("hw_truncated");
    state.report.no_partner = c("no_partner");
    state.prefilter_pairs = c("prefilter_pairs");
    state.prefilter_rejected = c("prefilter_rejected");
    state.hw_pairs = c("hw_pairs");
    state.candidates = c("candidates");
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzer::{Adversary, ContractKind};
    use protean_cc::Pass;
    use protean_sim::UnsafePolicy;

    fn tiny_cfg() -> CampaignConfig {
        let mut fuzz = FuzzConfig::quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb);
        fuzz.programs = 6;
        fuzz.inputs_per_program = 2;
        fuzz.workers = Some(1);
        fuzz.capture_traces = false;
        let mut cfg = CampaignConfig::new(fuzz);
        cfg.chunk_size = 2;
        cfg
    }

    #[test]
    fn snapshot_roundtrips_every_field() {
        let mut state = CampaignReport {
            programs_done: 7,
            chunks_done: 3,
            prefilter_pairs: 10,
            prefilter_rejected: 4,
            hw_pairs: 9,
            candidates: 2,
            stopped: true,
            complete: false,
            resumed: false,
            ..Default::default()
        };
        state.report.tests = 18;
        state.report.violations = 1;
        state.report.examples.push(Violation {
            program_seed: 0xdead,
            input_index: 1,
            false_positive: false,
            trace: Some("line1\nline2 \"quoted\"".to_string()),
        });
        state.coverage.insert("rsb|squash:branch".into(), 5);
        state.triage.insert(
            "rules[] squashes[branch]".into(),
            TriageBucket {
                count: 2,
                false_positives: 1,
                first_program_seed: 42,
                first_input_index: 0,
            },
        );
        let dir = std::env::temp_dir().join("protean_campaign_test_roundtrip");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("snap.json");
        save_snapshot(&path, "fp", &state);
        let loaded = load_snapshot(&path, "fp");
        // `complete` is recomputed by the driver, not persisted; compare
        // digests after normalizing it.
        let mut expect = state.clone();
        expect.complete = false;
        assert_eq!(loaded.digest(), expect.digest());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "different campaign config")]
    fn snapshot_fingerprint_mismatch_is_refused() {
        let dir = std::env::temp_dir().join("protean_campaign_test_fp");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("snap.json");
        save_snapshot(&path, "aaaa", &CampaignReport::default());
        let _ = load_snapshot(&path, "bbbb");
    }

    #[test]
    fn features_off_campaign_matches_fuzz() {
        let cfg = tiny_cfg();
        let direct = crate::fuzz(&cfg.fuzz, &|| Box::new(UnsafePolicy));
        let engine = run_campaign(&cfg, &|| Box::new(UnsafePolicy));
        assert_eq!(format!("{direct:?}"), format!("{:?}", engine.report));
        assert!(engine.complete);
        assert_eq!(engine.programs_done, cfg.fuzz.programs);
    }

    #[test]
    fn coverage_weights_favor_undercovered_templates() {
        let mut cov = BTreeMap::new();
        cov.insert("rsb|ran".to_string(), 9u64);
        cov.insert("rsb|squash:branch".to_string(), 1u64);
        let w = coverage_weights(&cov);
        // rsb has 10 events, everything else 0 → weight 1 vs 11.
        let rsb = GadgetTemplate::ALL
            .iter()
            .position(|t| t.name() == "rsb")
            .unwrap();
        assert_eq!(w[rsb], 1);
        for (i, &wi) in w.iter().enumerate() {
            if i != rsb {
                assert_eq!(wi, 11);
            }
        }
    }

    #[test]
    fn fingerprint_ignores_workers_and_kill_knobs() {
        let mut a = tiny_cfg();
        let mut b = tiny_cfg();
        b.fuzz.workers = Some(4);
        b.max_chunks_per_call = Some(1);
        b.snapshot = Some(PathBuf::from("/tmp/elsewhere.json"));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        a.fuzz.gen.seed = 99;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }
}
