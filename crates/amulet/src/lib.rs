//! # protean-amulet
//!
//! An AMuLeT\*-style security-contract fuzzer for hardware Spectre
//! defenses, from *"Protean: A Programmable Spectre Defense"* (HPCA
//! 2026, §VII-B).
//!
//! The fuzzer validates a [`DefensePolicy`](protean_sim::DefensePolicy)
//! against a hardware-software security contract: it generates random
//! (gadget-biased) test programs ([`generate`]), instruments them with a
//! ProtCC pass, searches for *contract-equivalent* input pairs (equal
//! observer-mode traces under sequential execution), runs both on the
//! defended out-of-order core, and reports a violation whenever the
//! adversary — cache/TLB tags or per-stage timing — can distinguish
//! them. A committed-fingerprint filter classifies sequential-leakage
//! artifacts as false positives (§VII-B1e).
//!
//! The paper's Tab. II campaigns are reproduced by
//! `cargo run -p protean-bench --bin table_ii`.
//!
//! # Example
//!
//! The unsafe core violates ARCH-SEQ almost immediately; Protean-Track
//! does not:
//!
//! ```no_run
//! use protean_amulet::{fuzz, Adversary, ContractKind, FuzzConfig};
//! use protean_cc::Pass;
//! use protean_core::ProtTrackPolicy;
//! use protean_sim::UnsafePolicy;
//!
//! let cfg = FuzzConfig::quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb);
//! let unsafe_report = fuzz(&cfg, &|| Box::new(UnsafePolicy));
//! let protean_report = fuzz(&cfg, &|| Box::new(ProtTrackPolicy::new()));
//! assert!(unsafe_report.violations > 0);
//! assert_eq!(protean_report.violations, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod campaign;
mod fuzzer;
mod generator;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, TriageBucket};
pub use fuzzer::{fuzz, Adversary, ContractKind, FuzzConfig, Report, Violation};
pub use generator::{
    generate, generate_recorded, generate_with_template, init_cold_chain, GadgetTemplate,
    GenConfig, GeneratedProgram, COLD_BASE, PUBLIC_BASE, PUBLIC_SIZE, SECRET_BASE, SECRET_SIZE,
    STACK_TOP,
};
