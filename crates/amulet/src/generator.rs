//! Random test-program generation (the role of AMuLeT\*'s
//! llvm-stress-based generator, paper §VII-B1a).
//!
//! Programs mix random computation blocks with parameterized Spectre
//! gadget templates, so that the unsafe baseline reliably exhibits
//! transient leaks while defenses are exercised on diverse code:
//!
//! * **bounds-check bypass** (Spectre-v1): a trained bounds check with a
//!   slow bound and a dependent transmit load;
//! * **implicit channel**: a transiently loaded secret feeding a branch;
//! * **divider channel**: a transiently loaded secret feeding a division
//!   µop — the gem5 transmitter AMuLeT\* discovered (§VII-B4b);
//! * **memory-order speculation**: a load that transiently reads a stale
//!   secret past an older, slow store — invisible to the CONTROL
//!   speculation model (paper footnote 1);
//! * **return-stack speculation** (Spectre-RSB/Retbleed-style): a callee
//!   overwrites its return address, so the RSB steers transient
//!   execution to the abandoned call site, where a secret is loaded and
//!   transmitted;
//! * **indirect-branch speculation** (Spectre-v2): a `jmpreg` trained to
//!   one target is transiently redirected there while its actual,
//!   slow-arriving target goes elsewhere.
//!
//! Layout convention: public data lives at [`PUBLIC_BASE`], secrets at
//! [`SECRET_BASE`]; generated code only *architecturally* addresses the
//! public window (addresses are masked), so secret-dependent traces can
//! only arise transiently or through deliberate gadget loads.

use protean_isa::{AluOp, Cond, Mem, Program, ProgramBuilder, Reg};
use protean_rng::Rng;

/// Base of the public data window.
pub const PUBLIC_BASE: u64 = 0x10000;
/// Size of the public data window (power of two).
pub const PUBLIC_SIZE: u64 = 0x1000;
/// Base of the secret region.
pub const SECRET_BASE: u64 = PUBLIC_BASE + PUBLIC_SIZE;
/// Number of secret bytes.
pub const SECRET_SIZE: u64 = 0x100;
/// Initial stack pointer.
pub const STACK_TOP: u64 = 0x8_0000;
/// Base of the always-cold pointer-chase region used to delay bounds
/// checks.
pub const COLD_BASE: u64 = 0x10_0000;

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Approximate number of generated segments.
    pub segments: usize,
    /// Probability that a segment is a Spectre gadget template.
    pub gadget_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            segments: 5,
            gadget_bias: 0.5,
            seed: 0,
        }
    }
}

/// How many cold pointer-chase cells a generated program may consume
/// (each gadget uses one fresh cell per trip).
const COLD_CELLS: u64 = 512;

/// The gadget templates the generator draws from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GadgetTemplate {
    /// Bounds-check bypass transmitting via a dependent load.
    BoundsLoad,
    /// Bounds-check bypass transmitting via a branch (implicit channel).
    BoundsBranch,
    /// Bounds-check bypass transmitting via the divider (§VII-B4b).
    BoundsDiv,
    /// Memory-order speculation past a slow store (footnote 1).
    MemOrder,
    /// Return-stack speculation (Spectre-RSB / Retbleed-style).
    Rsb,
    /// Indirect-branch speculation (Spectre-v2).
    Btb,
}

impl GadgetTemplate {
    /// All templates.
    pub const ALL: [GadgetTemplate; 6] = [
        GadgetTemplate::BoundsLoad,
        GadgetTemplate::BoundsBranch,
        GadgetTemplate::BoundsDiv,
        GadgetTemplate::MemOrder,
        GadgetTemplate::Rsb,
        GadgetTemplate::Btb,
    ];

    /// Template name for reports and coverage-map keys.
    pub fn name(self) -> &'static str {
        match self {
            GadgetTemplate::BoundsLoad => "bounds-load",
            GadgetTemplate::BoundsBranch => "bounds-branch",
            GadgetTemplate::BoundsDiv => "bounds-div",
            GadgetTemplate::MemOrder => "mem-order",
            GadgetTemplate::Rsb => "rsb",
            GadgetTemplate::Btb => "btb",
        }
    }
}

/// A generated program together with the gadget templates its segments
/// drew — the attribution the campaign engine's coverage map needs
/// (coverage events are keyed on `template × pipeline event`).
#[derive(Clone, Debug)]
pub struct GeneratedProgram {
    /// The generated (uninstrumented) program.
    pub program: Program,
    /// The gadget template of each gadget segment, in segment order
    /// (non-gadget random segments are not recorded).
    pub templates: Vec<GadgetTemplate>,
}

/// Generates a test program whose gadget segments all use `template`
/// (for targeted validation of one speculation primitive).
pub fn generate_with_template(cfg: &GenConfig, template: GadgetTemplate) -> Program {
    generate_inner(cfg, Some(template))
}

/// Generates a test program, recording which gadget templates its
/// segments used, optionally biasing template selection by `weights`
/// (indexed like [`GadgetTemplate::ALL`]; larger = more likely).
///
/// With `weights == None` and `only == None` this draws the *same*
/// program as [`generate`] for the same config (identical RNG call
/// sequence); a `Some(weights)` draw uses weighted sampling and
/// therefore generates a different (but equally deterministic) stream —
/// the campaign engine's coverage feedback path.
pub fn generate_recorded(
    cfg: &GenConfig,
    only: Option<GadgetTemplate>,
    weights: Option<&[u64; GadgetTemplate::ALL.len()]>,
) -> GeneratedProgram {
    generate_full(cfg, only, weights)
}

/// Generates a test program.
///
/// # Examples
///
/// ```
/// use protean_amulet::{generate, GenConfig};
///
/// let prog = generate(&GenConfig { segments: 4, gadget_bias: 0.5, seed: 42 });
/// assert!(prog.validate().is_ok());
/// assert!(prog.len() > 10);
/// ```
pub fn generate(cfg: &GenConfig) -> Program {
    generate_inner(cfg, None)
}

fn generate_inner(cfg: &GenConfig, only: Option<GadgetTemplate>) -> Program {
    generate_full(cfg, only, None).program
}

/// Draws one template index from integer `weights` (all ≥ 1 by
/// construction — the campaign engine clamps). One `gen_range` call.
fn weighted_template(rng: &mut Rng, weights: &[u64; GadgetTemplate::ALL.len()]) -> GadgetTemplate {
    let total: u64 = weights.iter().sum();
    let mut x = rng.gen_range(0..total.max(1));
    for (t, &w) in GadgetTemplate::ALL.iter().zip(weights) {
        if x < w {
            return *t;
        }
        x -= w;
    }
    GadgetTemplate::ALL[GadgetTemplate::ALL.len() - 1]
}

fn generate_full(
    cfg: &GenConfig,
    only: Option<GadgetTemplate>,
    weights: Option<&[u64; GadgetTemplate::ALL.len()]>,
) -> GeneratedProgram {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut b = ProgramBuilder::new();
    let mut templates = Vec::new();
    // Prologue: stack, cold-chain cursor (R11), public pointer (R10).
    b.mov_imm(Reg::RSP, STACK_TOP);
    b.mov_imm(Reg::R10, PUBLIC_BASE);
    b.mov_imm(Reg::R11, COLD_BASE);
    for i in 0..6 {
        b.mov_imm(Reg::gpr(i), rng.gen_range(0..1024));
    }
    for _ in 0..cfg.segments {
        if rng.gen_bool(cfg.gadget_bias) {
            let template = match (only, weights) {
                (Some(t), _) => t,
                (None, Some(w)) => weighted_template(&mut rng, w),
                (None, None) => GadgetTemplate::ALL[rng.gen_range(0..GadgetTemplate::ALL.len())],
            };
            templates.push(template);
            match template {
                GadgetTemplate::BoundsLoad => {
                    gadget_bounds_bypass(&mut b, &mut rng, GadgetSink::Load)
                }
                GadgetTemplate::BoundsBranch => {
                    gadget_bounds_bypass(&mut b, &mut rng, GadgetSink::Branch)
                }
                GadgetTemplate::BoundsDiv => {
                    gadget_bounds_bypass(&mut b, &mut rng, GadgetSink::Div)
                }
                GadgetTemplate::MemOrder => gadget_memory_order(&mut b, &mut rng),
                GadgetTemplate::Rsb => gadget_rsb(&mut b, &mut rng),
                GadgetTemplate::Btb => gadget_btb(&mut b, &mut rng),
            }
        } else {
            random_segment(&mut b, &mut rng);
        }
    }
    b.halt();
    GeneratedProgram {
        program: b.build().expect("generator emits well-formed programs"),
        templates,
    }
}

/// Prepares the initial memory contents a generated program expects:
/// the cold pointer-chase cells (each resolving to the public array
/// bound, 16). Secrets and public data are installed by the fuzzer.
///
/// The contents are a pure function of the layout constants, but the
/// cells deliberately sit on 2×[`COLD_CELLS`] distinct 4 KiB pages (cold
/// = always miss), so writing them materialises ~1024 pages — by far the
/// most expensive part of building a fuzzer input. The pages are built
/// once into a process-wide template and shared copy-on-write into
/// `mem`, which **replaces** any previous contents (every caller starts
/// from a fresh memory).
pub fn init_cold_chain(mem: &mut protean_arch::Memory) {
    static TEMPLATE: std::sync::OnceLock<protean_arch::Memory> = std::sync::OnceLock::new();
    let template = TEMPLATE.get_or_init(|| {
        let mut mem = protean_arch::Memory::new();
        for i in 0..COLD_CELLS {
            let cell = COLD_BASE + i * 4096;
            let indirect = COLD_BASE + COLD_CELLS * 4096 + i * 4096;
            mem.write(cell, 8, indirect);
            mem.write(indirect, 8, 16);
        }
        mem
    });
    mem.clone_from(template);
}

fn random_segment(b: &mut ProgramBuilder, rng: &mut Rng) {
    let n = rng.gen_range(3..12);
    for _ in 0..n {
        match rng.gen_range(0..10) {
            0..=4 => {
                let op = AluOp::ALL[rng.gen_range(0..AluOp::ALL.len())];
                let dst = Reg::gpr(rng.gen_range(0..8));
                let s1 = Reg::gpr(rng.gen_range(0..8));
                if rng.gen_bool(0.5) {
                    b.alu(op, dst, s1, Reg::gpr(rng.gen_range(0..8)));
                } else {
                    b.alu(op, dst, s1, rng.gen_range(0..4096u64));
                }
            }
            5..=6 => {
                // Masked public load: architecturally always in-window.
                let dst = Reg::gpr(rng.gen_range(0..8));
                let idx = Reg::gpr(rng.gen_range(0..8));
                b.and(Reg::R13, idx, PUBLIC_SIZE - 8);
                b.load(dst, Mem::base(Reg::R10).with_index(Reg::R13, 1));
            }
            7 => {
                let src = Reg::gpr(rng.gen_range(0..8));
                let idx = Reg::gpr(rng.gen_range(0..8));
                b.and(Reg::R13, idx, PUBLIC_SIZE - 8);
                b.store(Mem::base(Reg::R10).with_index(Reg::R13, 1), src);
            }
            8 => {
                // A short, input-dependent diamond.
                let skip = b.label("d");
                b.cmp(Reg::gpr(rng.gen_range(0..8)), rng.gen_range(0..512u64));
                b.jcc(Cond::ALL[rng.gen_range(0..Cond::ALL.len())], skip);
                b.add(
                    Reg::gpr(rng.gen_range(0..8)),
                    Reg::gpr(rng.gen_range(0..8)),
                    1,
                );
                b.bind(skip);
            }
            _ => {
                // A small bounded loop.
                let top = b.here("l");
                b.add(Reg::R12, Reg::R12, 1);
                b.and(Reg::R13, Reg::R12, 7);
                b.cmp(Reg::R13, 0);
                b.jcc(Cond::Ne, top);
            }
        }
    }
}

/// Where a transiently loaded secret is steered (the gadget's
/// transmitter).
#[derive(Clone, Copy, Debug)]
enum GadgetSink {
    /// Secret-indexed load (cache channel).
    Load,
    /// Secret-dependent branch (implicit channel).
    Branch,
    /// Secret-dependent division (the divider latency/fault channel).
    Div,
}

/// Spectre-v1 template: train an in-bounds check, then present an
/// out-of-bounds index while the (cold pointer-chased) bound is still in
/// flight; steer the out-of-bounds (secret) value into `sink`.
fn gadget_bounds_bypass(b: &mut ProgramBuilder, rng: &mut Rng, sink: GadgetSink) {
    let trips = rng.gen_range(12..24u64);
    let trip = Reg::R9;
    let idx = Reg::R8;
    let bound = Reg::R7;
    let val = Reg::R6;
    let tmp = Reg::R13;
    // Out-of-bounds index reaching into the secret region: the public
    // array spans PUBLIC_SIZE bytes, so the secret at PUBLIC_BASE +
    // PUBLIC_SIZE starts at element index PUBLIC_SIZE/8.
    let oob = PUBLIC_SIZE / 8 + rng.gen_range(0..SECRET_SIZE / 8);

    let attack = b.label("g_attack");
    let victim = b.label("g_victim");
    let skip = b.label("g_skip");
    let done = b.label("g_done");
    b.mov_imm(trip, 0);
    let top = b.here("g_top");
    b.cmp(trip, trips);
    b.jcc(Cond::Eq, attack);
    b.and(idx, trip, 15); // in-bounds while training
    b.jmp(victim);
    b.bind(attack);
    b.mov_imm(idx, oob); // out of bounds: indexes the secret region
    b.bind(victim);
    // Slow bound: two dependent cold loads.
    b.load(bound, Mem::base(Reg::R11));
    b.load(bound, Mem::base(bound));
    b.cmp(idx, bound);
    b.jcc(Cond::Uge, skip);
    // In-bounds body (transient on the attack trip):
    b.load(val, Mem::abs(PUBLIC_BASE).with_index(idx, 8));
    match sink {
        GadgetSink::Load => {
            b.shl(tmp, val, 6);
            b.and(tmp, tmp, 0xfff8);
            b.load(val, Mem::abs(PUBLIC_BASE + 0x8000).with_index(tmp, 1));
        }
        GadgetSink::Branch => {
            // The canonical implicit channel: the transient branch
            // selects between two *public* loads, so the cache reveals
            // the secret predicate without any secret-derived address.
            // Each side probes a trip-unique line, so the training trips
            // cannot pre-pollute the attack trip's probe lines.
            let t = b.label("g_sec");
            let done = b.label("g_sec_done");
            b.shl(Reg::R4, trip, 6); // trip-unique line offset
            b.and(val, val, 0xff); // a secret byte: ~50/50 predicate
            b.cmp(val, 0x80);
            b.jcc(Cond::Ult, t);
            b.load(tmp, Mem::abs(PUBLIC_BASE + 0x10000).with_index(Reg::R4, 1));
            b.jmp(done);
            b.bind(t);
            b.load(tmp, Mem::abs(PUBLIC_BASE + 0x18000).with_index(Reg::R4, 1));
            b.bind(done);
        }
        GadgetSink::Div => {
            // Two chained divisions whose latency is a strong function of
            // the secret: they keep the (non-pipelined) divider busy past
            // the bounds-check squash, delaying the *architectural*
            // division below — the gem5 divider channel of §VII-B4b.
            b.and(tmp, val, 0xffff);
            b.add(tmp, tmp, 1);
            b.mov_imm(val, 0x7fff_ffff_ffff_ffff);
            b.div(val, val, tmp);
            b.div(val, val, tmp);
        }
    }
    b.bind(skip);
    if matches!(sink, GadgetSink::Div) {
        // Architectural division contending for the divider.
        b.mov_imm(tmp, 1_000_003);
        b.mov_imm(val, 7);
        b.div(tmp, tmp, val);
    }
    b.add(Reg::R11, Reg::R11, 4096); // next cold cell
    b.add(trip, trip, 1);
    b.cmp(trip, trips + 1);
    b.jcc(Cond::Ult, top);
    b.jmp(done);
    b.bind(done);
}

/// Memory-order template: a store to a secret-holding slot whose address
/// arrives late; the younger reload transiently reads the *stale secret*
/// and transmits it. Architecturally the slot always reads back the
/// public value. Only ATCOMMIT-grade defenses catch this (footnote 1).
fn gadget_memory_order(b: &mut ProgramBuilder, rng: &mut Rng) {
    let slot = rng.gen_range(0..SECRET_SIZE / 8) * 8;
    let addr = Reg::R7;
    let val = Reg::R6;
    let tmp = Reg::R13;
    // Slow address: cold pointer chase, then a fixed offset into the
    // secret region.
    b.load(addr, Mem::base(Reg::R11));
    b.load(addr, Mem::base(addr)); // = 16 (public bound), reused as a delay
    b.mul(addr, addr, 0); // = 0, but dependent on the slow chain
    b.add(addr, addr, SECRET_BASE + slot);
    // The store that overwrites the secret with a public constant…
    b.store(Mem::base(addr), 0x5au64);
    // …and the younger reload + transmit that can slip ahead of it.
    b.mov_imm(tmp, SECRET_BASE + slot);
    b.load(val, Mem::base(tmp));
    b.and(val, val, 0xff8);
    b.load(tmp, Mem::abs(PUBLIC_BASE + 0x8000).with_index(val, 1));
    b.add(Reg::R11, Reg::R11, 4096);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_are_well_formed() {
        for seed in 0..50 {
            let p = generate(&GenConfig {
                segments: 6,
                gadget_bias: 0.5,
                seed,
            });
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig {
            segments: 4,
            gadget_bias: 0.7,
            seed: 9,
        };
        assert_eq!(generate(&cfg).insts, generate(&cfg).insts);
    }

    #[test]
    fn recorded_generation_matches_legacy_and_records_templates() {
        for seed in 0..20 {
            let cfg = GenConfig {
                segments: 6,
                gadget_bias: 0.7,
                seed,
            };
            let legacy = generate(&cfg);
            let recorded = generate_recorded(&cfg, None, None);
            assert_eq!(
                legacy.insts, recorded.program.insts,
                "seed {seed}: recorded generation drifted from generate()"
            );
            assert!(recorded.templates.len() <= cfg.segments);
            let only = generate_recorded(&cfg, Some(GadgetTemplate::MemOrder), None);
            assert!(only
                .templates
                .iter()
                .all(|t| *t == GadgetTemplate::MemOrder));
        }
    }

    #[test]
    fn weighted_generation_is_deterministic_and_biases_templates() {
        let cfg = GenConfig {
            segments: 8,
            gadget_bias: 1.0,
            seed: 13,
        };
        // All weight on one template: every gadget segment must use it.
        let mut w = [0u64; GadgetTemplate::ALL.len()];
        w[3] = 10; // MemOrder
        let g = generate_recorded(&cfg, None, Some(&w));
        assert!(!g.templates.is_empty());
        assert!(g.templates.iter().all(|t| *t == GadgetTemplate::MemOrder));
        // Deterministic: same weights, same seed, same program.
        let h = generate_recorded(&cfg, None, Some(&w));
        assert_eq!(g.program.insts, h.program.insts);
        assert_eq!(g.templates, h.templates);
    }

    #[test]
    fn generated_programs_terminate() {
        use protean_arch::{ArchState, Emulator, ExitStatus};
        for seed in 0..20 {
            let p = generate(&GenConfig {
                segments: 5,
                gadget_bias: 0.5,
                seed,
            });
            let mut state = ArchState::new();
            init_cold_chain(&mut state.mem);
            let mut emu = Emulator::new(&p, state);
            let (status, _) = emu.run(200_000);
            assert_eq!(status, ExitStatus::Halted, "seed {seed}");
        }
    }
}

/// Spectre-RSB template: `g` overwrites its return address (a stack
/// switch), so the `ret` architecturally continues elsewhere while the
/// RSB predicts the abandoned call site — whose code loads and
/// transmits a secret. The replacement target arrives through a cold
/// pointer chase, giving the transient window time.
fn gadget_rsb(b: &mut ProgramBuilder, rng: &mut Rng) {
    let slot = rng.gen_range(0..SECRET_SIZE / 8) * 8;
    let g = b.label("rsb_g");
    let real_cont = b.label("rsb_cont");
    let val = Reg::R6;
    let tmp = Reg::R13;
    b.call(g);
    // --- abandoned call site: the transient zone -----------------
    b.mov_imm(tmp, SECRET_BASE + slot);
    b.load(val, Mem::base(tmp)); // secret (transient only)
    b.and(val, val, 0xff8);
    b.load(tmp, Mem::abs(PUBLIC_BASE + 0x8000).with_index(val, 1)); // transmit
    b.jmp(real_cont);
    // --- g: stack switch ------------------------------------------
    b.bind(g);
    // The replacement return target arrives late (cold chase).
    b.load(val, Mem::base(Reg::R11));
    b.load(val, Mem::base(val)); // = 16; dependency only
    b.mul(val, val, 0); // = 0, still dependent on the chase
                        // The new return target: a relocated code pointer (survives ProtCC
                        // instrumentation, like a linker relocation).
    b.mov_code_pointer(tmp, real_cont);
    b.add(tmp, tmp, val); // dependent on the slow chase
    b.store(Mem::base(Reg::RSP), tmp);
    b.ret();
    b.bind(real_cont);
    b.add(Reg::R11, Reg::R11, 4096);
}

/// Spectre-v2 template: an indirect jump trained to `hot` receives a
/// slow-arriving (cold-chase-dependent) pointer to `cold` on the final
/// trip; the BTB steers transient execution through `hot`, which
/// dereferences the secret region.
fn gadget_btb(b: &mut ProgramBuilder, rng: &mut Rng) {
    static NEXT_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let uid = NEXT_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let trips = rng.gen_range(12..20u64);
    let slot = rng.gen_range(0..SECRET_SIZE / 8) * 8;
    let (trip, target, val, tmp) = (Reg::R9, Reg::R8, Reg::R6, Reg::R13);
    let hot = b.label(format!("btb_hot_{uid}"));
    let cold = b.label(format!("btb_cold_{uid}"));
    let top = b.label(format!("btb_top_{uid}"));
    let tail = b.label(format!("btb_tail_{uid}"));
    let take_cold = b.label(format!("btb_take_cold_{uid}"));
    let dispatch = b.label(format!("btb_dispatch_{uid}"));
    let inb = b.label(format!("btb_inb_{uid}"));

    b.mov_imm(trip, 0);
    b.bind(top);
    // Delay element: the dispatch target depends on a cold pointer chase.
    b.load(val, Mem::base(Reg::R11));
    b.load(val, Mem::base(val)); // = 16
    b.mul(val, val, 0); // = 0, chase-dependent
    b.cmp(trip, trips);
    b.jcc(Cond::Eq, take_cold);
    b.mov_code_pointer(target, hot);
    b.jmp(dispatch);
    b.bind(take_cold);
    b.mov_code_pointer(target, cold);
    b.bind(dispatch);
    b.add(target, target, val); // +0, but waits on the chase
    b.jmpreg(target); // trained to `hot`; mispredicts on the final trip
                      // --- hot: public work during training; on the final (transient)
                      //     visit, trip == trips selects the secret deref ----------------
    b.bind(hot);
    b.and(tmp, trip, 15);
    b.load(val, Mem::abs(PUBLIC_BASE).with_index(tmp, 8));
    b.cmp(trip, trips);
    b.jcc(Cond::Ult, inb);
    b.mov_imm(tmp, SECRET_BASE + slot);
    b.load(val, Mem::base(tmp)); // transient-only secret load
    b.and(val, val, 0xff8);
    b.load(tmp, Mem::abs(PUBLIC_BASE + 0x8000).with_index(val, 1));
    b.bind(inb);
    b.jmp(tail);
    // --- cold: the architectural final-trip target --------------------
    b.bind(cold);
    b.add(Reg::R12, Reg::R12, 1);
    b.bind(tail);
    b.add(Reg::R11, Reg::R11, 4096);
    b.add(trip, trip, 1);
    b.cmp(trip, trips + 1);
    b.jcc(Cond::Ult, top);
}
