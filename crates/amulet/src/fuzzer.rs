//! The fuzzing campaign driver (paper §VII-B).
//!
//! For each generated program: instrument with a ProtCC pass, find
//! secret-mutation input pairs that are *contract-equivalent* (identical
//! observer-mode traces under SEQ execution), run both inputs on the
//! defended microarchitecture, and flag a **contract violation** when
//! the adversary's observations differ. Candidate violations whose
//! *committed* fingerprints differ are classified as false positives
//! (the §VII-B1e post-processing filter).

use crate::generator::{
    self, GadgetTemplate, GenConfig, PUBLIC_BASE, PUBLIC_SIZE, SECRET_BASE, SECRET_SIZE,
};
use protean_arch::{
    ArchState, Emulator, ExecRecord, ExitStatus, ObserverMode, OracleMode, ThreadedProgram,
};
use protean_cc::{compile_with, public_typing, Pass};
use protean_isa::{DecodedProgram, Program};
use protean_rng::{Rng, SplitMix64};
use protean_sim::{Core, CoreConfig, DefensePolicy, SimExit, SimResult, Trace};

/// Which security contract to test against (paper §II-C, §VII-B1c).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ContractKind {
    /// ARCH-SEQ: sequentially accessed data is public.
    ArchSeq,
    /// CT-SEQ: sequentially transmitted operands are public.
    CtSeq,
    /// CTS-SEQ: CT plus publicly-*typed* register values.
    CtsSeq,
    /// UNPROT-SEQ: CT plus ProtISA-unprotected register values.
    UnprotSeq,
}

impl ContractKind {
    /// Contract name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ContractKind::ArchSeq => "ARCH-SEQ",
            ContractKind::CtSeq => "CT-SEQ",
            ContractKind::CtsSeq => "CTS-SEQ",
            ContractKind::UnprotSeq => "UNPROT-SEQ",
        }
    }

    /// Builds the observer mode for a given (instrumented) binary.
    pub fn observer(self, program: &Program) -> ObserverMode {
        match self {
            ContractKind::ArchSeq => ObserverMode::Arch,
            ContractKind::CtSeq => ObserverMode::Ct,
            ContractKind::CtsSeq => ObserverMode::Cts(public_typing(program)),
            ContractKind::UnprotSeq => ObserverMode::Unprot,
        }
    }
}

/// The adversary model (paper §VII-B1d).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Adversary {
    /// AMuLeT's default: data-cache (and TLB) tag state.
    CacheTlb,
    /// AMuLeT\*'s addition: the cycle at which each committed
    /// instruction reaches each pipeline stage (surfaces SMT-grade
    /// timing channels, e.g. the divider).
    Timing,
}

impl Adversary {
    /// Adversary name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Adversary::CacheTlb => "cache+TLB",
            Adversary::Timing => "timing",
        }
    }

    /// Whether the adversary can distinguish the two runs. Compares the
    /// observations in place — no copy of the cache or timing trace is
    /// ever materialised.
    pub(crate) fn observations_differ(self, a: &SimResult, b: &SimResult) -> bool {
        match self {
            Adversary::CacheTlb => a.cache_obs != b.cache_obs,
            Adversary::Timing => a.timing != b.timing,
        }
    }
}

/// Fuzzing-campaign configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of programs to generate.
    pub programs: usize,
    /// Secret mutations (input pairs) per program.
    pub inputs_per_program: usize,
    /// Generator settings (seed is advanced per program).
    pub gen: GenConfig,
    /// Instrumentation pass applied to every test binary.
    pub pass: Pass,
    /// The contract under test.
    pub contract: ContractKind,
    /// The adversary model.
    pub adversary: Adversary,
    /// Core configuration for the hardware runs.
    pub core: CoreConfig,
    /// Step/instruction budget per run.
    pub max_steps: u64,
    /// Stop the campaign at the first true-positive violation (as each
    /// AMuLeT\* instance does).
    pub stop_at_first: bool,
    /// Restrict gadget segments to one template (targeted validation of
    /// a single speculation primitive); `None` = the full mix.
    pub only_template: Option<GadgetTemplate>,
    /// Worker threads for the per-program fan-out: `None` resolves via
    /// `PROTEAN_JOBS` / available parallelism (see `protean_jobs`).
    /// Reports are byte-identical at any worker count.
    pub workers: Option<usize>,
    /// Which SEQ-oracle backend produces the contract traces: the
    /// threaded-code lowering (default, fast) or the `match`-based
    /// interpreter (the differential reference). Both produce identical
    /// traces and therefore identical reports; [`FuzzConfig::quick`]
    /// resolves the default via `PROTEAN_ORACLE`.
    pub oracle: OracleMode,
    /// Capture rendered pipeline traces for example violations (a traced
    /// re-run per recorded example). Throughput benchmarks switch this
    /// off; every *deterministic* report counter is unaffected either
    /// way.
    pub capture_traces: bool,
}

impl FuzzConfig {
    /// A small default campaign suitable for CI.
    pub fn quick(pass: Pass, contract: ContractKind, adversary: Adversary) -> FuzzConfig {
        FuzzConfig {
            programs: 20,
            inputs_per_program: 3,
            gen: GenConfig::default(),
            pass,
            contract,
            adversary,
            core: CoreConfig::test_tiny(),
            max_steps: 60_000,
            stop_at_first: false,
            only_template: None,
            workers: None,
            oracle: OracleMode::from_env(),
            capture_traces: true,
        }
    }
}

/// One detected contract violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Generator seed of the offending program.
    pub program_seed: u64,
    /// Which input pair triggered it.
    pub input_index: usize,
    /// Whether the post-processing filter classified it as a false
    /// positive (committed fingerprints differ — sequential leakage).
    pub false_positive: bool,
    /// Rendered pipeline trace of the leaking run (text diagram plus the
    /// defense-decision audit log), captured by a deterministic traced
    /// re-run of the mutant input when the example is recorded.
    pub trace: Option<String>,
}

/// Campaign results (one row of the paper's Tab. II).
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Microarchitectural executions compared.
    pub tests: u64,
    /// Input pairs rejected as not contract-equivalent.
    pub pairs_rejected: u64,
    /// True-positive violations.
    pub violations: u64,
    /// Filtered false positives.
    pub false_positives: u64,
    /// Total µops committed across all hardware runs (base and mutant),
    /// for campaign-throughput accounting. Deterministic like every
    /// other counter: traced example re-runs are excluded.
    pub committed_uops: u64,
    /// Hardware runs cut off by the cycle/instruction budget before
    /// halting. A truncated run's adversary observations cover only a
    /// prefix of the execution, so comparing it against a completed (or
    /// differently truncated) run would manufacture bogus candidate
    /// violations — such runs are counted here and never compared.
    pub hw_truncated: u64,
    /// Mutants skipped because the program's *base* hardware run was
    /// truncated: with no comparison partner they can never be tested,
    /// so neither their SEQ traces nor their hardware runs are paid for
    /// and they never touch `pairs_rejected` (which counts genuine
    /// contract-inequivalent pairs only).
    pub no_partner: u64,
    /// Example violations (up to [`Report::MAX_EXAMPLES`]).
    pub examples: Vec<Violation>,
}

impl Report {
    /// Cap on recorded example violations per report.
    pub const MAX_EXAMPLES: usize = 8;
}

/// Runs a fuzzing campaign against `policy_factory`'s defense.
///
/// Programs are fuzzed **in parallel** (one job per generated program,
/// see [`FuzzConfig::workers`] and `protean_jobs`): every per-program
/// seed is derived up front from `cfg.gen.seed`, each job owns its
/// private RNG, and per-program results are merged in program order, so
/// the report is byte-identical at any worker count. Under
/// `stop_at_first`, later programs may be fuzzed speculatively, but the
/// merge discards everything after the first true positive — again
/// matching the serial report exactly.
///
/// # Examples
///
/// ```
/// use protean_amulet::{fuzz, Adversary, ContractKind, FuzzConfig};
/// use protean_cc::Pass;
/// use protean_sim::UnsafePolicy;
///
/// let mut cfg = FuzzConfig::quick(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb);
/// cfg.programs = 2;
/// cfg.stop_at_first = true;
/// let report = fuzz(&cfg, &|| Box::new(UnsafePolicy));
/// assert!(report.tests > 0);
/// ```
pub fn fuzz(
    cfg: &FuzzConfig,
    policy_factory: &(dyn Fn() -> Box<dyn DefensePolicy> + Sync),
) -> Report {
    let workers = cfg.workers.unwrap_or_else(protean_jobs::worker_count);
    let partials = protean_jobs::map_indexed_with(workers, cfg.programs, |p| {
        fuzz_one_program(cfg, p, policy_factory)
    });

    // Order-preserving merge: identical to the serial accumulation.
    let mut report = Report::default();
    for partial in partials {
        let stopped = partial.stopped;
        merge_outcome(&mut report, partial);
        if stopped {
            break; // stop_at_first: discard speculative later programs
        }
    }
    report
}

/// Folds one program's outcome into the campaign accumulator, in
/// program order (shared by [`fuzz`] and the campaign engine's chunked
/// merge so both accumulate byte-identically).
pub(crate) fn merge_outcome(report: &mut Report, partial: ProgramOutcome) {
    report.tests += partial.report.tests;
    report.pairs_rejected += partial.report.pairs_rejected;
    report.violations += partial.report.violations;
    report.false_positives += partial.report.false_positives;
    report.committed_uops += partial.report.committed_uops;
    report.hw_truncated += partial.report.hw_truncated;
    report.no_partner += partial.report.no_partner;
    for v in partial.report.examples {
        if report.examples.len() < Report::MAX_EXAMPLES {
            report.examples.push(v);
        }
    }
}

/// Derives the `p`-th program's seed from the campaign base seed.
///
/// The base seed is scrambled through SplitMix64's finalizer *before*
/// the program index is mixed in, so campaigns with adjacent base seeds
/// draw disjoint program streams — `wrapping_add(p)` alone made seed 1
/// fuzz seed 0's programs shifted by one.
pub(crate) fn derive_program_seed(base: u64, p: usize) -> u64 {
    let mut sm = SplitMix64::new(base);
    let stream = sm.next_u64();
    let mut sm = SplitMix64::new(stream ^ p as u64);
    sm.next_u64()
}

/// One program's share of a campaign.
pub(crate) struct ProgramOutcome {
    pub(crate) report: Report,
    /// `stop_at_first` found a true positive in this program: the merge
    /// must not consume any later program's results.
    pub(crate) stopped: bool,
}

/// Fuzzes the `p`-th program of the campaign. Pure function of
/// `(cfg, p)`: the per-program seed and RNG are derived here, never
/// shared across jobs.
pub(crate) fn fuzz_one_program(
    cfg: &FuzzConfig,
    p: usize,
    policy_factory: &(dyn Fn() -> Box<dyn DefensePolicy> + Sync),
) -> ProgramOutcome {
    let mut report = Report::default();
    let mut stopped = false;
    let seed = derive_program_seed(cfg.gen.seed, p);
    let gen_cfg = GenConfig {
        seed,
        ..cfg.gen.clone()
    };
    let raw = match cfg.only_template {
        Some(t) => generator::generate_with_template(&gen_cfg, t),
        None => generator::generate(&gen_cfg),
    };
    let program = compile_with(&raw, cfg.pass).program;
    let observer = cfg.contract.observer(&program);
    let mut rng = Rng::seed_from_u64(seed ^ 0x5eed);

    // Per-program arenas: one `Core` serves the base run and every
    // mutant run via `Core::reset` (byte-identical to constructing a
    // fresh core each time), one record buffer backs every SEQ trace,
    // and one oracle lowering — the decode-once µop table for the
    // interpreter, or the threaded-code closures for the fast mode —
    // backs every SEQ emulation.
    let mut records: Vec<ExecRecord> = Vec::new();
    let oracle = SeqOracle::new(&program, cfg.oracle);

    // The base input.
    let base = make_input(&mut rng);
    let Some(base_trace) = seq_trace(
        &program,
        &oracle,
        &base,
        &observer,
        cfg.max_steps,
        &mut records,
    ) else {
        // Non-terminating or bad control flow: skip program. The
        // emulator's `StepLimit` lands here too — a program the SEQ
        // oracle cannot finish within the architectural step budget is
        // never compared against (possibly truncated) hardware runs.
        return ProgramOutcome { report, stopped };
    };
    let mut core = Core::new(&program, cfg.core.clone(), policy_factory(), &base);
    core.record_traces(true);
    let base_hw = core.run_mut(cfg.max_steps, cfg.max_steps * 60);
    report.committed_uops += base_hw.stats.committed;
    // The SEQ oracle halted within `max_steps`, but a defense can stall
    // the hardware into the cycle budget (`max_steps * 60`): a truncated
    // run observed only a prefix and must not be compared.
    if base_hw.exit != SimExit::Halted {
        // No mutant will ever have a comparison partner: skip the whole
        // mutant loop before paying for a single SEQ trace. (Running the
        // traces anyway used to bump `pairs_rejected` for a program that
        // could never be compared, inflating the rejection stats.)
        report.hw_truncated += 1;
        report.no_partner += cfg.inputs_per_program as u64;
        return ProgramOutcome { report, stopped };
    }

    for i in 0..cfg.inputs_per_program {
        // Mutate secrets only.
        let mut mutant = base.clone();
        randomize_secrets(&mut mutant, &mut rng);
        let Some(mutant_trace) = seq_trace(
            &program,
            &oracle,
            &mutant,
            &observer,
            cfg.max_steps,
            &mut records,
        ) else {
            continue;
        };
        if mutant_trace != base_trace {
            // Not contract-equivalent: the difference is permitted.
            report.pairs_rejected += 1;
            continue;
        }
        core.reset(&program, policy_factory(), &mutant);
        core.record_traces(true);
        let mutant_hw = core.run_mut(cfg.max_steps, cfg.max_steps * 60);
        report.committed_uops += mutant_hw.stats.committed;
        if mutant_hw.exit != SimExit::Halted {
            report.hw_truncated += 1;
            continue;
        }
        report.tests += 2;
        if cfg.adversary.observations_differ(&base_hw, &mutant_hw) {
            // Candidate violation; apply the false-positive filter.
            let fp = base_hw.committed_idxs != mutant_hw.committed_idxs;
            if fp {
                report.false_positives += 1;
            } else {
                report.violations += 1;
            }
            if report.examples.len() < Report::MAX_EXAMPLES {
                report.examples.push(Violation {
                    program_seed: seed,
                    input_index: i,
                    false_positive: fp,
                    trace: if cfg.capture_traces {
                        traced_rerun(&program, &base, &mutant, cfg, policy_factory)
                    } else {
                        None
                    },
                });
            }
            if !fp && cfg.stop_at_first {
                stopped = true;
                break;
            }
        }
    }
    ProgramOutcome { report, stopped }
}

/// The per-program SEQ-oracle lowering: either the decode-once µop table
/// (interpreter) or the threaded-code closures (fast mode). Built once
/// per program, reused for the base trace and every mutant trace.
pub(crate) enum SeqOracle {
    Interp(DecodedProgram),
    Threaded(ThreadedProgram),
}

impl SeqOracle {
    pub(crate) fn new(program: &Program, mode: OracleMode) -> SeqOracle {
        match mode {
            OracleMode::Interp => SeqOracle::Interp(DecodedProgram::new(program)),
            OracleMode::Threaded => SeqOracle::Threaded(ThreadedProgram::new(program)),
        }
    }

    pub(crate) fn emulator<'a>(&'a self, program: &'a Program, input: &ArchState) -> Emulator<'a> {
        match self {
            SeqOracle::Interp(decoded) => Emulator::with_decoded(program, decoded, input.clone()),
            SeqOracle::Threaded(threaded) => {
                Emulator::with_threaded(program, threaded, input.clone())
            }
        }
    }
}

/// Builds a base input: cold chain, public data, registers, secrets.
pub(crate) fn make_input(rng: &mut Rng) -> ArchState {
    let mut state = ArchState::new();
    generator::init_cold_chain(&mut state.mem);
    for i in 0..PUBLIC_SIZE / 8 {
        // Small public values (they index the probe region safely).
        state
            .mem
            .write(PUBLIC_BASE + i * 8, 8, rng.gen_range(0..64));
    }
    randomize_secrets(&mut state, rng);
    for i in 0..6 {
        state.set_reg(protean_isa::Reg::gpr(i), rng.gen_range(0..1024));
    }
    state
}

pub(crate) fn randomize_secrets(state: &mut ArchState, rng: &mut Rng) {
    for i in 0..SECRET_SIZE / 8 {
        state.mem.write(SECRET_BASE + i * 8, 8, rng.gen::<u64>());
    }
}

/// Sequential (contract) trace; `None` if the program misbehaves (bad
/// control flow, or `StepLimit` — an execution the oracle cannot finish
/// is never admitted into a comparison). `records` is a caller-owned
/// scratch buffer (cleared and refilled by the emulator) so repeated
/// traces reuse one allocation.
pub(crate) fn seq_trace(
    program: &Program,
    oracle: &SeqOracle,
    input: &ArchState,
    observer: &ObserverMode,
    max_steps: u64,
    records: &mut Vec<ExecRecord>,
) -> Option<Vec<protean_arch::Obs>> {
    let mut emu = oracle.emulator(program, input);
    let status = emu.run_into(max_steps, records);
    (status == ExitStatus::Halted).then(|| observer.trace(records))
}

/// Re-runs one input with pipeline tracing enabled and returns the raw
/// [`Trace`]. The simulator is deterministic, so the traced run replays
/// the original execution exactly; tracing is kept out of the fuzzing
/// hot loop so the millions of non-violating runs pay nothing for it.
pub(crate) fn traced_replay(
    program: &Program,
    input: &ArchState,
    cfg: &FuzzConfig,
    policy: Box<dyn DefensePolicy>,
) -> Option<Trace> {
    let mut core_cfg = cfg.core.clone();
    core_cfg.trace = true;
    let core = Core::new(program, core_cfg, policy, input);
    let result = core.run(cfg.max_steps, cfg.max_steps * 60);
    result.trace
}

/// Re-runs the violating *pair* with pipeline tracing enabled and
/// renders both counterexample traces side by side. A violation is a
/// difference between the base and mutant executions, so a one-sided
/// rendering hides half the evidence; both halves carry the pipeline
/// timeline and the defense audit log.
pub(crate) fn traced_rerun(
    program: &Program,
    base: &ArchState,
    mutant: &ArchState,
    cfg: &FuzzConfig,
    policy_factory: &(dyn Fn() -> Box<dyn DefensePolicy> + Sync),
) -> Option<String> {
    let render = |trace: &Trace| {
        format!(
            "{}\n{}",
            trace.render_pipeline(48, 120),
            trace.render_audit(16)
        )
    };
    let base_trace = traced_replay(program, base, cfg, policy_factory())?;
    let mutant_trace = traced_replay(program, mutant, cfg, policy_factory())?;
    Some(format!(
        "=== base run ===\n{}\n=== mutant run ===\n{}",
        render(&base_trace),
        render(&mutant_trace)
    ))
}
