//! Observer modes and security-contract traces (paper §II-C, §VII-B1).
//!
//! An *observer mode* defines what architectural information a victim
//! exposes at each SEQ execution step. Two executions are
//! *contract-equivalent* if their traces under the mode are equal; a
//! microarchitecture upholds the contract if contract-equivalent
//! executions are indistinguishable to the adversary.
//!
//! Exposure is strictly increasing up the class hierarchy:
//!
//! * [`ObserverMode::Ct`] — PCs, *individual* address registers,
//!   effective addresses, branch conditions/targets, and division-operand
//!   leakage (the transmitter set of §II-B1 with AMuLeT\*'s enhancements);
//! * [`ObserverMode::Cts`] — CT plus values written to *publicly-typed*
//!   registers;
//! * [`ObserverMode::Unprot`] — CT plus values written to
//!   ProtISA-*unprotected* registers;
//! * [`ObserverMode::Arch`] — CT plus all loaded/stored data (non-secret-
//!   accessing code assumes everything it touches is public).

use crate::ExecRecord;
use protean_isa::{div_leakage, Reg, RegSet};

/// One element of a contract trace.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Obs {
    /// The program counter of a committed instruction.
    Pc(u64),
    /// The value of one address register of a memory access.
    AddrReg(Reg, u64),
    /// The effective address of a memory access.
    Addr(u64),
    /// A conditional branch's resolved direction.
    BranchCond(bool),
    /// An indirect branch's resolved target.
    BranchTarget(u64),
    /// The partial function of division operands the divider leaks.
    DivLeak(u64),
    /// A loaded or stored data value (ARCH mode only).
    MemValue(u64),
    /// A value written to an exposed (public-typed / unprotected)
    /// register (CTS / UNPROT modes).
    RegValue(Reg, u64),
}

/// Which publicly-typed registers each instruction *defines*, for the CTS
/// observer mode. Produced by the ProtCC-CTS typing analysis.
#[derive(Clone, Debug, Default)]
pub struct PublicTyping {
    /// `per_inst[i]` = the publicly-typed output registers of instruction
    /// `i`.
    pub per_inst: Vec<RegSet>,
}

impl PublicTyping {
    /// A typing that exposes nothing (every output secret-typed) — the
    /// most conservative CTS observer.
    pub fn all_secret(len: usize) -> PublicTyping {
        PublicTyping {
            per_inst: vec![RegSet::new(); len],
        }
    }

    /// The publicly-typed outputs of instruction `idx`.
    pub fn public_outputs(&self, idx: u32) -> RegSet {
        self.per_inst.get(idx as usize).copied().unwrap_or_default()
    }
}

/// An observer mode (see module docs).
#[derive(Clone, Debug)]
pub enum ObserverMode {
    /// Exposes CT observations plus all accessed memory data.
    Arch,
    /// Exposes transmitter operands only.
    Ct,
    /// Exposes CT plus publicly-typed register writes.
    Cts(PublicTyping),
    /// Exposes CT plus ProtISA-unprotected register writes.
    Unprot,
}

impl ObserverMode {
    /// Short name for reports (`ARCH`, `CT`, `CTS`, `UNPROT`).
    pub fn name(&self) -> &'static str {
        match self {
            ObserverMode::Arch => "ARCH",
            ObserverMode::Ct => "CT",
            ObserverMode::Cts(_) => "CTS",
            ObserverMode::Unprot => "UNPROT",
        }
    }

    /// Projects one execution record onto trace elements, appending to
    /// `out`.
    pub fn observe(&self, record: &ExecRecord, out: &mut Vec<Obs>) {
        // CT base: PC + transmitter operands.
        out.push(Obs::Pc(record.pc));
        for (reg, value) in &record.addr_regs {
            out.push(Obs::AddrReg(*reg, *value));
        }
        if let Some(mem) = record.mem {
            out.push(Obs::Addr(mem.addr));
        }
        if let Some(branch) = record.branch {
            if record.inst.is_cond_branch() {
                out.push(Obs::BranchCond(branch.taken));
            }
            if record.inst.is_indirect_branch() {
                // Expose the raw target PC (even if out of range).
                if let Some(mem) = record.mem {
                    // `ret`: the target is the loaded value.
                    out.push(Obs::BranchTarget(mem.value));
                } else if let Some(t) = branch.target {
                    out.push(Obs::BranchTarget(t as u64));
                } else {
                    out.push(Obs::BranchTarget(u64::MAX));
                }
            }
        }
        if let Some((a, b, _)) = record.div {
            out.push(Obs::DivLeak(div_leakage(a, b)));
        }
        // Mode-specific extensions.
        match self {
            ObserverMode::Ct => {}
            ObserverMode::Arch => {
                if let Some(mem) = record.mem {
                    out.push(Obs::MemValue(mem.value));
                }
            }
            ObserverMode::Cts(typing) => {
                let public = typing.public_outputs(record.idx);
                for (reg, value, _) in &record.reg_writes {
                    if public.contains(*reg) {
                        out.push(Obs::RegValue(*reg, *value));
                    }
                }
            }
            ObserverMode::Unprot => {
                for (reg, value, protected) in &record.reg_writes {
                    if !protected {
                        out.push(Obs::RegValue(*reg, *value));
                    }
                }
            }
        }
    }

    /// Projects a full execution onto a contract trace.
    pub fn trace(&self, records: &[ExecRecord]) -> Vec<Obs> {
        let mut out = Vec::with_capacity(records.len() * 2);
        for r in records {
            self.observe(r, &mut out);
        }
        out
    }
}

/// The committed-execution fingerprint used by AMuLeT\*'s false-positive
/// filter (paper §VII-B1e): the sequence of committed PCs and accessed
/// addresses. If two executions differ here, any adversary-visible
/// difference is *sequential* (architectural) leakage, not transient —
/// a false positive for the contract under test.
pub fn commit_fingerprint(records: &[ExecRecord]) -> Vec<u64> {
    let mut out = Vec::with_capacity(records.len());
    for r in records {
        out.push(r.pc);
        if let Some(mem) = r.mem {
            out.push(mem.addr);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchState, Emulator};
    use protean_isa::assemble;

    fn records_for(src: &str, r0: u64) -> Vec<ExecRecord> {
        let prog = assemble(src).unwrap();
        let mut state = ArchState::new();
        state.set_reg(Reg::R0, r0);
        let mut emu = Emulator::new(&prog, state);
        emu.run(1000).1
    }

    /// A secret-dependent branch: CT traces differ, so the executions are
    /// NOT CT-equivalent (the code is not constant-time).
    #[test]
    fn ct_sees_branch_condition() {
        let src = "cmp r0, 5\njlt skip\nnop\nskip:\nhalt\n";
        let t1 = ObserverMode::Ct.trace(&records_for(src, 1));
        let t2 = ObserverMode::Ct.trace(&records_for(src, 9));
        assert_ne!(t1, t2);
    }

    /// Straight-line data flow with no transmitters: CT-equivalent
    /// regardless of the secret, but ARCH sees the difference once the
    /// secret is stored.
    #[test]
    fn arch_exposes_data_ct_does_not() {
        let src = "add r1, r0, 1\nstore [rsp + 8], r1\nhalt\n";
        let a = records_for(src, 10);
        let b = records_for(src, 20);
        assert_eq!(ObserverMode::Ct.trace(&a), ObserverMode::Ct.trace(&b));
        assert_ne!(ObserverMode::Arch.trace(&a), ObserverMode::Arch.trace(&b));
    }

    /// Secret-dependent addresses differ under CT.
    #[test]
    fn ct_sees_addresses_and_addr_regs() {
        let src = "load r1, [r0 + 0x100]\nhalt\n";
        let a = ObserverMode::Ct.trace(&records_for(src, 0));
        let b = ObserverMode::Ct.trace(&records_for(src, 8));
        assert_ne!(a, b);
        assert!(a.iter().any(|o| matches!(o, Obs::AddrReg(Reg::R0, 0))));
        assert!(a.iter().any(|o| matches!(o, Obs::Addr(0x100))));
    }

    /// Division leaks a *partial* function: equal-latency operands are
    /// indistinguishable, different-latency ones are not.
    #[test]
    fn div_partial_leakage() {
        let src = "mov r2, 3\ndiv r1, r0, r2\nhalt\n";
        let small1 = ObserverMode::Ct.trace(&records_for(src, 9));
        let small2 = ObserverMode::Ct.trace(&records_for(src, 10));
        let large = ObserverMode::Ct.trace(&records_for(src, u64::MAX));
        assert_eq!(small1, small2);
        assert_ne!(small1, large);
    }

    /// UNPROT exposes unprotected register writes but not protected ones.
    #[test]
    fn unprot_respects_prot_prefix() {
        let src = "add r1, r0, 0\nhalt\n"; // unprefixed: r1 exposed
        let a = ObserverMode::Unprot.trace(&records_for(src, 1));
        let b = ObserverMode::Unprot.trace(&records_for(src, 2));
        assert_ne!(a, b);

        let src = "prot add r1, r0, 0\nhalt\n"; // protected: hidden
        let a = ObserverMode::Unprot.trace(&records_for(src, 1));
        let b = ObserverMode::Unprot.trace(&records_for(src, 2));
        assert_eq!(a, b);
    }

    /// CTS exposes values written to publicly-typed outputs only.
    #[test]
    fn cts_uses_typing() {
        let src = "add r1, r0, 0\nhalt\n";
        let recs_a = records_for(src, 1);
        let recs_b = records_for(src, 2);
        // All-secret typing: indistinguishable.
        let secret = ObserverMode::Cts(PublicTyping::all_secret(2));
        assert_eq!(secret.trace(&recs_a), secret.trace(&recs_b));
        // r1 publicly typed at instruction 0: distinguishable.
        let mut typing = PublicTyping::all_secret(2);
        typing.per_inst[0].insert(Reg::R1);
        let public = ObserverMode::Cts(typing);
        assert_ne!(public.trace(&recs_a), public.trace(&recs_b));
    }

    #[test]
    fn fingerprint_tracks_pcs_and_addrs() {
        let src = "cmp r0, 5\njlt skip\nnop\nskip:\nhalt\n";
        let a = commit_fingerprint(&records_for(src, 1));
        let b = commit_fingerprint(&records_for(src, 9));
        assert_ne!(a, b); // different paths -> different fingerprints

        let src2 = "add r1, r0, 1\nhalt\n";
        let c = commit_fingerprint(&records_for(src2, 1));
        let d = commit_fingerprint(&records_for(src2, 9));
        assert_eq!(c, d); // same path, no memory -> same fingerprint
    }
}
