//! Sparse byte-addressable memory.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse, zero-initialized, byte-addressable 64-bit memory.
///
/// Pages are allocated lazily; reads of unmapped memory return zero
/// (matching the fuzzing harness's architectural-fault suppression — no
/// access ever faults).
///
/// # Examples
///
/// ```
/// use protean_arch::Memory;
///
/// let mut mem = Memory::new();
/// mem.write(0x1000, 8, 0xdead_beef);
/// assert_eq!(mem.read(0x1000, 8), 0xdead_beef);
/// assert_eq!(mem.read(0x1004, 4), 0); // upper half
/// assert_eq!(mem.read(0x9999, 8), 0); // unmapped reads as zero
/// ```
#[derive(Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `size` bytes (1–8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not in `1..=8`.
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        assert!((1..=8).contains(&size), "bad access size {size}");
        let mut value = 0u64;
        for i in 0..size {
            value |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        value
    }

    /// Writes the low `size` bytes (1–8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not in `1..=8`.
    pub fn write(&mut self, addr: u64, size: u64, value: u64) {
        assert!((1..=8).contains(&size), "bad access size {size}");
        for i in 0..size {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u64)))
            .collect()
    }

    /// Number of mapped pages (for diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("mapped_pages", &self.pages.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrip() {
        let mut m = Memory::new();
        m.write(0x100, 8, 0x0807060504030201);
        assert_eq!(m.read_u8(0x100), 0x01);
        assert_eq!(m.read_u8(0x107), 0x08);
        assert_eq!(m.read(0x102, 2), 0x0403);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1ffc; // last 4 bytes of a page
        m.write(addr, 8, 0x1122334455667788);
        assert_eq!(m.read(addr, 8), 0x1122334455667788);
        assert!(m.mapped_pages() >= 2);
    }

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
    }

    #[test]
    fn partial_write_preserves_neighbors() {
        let mut m = Memory::new();
        m.write(0x10, 8, u64::MAX);
        m.write(0x12, 2, 0);
        assert_eq!(m.read(0x10, 8), 0xffff_ffff_0000_ffff);
    }

    #[test]
    #[should_panic(expected = "bad access size")]
    fn oversized_access_panics() {
        Memory::new().read(0, 9);
    }

    #[test]
    fn bytes_interface() {
        let mut m = Memory::new();
        m.write_bytes(0x200, &[1, 2, 3]);
        assert_eq!(m.read_bytes(0x200, 4), vec![1, 2, 3, 0]);
    }
}
