//! Sparse byte-addressable memory with copy-on-write pages.
//!
//! Pages are reference-counted (`Arc<[u8; 4096]>`), so cloning a
//! [`Memory`] — which the fuzzer does once per (program, input) run —
//! costs one refcount bump per page instead of a deep copy, and the
//! clones diverge lazily: a write copies only the 4 KiB page it lands
//! on (hand-rolled `Arc` make-mut, std only). The most recently
//! written page is additionally kept *checked out* of the page table
//! as a uniquely-owned handle, so streams of writes to one page (the
//! common case for stack and secret-buffer initialisation) pay zero
//! hash lookups and never touch the refcount.

use std::collections::HashMap;
use std::sync::Arc;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

type Page = [u8; PAGE_SIZE];

/// A sparse, zero-initialized, byte-addressable 64-bit memory.
///
/// Pages are allocated lazily; reads of unmapped memory return zero
/// (matching the fuzzing harness's architectural-fault suppression — no
/// access ever faults). Clones share pages copy-on-write.
///
/// # Examples
///
/// ```
/// use protean_arch::Memory;
///
/// let mut mem = Memory::new();
/// mem.write(0x1000, 8, 0xdead_beef);
/// assert_eq!(mem.read(0x1000, 8), 0xdead_beef);
/// assert_eq!(mem.read(0x1004, 4), 0); // upper half
/// assert_eq!(mem.read(0x9999, 8), 0); // unmapped reads as zero
///
/// let fork = mem.clone(); // O(pages), not O(bytes)
/// let mut mem2 = fork.clone();
/// mem2.write(0x1000, 1, 0xff); // copies only the touched page
/// assert_eq!(mem.read(0x1000, 8), 0xdead_beef);
/// ```
#[derive(Default)]
pub struct Memory {
    pages: HashMap<u64, Arc<Page>>,
    /// The page currently checked out for writing, keyed by page
    /// number. Invariant: the key is absent from `pages` and the `Arc`
    /// is uniquely owned (strong count 1, no weak refs), so writes hit
    /// it in place with no hash lookup and no copy.
    open: Option<(u64, Arc<Page>)>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// The page holding `key`, if mapped.
    #[inline]
    fn page(&self, key: u64) -> Option<&Page> {
        if let Some((k, p)) = &self.open {
            if *k == key {
                return Some(p);
            }
        }
        self.pages.get(&key).map(|p| &**p)
    }

    /// Checks the page holding `key` out into the `open` slot (copying
    /// it first if clones still share it) and returns it mutably.
    fn open_page(&mut self, key: u64) -> &mut Page {
        let hit = matches!(&self.open, Some((k, _)) if *k == key);
        if !hit {
            if let Some((k, p)) = self.open.take() {
                self.pages.insert(k, p);
            }
            let arc = match self.pages.remove(&key) {
                Some(mut arc) => {
                    // Hand-rolled `Arc::make_mut`: a uniquely-owned page
                    // is written in place; a page still shared with
                    // other Memory clones is copied first.
                    if Arc::get_mut(&mut arc).is_none() {
                        arc = Arc::new(*arc);
                    }
                    arc
                }
                None => Arc::new([0; PAGE_SIZE]),
            };
            self.open = Some((key, arc));
        }
        let (_, arc) = self.open.as_mut().expect("open slot just filled");
        Arc::get_mut(arc).expect("open page is uniquely owned")
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.page(addr >> PAGE_SHIFT) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.open_page(addr >> PAGE_SHIFT)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `size` bytes (1–8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not in `1..=8`.
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        assert!((1..=8).contains(&size), "bad access size {size}");
        let offset = (addr & PAGE_MASK) as usize;
        if offset + size as usize <= PAGE_SIZE {
            // Fast path: the access stays inside one page — a single
            // page-table lookup for all `size` bytes.
            let Some(page) = self.page(addr >> PAGE_SHIFT) else {
                return 0;
            };
            let mut value = 0u64;
            for (i, b) in page[offset..offset + size as usize].iter().enumerate() {
                value |= (*b as u64) << (8 * i);
            }
            value
        } else {
            let mut value = 0u64;
            for i in 0..size {
                value |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
            }
            value
        }
    }

    /// Writes the low `size` bytes (1–8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not in `1..=8`.
    pub fn write(&mut self, addr: u64, size: u64, value: u64) {
        assert!((1..=8).contains(&size), "bad access size {size}");
        let offset = (addr & PAGE_MASK) as usize;
        if offset + size as usize <= PAGE_SIZE {
            // Fast path: single page, single lookup.
            let page = self.open_page(addr >> PAGE_SHIFT);
            for (i, b) in page[offset..offset + size as usize].iter_mut().enumerate() {
                *b = (value >> (8 * i)) as u8;
            }
        } else {
            for i in 0..size {
                self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
            }
        }
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let offset = (addr & PAGE_MASK) as usize;
            let n = rest.len().min(PAGE_SIZE - offset);
            let page = self.open_page(addr >> PAGE_SHIFT);
            page[offset..offset + n].copy_from_slice(&rest[..n]);
            addr = addr.wrapping_add(n as u64);
            rest = &rest[n..];
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u64)))
            .collect()
    }

    /// Number of mapped pages (for diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len() + usize::from(self.open.is_some())
    }
}

impl Clone for Memory {
    /// O(pages) — shares every page with `self` copy-on-write. The
    /// clone's copy of the open page is freshly owned so `self` keeps
    /// its uniquely-owned write handle.
    fn clone(&self) -> Memory {
        let mut pages = self.pages.clone();
        if let Some((k, p)) = &self.open {
            pages.insert(*k, Arc::new(**p));
        }
        Memory { pages, open: None }
    }

    /// Reuses the destination's page-table allocation (the arena reset
    /// path: `core.mem.clone_from(&input.mem)` once per fuzz run).
    fn clone_from(&mut self, source: &Memory) {
        self.open = None;
        self.pages.clone_from(&source.pages);
        if let Some((k, p)) = &source.open {
            self.pages.insert(*k, Arc::new(**p));
        }
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("mapped_pages", &self.mapped_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_roundtrip() {
        let mut m = Memory::new();
        m.write(0x100, 8, 0x0807060504030201);
        assert_eq!(m.read_u8(0x100), 0x01);
        assert_eq!(m.read_u8(0x107), 0x08);
        assert_eq!(m.read(0x102, 2), 0x0403);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = 0x1ffc; // last 4 bytes of a page
        m.write(addr, 8, 0x1122334455667788);
        assert_eq!(m.read(addr, 8), 0x1122334455667788);
        assert!(m.mapped_pages() >= 2);
    }

    #[test]
    fn page_boundary_straddle_regression() {
        // Every split of an 8-byte access across the page boundary, for
        // both the write and the read path (the non-crossing fast path
        // must not be taken for any of these).
        for first in 1..8u64 {
            let addr = 0x2000 - first;
            let mut m = Memory::new();
            m.write(addr, 8, 0xa1b2_c3d4_e5f6_0718);
            assert_eq!(m.read(addr, 8), 0xa1b2_c3d4_e5f6_0718, "split {first}");
            // Byte-wise view agrees with the multi-byte view.
            for i in 0..8 {
                assert_eq!(
                    m.read_u8(addr + i),
                    (0xa1b2_c3d4_e5f6_0718u64 >> (8 * i)) as u8
                );
            }
            assert_eq!(m.mapped_pages(), 2);
        }
    }

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
    }

    #[test]
    fn partial_write_preserves_neighbors() {
        let mut m = Memory::new();
        m.write(0x10, 8, u64::MAX);
        m.write(0x12, 2, 0);
        assert_eq!(m.read(0x10, 8), 0xffff_ffff_0000_ffff);
    }

    #[test]
    #[should_panic(expected = "bad access size")]
    fn oversized_access_panics() {
        Memory::new().read(0, 9);
    }

    #[test]
    fn bytes_interface() {
        let mut m = Memory::new();
        m.write_bytes(0x200, &[1, 2, 3]);
        assert_eq!(m.read_bytes(0x200, 4), vec![1, 2, 3, 0]);
    }

    #[test]
    fn bytes_interface_across_pages() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).cycle().take(PAGE_SIZE + 64).collect();
        m.write_bytes(0xff0, &data);
        assert_eq!(m.read_bytes(0xff0, data.len()), data);
    }

    #[test]
    fn clones_diverge_copy_on_write() {
        let mut a = Memory::new();
        a.write(0x1000, 8, 111);
        a.write(0x5000, 8, 222);
        let mut b = a.clone();
        b.write(0x1000, 8, 999);
        a.write(0x5000, 8, 333);
        assert_eq!(a.read(0x1000, 8), 111);
        assert_eq!(a.read(0x5000, 8), 333);
        assert_eq!(b.read(0x1000, 8), 999);
        assert_eq!(b.read(0x5000, 8), 222);
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        let mut src = Memory::new();
        src.write(0x1000, 8, 42);
        src.write(0x8000, 4, 7);
        let mut dst = Memory::new();
        dst.write(0x9000, 8, u64::MAX); // stale state must vanish
        dst.clone_from(&src);
        assert_eq!(dst.read(0x1000, 8), 42);
        assert_eq!(dst.read(0x8000, 4), 7);
        assert_eq!(dst.read(0x9000, 8), 0);
        assert_eq!(dst.mapped_pages(), src.mapped_pages());
    }

    #[test]
    fn open_page_survives_interleaved_clone() {
        let mut a = Memory::new();
        a.write(0x1000, 8, 5); // 0x1 becomes the open page
        let b = a.clone();
        a.write(0x1008, 8, 6); // must not leak into b
        assert_eq!(b.read(0x1008, 8), 0);
        assert_eq!(a.read(0x1008, 8), 6);
        assert_eq!(a.read(0x1000, 8), 5);
        assert_eq!(b.read(0x1000, 8), 5);
    }
}
