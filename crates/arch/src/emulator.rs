//! The sequential (architectural) emulator — the SEQ execution mode of
//! the hardware-software security contracts (paper §II-C).

use crate::threaded::{Ctrl, ThreadedProgram};
use crate::{Memory, ProtState};
use protean_isa::{
    alu_eval, div_eval, DecodedProgram, DivOutcome, InlineVec, Inst, Op, Operand, Program, Reg,
    Width,
};

/// Architectural machine state: registers plus memory.
#[derive(Clone, Debug, Default)]
pub struct ArchState {
    /// Register file, indexed by [`Reg::index`].
    pub regs: [u64; Reg::COUNT],
    /// Byte-addressable memory.
    pub mem: Memory,
}

impl ArchState {
    /// Creates a zeroed state.
    pub fn new() -> ArchState {
        ArchState::default()
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// Resolves an operand to a value.
    #[inline]
    pub fn operand(&self, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v,
        }
    }
}

/// A memory access performed by one instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// The value read (loads) or written (stores).
    pub value: u64,
    /// `true` for stores (including `call`).
    pub is_store: bool,
}

/// Control-flow outcome of a branch instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchInfo {
    /// Whether a conditional branch was taken (`true` for unconditional).
    pub taken: bool,
    /// The instruction index control transferred to (`None` if the
    /// program halted due to an out-of-range indirect target).
    pub target: Option<u32>,
    /// Whether the branch target is computed from a register/memory value
    /// (indirect).
    pub indirect: bool,
}

/// Everything observable about one architecturally executed instruction.
///
/// Observer modes (paper §II-C, §VII-B1) project these records onto
/// contract traces; the AMuLeT\* false-positive filter compares their PCs
/// and addresses.
#[derive(Clone, PartialEq, Debug)]
pub struct ExecRecord {
    /// Instruction index.
    pub idx: u32,
    /// Program counter.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Memory access, if any.
    pub mem: Option<MemAccess>,
    /// Individual address-register values (AMuLeT\* exposes these
    /// separately, not just their sum). At most base + index.
    pub addr_regs: InlineVec<(Reg, u64), 2>,
    /// Branch outcome, if any.
    pub branch: Option<BranchInfo>,
    /// Division outcome and inputs, if any.
    pub div: Option<(u64, u64, DivOutcome)>,
    /// Registers written, their final values, and whether each is
    /// architecturally **protected** after this instruction (per the
    /// ProtISA ProtSet semantics). At most the explicit destination
    /// plus the implicit `RFLAGS` write.
    pub reg_writes: InlineVec<(Reg, u64, bool), 2>,
}

/// Why the emulator stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExitStatus {
    /// A `halt` instruction retired.
    Halted,
    /// The step limit was reached.
    StepLimit,
    /// An indirect branch targeted an address outside the code segment.
    BadControlFlow,
}

/// The sequential emulator.
///
/// Executes a [`Program`] in order, producing an [`ExecRecord`] per
/// instruction and maintaining the architectural ProtISA ProtSet.
///
/// # Examples
///
/// ```
/// use protean_arch::{ArchState, Emulator};
/// use protean_isa::{assemble, Reg};
///
/// let prog = assemble("mov r0, 2\nmov r1, 3\nadd r2, r0, r1\nhalt\n").unwrap();
/// let mut emu = Emulator::new(&prog, ArchState::new());
/// let (status, records) = emu.run(100);
/// assert_eq!(status, protean_arch::ExitStatus::Halted);
/// assert_eq!(emu.state.reg(Reg::R2), 5);
/// assert_eq!(records.len(), 4);
/// ```
pub struct Emulator<'a> {
    program: &'a Program,
    /// Pre-decoded µop table shared with the simulator's decode-once
    /// front end ([`Emulator::with_decoded`]): instruction fetch becomes
    /// one table read instead of an instruction load plus a PC multiply.
    decoded: Option<&'a DecodedProgram>,
    /// Threaded-code lowering ([`Emulator::with_threaded`]): each step
    /// calls a pre-bound closure instead of decoding `inst.op`.
    threaded: Option<&'a ThreadedProgram>,
    /// The live architectural state.
    pub state: ArchState,
    /// The live architectural ProtSet.
    pub prot: ProtState,
    /// Next instruction index (`None` once halted).
    pub pc_idx: Option<u32>,
    steps: u64,
}

impl<'a> Emulator<'a> {
    /// Creates an emulator positioned at instruction 0.
    pub fn new(program: &'a Program, state: ArchState) -> Emulator<'a> {
        Emulator {
            program,
            decoded: None,
            threaded: None,
            state,
            prot: ProtState::new(),
            pc_idx: if program.is_empty() { None } else { Some(0) },
            steps: 0,
        }
    }

    /// Like [`Emulator::new`], but fetching `inst`/`pc` through a
    /// pre-decoded table built once per program (the same table the
    /// simulator's front end uses). `decoded` must have been built from
    /// `program`; execution semantics are identical either way.
    pub fn with_decoded(
        program: &'a Program,
        decoded: &'a DecodedProgram,
        state: ArchState,
    ) -> Emulator<'a> {
        debug_assert_eq!(decoded.len(), program.len());
        let mut emu = Emulator::new(program, state);
        emu.decoded = Some(decoded);
        emu
    }

    /// Like [`Emulator::new`], but executing through a threaded-code
    /// lowering built once per program ([`ThreadedProgram::new`]): each
    /// step is an indirect call to a pre-bound closure instead of a
    /// `match inst.op` decode. `threaded` must have been built from
    /// `program`; execution (records, final state, ProtSet) is
    /// bit-identical to the interpreter — the property test
    /// `threaded_oracle_equiv` enforces this.
    pub fn with_threaded(
        program: &'a Program,
        threaded: &'a ThreadedProgram,
        state: ArchState,
    ) -> Emulator<'a> {
        debug_assert_eq!(threaded.len(), program.len());
        let mut emu = Emulator::new(program, state);
        emu.threaded = Some(threaded);
        emu
    }

    /// Number of instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The program being executed.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// Executes one instruction, or returns `None` if halted.
    pub fn step(&mut self) -> Option<ExecRecord> {
        let idx = self.pc_idx?;
        if let Some(threaded) = self.threaded {
            return Some(self.step_threaded(threaded, idx));
        }
        let (inst, pc) = match self.decoded {
            Some(d) => {
                let di = d.get(idx);
                (di.inst, di.pc)
            }
            None => (self.program.insts[idx as usize], self.program.pc_of(idx)),
        };
        self.steps += 1;

        let mut record = ExecRecord {
            idx,
            pc,
            inst,
            mem: None,
            addr_regs: InlineVec::new(),
            branch: None,
            div: None,
            reg_writes: InlineVec::new(),
        };

        let mut next = Some(idx + 1);
        // Data prot bit for memory writes (set by the store arms below).
        let mut store_data_prot = false;

        match inst.op {
            Op::MovImm { dst, imm, width } => {
                let old = self.state.reg(dst);
                self.write_reg(&mut record, dst, width.apply(old, imm), width, inst.prot);
            }
            Op::Mov { dst, src, width } => {
                let old = self.state.reg(dst);
                let v = width.apply(old, self.state.reg(src));
                self.write_reg(&mut record, dst, v, width, inst.prot);
            }
            Op::CMov { cond, dst, src } => {
                let flags = protean_isa::Flags::from_bits(self.state.reg(Reg::RFLAGS));
                let v = if cond.eval(flags) {
                    self.state.reg(src)
                } else {
                    self.state.reg(dst)
                };
                self.write_reg(&mut record, dst, v, Width::W64, inst.prot);
            }
            Op::Alu {
                op,
                dst,
                src1,
                src2,
                width,
            } => {
                let a = self.state.reg(src1);
                let b = self.state.operand(src2);
                let old = self.state.reg(dst);
                let (v, flags) = alu_eval(op, a, b, width, old);
                self.write_reg(&mut record, dst, v, width, inst.prot);
                self.write_reg(
                    &mut record,
                    Reg::RFLAGS,
                    flags.to_bits(),
                    Width::W64,
                    inst.prot,
                );
            }
            Op::Cmp { src1, src2 } => {
                let a = self.state.reg(src1);
                let b = self.state.operand(src2);
                let flags = protean_isa::Flags::from_sub(a, b);
                self.write_reg(
                    &mut record,
                    Reg::RFLAGS,
                    flags.to_bits(),
                    Width::W64,
                    inst.prot,
                );
            }
            Op::Div { dst, src1, src2 } => {
                let a = self.state.reg(src1);
                let b = self.state.reg(src2);
                let outcome = div_eval(a, b);
                record.div = Some((a, b, outcome));
                self.write_reg(&mut record, dst, outcome.quotient, Width::W64, inst.prot);
            }
            Op::Load { dst, addr, size } => {
                for r in addr.regs().iter() {
                    record.addr_regs.push((r, self.state.reg(r)));
                }
                let ea = addr.effective_address(|r| self.state.reg(r));
                let v = self.state.mem.read(ea, size.bytes());
                record.mem = Some(MemAccess {
                    addr: ea,
                    size: size.bytes(),
                    value: v,
                    is_store: false,
                });
                // Loads zero-extend: a full-register write.
                self.write_reg(&mut record, dst, v, Width::W64, inst.prot);
                // Unprefixed loads unprotect the bytes they read (§IV-B4).
                if !inst.prot {
                    self.prot.unprotect_mem(ea, size.bytes());
                }
            }
            Op::Store { src, addr, size } => {
                for r in addr.regs().iter() {
                    record.addr_regs.push((r, self.state.reg(r)));
                }
                let ea = addr.effective_address(|r| self.state.reg(r));
                let v = self.state.operand(src);
                self.state.mem.write(ea, size.bytes(), v);
                record.mem = Some(MemAccess {
                    addr: ea,
                    size: size.bytes(),
                    value: v,
                    is_store: true,
                });
                // Written bytes inherit the data operand's protection
                // (§IV-B2); immediates are public.
                store_data_prot = match src {
                    Operand::Reg(r) => self.prot.reg_protected(r),
                    Operand::Imm(_) => false,
                };
                self.prot.set_mem(ea, size.bytes(), store_data_prot);
            }
            Op::Jmp { target } => {
                record.branch = Some(BranchInfo {
                    taken: true,
                    target: Some(target),
                    indirect: false,
                });
                next = Some(target);
            }
            Op::Jcc { cond, target } => {
                let flags = protean_isa::Flags::from_bits(self.state.reg(Reg::RFLAGS));
                let taken = cond.eval(flags);
                let t = if taken { target } else { idx + 1 };
                record.branch = Some(BranchInfo {
                    taken,
                    target: Some(t),
                    indirect: false,
                });
                next = Some(t);
            }
            Op::JmpReg { src } => {
                let target_pc = self.state.reg(src);
                let target = self.program.index_of_pc(target_pc);
                record.branch = Some(BranchInfo {
                    taken: true,
                    target,
                    indirect: true,
                });
                next = target;
                if target.is_none() {
                    self.pc_idx = None;
                    self.finish_prot(&inst, &record, store_data_prot);
                    return Some(record);
                }
            }
            Op::Call { target } => {
                let rsp = self.state.reg(Reg::RSP).wrapping_sub(8);
                let ret_pc = self.program.pc_of(idx + 1);
                record.addr_regs.push((Reg::RSP, self.state.reg(Reg::RSP)));
                self.state.mem.write(rsp, 8, ret_pc);
                record.mem = Some(MemAccess {
                    addr: rsp,
                    size: 8,
                    value: ret_pc,
                    is_store: true,
                });
                // The return address is a constant: public.
                self.prot.set_mem(rsp, 8, false);
                self.write_reg(&mut record, Reg::RSP, rsp, Width::W64, inst.prot);
                record.branch = Some(BranchInfo {
                    taken: true,
                    target: Some(target),
                    indirect: false,
                });
                next = Some(target);
            }
            Op::Ret => {
                let rsp = self.state.reg(Reg::RSP);
                record.addr_regs.push((Reg::RSP, rsp));
                let target_pc = self.state.mem.read(rsp, 8);
                record.mem = Some(MemAccess {
                    addr: rsp,
                    size: 8,
                    value: target_pc,
                    is_store: false,
                });
                if !inst.prot {
                    self.prot.unprotect_mem(rsp, 8);
                }
                self.write_reg(
                    &mut record,
                    Reg::RSP,
                    rsp.wrapping_add(8),
                    Width::W64,
                    inst.prot,
                );
                let target = self.program.index_of_pc(target_pc);
                record.branch = Some(BranchInfo {
                    taken: true,
                    target,
                    indirect: true,
                });
                next = target;
            }
            Op::Nop => {}
            Op::Halt => {
                next = None;
            }
        }

        self.pc_idx = next;
        Some(record)
    }

    /// One step through the threaded-code lowering: the driver fetches
    /// the pre-bound [`crate::ThreadedOp`], calls it, and resolves any
    /// computed (indirect) target against the code segment — the only
    /// part of a step that needs the [`Program`].
    fn step_threaded(&mut self, threaded: &ThreadedProgram, idx: u32) -> ExecRecord {
        let op = threaded.get(idx);
        self.steps += 1;
        let mut record = ExecRecord {
            idx,
            pc: op.pc,
            inst: op.inst,
            mem: None,
            addr_regs: InlineVec::new(),
            branch: None,
            div: None,
            reg_writes: InlineVec::new(),
        };
        match op.exec(&mut self.state, &mut self.prot, &mut record) {
            Ctrl::Next => self.pc_idx = Some(idx + 1),
            Ctrl::Jump(target) => self.pc_idx = Some(target),
            Ctrl::JumpPc(target_pc) => {
                let target = self.program.index_of_pc(target_pc);
                record.branch = Some(BranchInfo {
                    taken: true,
                    target,
                    indirect: true,
                });
                self.pc_idx = target;
            }
            Ctrl::Halt => self.pc_idx = None,
        }
        record
    }

    /// Runs until halt, bad control flow, or `max_steps` instructions.
    ///
    /// Returns the exit status and all execution records.
    pub fn run(&mut self, max_steps: u64) -> (ExitStatus, Vec<ExecRecord>) {
        let mut records = Vec::new();
        let status = self.run_into(max_steps, &mut records);
        (status, records)
    }

    /// Like [`Emulator::run`], but fills a caller-owned record buffer
    /// (cleared first), so loops that trace many runs — the fuzzer's
    /// sequential contract traces — reuse one allocation instead of
    /// regrowing a fresh `Vec` per run.
    pub fn run_into(&mut self, max_steps: u64, records: &mut Vec<ExecRecord>) -> ExitStatus {
        records.clear();
        loop {
            if self.pc_idx.is_none() {
                let halted_on_halt = records
                    .last()
                    .map(|r: &ExecRecord| matches!(r.inst.op, Op::Halt))
                    .unwrap_or(false);
                return if halted_on_halt {
                    ExitStatus::Halted
                } else {
                    ExitStatus::BadControlFlow
                };
            }
            if self.steps >= max_steps {
                return ExitStatus::StepLimit;
            }
            match self.step() {
                Some(r) => records.push(r),
                None => unreachable!("pc_idx checked above"),
            }
        }
    }

    /// Writes a register, updates the ProtSet per the ProtISA rules, and
    /// records the write with its post-instruction protection.
    fn write_reg(
        &mut self,
        record: &mut ExecRecord,
        reg: Reg,
        value: u64,
        width: Width,
        prot: bool,
    ) {
        apply_reg_write(
            &mut self.state,
            &mut self.prot,
            record,
            reg,
            value,
            width,
            prot,
        );
    }

    fn finish_prot(&mut self, _inst: &Inst, _record: &ExecRecord, _store_prot: bool) {
        // ProtSet updates are applied inline; this hook exists for the
        // early-return paths and currently has nothing left to do.
    }
}

/// The one register-write path shared by the interpreter and the
/// threaded-code lowering: architectural write, ProtSet update per the
/// ProtISA rules, and the record entry with the post-instruction
/// protection bit. Keeping this a single function makes the prot
/// plumbing of the two backends identical by construction.
#[inline]
pub(crate) fn apply_reg_write(
    state: &mut ArchState,
    prot: &mut ProtState,
    record: &mut ExecRecord,
    reg: Reg,
    value: u64,
    width: Width,
    prot_bit: bool,
) {
    state.set_reg(reg, value);
    prot.write_reg(reg, width, prot_bit);
    record
        .reg_writes
        .push((reg, value, prot.reg_protected(reg)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_isa::assemble;

    fn run(src: &str) -> (ExitStatus, Vec<ExecRecord>, ArchState) {
        let prog = assemble(src).unwrap();
        let mut emu = Emulator::new(&prog, ArchState::new());
        let (status, records) = emu.run(10_000);
        (status, records, emu.state)
    }

    #[test]
    fn loop_counts() {
        let (status, records, state) =
            run("mov r0, 0\nloop:\nadd r0, r0, 1\ncmp r0, 5\njlt loop\nhalt\n");
        assert_eq!(status, ExitStatus::Halted);
        assert_eq!(state.reg(Reg::R0), 5);
        // 1 mov + 5*(add,cmp,jlt) + halt
        assert_eq!(records.len(), 1 + 15 + 1);
    }

    #[test]
    fn memory_and_records() {
        let (_, records, state) =
            run("mov r0, 0x1000\nmov r1, 42\nstore [r0 + 8], r1\nload r2, [r0 + 8]\nhalt\n");
        assert_eq!(state.reg(Reg::R2), 42);
        let store = &records[2];
        let mem = store.mem.unwrap();
        assert!(mem.is_store);
        assert_eq!(mem.addr, 0x1008);
        assert_eq!(mem.value, 42);
        assert_eq!(store.addr_regs, vec![(Reg::R0, 0x1000)]);
        let load = &records[3];
        assert!(!load.mem.unwrap().is_store);
    }

    #[test]
    fn call_ret_roundtrip() {
        let (status, _, state) = run(r#"
              mov rsp, 0x8000
              mov r0, 1
              call fn
              add r0, r0, 10
              halt
            fn:
              add r0, r0, 100
              ret
            "#);
        assert_eq!(status, ExitStatus::Halted);
        assert_eq!(state.reg(Reg::R0), 111);
        assert_eq!(state.reg(Reg::RSP), 0x8000);
    }

    #[test]
    fn indirect_jump() {
        let prog = assemble("mov r0, 0\nmov r1, 0\njmpreg r1\nhalt\n").unwrap();
        // Jump to pc of instruction 3 (halt).
        let mut state = ArchState::new();
        state.set_reg(Reg::R1, prog.pc_of(3));
        // But r1 is overwritten by `mov r1, 0`... use a fresh program:
        let prog = assemble("jmpreg r1\nnop\nhalt\n").unwrap();
        let mut state2 = ArchState::new();
        state2.set_reg(Reg::R1, prog.pc_of(2));
        let mut emu = Emulator::new(&prog, state2);
        let (status, records) = emu.run(10);
        assert_eq!(status, ExitStatus::Halted);
        assert_eq!(records.len(), 2); // jmpreg + halt
        let _ = state;
    }

    #[test]
    fn bad_indirect_target_stops() {
        let (status, _, _) = run("mov r1, 0x12345\njmpreg r1\nhalt\n");
        assert_eq!(status, ExitStatus::BadControlFlow);
    }

    #[test]
    fn div_records_outcome() {
        let (_, records, state) = run("mov r1, 100\nmov r2, 7\ndiv r0, r1, r2\nhalt\n");
        assert_eq!(state.reg(Reg::R0), 14);
        let (a, b, o) = records[2].div.unwrap();
        assert_eq!((a, b), (100, 7));
        assert!(!o.faulted);
    }

    #[test]
    fn div_by_zero_suppressed() {
        let (status, records, state) = run("mov r1, 9\ndiv r0, r1, r2\nhalt\n");
        assert_eq!(status, ExitStatus::Halted);
        assert_eq!(state.reg(Reg::R0), u64::MAX);
        assert!(records[1].div.unwrap().2.faulted);
    }

    #[test]
    fn step_limit() {
        let (status, _, _) = run("loop:\njmp loop\nhalt\n");
        assert_eq!(status, ExitStatus::StepLimit);
    }

    #[test]
    fn cmov_semantics() {
        let (_, _, state) =
            run("mov r0, 1\nmov r1, 2\nmov r2, 0xaa\ncmp r0, r1\ncmov.lt r3, r2\nhalt\n");
        assert_eq!(state.reg(Reg::R3), 0xaa);
        let (_, _, state) = run(
            "mov r0, 9\nmov r1, 2\nmov r2, 0xaa\nmov r3, 0xbb\ncmp r0, r1\ncmov.lt r3, r2\nhalt\n",
        );
        assert_eq!(state.reg(Reg::R3), 0xbb);
    }

    #[test]
    fn prot_tracking_basics() {
        let prog =
            assemble("prot mov r0, 5\nmov r1, 6\nstore [rsp], r0\nstore [rsp+8], r1\nhalt\n")
                .unwrap();
        let mut emu = Emulator::new(&prog, ArchState::new());
        emu.state.set_reg(Reg::RSP, 0x7000);
        let (_, records) = emu.run(100);
        // r0 protected, r1 not.
        assert!(records[0].reg_writes[0].2);
        assert!(!records[1].reg_writes[0].2);
        // Stored bytes inherit protection of the data operand.
        assert!(emu.prot.mem_protected(0x7000, 8));
        assert!(!emu.prot.mem_protected(0x7008, 8));
    }

    #[test]
    fn unprefixed_load_unprotects_memory() {
        let prog = assemble("load r0, [r1 + 0x100]\nprot load r2, [r1 + 0x200]\nhalt\n").unwrap();
        let mut emu = Emulator::new(&prog, ArchState::new());
        // All memory starts protected.
        assert!(emu.prot.mem_protected(0x100, 8));
        let _ = emu.run(10);
        assert!(!emu.prot.mem_protected(0x100, 8)); // unprefixed load unprotected it
        assert!(emu.prot.mem_protected(0x200, 8)); // prot load left it protected
        assert!(!emu.prot.reg_protected(Reg::R0));
        assert!(emu.prot.reg_protected(Reg::R2));
    }
}
