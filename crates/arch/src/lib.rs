//! # protean-arch
//!
//! The *architectural* half of the hardware-software security contracts
//! from *"Protean: A Programmable Spectre Defense"* (HPCA 2026, §II-C):
//!
//! * [`Emulator`] — a sequential (SEQ execution mode) emulator producing
//!   one [`ExecRecord`] per committed instruction;
//! * [`ProtState`] — the precise, architectural ProtISA ProtSet (the
//!   reference model against which the hardware's conservative tagging is
//!   validated);
//! * [`ObserverMode`] — the ARCH / CT / CTS / UNPROT observer modes,
//!   projecting executions onto contract traces ([`Obs`] sequences);
//! * [`commit_fingerprint`] — the committed-PC/address fingerprint used
//!   by the AMuLeT\* false-positive filter (§VII-B1e).
//!
//! # Example
//!
//! Two runs of constant-time code with different secrets produce equal CT
//! traces — the definition of being CT-contract-equivalent:
//!
//! ```
//! use protean_arch::{ArchState, Emulator, ObserverMode};
//! use protean_isa::{assemble, Reg};
//!
//! let prog = assemble("xor r1, r0, r2\nstore [rsp + 8], r1\nhalt\n").unwrap();
//! let trace = |secret: u64| {
//!     let mut state = ArchState::new();
//!     state.set_reg(Reg::R0, secret);
//!     let mut emu = Emulator::new(&prog, state);
//!     let (_, records) = emu.run(100);
//!     ObserverMode::Ct.trace(&records)
//! };
//! assert_eq!(trace(1), trace(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod emulator;
mod mem;
mod observer;
mod prot;
mod threaded;

pub use emulator::{ArchState, BranchInfo, Emulator, ExecRecord, ExitStatus, MemAccess};
pub use mem::Memory;
pub use observer::{commit_fingerprint, Obs, ObserverMode, PublicTyping};
pub use prot::ProtState;
pub use threaded::{Ctrl, OracleMode, ThreadedOp, ThreadedProgram};
