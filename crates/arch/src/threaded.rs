//! Threaded-code lowering of the sequential emulator.
//!
//! [`ThreadedProgram::new`] lowers every static instruction to a
//! pre-bound closure over the architectural state at program-build time:
//! operand registers, immediates, widths, branch targets, and the
//! call-return PC are all resolved once, so the per-step hot path is an
//! indirect call instead of the interpreter's `match inst.op` decode.
//! Spectre fuzzing campaigns re-execute the same few dozen static
//! instructions tens of thousands of times per program, which is exactly
//! the shape threaded code rewards.
//!
//! The lowering is *not* a second implementation of the ISA: every thunk
//! calls the same shared semantic kernels ([`protean_isa::alu_eval`],
//! [`protean_isa::div_eval`]) and the same register-write/ProtSet helper
//! as the interpreter, and produces bit-identical [`ExecRecord`]s. The
//! interpreter stays as the differential-testing oracle
//! ([`OracleMode::Interp`], `PROTEAN_ORACLE=interp`); the equivalence is
//! enforced by a property test over random fuzzer programs.

use crate::emulator::{apply_reg_write, ArchState, ExecRecord, MemAccess};
use crate::{BranchInfo, ProtState};
use protean_isa::{alu_eval, div_eval, Flags, Inst, Op, Operand, Program, Reg, Width};

/// Control-flow outcome of one lowered instruction.
///
/// Indirect branches (`jmpreg` / `ret`) return the raw target PC; the
/// driver resolves it against the code segment (and records the branch),
/// because the PC→index mapping lives in the [`Program`], which the
/// `'static` thunks must not borrow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ctrl {
    /// Fall through to the next instruction.
    Next,
    /// Transfer to a direct (build-time known or flag-selected) index.
    Jump(u32),
    /// Transfer to a computed PC (indirect branch); the driver resolves
    /// and records it.
    JumpPc(u64),
    /// A `halt` retired.
    Halt,
}

/// A pre-bound instruction body: fills in the [`ExecRecord`] (whose
/// `idx`/`pc`/`inst` the driver has already set) and returns where
/// control goes.
type Thunk = Box<dyn Fn(&mut ArchState, &mut ProtState, &mut ExecRecord) -> Ctrl + Send + Sync>;

/// One lowered static instruction.
pub struct ThreadedOp {
    /// The source instruction (recorded per execution).
    pub inst: Inst,
    /// Its program counter.
    pub pc: u64,
    thunk: Thunk,
}

impl ThreadedOp {
    /// Executes the pre-bound instruction body.
    #[inline]
    pub fn exec(
        &self,
        state: &mut ArchState,
        prot: &mut ProtState,
        record: &mut ExecRecord,
    ) -> Ctrl {
        (self.thunk)(state, prot, record)
    }
}

/// A program lowered to threaded code, one [`ThreadedOp`] per static
/// instruction.
///
/// # Examples
///
/// ```
/// use protean_arch::{ArchState, Emulator, ThreadedProgram};
/// use protean_isa::{assemble, Reg};
///
/// let prog = assemble("mov r0, 2\nmov r1, 3\nadd r2, r0, r1\nhalt\n").unwrap();
/// let threaded = ThreadedProgram::new(&prog);
/// let mut emu = Emulator::with_threaded(&prog, &threaded, ArchState::new());
/// let (status, records) = emu.run(100);
/// assert_eq!(status, protean_arch::ExitStatus::Halted);
/// assert_eq!(emu.state.reg(Reg::R2), 5);
/// assert_eq!(records.len(), 4);
/// ```
pub struct ThreadedProgram {
    ops: Vec<ThreadedOp>,
}

impl ThreadedProgram {
    /// Lowers `program` to threaded code.
    pub fn new(program: &Program) -> ThreadedProgram {
        let ops = program
            .insts
            .iter()
            .enumerate()
            .map(|(idx, &inst)| {
                let idx = idx as u32;
                ThreadedOp {
                    inst,
                    pc: program.pc_of(idx),
                    thunk: lower(program, idx, inst),
                }
            })
            .collect();
        ThreadedProgram { ops }
    }

    /// Number of lowered instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The lowered instruction at `idx`.
    #[inline]
    pub fn get(&self, idx: u32) -> &ThreadedOp {
        &self.ops[idx as usize]
    }
}

/// Which oracle backend the architectural (SEQ) pass runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OracleMode {
    /// The `match inst.op` interpreter — the differential-testing
    /// reference.
    Interp,
    /// The threaded-code lowering (default: fast campaigns).
    #[default]
    Threaded,
}

impl OracleMode {
    /// Reads `PROTEAN_ORACLE` (`interp` | `threaded`); defaults to
    /// [`OracleMode::Threaded`].
    pub fn from_env() -> OracleMode {
        match std::env::var("PROTEAN_ORACLE").as_deref() {
            Ok("interp") => OracleMode::Interp,
            _ => OracleMode::Threaded,
        }
    }
}

/// Lowers one instruction to its pre-bound body. Each arm mirrors the
/// corresponding interpreter arm in `Emulator::step` exactly — same
/// semantic kernels, same record fields, same ProtSet updates.
fn lower(program: &Program, idx: u32, inst: Inst) -> Thunk {
    let prot_prefix = inst.prot;
    match inst.op {
        Op::MovImm { dst, imm, width } => Box::new(move |state, prot, record| {
            let old = state.reg(dst);
            apply_reg_write(
                state,
                prot,
                record,
                dst,
                width.apply(old, imm),
                width,
                prot_prefix,
            );
            Ctrl::Next
        }),
        Op::Mov { dst, src, width } => Box::new(move |state, prot, record| {
            let old = state.reg(dst);
            let v = width.apply(old, state.reg(src));
            apply_reg_write(state, prot, record, dst, v, width, prot_prefix);
            Ctrl::Next
        }),
        Op::CMov { cond, dst, src } => Box::new(move |state, prot, record| {
            let flags = Flags::from_bits(state.reg(Reg::RFLAGS));
            let v = if cond.eval(flags) {
                state.reg(src)
            } else {
                state.reg(dst)
            };
            apply_reg_write(state, prot, record, dst, v, Width::W64, prot_prefix);
            Ctrl::Next
        }),
        Op::Alu {
            op,
            dst,
            src1,
            src2,
            width,
        } => Box::new(move |state, prot, record| {
            let a = state.reg(src1);
            let b = state.operand(src2);
            let old = state.reg(dst);
            let (v, flags) = alu_eval(op, a, b, width, old);
            apply_reg_write(state, prot, record, dst, v, width, prot_prefix);
            apply_reg_write(
                state,
                prot,
                record,
                Reg::RFLAGS,
                flags.to_bits(),
                Width::W64,
                prot_prefix,
            );
            Ctrl::Next
        }),
        Op::Cmp { src1, src2 } => Box::new(move |state, prot, record| {
            let a = state.reg(src1);
            let b = state.operand(src2);
            let flags = Flags::from_sub(a, b);
            apply_reg_write(
                state,
                prot,
                record,
                Reg::RFLAGS,
                flags.to_bits(),
                Width::W64,
                prot_prefix,
            );
            Ctrl::Next
        }),
        Op::Div { dst, src1, src2 } => Box::new(move |state, prot, record| {
            let a = state.reg(src1);
            let b = state.reg(src2);
            let outcome = div_eval(a, b);
            record.div = Some((a, b, outcome));
            apply_reg_write(
                state,
                prot,
                record,
                dst,
                outcome.quotient,
                Width::W64,
                prot_prefix,
            );
            Ctrl::Next
        }),
        Op::Load { dst, addr, size } => Box::new(move |state, prot, record| {
            for r in addr.regs().iter() {
                record.addr_regs.push((r, state.reg(r)));
            }
            let ea = addr.effective_address(|r| state.reg(r));
            let v = state.mem.read(ea, size.bytes());
            record.mem = Some(MemAccess {
                addr: ea,
                size: size.bytes(),
                value: v,
                is_store: false,
            });
            apply_reg_write(state, prot, record, dst, v, Width::W64, prot_prefix);
            if !prot_prefix {
                prot.unprotect_mem(ea, size.bytes());
            }
            Ctrl::Next
        }),
        Op::Store { src, addr, size } => Box::new(move |state, prot, record| {
            for r in addr.regs().iter() {
                record.addr_regs.push((r, state.reg(r)));
            }
            let ea = addr.effective_address(|r| state.reg(r));
            let v = state.operand(src);
            state.mem.write(ea, size.bytes(), v);
            record.mem = Some(MemAccess {
                addr: ea,
                size: size.bytes(),
                value: v,
                is_store: true,
            });
            let data_prot = match src {
                Operand::Reg(r) => prot.reg_protected(r),
                Operand::Imm(_) => false,
            };
            prot.set_mem(ea, size.bytes(), data_prot);
            Ctrl::Next
        }),
        Op::Jmp { target } => Box::new(move |_state, _prot, record| {
            record.branch = Some(BranchInfo {
                taken: true,
                target: Some(target),
                indirect: false,
            });
            Ctrl::Jump(target)
        }),
        Op::Jcc { cond, target } => {
            let fallthrough = idx + 1;
            Box::new(move |state, _prot, record| {
                let flags = Flags::from_bits(state.reg(Reg::RFLAGS));
                let taken = cond.eval(flags);
                let t = if taken { target } else { fallthrough };
                record.branch = Some(BranchInfo {
                    taken,
                    target: Some(t),
                    indirect: false,
                });
                Ctrl::Jump(t)
            })
        }
        Op::JmpReg { src } => Box::new(move |state, _prot, _record| Ctrl::JumpPc(state.reg(src))),
        Op::Call { target } => {
            // The return address is a build-time constant (`pc_of` is
            // pure arithmetic, so this is safe even for a trailing call).
            let ret_pc = program.pc_of(idx + 1);
            Box::new(move |state, prot, record| {
                let rsp = state.reg(Reg::RSP).wrapping_sub(8);
                record.addr_regs.push((Reg::RSP, state.reg(Reg::RSP)));
                state.mem.write(rsp, 8, ret_pc);
                record.mem = Some(MemAccess {
                    addr: rsp,
                    size: 8,
                    value: ret_pc,
                    is_store: true,
                });
                prot.set_mem(rsp, 8, false);
                apply_reg_write(state, prot, record, Reg::RSP, rsp, Width::W64, prot_prefix);
                record.branch = Some(BranchInfo {
                    taken: true,
                    target: Some(target),
                    indirect: false,
                });
                Ctrl::Jump(target)
            })
        }
        Op::Ret => Box::new(move |state, prot, record| {
            let rsp = state.reg(Reg::RSP);
            record.addr_regs.push((Reg::RSP, rsp));
            let target_pc = state.mem.read(rsp, 8);
            record.mem = Some(MemAccess {
                addr: rsp,
                size: 8,
                value: target_pc,
                is_store: false,
            });
            if !prot_prefix {
                prot.unprotect_mem(rsp, 8);
            }
            apply_reg_write(
                state,
                prot,
                record,
                Reg::RSP,
                rsp.wrapping_add(8),
                Width::W64,
                prot_prefix,
            );
            Ctrl::JumpPc(target_pc)
        }),
        Op::Nop => Box::new(|_state, _prot, _record| Ctrl::Next),
        Op::Halt => Box::new(|_state, _prot, _record| Ctrl::Halt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Emulator;
    use protean_isa::assemble;

    /// Runs `src` through both backends and asserts identical exit
    /// status, records, final registers, and ProtSet digest.
    fn assert_equivalent(src: &str) {
        let prog = assemble(src).unwrap();
        let threaded = ThreadedProgram::new(&prog);
        let mut interp = Emulator::new(&prog, ArchState::new());
        let (st_i, rec_i) = interp.run(500);
        let mut fast = Emulator::with_threaded(&prog, &threaded, ArchState::new());
        let (st_t, rec_t) = fast.run(500);
        assert_eq!(st_i, st_t, "exit status");
        assert_eq!(rec_i, rec_t, "records");
        assert_eq!(interp.state.regs, fast.state.regs, "final registers");
        assert_eq!(
            interp.prot.unprotected_byte_count(),
            fast.prot.unprotected_byte_count(),
            "prot digest"
        );
    }

    #[test]
    fn straight_line_and_flags() {
        assert_equivalent(
            "mov r0, 7\nadd.w r1, r0, 3\ncmp r1, 10\ncmov.eq r2, r1\nmul r3, r1, r1\nhalt\n",
        );
    }

    #[test]
    fn loops_and_memory() {
        assert_equivalent(
            "mov rsp, 0x8000\nmov r0, 0\nloop:\nstore [rsp + r0*8], r0\nadd r0, r0, 1\ncmp r0, 8\njlt loop\nload r1, [rsp + 16]\nhalt\n",
        );
    }

    #[test]
    fn call_ret_and_prot() {
        assert_equivalent(
            "mov rsp, 0x8000\nprot mov r0, 5\ncall fn\nstore [rsp - 32], r0\nhalt\nfn:\nadd r0, r0, 1\nret\n",
        );
    }

    #[test]
    fn bad_indirect_target() {
        assert_equivalent("mov r1, 0x999999\njmpreg r1\nhalt\n");
    }

    #[test]
    fn good_indirect_target_via_register() {
        // jmpreg to the halt's pc (code base + 4 * idx).
        let prog = assemble("jmpreg r1\nnop\nhalt\n").unwrap();
        let threaded = ThreadedProgram::new(&prog);
        let mut st = ArchState::new();
        st.set_reg(Reg::R1, prog.pc_of(2));
        let mut interp = Emulator::new(&prog, st.clone());
        let (si, ri) = interp.run(10);
        let mut fast = Emulator::with_threaded(&prog, &threaded, st);
        let (sf, rf) = fast.run(10);
        assert_eq!(si, sf);
        assert_eq!(ri, rf);
        assert_eq!(ri.len(), 2);
    }

    #[test]
    fn step_limit_matches() {
        assert_equivalent("loop:\njmp loop\nhalt\n");
    }

    #[test]
    fn div_and_fault() {
        assert_equivalent("mov r1, 100\nmov r2, 7\ndiv r0, r1, r2\ndiv r3, r1, r4\nhalt\n");
    }

    #[test]
    fn oracle_mode_env_default() {
        // Don't mutate the environment (tests run in parallel): just pin
        // the default.
        assert_eq!(OracleMode::default(), OracleMode::Threaded);
    }
}
