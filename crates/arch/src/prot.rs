//! The architectural ProtISA protection set (ProtSet).
//!
//! This is the *reference* (precise) model of the ProtSet semantics from
//! paper §IV: registers and memory bytes start protected; `PROT`-prefixed
//! instructions protect their outputs; unprefixed instructions unprotect
//! their outputs and any memory bytes they read; stores propagate the
//! protection of their data operand to the written bytes.
//!
//! Hardware (the protection-tagged LSQ/L1D of §IV-C) tracks a conservative
//! *superset*: it forgets unprotection on cache eviction. Tests in
//! `protean-core` check that hardware-tracked protection is always a
//! superset of this reference.

use protean_isa::{Reg, RegSet, Width};
use std::collections::BTreeSet;

/// The architectural ProtSet: per-register protection bits plus a sparse
/// set of *unprotected* memory bytes (memory defaults to protected).
///
/// # Examples
///
/// ```
/// use protean_arch::ProtState;
/// use protean_isa::{Reg, Width};
///
/// let mut p = ProtState::new();
/// assert!(p.reg_protected(Reg::R0)); // everything starts protected
/// p.write_reg(Reg::R0, Width::W64, false); // unprefixed full write
/// assert!(!p.reg_protected(Reg::R0));
/// p.write_reg(Reg::R0, Width::W8, true); // PROT-prefixed partial write
/// assert!(p.reg_protected(Reg::R0)); // protects the full register
/// ```
#[derive(Clone, Debug)]
pub struct ProtState {
    reg_prot: [bool; Reg::COUNT],
    /// Memory bytes known to be unprotected. Everything else is
    /// protected.
    unprot_bytes: BTreeSet<u64>,
}

impl ProtState {
    /// Creates the initial ProtSet: all registers and memory protected.
    pub fn new() -> ProtState {
        ProtState {
            reg_prot: [true; Reg::COUNT],
            unprot_bytes: BTreeSet::new(),
        }
    }

    /// Whether a register is currently protected.
    pub fn reg_protected(&self, reg: Reg) -> bool {
        self.reg_prot[reg.index()]
    }

    /// The set of currently protected registers.
    pub fn protected_regs(&self) -> RegSet {
        Reg::all().filter(|r| self.reg_protected(*r)).collect()
    }

    /// Applies a register write's protection update (paper §IV-B1):
    /// `PROT`-prefixed writes protect the full register; unprefixed
    /// full-width writes unprotect it; unprefixed *partial* writes leave
    /// protection unchanged.
    pub fn write_reg(&mut self, reg: Reg, width: Width, prot: bool) {
        if prot {
            self.reg_prot[reg.index()] = true;
        } else if !width.is_partial() {
            self.reg_prot[reg.index()] = false;
        }
    }

    /// Forces a register's protection bit (used by tests and by the
    /// hardware model's commit path).
    pub fn set_reg(&mut self, reg: Reg, prot: bool) {
        self.reg_prot[reg.index()] = prot;
    }

    /// Whether *any* byte of `[addr, addr+size)` is protected.
    pub fn mem_protected(&self, addr: u64, size: u64) -> bool {
        (0..size).any(|i| !self.unprot_bytes.contains(&addr.wrapping_add(i)))
    }

    /// Marks memory bytes unprotected (an unprefixed load's read, §IV-B4).
    pub fn unprotect_mem(&mut self, addr: u64, size: u64) {
        for i in 0..size {
            self.unprot_bytes.insert(addr.wrapping_add(i));
        }
    }

    /// Sets memory bytes' protection to `prot` (a store write, §IV-B2).
    pub fn set_mem(&mut self, addr: u64, size: u64, prot: bool) {
        for i in 0..size {
            let a = addr.wrapping_add(i);
            if prot {
                self.unprot_bytes.remove(&a);
            } else {
                self.unprot_bytes.insert(a);
            }
        }
    }

    /// Number of bytes currently known unprotected (diagnostics).
    pub fn unprotected_byte_count(&self) -> usize {
        self.unprot_bytes.len()
    }
}

impl Default for ProtState {
    fn default() -> ProtState {
        ProtState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_all_protected() {
        let p = ProtState::new();
        assert_eq!(p.protected_regs(), RegSet::all());
        assert!(p.mem_protected(0x1234, 1));
    }

    #[test]
    fn partial_writes_conservative() {
        let mut p = ProtState::new();
        // Unprefixed partial write: unchanged (stays protected).
        p.write_reg(Reg::R1, Width::W16, false);
        assert!(p.reg_protected(Reg::R1));
        // Unprefixed 32-bit write zero-extends: a full-register update.
        p.write_reg(Reg::R1, Width::W32, false);
        assert!(!p.reg_protected(Reg::R1));
        // Once unprotected, unprefixed partial writes keep it so.
        p.write_reg(Reg::R1, Width::W8, false);
        assert!(!p.reg_protected(Reg::R1));
    }

    #[test]
    fn mem_protection_byte_granular() {
        let mut p = ProtState::new();
        p.set_mem(0x100, 8, false);
        assert!(!p.mem_protected(0x100, 8));
        assert!(p.mem_protected(0x0ff, 2)); // straddles a protected byte
        assert!(p.mem_protected(0x107, 2));
        p.set_mem(0x104, 2, true); // re-protect the middle
        assert!(p.mem_protected(0x100, 8));
        assert!(!p.mem_protected(0x100, 4));
    }

    #[test]
    fn unprotect_tracks_count() {
        let mut p = ProtState::new();
        p.unprotect_mem(0x0, 8);
        p.unprotect_mem(0x4, 8); // overlaps
        assert_eq!(p.unprotected_byte_count(), 12);
    }
}
