//! The architectural ProtISA protection set (ProtSet).
//!
//! This is the *reference* (precise) model of the ProtSet semantics from
//! paper §IV: registers and memory bytes start protected; `PROT`-prefixed
//! instructions protect their outputs; unprefixed instructions unprotect
//! their outputs and any memory bytes they read; stores propagate the
//! protection of their data operand to the written bytes.
//!
//! Hardware (the protection-tagged LSQ/L1D of §IV-C) tracks a conservative
//! *superset*: it forgets unprotection on cache eviction. Tests in
//! `protean-core` check that hardware-tracked protection is always a
//! superset of this reference.

use protean_isa::{Reg, RegSet, Width};
use std::collections::HashMap;

/// Bytes per bitmap page.
const PAGE_BYTES: u64 = 4096;
/// 64-bit words per page bitmap (one bit per byte).
const PAGE_WORDS: usize = (PAGE_BYTES / 64) as usize;

/// The architectural ProtSet: per-register protection bits plus a
/// page-chunked bitmap of *unprotected* memory bytes (memory defaults to
/// protected). A page holds one bit per byte, so the typical 8-byte
/// aligned access is a single masked word operation instead of eight
/// per-byte set operations — the ProtSet is updated on every unprefixed
/// load and every store, which made the former per-byte `BTreeSet` a
/// top campaign hotspot.
///
/// # Examples
///
/// ```
/// use protean_arch::ProtState;
/// use protean_isa::{Reg, Width};
///
/// let mut p = ProtState::new();
/// assert!(p.reg_protected(Reg::R0)); // everything starts protected
/// p.write_reg(Reg::R0, Width::W64, false); // unprefixed full write
/// assert!(!p.reg_protected(Reg::R0));
/// p.write_reg(Reg::R0, Width::W8, true); // PROT-prefixed partial write
/// assert!(p.reg_protected(Reg::R0)); // protects the full register
/// ```
#[derive(Clone, Debug)]
pub struct ProtState {
    reg_prot: [bool; Reg::COUNT],
    /// Per-page bitmaps of memory bytes known to be unprotected (bit set
    /// = unprotected). Absent pages are fully protected.
    unprot_pages: HashMap<u64, [u64; PAGE_WORDS]>,
}

/// Calls `f(page, word, mask)` for each word-aligned chunk of the byte
/// range `[addr, addr + size)`; returns `false` early if `f` does.
/// Addresses wrap like the byte arithmetic they replace.
#[inline]
fn for_each_chunk(addr: u64, size: u64, mut f: impl FnMut(u64, usize, u64) -> bool) -> bool {
    let mut a = addr;
    let mut remaining = size;
    while remaining > 0 {
        let bit = (a % 64) as u32;
        let len = remaining.min(64 - bit as u64) as u32;
        let mask = if len == 64 {
            u64::MAX
        } else {
            ((1u64 << len) - 1) << bit
        };
        let page = a / PAGE_BYTES;
        let word = ((a % PAGE_BYTES) / 64) as usize;
        if !f(page, word, mask) {
            return false;
        }
        a = a.wrapping_add(len as u64);
        remaining -= len as u64;
    }
    true
}

impl ProtState {
    /// Creates the initial ProtSet: all registers and memory protected.
    pub fn new() -> ProtState {
        ProtState {
            reg_prot: [true; Reg::COUNT],
            unprot_pages: HashMap::new(),
        }
    }

    /// Whether a register is currently protected.
    pub fn reg_protected(&self, reg: Reg) -> bool {
        self.reg_prot[reg.index()]
    }

    /// The set of currently protected registers.
    pub fn protected_regs(&self) -> RegSet {
        Reg::all().filter(|r| self.reg_protected(*r)).collect()
    }

    /// Applies a register write's protection update (paper §IV-B1):
    /// `PROT`-prefixed writes protect the full register; unprefixed
    /// full-width writes unprotect it; unprefixed *partial* writes leave
    /// protection unchanged.
    pub fn write_reg(&mut self, reg: Reg, width: Width, prot: bool) {
        if prot {
            self.reg_prot[reg.index()] = true;
        } else if !width.is_partial() {
            self.reg_prot[reg.index()] = false;
        }
    }

    /// Forces a register's protection bit (used by tests and by the
    /// hardware model's commit path).
    pub fn set_reg(&mut self, reg: Reg, prot: bool) {
        self.reg_prot[reg.index()] = prot;
    }

    /// Whether *any* byte of `[addr, addr+size)` is protected.
    pub fn mem_protected(&self, addr: u64, size: u64) -> bool {
        !for_each_chunk(addr, size, |page, word, mask| {
            match self.unprot_pages.get(&page) {
                Some(bits) => bits[word] & mask == mask,
                None => false,
            }
        })
    }

    /// Marks memory bytes unprotected (an unprefixed load's read, §IV-B4).
    pub fn unprotect_mem(&mut self, addr: u64, size: u64) {
        self.set_mem(addr, size, false)
    }

    /// Sets memory bytes' protection to `prot` (a store write, §IV-B2).
    pub fn set_mem(&mut self, addr: u64, size: u64, prot: bool) {
        for_each_chunk(addr, size, |page, word, mask| {
            if prot {
                if let Some(bits) = self.unprot_pages.get_mut(&page) {
                    bits[word] &= !mask;
                }
            } else {
                let bits = self.unprot_pages.entry(page).or_insert([0; PAGE_WORDS]);
                bits[word] |= mask;
            }
            true
        });
    }

    /// Number of bytes currently known unprotected (diagnostics).
    pub fn unprotected_byte_count(&self) -> usize {
        self.unprot_pages
            .values()
            .map(|bits| bits.iter().map(|w| w.count_ones() as usize).sum::<usize>())
            .sum()
    }
}

impl Default for ProtState {
    fn default() -> ProtState {
        ProtState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_all_protected() {
        let p = ProtState::new();
        assert_eq!(p.protected_regs(), RegSet::all());
        assert!(p.mem_protected(0x1234, 1));
    }

    #[test]
    fn partial_writes_conservative() {
        let mut p = ProtState::new();
        // Unprefixed partial write: unchanged (stays protected).
        p.write_reg(Reg::R1, Width::W16, false);
        assert!(p.reg_protected(Reg::R1));
        // Unprefixed 32-bit write zero-extends: a full-register update.
        p.write_reg(Reg::R1, Width::W32, false);
        assert!(!p.reg_protected(Reg::R1));
        // Once unprotected, unprefixed partial writes keep it so.
        p.write_reg(Reg::R1, Width::W8, false);
        assert!(!p.reg_protected(Reg::R1));
    }

    #[test]
    fn mem_protection_byte_granular() {
        let mut p = ProtState::new();
        p.set_mem(0x100, 8, false);
        assert!(!p.mem_protected(0x100, 8));
        assert!(p.mem_protected(0x0ff, 2)); // straddles a protected byte
        assert!(p.mem_protected(0x107, 2));
        p.set_mem(0x104, 2, true); // re-protect the middle
        assert!(p.mem_protected(0x100, 8));
        assert!(!p.mem_protected(0x100, 4));
    }

    #[test]
    fn unprotect_tracks_count() {
        let mut p = ProtState::new();
        p.unprotect_mem(0x0, 8);
        p.unprotect_mem(0x4, 8); // overlaps
        assert_eq!(p.unprotected_byte_count(), 12);
    }

    #[test]
    fn ranges_straddling_words_and_pages() {
        let mut p = ProtState::new();
        // Straddles a 64-byte bitmap-word boundary.
        p.unprotect_mem(0x3c, 8);
        assert!(!p.mem_protected(0x3c, 8));
        assert!(p.mem_protected(0x3b, 1));
        assert!(p.mem_protected(0x44, 1));
        // Straddles a 4 KiB page boundary.
        p.unprotect_mem(0xffa, 12);
        assert!(!p.mem_protected(0xffa, 12));
        assert!(p.mem_protected(0xff9, 1));
        assert!(p.mem_protected(0x1006, 1));
        assert_eq!(p.unprotected_byte_count(), 20);
        // Re-protect across the page boundary.
        p.set_mem(0xffe, 4, true);
        assert!(p.mem_protected(0xffa, 12));
        assert!(!p.mem_protected(0xffa, 4));
        assert!(!p.mem_protected(0x1002, 4));
        assert_eq!(p.unprotected_byte_count(), 16);
    }
}
