//! Property test: copy-on-write [`Memory`] is observationally identical
//! to an eager deep copy.
//!
//! The COW implementation shares page allocations between clones and
//! un-shares lazily on write, with an "open page" write handle cached
//! outside the page map. None of that machinery may be visible through
//! the API: any interleaving of reads, multi-byte writes, clones,
//! `clone_from` overwrites, and drops must produce exactly the bytes a
//! naive per-instance byte map would. Each generated case drives a small
//! population of (memory, model) pairs through a random op sequence and
//! checks every read against the model, including reads that straddle
//! page boundaries.

use protean_arch::Memory;
use protean_testkit::{Checker, Rng};
use std::collections::HashMap;

/// The oracle: an eagerly-copied sparse byte map with the same
/// little-endian multi-byte semantics as [`Memory`].
#[derive(Clone, Default)]
struct Model(HashMap<u64, u8>);

impl Model {
    fn read(&self, addr: u64, size: u64) -> u64 {
        let mut v = 0u64;
        for i in (0..size).rev() {
            let b = self.0.get(&addr.wrapping_add(i)).copied().unwrap_or(0);
            v = (v << 8) | b as u64;
        }
        v
    }

    fn write(&mut self, addr: u64, size: u64, value: u64) {
        for i in 0..size {
            self.0
                .insert(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }
}

/// Addresses concentrate on three pages and their boundaries so page
/// straddles, repeat hits on the open page, and cross-page sharing all
/// occur within a few hundred ops.
fn gen_addr(rng: &mut Rng) -> u64 {
    let page = 0x1000 * rng.gen_range(0..3u64);
    let offset = if rng.gen_range(0..4u32) == 0 {
        // Near the page end: sizes up to 8 straddle into the next page.
        0xff8 + rng.gen_range(0..8u64)
    } else {
        rng.gen_range(0..0x1000u64)
    };
    page + offset
}

#[derive(Debug, Clone, Copy)]
enum OpKind {
    Write,
    Read,
    Clone,
    CloneFrom,
    Drop,
}

#[test]
fn cow_memory_matches_deep_copy_model() {
    Checker::new("cow_memory_matches_deep_copy_model")
        .cases(96)
        .run(
            |rng| {
                let ops: Vec<(OpKind, u64, u64, u64, usize, usize)> = (0..250)
                    .map(|_| {
                        let kind = match rng.gen_range(0..10) {
                            0..=3 => OpKind::Write,
                            4..=6 => OpKind::Read,
                            7 => OpKind::Clone,
                            8 => OpKind::CloneFrom,
                            _ => OpKind::Drop,
                        };
                        (
                            kind,
                            gen_addr(rng),
                            rng.gen_range(1..9),
                            rng.gen::<u64>(),
                            rng.gen_range(0..8) as usize,
                            rng.gen_range(0..8) as usize,
                        )
                    })
                    .collect();
                ops
            },
            |ops| {
                let mut pairs: Vec<(Memory, Model)> = vec![(Memory::new(), Model::default())];
                for &(kind, addr, size, value, a, b) in ops {
                    let a = a % pairs.len();
                    match kind {
                        OpKind::Write => {
                            let (mem, model) = &mut pairs[a];
                            mem.write(addr, size, value);
                            model.write(addr, size, value);
                        }
                        OpKind::Read => {
                            let (mem, model) = &pairs[a];
                            assert_eq!(
                                mem.read(addr, size),
                                model.read(addr, size),
                                "read {size}B @ {addr:#x} diverged from model"
                            );
                        }
                        OpKind::Clone => {
                            if pairs.len() < 6 {
                                let clone = (pairs[a].0.clone(), pairs[a].1.clone());
                                pairs.push(clone);
                            }
                        }
                        OpKind::CloneFrom => {
                            let b = b % pairs.len();
                            if a != b {
                                let model = pairs[b].1.clone();
                                let (lo, hi) = pairs.split_at_mut(a.max(b));
                                let (dst, src) = if a < b {
                                    (&mut lo[a].0, &hi[0].0)
                                } else {
                                    (&mut hi[0].0, &lo[b].0)
                                };
                                dst.clone_from(src);
                                pairs[a].1 = model;
                            }
                        }
                        OpKind::Drop => {
                            if pairs.len() > 1 {
                                pairs.remove(a);
                            }
                        }
                    }
                }
                // Final sweep: every surviving instance still agrees with
                // its model, bytewise and through multi-byte reads.
                for (mem, model) in &pairs {
                    for page in 0..3u64 {
                        for offset in (0..0x1000).step_by(8) {
                            let addr = 0x1000 * page + offset;
                            assert_eq!(mem.read(addr, 8), model.read(addr, 8));
                        }
                    }
                    assert_eq!(mem.read(0xff9, 8), model.read(0xff9, 8));
                    assert_eq!(mem.read(0x1ffd, 8), model.read(0x1ffd, 8));
                }
            },
        );
}
