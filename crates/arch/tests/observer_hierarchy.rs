//! The observer-mode hierarchy (paper §II-C): exposure strictly
//! increases up the class hierarchy, so contract *equivalence* is
//! increasingly hard to satisfy. Concretely, for any program and input
//! pair:
//!
//! * equal ARCH traces   ⇒ equal CT traces (ARCH exposes a superset);
//! * equal UNPROT traces ⇒ equal CT traces;
//! * equal CTS traces    ⇒ equal CT traces.
//!
//! Checked over randomized straight-line/branchy programs and inputs.

use protean_arch::{ArchState, Emulator, ExecRecord, ExitStatus, ObserverMode, PublicTyping};
use protean_isa::{assemble, Program, Reg};
use protean_rng::Rng;

fn random_program(seed: u64) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    let mut src = String::from("mov rsp, 0x8000\n");
    for i in 0..rng.gen_range(5..25) {
        match rng.gen_range(0..6) {
            0 => src.push_str(&format!(
                "add r{}, r{}, {}\n",
                rng.gen_range(0..6),
                rng.gen_range(0..6),
                rng.gen_range(0..100)
            )),
            1 => src.push_str(&format!(
                "and r7, r{}, 0xf8\nload r{}, [0x2000 + r7*1]\n",
                rng.gen_range(0..6),
                rng.gen_range(0..6)
            )),
            2 => src.push_str(&format!(
                "and r7, r{}, 0xf8\nstore [0x3000 + r7*1], r{}\n",
                rng.gen_range(0..6),
                rng.gen_range(0..6)
            )),
            3 => src.push_str(&format!(
                "cmp r{}, {}\njlt skip{i}\nadd r0, r0, 1\nskip{i}: nop\n",
                rng.gen_range(0..6),
                rng.gen_range(0..64)
            )),
            4 => src.push_str(&format!(
                "xor r{}, r{}, r{}\n",
                rng.gen_range(0..6),
                rng.gen_range(0..6),
                rng.gen_range(0..6)
            )),
            _ => src.push_str(&format!(
                "mul r{}, r{}, 3\n",
                rng.gen_range(0..6),
                rng.gen_range(0..6)
            )),
        }
    }
    src.push_str("halt\n");
    assemble(&src).expect("random program assembles")
}

fn records(program: &Program, seed: u64) -> Vec<ExecRecord> {
    let mut state = ArchState::new();
    let mut rng = Rng::seed_from_u64(seed);
    for i in 0..6 {
        state.set_reg(Reg::gpr(i), rng.gen_range(0..256));
    }
    for k in 0..64u64 {
        state.mem.write(0x2000 + k * 8, 8, rng.gen());
    }
    let mut emu = Emulator::new(program, state);
    let (status, recs) = emu.run(10_000);
    assert_eq!(status, ExitStatus::Halted);
    recs
}

#[test]
fn stronger_observers_refine_ct() {
    for seed in 0..30u64 {
        let program = random_program(seed);
        let a = records(&program, 1000 + seed);
        let b = records(&program, 2000 + seed);
        let ct = ObserverMode::Ct;
        let modes: Vec<ObserverMode> = vec![
            ObserverMode::Arch,
            ObserverMode::Unprot,
            ObserverMode::Cts(PublicTyping::all_secret(program.len())),
        ];
        for strong in modes {
            if strong.trace(&a) == strong.trace(&b) {
                assert_eq!(
                    ct.trace(&a),
                    ct.trace(&b),
                    "seed {seed}: {}-equal but CT-distinguishable",
                    strong.name()
                );
            }
        }
    }
}

#[test]
fn trace_is_deterministic() {
    for seed in 0..10u64 {
        let program = random_program(seed);
        let a = records(&program, seed);
        let b = records(&program, seed);
        for mode in [ObserverMode::Arch, ObserverMode::Ct, ObserverMode::Unprot] {
            assert_eq!(mode.trace(&a), mode.trace(&b));
        }
    }
}

#[test]
fn all_secret_cts_equals_ct() {
    // With an all-secret typing, CTS exposes nothing beyond CT.
    for seed in 0..10u64 {
        let program = random_program(seed);
        let recs = records(&program, seed);
        let cts = ObserverMode::Cts(PublicTyping::all_secret(program.len()));
        assert_eq!(cts.trace(&recs), ObserverMode::Ct.trace(&recs));
    }
}
