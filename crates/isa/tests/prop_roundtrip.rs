//! Property tests: encode/decode and assemble/disassemble round-trips
//! hold for arbitrary legal instructions.

use protean_isa::{
    assemble, decode_program, encode_program, AluOp, Cond, Inst, Mem, Op, Operand, Program, Reg,
    Width,
};
use protean_testkit::{Checker, Rng};

fn arb_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_range(0..Reg::COUNT))
}

/// Any register except `RFLAGS`, which is never a legal explicit
/// destination (see [`Inst::validate`]).
fn arb_dst_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_range(0..Reg::RFLAGS.index()))
}

fn arb_width(rng: &mut Rng) -> Width {
    *rng.choose(&Width::ALL).unwrap()
}

fn arb_cond(rng: &mut Rng) -> Cond {
    *rng.choose(&Cond::ALL).unwrap()
}

fn arb_alu(rng: &mut Rng) -> AluOp {
    *rng.choose(&AluOp::ALL).unwrap()
}

fn arb_operand(rng: &mut Rng) -> Operand {
    if rng.gen::<bool>() {
        Operand::Reg(arb_reg(rng))
    } else {
        Operand::Imm(rng.gen::<u64>())
    }
}

fn arb_mem(rng: &mut Rng) -> Mem {
    Mem {
        base: rng.gen::<bool>().then(|| arb_reg(rng)),
        index: rng
            .gen::<bool>()
            .then(|| (arb_reg(rng), *rng.choose(&[1u8, 2, 4, 8]).unwrap())),
        // Keep displacements in a readable range so the assembler's
        // hex formatting round-trips.
        disp: rng.gen_range(-0xffff_i64..0xffff_i64),
    }
}

fn arb_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0..15u32) {
        0 => Op::MovImm {
            dst: arb_dst_reg(rng),
            imm: rng.gen::<u64>(),
            width: arb_width(rng),
        },
        1 => Op::Mov {
            dst: arb_dst_reg(rng),
            src: arb_reg(rng),
            width: arb_width(rng),
        },
        2 => Op::CMov {
            cond: arb_cond(rng),
            dst: arb_dst_reg(rng),
            src: arb_reg(rng),
        },
        3 => Op::Alu {
            op: arb_alu(rng),
            dst: arb_dst_reg(rng),
            src1: arb_reg(rng),
            src2: arb_operand(rng),
            width: arb_width(rng),
        },
        4 => Op::Cmp {
            src1: arb_reg(rng),
            src2: arb_operand(rng),
        },
        5 => Op::Div {
            dst: arb_dst_reg(rng),
            src1: arb_reg(rng),
            src2: arb_reg(rng),
        },
        6 => Op::Load {
            dst: arb_dst_reg(rng),
            addr: arb_mem(rng),
            size: arb_width(rng),
        },
        7 => Op::Store {
            src: arb_operand(rng),
            addr: arb_mem(rng),
            size: arb_width(rng),
        },
        8 => Op::Jmp {
            target: rng.gen_range(0u32..10_000),
        },
        9 => Op::Jcc {
            cond: arb_cond(rng),
            target: rng.gen_range(0u32..10_000),
        },
        10 => Op::JmpReg { src: arb_reg(rng) },
        11 => Op::Call {
            target: rng.gen_range(0u32..10_000),
        },
        12 => Op::Ret,
        13 => Op::Nop,
        _ => Op::Halt,
    }
}

fn arb_inst(rng: &mut Rng) -> Inst {
    Inst {
        op: arb_op(rng),
        prot: rng.gen::<bool>(),
    }
}

fn arb_insts(rng: &mut Rng) -> Vec<Inst> {
    let n = rng.gen_range(1..64usize);
    (0..n).map(|_| arb_inst(rng)).collect()
}

#[test]
fn encode_decode_roundtrip() {
    Checker::new("encode_decode_roundtrip").run(arb_insts, |insts| {
        let program = Program::from_insts(insts.clone());
        let bytes = encode_program(&program);
        let decoded = decode_program(&bytes).unwrap();
        assert_eq!(&decoded, insts);
    });
}

#[test]
fn display_assemble_roundtrip() {
    Checker::new("display_assemble_roundtrip").run(arb_insts, |insts| {
        let text: String = insts.iter().map(|i| format!("{i}\n")).collect();
        let parsed = assemble(&text).unwrap();
        assert_eq!(&parsed.insts, insts);
    });
}

#[test]
fn decode_never_panics_on_garbage() {
    Checker::new("decode_never_panics_on_garbage").run(
        |rng| {
            let n = rng.gen_range(0..256usize);
            let mut bytes = vec![0u8; n];
            rng.fill_bytes(&mut bytes);
            bytes
        },
        |bytes| {
            let _ = decode_program(bytes);
        },
    );
}

/// `RFLAGS` is written implicitly exactly by ALU ops and compares; no
/// legal instruction names it as an explicit destination, so this holds
/// with no side conditions.
#[test]
fn src_dst_regs_disjoint_from_flags_rules() {
    Checker::new("src_dst_regs_disjoint_from_flags_rules").run(arb_inst, |inst| {
        assert!(
            inst.validate().is_ok(),
            "generator must produce legal insts"
        );
        let writes_flags = inst.dst_regs().contains(Reg::RFLAGS);
        let expect = matches!(inst.op, Op::Alu { .. } | Op::Cmp { .. });
        assert_eq!(writes_flags, expect);
    });
}

/// Former proptest counterexample (`shrinks to inst = Inst { op: CMov {
/// cond: Eq, dst: rflags, src: r0 }, prot: false }`): an instruction
/// naming `RFLAGS` as its explicit destination broke the flags-writer
/// invariant above. Such instructions are now rejected in one
/// consistent place ([`Inst::validate`]), enforced by both the decoder
/// and the assembler.
#[test]
fn regression_cmov_rflags_dst_is_illegal() {
    let inst = Inst::new(Op::CMov {
        cond: Cond::Eq,
        dst: Reg::RFLAGS,
        src: Reg::R0,
    });
    assert_eq!(
        inst.validate(),
        Err("rflags cannot be an explicit destination")
    );

    // The decoder refuses a well-formed encoding of it...
    let bytes = encode_program(&Program::from_insts(vec![inst]));
    assert!(matches!(
        decode_program(&bytes),
        Err(protean_isa::DecodeError::IllegalInst(_))
    ));

    // ...and the assembler refuses its textual form (which `Display`
    // still produces, so the error names the offending line).
    assert!(assemble(&format!("{inst}\n")).is_err());
}

#[test]
fn sensitive_regs_subset_of_srcs() {
    Checker::new("sensitive_regs_subset_of_srcs").run(arb_inst, |inst| {
        // Transmitted (sensitive) registers are always read by the
        // instruction.
        let t = protean_isa::TransmitterSet::paper();
        assert!(inst.src_regs().is_superset(t.sensitive_regs(inst)));
    });
}

/// The prefix-less metadata encoding (paper §IV): strip + apply is
/// the identity for arbitrary instruction streams, and the table's
/// serialization round-trips.
#[test]
fn metadata_table_roundtrip() {
    Checker::new("metadata_table_roundtrip").run(arb_insts, |insts| {
        use protean_isa::ProtMetadataTable;
        let program = Program::from_insts(insts.clone());
        let (stripped, table) = ProtMetadataTable::strip(&program);
        assert!(stripped.insts.iter().all(|i| !i.prot));
        assert_eq!(&table.apply(&stripped).insts, insts);
        let decoded = ProtMetadataTable::decode(&table.encode()).unwrap();
        assert_eq!(decoded, table);
    });
}
