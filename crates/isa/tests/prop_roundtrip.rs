//! Property tests: encode/decode and assemble/disassemble round-trips
//! hold for arbitrary instructions.

use proptest::prelude::*;
use protean_isa::{
    assemble, decode_program, encode_program, AluOp, Cond, Inst, Mem, Op, Operand, Program, Reg,
    Width,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0..Reg::COUNT).prop_map(Reg::new)
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop::sample::select(Width::ALL.to_vec())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        any::<u64>().prop_map(Operand::Imm),
    ]
}

fn arb_mem() -> impl Strategy<Value = Mem> {
    (
        prop::option::of(arb_reg()),
        prop::option::of((arb_reg(), prop::sample::select(vec![1u8, 2, 4, 8]))),
        // Keep displacements in a readable range so the assembler's
        // hex formatting round-trips.
        -0xffff_i64..0xffff_i64,
    )
        .prop_map(|(base, index, disp)| Mem { base, index, disp })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_reg(), any::<u64>(), arb_width()).prop_map(|(dst, imm, width)| Op::MovImm {
            dst,
            imm,
            width
        }),
        (arb_reg(), arb_reg(), arb_width()).prop_map(|(dst, src, width)| Op::Mov {
            dst,
            src,
            width
        }),
        (arb_cond(), arb_reg(), arb_reg()).prop_map(|(cond, dst, src)| Op::CMov { cond, dst, src }),
        (arb_alu(), arb_reg(), arb_reg(), arb_operand(), arb_width()).prop_map(
            |(op, dst, src1, src2, width)| Op::Alu {
                op,
                dst,
                src1,
                src2,
                width
            }
        ),
        (arb_reg(), arb_operand()).prop_map(|(src1, src2)| Op::Cmp { src1, src2 }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(dst, src1, src2)| Op::Div { dst, src1, src2 }),
        (arb_reg(), arb_mem(), arb_width()).prop_map(|(dst, addr, size)| Op::Load {
            dst,
            addr,
            size
        }),
        (arb_operand(), arb_mem(), arb_width()).prop_map(|(src, addr, size)| Op::Store {
            src,
            addr,
            size
        }),
        (0u32..10_000).prop_map(|target| Op::Jmp { target }),
        (arb_cond(), 0u32..10_000).prop_map(|(cond, target)| Op::Jcc { cond, target }),
        arb_reg().prop_map(|src| Op::JmpReg { src }),
        (0u32..10_000).prop_map(|target| Op::Call { target }),
        Just(Op::Ret),
        Just(Op::Nop),
        Just(Op::Halt),
    ]
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    (arb_op(), any::<bool>()).prop_map(|(op, prot)| Inst { op, prot })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(insts in prop::collection::vec(arb_inst(), 1..64)) {
        let program = Program::from_insts(insts.clone());
        let bytes = encode_program(&program);
        let decoded = decode_program(&bytes).unwrap();
        prop_assert_eq!(decoded, insts);
    }

    #[test]
    fn display_assemble_roundtrip(insts in prop::collection::vec(arb_inst(), 1..64)) {
        let text: String = insts.iter().map(|i| format!("{i}\n")).collect();
        let parsed = assemble(&text).unwrap();
        prop_assert_eq!(parsed.insts, insts);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_program(&bytes);
    }

    #[test]
    fn src_dst_regs_disjoint_from_flags_rules(inst in arb_inst()) {
        // RFLAGS is written implicitly exactly by ALU ops and compares
        // (unless the generated instruction names RFLAGS as its explicit
        // destination).
        prop_assume!(inst.explicit_dst() != Some(Reg::RFLAGS));
        let writes_flags = inst.dst_regs().contains(Reg::RFLAGS);
        let expect = matches!(inst.op, Op::Alu { .. } | Op::Cmp { .. });
        prop_assert_eq!(writes_flags, expect);
    }

    #[test]
    fn sensitive_regs_subset_of_srcs(inst in arb_inst()) {
        // Transmitted (sensitive) registers are always read by the
        // instruction.
        let t = protean_isa::TransmitterSet::paper();
        prop_assert!(inst.src_regs().is_superset(t.sensitive_regs(&inst)));
    }
}

proptest! {
    /// The prefix-less metadata encoding (paper §IV): strip + apply is
    /// the identity for arbitrary instruction streams, and the table's
    /// serialization round-trips.
    #[test]
    fn metadata_table_roundtrip(insts in prop::collection::vec(arb_inst(), 1..64)) {
        use protean_isa::ProtMetadataTable;
        let program = Program::from_insts(insts.clone());
        let (stripped, table) = ProtMetadataTable::strip(&program);
        prop_assert!(stripped.insts.iter().all(|i| !i.prot));
        prop_assert_eq!(table.apply(&stripped).insts, insts);
        let decoded = ProtMetadataTable::decode(&table.encode()).unwrap();
        prop_assert_eq!(decoded, table);
    }
}
