//! Architectural registers.
//!
//! The ISA models an x86-64-flavoured integer register file: fourteen
//! general-purpose registers (`R0`–`R13`), the stack pointer [`Reg::RSP`],
//! the frame pointer [`Reg::RBP`], and the flags register [`Reg::RFLAGS`].
//!
//! Protection (the `PROT` prefix, see [`crate::Inst`]) is tracked at *full
//! register* granularity: sub-register writes inherit the protection rules
//! of their containing register (paper §IV-B1).

use core::fmt;

/// An architectural register identifier.
///
/// `Reg` is a dense index in `0..Reg::COUNT`, suitable for direct use as an
/// array index (e.g. in rename maps or dataflow bitsets).
///
/// # Examples
///
/// ```
/// use protean_isa::Reg;
///
/// assert_eq!(Reg::R0.index(), 0);
/// assert!(Reg::RSP.is_stack_pointer());
/// assert_eq!(Reg::COUNT, 17);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers, including `RSP`, `RBP`, and
    /// `RFLAGS`.
    pub const COUNT: usize = 17;

    /// Number of general-purpose registers (`R0`–`R13`).
    pub const GPR_COUNT: usize = 14;

    /// General-purpose register `r0`.
    pub const R0: Reg = Reg(0);
    /// General-purpose register `r1`.
    pub const R1: Reg = Reg(1);
    /// General-purpose register `r2`.
    pub const R2: Reg = Reg(2);
    /// General-purpose register `r3`.
    pub const R3: Reg = Reg(3);
    /// General-purpose register `r4`.
    pub const R4: Reg = Reg(4);
    /// General-purpose register `r5`.
    pub const R5: Reg = Reg(5);
    /// General-purpose register `r6`.
    pub const R6: Reg = Reg(6);
    /// General-purpose register `r7`.
    pub const R7: Reg = Reg(7);
    /// General-purpose register `r8`.
    pub const R8: Reg = Reg(8);
    /// General-purpose register `r9`.
    pub const R9: Reg = Reg(9);
    /// General-purpose register `r10`.
    pub const R10: Reg = Reg(10);
    /// General-purpose register `r11`.
    pub const R11: Reg = Reg(11);
    /// General-purpose register `r12`.
    pub const R12: Reg = Reg(12);
    /// General-purpose register `r13`.
    pub const R13: Reg = Reg(13);
    /// The stack pointer. ProtCC-UNR treats it as never-secret (§V-A4).
    pub const RSP: Reg = Reg(14);
    /// The frame pointer (computed from `RSP`, so also never-secret).
    pub const RBP: Reg = Reg(15);
    /// The flags register, implicitly written by ALU/compare instructions
    /// and read by conditional branches and conditional moves.
    pub const RFLAGS: Reg = Reg(16);

    /// Creates a register from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    ///
    /// # Examples
    ///
    /// ```
    /// use protean_isa::Reg;
    /// assert_eq!(Reg::new(14), Reg::RSP);
    /// ```
    #[inline]
    pub fn new(index: usize) -> Reg {
        assert!(index < Reg::COUNT, "register index {index} out of range");
        Reg(index as u8)
    }

    /// Creates a general-purpose register `R{index}`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::GPR_COUNT`.
    #[inline]
    pub fn gpr(index: usize) -> Reg {
        assert!(index < Reg::GPR_COUNT, "GPR index {index} out of range");
        Reg(index as u8)
    }

    /// The dense index of this register in `0..Reg::COUNT`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the stack pointer.
    #[inline]
    pub fn is_stack_pointer(self) -> bool {
        self == Reg::RSP
    }

    /// Returns `true` for the flags register.
    #[inline]
    pub fn is_flags(self) -> bool {
        self == Reg::RFLAGS
    }

    /// Returns `true` for a general-purpose register (`R0`–`R13`).
    #[inline]
    pub fn is_gpr(self) -> bool {
        (self.0 as usize) < Reg::GPR_COUNT
    }

    /// Iterates over all architectural registers in index order.
    ///
    /// # Examples
    ///
    /// ```
    /// use protean_isa::Reg;
    /// assert_eq!(Reg::all().count(), Reg::COUNT);
    /// ```
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT).map(|i| Reg(i as u8))
    }

    /// The canonical lowercase name (`r0`…`r13`, `rsp`, `rbp`, `rflags`).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; Reg::COUNT] = [
            "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12", "r13",
            "rsp", "rbp", "rflags",
        ];
        NAMES[self.index()]
    }

    /// Parses a register name (case-insensitive).
    ///
    /// Returns `None` for unknown names.
    ///
    /// # Examples
    ///
    /// ```
    /// use protean_isa::Reg;
    /// assert_eq!(Reg::parse("RSP"), Some(Reg::RSP));
    /// assert_eq!(Reg::parse("r7"), Some(Reg::R7));
    /// assert_eq!(Reg::parse("xmm0"), None);
    /// ```
    pub fn parse(name: &str) -> Option<Reg> {
        let lower = name.to_ascii_lowercase();
        Reg::all().find(|r| r.name() == lower)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fixed-size set of architectural registers, backed by a bitmask.
///
/// Used pervasively by the ProtCC dataflow analyses and by the defense
/// policies to describe register-level protection sets.
///
/// # Examples
///
/// ```
/// use protean_isa::{Reg, RegSet};
///
/// let mut set = RegSet::new();
/// set.insert(Reg::R1);
/// set.insert(Reg::RSP);
/// assert!(set.contains(Reg::R1));
/// assert_eq!(set.len(), 2);
///
/// let all = RegSet::all();
/// assert_eq!(all.len(), Reg::COUNT);
/// assert!(all.is_superset(set));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegSet(u32);

impl RegSet {
    /// Creates an empty set.
    #[inline]
    pub fn new() -> RegSet {
        RegSet(0)
    }

    /// Creates the set containing every architectural register.
    #[inline]
    pub fn all() -> RegSet {
        RegSet((1u32 << Reg::COUNT) - 1)
    }

    /// Creates a set from an iterator of registers.
    pub fn from_regs<I: IntoIterator<Item = Reg>>(regs: I) -> RegSet {
        let mut set = RegSet::new();
        for r in regs {
            set.insert(r);
        }
        set
    }

    /// Inserts a register; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, reg: Reg) -> bool {
        let bit = 1u32 << reg.index();
        let fresh = self.0 & bit == 0;
        self.0 |= bit;
        fresh
    }

    /// Removes a register; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, reg: Reg) -> bool {
        let bit = 1u32 << reg.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Returns `true` if the register is in the set.
    #[inline]
    pub fn contains(self, reg: Reg) -> bool {
        self.0 & (1u32 << reg.index()) != 0
    }

    /// Number of registers in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Set difference (`self - other`).
    #[inline]
    pub fn difference(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Returns `true` if every register of `other` is in `self`.
    #[inline]
    pub fn is_superset(self, other: RegSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Iterates over the registers in index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        Reg::all().filter(move |r| self.contains(*r))
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        RegSet::from_regs(iter)
    }
}

impl Extend<Reg> for RegSet {
    fn extend<I: IntoIterator<Item = Reg>>(&mut self, iter: I) {
        for r in iter {
            self.insert(r);
        }
    }
}

impl fmt::Debug for RegSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_names() {
        for r in Reg::all() {
            assert_eq!(Reg::parse(r.name()), Some(r));
        }
    }

    #[test]
    fn reg_classes() {
        assert!(Reg::R0.is_gpr());
        assert!(!Reg::RSP.is_gpr());
        assert!(Reg::RSP.is_stack_pointer());
        assert!(Reg::RFLAGS.is_flags());
        assert!(!Reg::R3.is_flags());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_out_of_range() {
        let _ = Reg::new(Reg::COUNT);
    }

    #[test]
    fn regset_basic_ops() {
        let mut s = RegSet::new();
        assert!(s.is_empty());
        assert!(s.insert(Reg::R5));
        assert!(!s.insert(Reg::R5));
        assert!(s.contains(Reg::R5));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Reg::R5));
        assert!(!s.remove(Reg::R5));
        assert!(s.is_empty());
    }

    #[test]
    fn regset_algebra() {
        let a = RegSet::from_regs([Reg::R0, Reg::R1, Reg::R2]);
        let b = RegSet::from_regs([Reg::R1, Reg::R2, Reg::R3]);
        assert_eq!(
            a.union(b),
            RegSet::from_regs([Reg::R0, Reg::R1, Reg::R2, Reg::R3])
        );
        assert_eq!(a.intersection(b), RegSet::from_regs([Reg::R1, Reg::R2]));
        assert_eq!(a.difference(b), RegSet::from_regs([Reg::R0]));
        assert!(a.union(b).is_superset(a));
        assert!(!a.is_superset(b));
    }

    #[test]
    fn regset_iter_ordered() {
        let s = RegSet::from_regs([Reg::R9, Reg::R1, Reg::RSP]);
        let v: Vec<Reg> = s.iter().collect();
        assert_eq!(v, vec![Reg::R1, Reg::R9, Reg::RSP]);
    }

    #[test]
    fn regset_all_and_collect() {
        let s: RegSet = Reg::all().collect();
        assert_eq!(s, RegSet::all());
        assert_eq!(s.len(), Reg::COUNT);
    }
}
