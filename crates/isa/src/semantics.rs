//! Pure functional instruction semantics, shared by the sequential
//! (architectural) emulator and the out-of-order pipeline so that the two
//! can never diverge.

use crate::{AluOp, Flags, Width};

/// Evaluates an ALU operation.
///
/// Returns the new destination value (with [`Width`] merge semantics
/// applied against `old_dst`) and the resulting flags. Flags are computed
/// from the full-width result, with subtraction additionally setting
/// carry/overflow (see [`Flags::from_sub`]).
///
/// # Examples
///
/// ```
/// use protean_isa::{alu_eval, AluOp, Width};
///
/// let (v, f) = alu_eval(AluOp::Add, 2, 3, Width::W64, 0);
/// assert_eq!(v, 5);
/// assert!(!f.zf);
///
/// // 32-bit ops zero-extend (x86 semantics).
/// let (v, _) = alu_eval(AluOp::Add, u64::MAX, 1, Width::W32, 0xdead_0000_0000_0000);
/// assert_eq!(v, 0);
/// ```
pub fn alu_eval(op: AluOp, a: u64, b: u64, width: Width, old_dst: u64) -> (u64, Flags) {
    let (raw, flags) = match op {
        AluOp::Add => {
            let r = a.wrapping_add(b);
            (r, Flags::from_result(r))
        }
        AluOp::Sub => (a.wrapping_sub(b), Flags::from_sub(a, b)),
        AluOp::And => {
            let r = a & b;
            (r, Flags::from_result(r))
        }
        AluOp::Or => {
            let r = a | b;
            (r, Flags::from_result(r))
        }
        AluOp::Xor => {
            let r = a ^ b;
            (r, Flags::from_result(r))
        }
        AluOp::Shl => {
            let r = a.wrapping_shl(b as u32);
            (r, Flags::from_result(r))
        }
        AluOp::Shr => {
            let r = a.wrapping_shr(b as u32);
            (r, Flags::from_result(r))
        }
        AluOp::Sar => {
            let r = (a as i64).wrapping_shr(b as u32) as u64;
            (r, Flags::from_result(r))
        }
        AluOp::Rol => {
            let r = a.rotate_left((b % 64) as u32);
            (r, Flags::from_result(r))
        }
        AluOp::Ror => {
            let r = a.rotate_right((b % 64) as u32);
            (r, Flags::from_result(r))
        }
        AluOp::Mul => {
            let r = a.wrapping_mul(b);
            (r, Flags::from_result(r))
        }
    };
    (width.apply(old_dst, raw), flags)
}

/// The outcome of a division µop.
///
/// Division is a **transmitter** (paper §VII-B4b): the divider's
/// early-exit latency is a function of both operands, and a zero divisor
/// raises a fault. Architectural fault suppression (as in the AMuLeT
/// fuzzing harness) gives the faulting case a defined result so that
/// execution can continue deterministically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DivOutcome {
    /// The quotient (all-ones when the division faulted, mimicking a
    /// suppressed-fault defined result).
    pub quotient: u64,
    /// Whether the division faulted (zero divisor).
    pub faulted: bool,
    /// Divider occupancy in cycles — operand-dependent (early exit),
    /// which is exactly the side channel.
    pub latency: u32,
}

/// Evaluates a division µop, including its timing side channel.
///
/// # Examples
///
/// ```
/// use protean_isa::div_eval;
///
/// let ok = div_eval(100, 7);
/// assert_eq!(ok.quotient, 14);
/// assert!(!ok.faulted);
///
/// let fault = div_eval(100, 0);
/// assert!(fault.faulted);
///
/// // Latency depends on operand magnitudes: a small quotient exits early.
/// assert!(div_eval(u64::MAX, 3).latency > div_eval(8, 3).latency);
/// ```
pub fn div_eval(dividend: u64, divisor: u64) -> DivOutcome {
    if divisor == 0 {
        return DivOutcome {
            quotient: u64::MAX,
            faulted: true,
            latency: DIV_FAULT_LATENCY,
        };
    }
    let quotient = dividend / divisor;
    DivOutcome {
        quotient,
        faulted: false,
        latency: div_latency(quotient),
    }
}

/// Base latency of the divider.
pub const DIV_BASE_LATENCY: u32 = 8;

/// Latency of a faulting division (the fault path is detected early).
pub const DIV_FAULT_LATENCY: u32 = 4;

/// Early-exit divider latency model: one cycle per two quotient bits on
/// top of the base latency (radix-4-style early exit, 8–40 cycles — the
/// gem5 O3 divider spans a similar operand-dependent range).
pub fn div_latency(quotient: u64) -> u32 {
    let significant_bits = 64 - quotient.leading_zeros();
    DIV_BASE_LATENCY + significant_bits / 2
}

/// The *partial* function of the division operands that the divider
/// transmits: its latency and fault outcome. Security contracts that
/// treat divisions as transmitters expose exactly this (paper §II-B1).
pub fn div_leakage(dividend: u64, divisor: u64) -> u64 {
    let o = div_eval(dividend, divisor);
    (o.latency as u64) << 1 | o.faulted as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_basic() {
        assert_eq!(alu_eval(AluOp::Add, 7, 5, Width::W64, 0).0, 12);
        assert_eq!(alu_eval(AluOp::Sub, 7, 5, Width::W64, 0).0, 2);
        assert_eq!(
            alu_eval(AluOp::And, 0b1100, 0b1010, Width::W64, 0).0,
            0b1000
        );
        assert_eq!(alu_eval(AluOp::Or, 0b1100, 0b1010, Width::W64, 0).0, 0b1110);
        assert_eq!(
            alu_eval(AluOp::Xor, 0b1100, 0b1010, Width::W64, 0).0,
            0b0110
        );
        assert_eq!(alu_eval(AluOp::Shl, 1, 8, Width::W64, 0).0, 256);
        assert_eq!(alu_eval(AluOp::Shr, 256, 8, Width::W64, 0).0, 1);
        assert_eq!(
            alu_eval(AluOp::Sar, (-16i64) as u64, 2, Width::W64, 0).0,
            (-4i64) as u64
        );
        assert_eq!(alu_eval(AluOp::Mul, 6, 7, Width::W64, 0).0, 42);
        assert_eq!(
            alu_eval(AluOp::Rol, 0x8000_0000_0000_0000, 1, Width::W64, 0).0,
            1
        );
        assert_eq!(
            alu_eval(AluOp::Ror, 1, 1, Width::W64, 0).0,
            0x8000_0000_0000_0000
        );
    }

    #[test]
    fn alu_partial_width_merges() {
        let (v, _) = alu_eval(AluOp::Add, 0x10, 0x05, Width::W8, 0xaabb_ccdd_0000_0000);
        assert_eq!(v, 0xaabb_ccdd_0000_0015);
    }

    #[test]
    fn sub_flags_drive_signed_compares() {
        let (_, f) = alu_eval(AluOp::Sub, 3, 5, Width::W64, 0);
        assert!(crate::Cond::Lt.eval(f));
        assert!(crate::Cond::Ult.eval(f));
    }

    #[test]
    fn div_fault_and_latency() {
        assert!(div_eval(1, 0).faulted);
        assert!(!div_eval(0, 1).faulted);
        assert_eq!(div_eval(0, 1).quotient, 0);
        // Latency is monotone in quotient magnitude.
        let small = div_eval(10, 3).latency;
        let large = div_eval(u64::MAX, 1).latency;
        assert!(small < large);
        // Leakage distinguishes operand pairs with different latencies.
        assert_ne!(div_leakage(10, 3), div_leakage(u64::MAX, 1));
        // ... but not ones with identical latency and fault status.
        assert_eq!(div_leakage(10, 3), div_leakage(9, 3));
    }
}
