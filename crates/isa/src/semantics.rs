//! Pure functional instruction semantics, shared by the sequential
//! (architectural) emulator and the out-of-order pipeline so that the two
//! can never diverge.

use crate::{AluOp, Flags, Width};

/// Evaluates an ALU operation.
///
/// Returns the new destination value (with [`Width`] merge semantics
/// applied against `old_dst`) and the resulting flags.
///
/// The operation is faithful to the x86 contract at every width:
///
/// * shift/rotate counts are masked by the operand width
///   ([`Width::shift_count_mask`]: mod 64 for W64, mod 32 otherwise);
/// * `Shr`/`Sar`/`Rol`/`Ror` operate on the width lane — `Sar` replicates
///   the *width's* sign bit and rotates are periodic in the lane width;
/// * flags are derived from the width-truncated result
///   ([`Flags::from_result_width`]), with subtraction additionally
///   setting carry/overflow at the lane's top bit
///   ([`Flags::from_sub_width`]).
///
/// # Examples
///
/// ```
/// use protean_isa::{alu_eval, AluOp, Width};
///
/// let (v, f) = alu_eval(AluOp::Add, 2, 3, Width::W64, 0);
/// assert_eq!(v, 5);
/// assert!(!f.zf);
///
/// // 32-bit ops zero-extend (x86 semantics)... and a truncated-to-zero
/// // result really does set ZF.
/// let (v, f) = alu_eval(AluOp::Add, u64::MAX, 1, Width::W32, 0xdead_0000_0000_0000);
/// assert_eq!(v, 0);
/// assert!(f.zf);
///
/// // A 32-bit shift count is taken mod 32: `shl r32, 33` shifts by 1.
/// let (v, _) = alu_eval(AluOp::Shl, 3, 33, Width::W32, 0);
/// assert_eq!(v, 6);
/// ```
pub fn alu_eval(op: AluOp, a: u64, b: u64, width: Width, old_dst: u64) -> (u64, Flags) {
    let mask = width.mask();
    let bits = width.bits();
    // x86 masks the count by operand size *before* the shift, so a
    // masked count can still cover the whole lane for W8/W16 (e.g.
    // `shl al, 17` shifts by 17 and leaves AL zero). Rust's u64 shifts
    // are defined for any count < 64, which the masked count always is.
    let count = (b & width.shift_count_mask()) as u32;
    let raw = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => (a & mask).wrapping_shl(count),
        AluOp::Shr => (a & mask).wrapping_shr(count),
        AluOp::Sar => {
            // Sign-extend the lane to 64 bits, then an i64 shift
            // replicates the lane's sign bit for any masked count.
            let lane = (((a & mask) << (64 - bits)) as i64) >> (64 - bits);
            (lane >> count) as u64
        }
        AluOp::Rol => {
            let v = a & mask;
            let n = count % bits;
            if n == 0 {
                v
            } else {
                (v << n | v >> (bits - n)) & mask
            }
        }
        AluOp::Ror => {
            let v = a & mask;
            let n = count % bits;
            if n == 0 {
                v
            } else {
                (v >> n | v << (bits - n)) & mask
            }
        }
        AluOp::Mul => a.wrapping_mul(b),
    };
    let flags = match op {
        AluOp::Sub => Flags::from_sub_width(a, b, width),
        _ => Flags::from_result_width(raw, width),
    };
    (width.apply(old_dst, raw), flags)
}

/// The outcome of a division µop.
///
/// Division is a **transmitter** (paper §VII-B4b): the divider's
/// early-exit latency is a function of both operands, and a zero divisor
/// raises a fault. Architectural fault suppression (as in the AMuLeT
/// fuzzing harness) gives the faulting case a defined result so that
/// execution can continue deterministically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DivOutcome {
    /// The quotient (all-ones when the division faulted, mimicking a
    /// suppressed-fault defined result).
    pub quotient: u64,
    /// Whether the division faulted (zero divisor).
    pub faulted: bool,
    /// Divider occupancy in cycles — operand-dependent (early exit),
    /// which is exactly the side channel.
    pub latency: u32,
}

/// Evaluates a division µop, including its timing side channel.
///
/// # Examples
///
/// ```
/// use protean_isa::div_eval;
///
/// let ok = div_eval(100, 7);
/// assert_eq!(ok.quotient, 14);
/// assert!(!ok.faulted);
///
/// let fault = div_eval(100, 0);
/// assert!(fault.faulted);
///
/// // Latency depends on operand magnitudes: a small quotient exits early.
/// assert!(div_eval(u64::MAX, 3).latency > div_eval(8, 3).latency);
/// ```
pub fn div_eval(dividend: u64, divisor: u64) -> DivOutcome {
    if divisor == 0 {
        return DivOutcome {
            quotient: u64::MAX,
            faulted: true,
            latency: DIV_FAULT_LATENCY,
        };
    }
    let quotient = dividend / divisor;
    DivOutcome {
        quotient,
        faulted: false,
        latency: div_latency(quotient),
    }
}

/// Base latency of the divider.
pub const DIV_BASE_LATENCY: u32 = 8;

/// Latency of a faulting division (the fault path is detected early).
pub const DIV_FAULT_LATENCY: u32 = 4;

/// Early-exit divider latency model: one cycle per two quotient bits on
/// top of the base latency (radix-4-style early exit, 8–40 cycles — the
/// gem5 O3 divider spans a similar operand-dependent range).
pub fn div_latency(quotient: u64) -> u32 {
    let significant_bits = 64 - quotient.leading_zeros();
    DIV_BASE_LATENCY + significant_bits / 2
}

/// The *partial* function of the division operands that the divider
/// transmits: its latency and fault outcome. Security contracts that
/// treat divisions as transmitters expose exactly this (paper §II-B1).
pub fn div_leakage(dividend: u64, divisor: u64) -> u64 {
    let o = div_eval(dividend, divisor);
    (o.latency as u64) << 1 | o.faulted as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_basic() {
        assert_eq!(alu_eval(AluOp::Add, 7, 5, Width::W64, 0).0, 12);
        assert_eq!(alu_eval(AluOp::Sub, 7, 5, Width::W64, 0).0, 2);
        assert_eq!(
            alu_eval(AluOp::And, 0b1100, 0b1010, Width::W64, 0).0,
            0b1000
        );
        assert_eq!(alu_eval(AluOp::Or, 0b1100, 0b1010, Width::W64, 0).0, 0b1110);
        assert_eq!(
            alu_eval(AluOp::Xor, 0b1100, 0b1010, Width::W64, 0).0,
            0b0110
        );
        assert_eq!(alu_eval(AluOp::Shl, 1, 8, Width::W64, 0).0, 256);
        assert_eq!(alu_eval(AluOp::Shr, 256, 8, Width::W64, 0).0, 1);
        assert_eq!(
            alu_eval(AluOp::Sar, (-16i64) as u64, 2, Width::W64, 0).0,
            (-4i64) as u64
        );
        assert_eq!(alu_eval(AluOp::Mul, 6, 7, Width::W64, 0).0, 42);
        assert_eq!(
            alu_eval(AluOp::Rol, 0x8000_0000_0000_0000, 1, Width::W64, 0).0,
            1
        );
        assert_eq!(
            alu_eval(AluOp::Ror, 1, 1, Width::W64, 0).0,
            0x8000_0000_0000_0000
        );
    }

    #[test]
    fn alu_partial_width_merges() {
        let (v, _) = alu_eval(AluOp::Add, 0x10, 0x05, Width::W8, 0xaabb_ccdd_0000_0000);
        assert_eq!(v, 0xaabb_ccdd_0000_0015);
    }

    /// Shift counts are masked by operand width: mod 64 for W64, mod 32
    /// for everything narrower (SDM SHL/SHR/SAR).
    #[test]
    fn shift_count_masked_by_width() {
        // shl r32, 33 == shl r32, 1 (count mod 32), NOT zero.
        assert_eq!(alu_eval(AluOp::Shl, 3, 33, Width::W32, 0).0, 6);
        // shl r64, 65 == shl r64, 1 (count mod 64).
        assert_eq!(alu_eval(AluOp::Shl, 3, 65, Width::W64, 0).0, 6);
        // shl r64, 33 really shifts by 33.
        assert_eq!(alu_eval(AluOp::Shl, 1, 33, Width::W64, 0).0, 1u64 << 33);
        // Narrow widths use the 5-bit mask too: shr r16, 34 == shr r16, 2.
        assert_eq!(alu_eval(AluOp::Shr, 0x8000, 34, Width::W16, 0).0, 0x2000);
        // A masked count can still clear a narrow lane: shl al, 17 -> 0.
        assert_eq!(alu_eval(AluOp::Shl, 0xff, 17, Width::W8, 0xaa00).0, 0xaa00);
        // sar r8, 40 == sar r8, 8 -> all sign bits of the lane.
        assert_eq!(alu_eval(AluOp::Sar, 0x80, 40, Width::W8, 0).0, 0xff);
    }

    /// Shr/Sar operate on the width lane, not the full register.
    #[test]
    fn narrow_shifts_use_the_lane() {
        // shr r32: bits above the lane don't leak into the result.
        assert_eq!(
            alu_eval(AluOp::Shr, 0xdead_beef_8000_0000, 31, Width::W32, 0).0,
            1
        );
        // sar r32: the sign bit is bit 31, not bit 63.
        assert_eq!(
            alu_eval(AluOp::Sar, 0x0000_0000_8000_0000, 4, Width::W32, 0).0,
            0xf800_0000
        );
        // ... and a positive lane under a negative full register stays
        // positive.
        assert_eq!(
            alu_eval(AluOp::Sar, 0xffff_ffff_7fff_ffff, 4, Width::W32, 0).0,
            0x07ff_ffff
        );
        // sar r16 replicates bit 15.
        assert_eq!(alu_eval(AluOp::Sar, 0x8000, 1, Width::W16, 0).0, 0xc000);
    }

    /// Rotates are periodic in the lane width after the count mask.
    #[test]
    fn rotates_rotate_within_the_lane() {
        // rol r8, 1 wraps bit 7 into bit 0.
        assert_eq!(alu_eval(AluOp::Rol, 0x80, 1, Width::W8, 0).0, 0x01);
        // ror r8, 1 wraps bit 0 into bit 7.
        assert_eq!(alu_eval(AluOp::Ror, 0x01, 1, Width::W8, 0).0, 0x80);
        // rol r16, 20 == rol r16, 4 after mask-then-mod.
        assert_eq!(alu_eval(AluOp::Rol, 0x1234, 20, Width::W16, 0).0, 0x2341);
        // rol r32, 32 is the identity (count 32 masked to 0 at W32).
        assert_eq!(
            alu_eval(AluOp::Rol, 0x8765_4321, 32, Width::W32, 0).0,
            0x8765_4321
        );
        // Full-width rotates still wrap across all 64 bits.
        assert_eq!(
            alu_eval(AluOp::Ror, 1, 1, Width::W64, 0).0,
            0x8000_0000_0000_0000
        );
        // Bits above the lane never rotate in.
        assert_eq!(
            alu_eval(AluOp::Rol, 0xff00_0000_0000_0080, 1, Width::W8, 0).0,
            0x01
        );
    }

    /// Flags come from the width-truncated result, not the raw 64-bit
    /// value.
    #[test]
    fn flags_from_truncated_result() {
        // W32 add that carries into bit 32: the 32-bit result is zero.
        let (v, f) = alu_eval(AluOp::Add, 0xffff_ffff, 1, Width::W32, u64::MAX);
        assert_eq!(v, 0);
        assert!(f.zf, "truncated-zero result must set ZF");
        assert!(!f.sf);
        // W32 result with bit 31 set: SF comes from the lane's top bit.
        let (_, f) = alu_eval(AluOp::Or, 0x8000_0000, 0, Width::W32, 0);
        assert!(f.sf, "bit 31 is the W32 sign bit");
        assert!(!f.zf);
        // ... whereas bit 63 alone must NOT set SF for a W32 op (it is
        // not even part of the result).
        let (_, f) = alu_eval(AluOp::And, 0x8000_0000_0000_0000, u64::MAX, Width::W32, 0);
        assert!(f.zf);
        assert!(!f.sf);
        // W8 mul whose low byte is zero sets ZF.
        let (_, f) = alu_eval(AluOp::Mul, 0x40, 4, Width::W8, 0);
        assert!(f.zf);
    }

    /// Sub flags (borrow/sign/overflow) are taken at the lane's top bit.
    #[test]
    fn sub_flags_at_width() {
        // 8-bit: 0x80 - 1 = 0x7f overflows (INT8_MIN - 1).
        let (_, f) = alu_eval(AluOp::Sub, 0x80, 1, Width::W8, 0);
        assert!(f.of, "0x80 - 1 overflows at W8");
        assert!(!f.sf);
        assert!(!f.cf);
        // 8-bit: 0 - 1 borrows and is negative in the lane.
        let (_, f) = alu_eval(AluOp::Sub, 0x100, 1, Width::W8, 0);
        assert!(f.cf, "lane 0x00 - 1 borrows even if bit 8 is set");
        assert!(f.sf);
        // 32-bit: operands equal in the lane compare equal regardless of
        // the upper halves.
        let (_, f) = alu_eval(
            AluOp::Sub,
            0xaaaa_0000_0000_0005,
            0xbbbb_0000_0000_0005,
            Width::W32,
            0,
        );
        assert!(f.zf);
        assert!(!f.cf);
        // W64 behaviour is unchanged from the historical semantics.
        let f = Flags::from_sub(3, 5);
        assert_eq!(f, Flags::from_sub_width(3, 5, Width::W64));
        assert!(f.cf && f.sf && !f.zf);
    }

    /// W64 results are bit-for-bit what the historical full-width
    /// semantics produced (the width fixes only change narrow lanes).
    #[test]
    fn w64_matches_full_width_reference() {
        let samples = [
            (0u64, 0u64),
            (1, 1),
            (u64::MAX, 1),
            (0x8000_0000_0000_0000, 63),
            (0xdead_beef_cafe_f00d, 7),
            (42, 64),
            (42, 65),
        ];
        for (a, b) in samples {
            for op in AluOp::ALL {
                let (v, _) = alu_eval(op, a, b, Width::W64, 0);
                let reference = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Shl => a.wrapping_shl(b as u32),
                    AluOp::Shr => a.wrapping_shr(b as u32),
                    AluOp::Sar => (a as i64).wrapping_shr(b as u32) as u64,
                    AluOp::Rol => a.rotate_left((b % 64) as u32),
                    AluOp::Ror => a.rotate_right((b % 64) as u32),
                    AluOp::Mul => a.wrapping_mul(b),
                };
                assert_eq!(v, reference, "{op:?} {a:#x} {b:#x}");
            }
        }
    }

    /// Every op × width: results stay inside the merge contract and
    /// flags match the truncated result.
    #[test]
    fn per_op_per_width_contract() {
        let samples = [
            (0u64, 0u64),
            (0xff, 0x11),
            (0xdead_beef_cafe_f00d, 33),
            (u64::MAX, u64::MAX),
            (0x8000_0000_0000_0000, 1),
            (0x1234_5678_9abc_def0, 40),
        ];
        let old = 0x5a5a_5a5a_5a5a_5a5a;
        for (a, b) in samples {
            for op in AluOp::ALL {
                for width in Width::ALL {
                    let (v, f) = alu_eval(op, a, b, width, old);
                    // Merge contract: bits outside the lane come from
                    // old_dst (W8/W16) or are zero (W32/W64).
                    match width {
                        Width::W64 => {}
                        Width::W32 => assert_eq!(v >> 32, 0, "{op:?} {width:?}"),
                        _ => assert_eq!(v & !width.mask(), old & !width.mask(), "{op:?} {width:?}"),
                    }
                    // ZF/SF describe the lane of the result.
                    let lane = v & width.mask();
                    assert_eq!(f.zf, lane == 0, "{op:?} {width:?} {a:#x} {b:#x}");
                    assert_eq!(
                        f.sf,
                        lane & (1 << (width.bits() - 1)) != 0,
                        "{op:?} {width:?} {a:#x} {b:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn sub_flags_drive_signed_compares() {
        let (_, f) = alu_eval(AluOp::Sub, 3, 5, Width::W64, 0);
        assert!(crate::Cond::Lt.eval(f));
        assert!(crate::Cond::Ult.eval(f));
    }

    #[test]
    fn div_fault_and_latency() {
        assert!(div_eval(1, 0).faulted);
        assert!(!div_eval(0, 1).faulted);
        assert_eq!(div_eval(0, 1).quotient, 0);
        // Latency is monotone in quotient magnitude.
        let small = div_eval(10, 3).latency;
        let large = div_eval(u64::MAX, 1).latency;
        assert!(small < large);
        // Leakage distinguishes operand pairs with different latencies.
        assert_ne!(div_leakage(10, 3), div_leakage(u64::MAX, 1));
        // ... but not ones with identical latency and fault status.
        assert_eq!(div_leakage(10, 3), div_leakage(9, 3));
    }
}
