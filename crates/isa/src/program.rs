//! Programs, functions, and security-class labels.

use crate::{Inst, Op, Reg, RegSet};
use core::fmt;
use std::collections::BTreeMap;

/// The four jointly exhaustive classes of Spectre-vulnerable code
/// (paper §III-A, Fig. 2), forming a hierarchy
/// `Arch ⊂ Cts ⊂ Ct ⊂ Unr`.
///
/// The class of a function determines which ProtCC pass compiles it and
/// which architectural state may hold secrets:
///
/// | Class | May hold secrets in |
/// |-------|---------------------|
/// | [`SecurityClass::Arch`] | unaccessed memory only |
/// | [`SecurityClass::Cts`]  | secret-typed registers/memory |
/// | [`SecurityClass::Ct`]   | untransmitted registers/memory |
/// | [`SecurityClass::Unr`]  | all registers/memory |
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SecurityClass {
    /// Non-secret-accessing code (e.g. sandboxed Wasm, eBPF).
    Arch,
    /// Static constant-time code (statically typable secrecy).
    Cts,
    /// Constant-time code (secrets never reach transmitter operands
    /// architecturally).
    Ct,
    /// Unrestricted code (may transmit secrets architecturally).
    Unr,
}

impl SecurityClass {
    /// All classes, narrowest first.
    pub const ALL: [SecurityClass; 4] = [
        SecurityClass::Arch,
        SecurityClass::Cts,
        SecurityClass::Ct,
        SecurityClass::Unr,
    ];

    /// Returns `true` if code of class `self` is also of class `other`
    /// (the hierarchy is by inclusion: every ARCH program is CTS, etc.).
    ///
    /// # Examples
    ///
    /// ```
    /// use protean_isa::SecurityClass;
    /// assert!(SecurityClass::Arch.is_subclass_of(SecurityClass::Unr));
    /// assert!(!SecurityClass::Unr.is_subclass_of(SecurityClass::Ct));
    /// ```
    pub fn is_subclass_of(self, other: SecurityClass) -> bool {
        self <= other
    }

    /// Canonical short name (`ARCH`, `CTS`, `CT`, `UNR`).
    pub fn name(self) -> &'static str {
        match self {
            SecurityClass::Arch => "ARCH",
            SecurityClass::Cts => "CTS",
            SecurityClass::Ct => "CT",
            SecurityClass::Unr => "UNR",
        }
    }
}

impl fmt::Display for SecurityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The set of transmitter kinds a defense assumes (paper §II-B1).
///
/// Protean is *fully parametric* in its transmitters; the paper's threat
/// model assumes loads, stores, branches, and — newly — division µops.
///
/// # Examples
///
/// ```
/// use protean_isa::TransmitterSet;
///
/// let t = TransmitterSet::paper();
/// assert!(t.divs); // the new gem5 divider channel (§VII-B4b)
/// let legacy = TransmitterSet::legacy();
/// assert!(!legacy.divs); // what prior work assumed
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TransmitterSet {
    /// Loads transmit their address operands at execute.
    pub loads: bool,
    /// Stores transmit their address operands at execute.
    pub stores: bool,
    /// Conditional/indirect branches transmit their condition/target at
    /// resolve.
    pub branches: bool,
    /// Division µops partially transmit both input operands at execute.
    pub divs: bool,
}

impl TransmitterSet {
    /// The paper's threat model: loads, stores, branches, and divs.
    pub fn paper() -> TransmitterSet {
        TransmitterSet {
            loads: true,
            stores: true,
            branches: true,
            divs: true,
        }
    }

    /// Prior work's assumption (STT/SPT): no division channel.
    pub fn legacy() -> TransmitterSet {
        TransmitterSet {
            divs: false,
            ..TransmitterSet::paper()
        }
    }

    /// Returns `true` if `inst` is a transmitter under this set.
    pub fn is_transmitter(&self, inst: &Inst) -> bool {
        !self.sensitive_regs(inst).is_empty() || (self.divs && inst.is_div())
    }

    /// The registers whose values `inst` transmits (its *sensitive*
    /// operands): address registers for memory µops, the flags for
    /// conditional branches, the target for indirect branches, and both
    /// operands for division.
    pub fn sensitive_regs(&self, inst: &Inst) -> RegSet {
        let mut set = RegSet::new();
        if inst.is_load() || inst.is_store() {
            let on = if inst.is_load() {
                self.loads
            } else {
                self.stores
            };
            // `call` is a store; `ret` is a load: both through RSP.
            if on {
                set = set.union(inst.address_regs());
            }
        }
        if self.branches {
            match inst.op {
                Op::Jcc { .. } => {
                    set.insert(Reg::RFLAGS);
                }
                Op::JmpReg { src } => {
                    set.insert(src);
                }
                // `ret` also transmits its loaded target, but that value
                // comes from memory, which the memory-side rules cover.
                _ => {}
            }
        }
        if self.divs {
            if let Op::Div { src1, src2, .. } = inst.op {
                set.insert(src1);
                set.insert(src2);
            }
        }
        set
    }
}

impl Default for TransmitterSet {
    fn default() -> TransmitterSet {
        TransmitterSet::paper()
    }
}

/// A function: a named, class-labelled contiguous range of instructions.
///
/// ProtCC compiles each function independently according to its class
/// (paper §V-A), which is how multi-class programs like nginx are
/// targeted.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// The function's vulnerable-code class.
    pub class: SecurityClass,
}

impl Function {
    /// Returns `true` if instruction index `idx` belongs to the function.
    pub fn contains(&self, idx: u32) -> bool {
        (self.start..self.end).contains(&idx)
    }

    /// The instruction index range.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// Errors produced by [`Program::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProgramError {
    /// A branch targets an instruction index outside the program.
    TargetOutOfRange {
        /// The branching instruction's index.
        inst: u32,
        /// The out-of-range target index.
        target: u32,
    },
    /// The last instruction can fall through off the end of the program.
    FallsOffEnd,
    /// Function ranges are malformed or out of bounds.
    BadFunctionRange {
        /// The offending function's name.
        name: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::TargetOutOfRange { inst, target } => {
                write!(
                    f,
                    "instruction {inst} branches to out-of-range target {target}"
                )
            }
            ProgramError::FallsOffEnd => write!(f, "control can fall off the end of the program"),
            ProgramError::BadFunctionRange { name } => {
                write!(f, "function `{name}` has a malformed instruction range")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A code-pointer relocation: the `MovImm` at instruction `inst` holds
/// the program counter of instruction `target`. Program transforms that
/// insert or move instructions (ProtCC's identity moves) must rewrite
/// the immediate — exactly what a linker's relocation entries are for.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Reloc {
    /// Index of the `MovImm` holding the code pointer.
    pub inst: u32,
    /// Index of the instruction whose PC is materialized.
    pub target: u32,
}

/// A complete program: instructions, function table, and label map.
///
/// Branch targets are instruction indices; the program counter of
/// instruction `i` is `code_base + 4 * i`, which is what the branch
/// predictors and the access predictor index on.
///
/// # Examples
///
/// ```
/// use protean_isa::{Inst, Op, Program};
///
/// let prog = Program::from_insts(vec![
///     Inst::new(Op::Nop),
///     Inst::new(Op::Halt),
/// ]);
/// assert_eq!(prog.len(), 2);
/// assert!(prog.validate().is_ok());
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// The instruction stream.
    pub insts: Vec<Inst>,
    /// Function table (may be empty for raw fuzzing programs).
    pub functions: Vec<Function>,
    /// Label name → instruction index, for diagnostics and disassembly.
    pub labels: BTreeMap<String, u32>,
    /// Code-pointer relocations (see [`Reloc`]).
    pub relocs: Vec<Reloc>,
    /// Base virtual address of the code segment.
    pub code_base: u64,
}

impl Program {
    /// Default code-segment base address.
    pub const DEFAULT_CODE_BASE: u64 = 0x40_0000;

    /// Creates a program from a bare instruction list.
    pub fn from_insts(insts: Vec<Inst>) -> Program {
        Program {
            insts,
            functions: Vec::new(),
            labels: BTreeMap::new(),
            relocs: Vec::new(),
            code_base: Program::DEFAULT_CODE_BASE,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The program counter of instruction index `idx`.
    pub fn pc_of(&self, idx: u32) -> u64 {
        self.code_base + 4 * idx as u64
    }

    /// The instruction index of program counter `pc`, if it lies in the
    /// code segment.
    pub fn index_of_pc(&self, pc: u64) -> Option<u32> {
        if pc < self.code_base || !(pc - self.code_base).is_multiple_of(4) {
            return None;
        }
        let idx = (pc - self.code_base) / 4;
        (idx < self.insts.len() as u64).then_some(idx as u32)
    }

    /// The function containing instruction index `idx`, if any.
    pub fn function_at(&self, idx: u32) -> Option<&Function> {
        self.functions.iter().find(|f| f.contains(idx))
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Checks structural well-formedness: branch targets in range, no
    /// fall-through off the end, sane function ranges.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let n = self.insts.len() as u32;
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(t) = inst.static_target() {
                if t >= n {
                    return Err(ProgramError::TargetOutOfRange {
                        inst: i as u32,
                        target: t,
                    });
                }
            }
        }
        // Falling off the end is an error only along *reachable* paths:
        // instrumentation (e.g. a trailing identity-move insertion after
        // the terminal `halt`) may leave dead code at the end, which can
        // never execute. Indirect branches (`jmpreg`, `ret`) contribute
        // no static edges, so code reachable only through them counts as
        // dead here — permissive, matching the check's structural intent.
        let mut reachable = vec![false; self.insts.len()];
        let mut stack = vec![0u32];
        while let Some(i) = stack.pop() {
            let Some(slot) = reachable.get_mut(i as usize) else {
                continue;
            };
            if *slot {
                continue;
            }
            *slot = true;
            let inst = &self.insts[i as usize];
            if let Some(t) = inst.static_target() {
                stack.push(t);
            }
            if inst.falls_through() {
                if i as usize + 1 == self.insts.len() {
                    return Err(ProgramError::FallsOffEnd);
                }
                stack.push(i + 1);
            }
        }
        for f in &self.functions {
            if f.start > f.end || f.end > n {
                return Err(ProgramError::BadFunctionRange {
                    name: f.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Number of `PROT`-prefixed instructions (instrumentation metric,
    /// paper §IX-A2).
    pub fn prot_count(&self) -> usize {
        self.insts.iter().filter(|i| i.prot).count()
    }

    /// Number of identity moves (`mov r, r`), the other instrumentation
    /// ProtCC inserts.
    pub fn identity_move_count(&self) -> usize {
        self.insts.iter().filter(|i| i.is_identity_move()).count()
    }

    /// Pretty-prints the program with labels and indices.
    pub fn disassemble(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let mut by_index: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, idx) in &self.labels {
            by_index.entry(*idx).or_default().push(name);
        }
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(names) = by_index.get(&(i as u32)) {
                for name in names {
                    let _ = writeln!(out, "{name}:");
                }
            }
            if let Some(func) = self.functions.iter().find(|f| f.start == i as u32) {
                let _ = writeln!(out, "; --- {} ({}) ---", func.name, func.class);
            }
            let _ = writeln!(out, "  {i:4}: {inst}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Mem, Width};

    #[test]
    fn class_hierarchy() {
        use SecurityClass::*;
        for (i, a) in SecurityClass::ALL.iter().enumerate() {
            for (j, b) in SecurityClass::ALL.iter().enumerate() {
                assert_eq!(a.is_subclass_of(*b), i <= j);
            }
        }
        assert_eq!(Arch.name(), "ARCH");
        assert_eq!(Unr.to_string(), "UNR");
    }

    #[test]
    fn transmitter_sensitive_operands() {
        let t = TransmitterSet::paper();
        let load = Inst::new(Op::Load {
            dst: Reg::R0,
            addr: Mem::base(Reg::R1).with_index(Reg::R2, 8),
            size: Width::W64,
        });
        let s = t.sensitive_regs(&load);
        assert!(s.contains(Reg::R1) && s.contains(Reg::R2));
        assert!(!s.contains(Reg::R0));

        let jcc = Inst::new(Op::Jcc {
            cond: Cond::Eq,
            target: 0,
        });
        assert!(t.sensitive_regs(&jcc).contains(Reg::RFLAGS));

        let div = Inst::new(Op::Div {
            dst: Reg::R0,
            src1: Reg::R1,
            src2: Reg::R2,
        });
        assert!(t.is_transmitter(&div));
        assert!(!TransmitterSet::legacy().is_transmitter(&div));

        let add = Inst::new(Op::Alu {
            op: crate::AluOp::Add,
            dst: Reg::R0,
            src1: Reg::R1,
            src2: crate::Operand::Imm(1),
            width: Width::W64,
        });
        assert!(!t.is_transmitter(&add));
    }

    #[test]
    fn ret_is_transmitter_via_rsp() {
        let t = TransmitterSet::paper();
        let ret = Inst::new(Op::Ret);
        assert!(t.is_transmitter(&ret));
        assert!(t.sensitive_regs(&ret).contains(Reg::RSP));
    }

    #[test]
    fn validate_catches_bad_target() {
        let p = Program::from_insts(vec![Inst::new(Op::Jmp { target: 5 })]);
        assert!(matches!(
            p.validate(),
            Err(ProgramError::TargetOutOfRange { inst: 0, target: 5 })
        ));
    }

    #[test]
    fn validate_catches_fallthrough() {
        let p = Program::from_insts(vec![Inst::new(Op::Nop)]);
        assert_eq!(p.validate(), Err(ProgramError::FallsOffEnd));
        let ok = Program::from_insts(vec![Inst::new(Op::Nop), Inst::new(Op::Halt)]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn pc_mapping_roundtrip() {
        let p = Program::from_insts(vec![Inst::new(Op::Nop), Inst::new(Op::Halt)]);
        let pc = p.pc_of(1);
        assert_eq!(p.index_of_pc(pc), Some(1));
        assert_eq!(p.index_of_pc(pc + 1), None);
        assert_eq!(p.index_of_pc(p.code_base + 4 * 99), None);
    }

    #[test]
    fn function_lookup() {
        let mut p = Program::from_insts(vec![
            Inst::new(Op::Nop),
            Inst::new(Op::Ret),
            Inst::new(Op::Halt),
        ]);
        p.functions.push(Function {
            name: "f".into(),
            start: 0,
            end: 2,
            class: SecurityClass::Ct,
        });
        assert_eq!(p.function_at(1).unwrap().name, "f");
        assert!(p.function_at(2).is_none());
        assert_eq!(p.function("f").unwrap().class, SecurityClass::Ct);
        assert!(p.validate().is_ok());
    }
}
