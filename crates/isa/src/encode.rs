//! Binary instruction encoding.
//!
//! Used for the code-size-overhead measurements of paper §IX-A2: the
//! `PROT` prefix costs one byte (like an x86 prefix), and ProtCC's
//! identity moves cost three, so instrumented binaries grow by a few
//! percent — exactly the effect the paper reports.
//!
//! The encoding is a simple variable-length format:
//!
//! ```text
//! [0x50 PROT prefix]? [opcode u8] [operands...]
//! ```
//!
//! It round-trips exactly ([`encode_program`] then [`decode_program`]).

use crate::{AluOp, Cond, Inst, Mem, Op, Operand, Program, Reg, Width};
use core::fmt;

/// The `PROT` prefix byte.
pub const PROT_PREFIX: u8 = 0x50;

/// Errors from [`decode_program`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Input ended in the middle of an instruction.
    UnexpectedEof,
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Malformed operand field.
    BadOperand,
    /// Well-formed encoding of an instruction that violates a
    /// structural rule (see [`Inst::validate`]).
    IllegalInst(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of encoded stream"),
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            DecodeError::BadOperand => write!(f, "malformed operand field"),
            DecodeError::IllegalInst(why) => write!(f, "illegal instruction: {why}"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod opcode {
    pub const MOV_IMM: u8 = 0x01;
    pub const MOV: u8 = 0x02;
    pub const CMOV: u8 = 0x03;
    pub const ALU: u8 = 0x04;
    pub const CMP: u8 = 0x05;
    pub const DIV: u8 = 0x06;
    pub const LOAD: u8 = 0x07;
    pub const STORE: u8 = 0x08;
    pub const JMP: u8 = 0x09;
    pub const JCC: u8 = 0x0a;
    pub const JMPREG: u8 = 0x0b;
    pub const CALL: u8 = 0x0c;
    pub const RET: u8 = 0x0d;
    pub const NOP: u8 = 0x0e;
    pub const HALT: u8 = 0x0f;
}

/// Encodes one instruction, appending to `out`; returns the number of
/// bytes written.
pub fn encode_inst(inst: &Inst, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    if inst.prot {
        out.push(PROT_PREFIX);
    }
    match inst.op {
        Op::MovImm { dst, imm, width } => {
            out.push(opcode::MOV_IMM);
            out.push(pack_reg_width(dst, width));
            put_imm(imm, out);
        }
        Op::Mov { dst, src, width } => {
            out.push(opcode::MOV);
            out.push(pack_reg_width(dst, width));
            out.push(src.index() as u8);
        }
        Op::CMov { cond, dst, src } => {
            out.push(opcode::CMOV);
            out.push(cond_code(cond));
            out.push(dst.index() as u8);
            out.push(src.index() as u8);
        }
        Op::Alu {
            op,
            dst,
            src1,
            src2,
            width,
        } => {
            out.push(opcode::ALU);
            out.push(alu_code(op));
            out.push(pack_reg_width(dst, width));
            out.push(src1.index() as u8);
            put_operand(src2, out);
        }
        Op::Cmp { src1, src2 } => {
            out.push(opcode::CMP);
            out.push(src1.index() as u8);
            put_operand(src2, out);
        }
        Op::Div { dst, src1, src2 } => {
            out.push(opcode::DIV);
            out.push(dst.index() as u8);
            out.push(src1.index() as u8);
            out.push(src2.index() as u8);
        }
        Op::Load { dst, addr, size } => {
            out.push(opcode::LOAD);
            out.push(pack_reg_width(dst, size));
            put_mem(addr, out);
        }
        Op::Store { src, addr, size } => {
            out.push(opcode::STORE);
            out.push(width_code(size));
            put_operand(src, out);
            put_mem(addr, out);
        }
        Op::Jmp { target } => {
            out.push(opcode::JMP);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Op::Jcc { cond, target } => {
            out.push(opcode::JCC);
            out.push(cond_code(cond));
            out.extend_from_slice(&target.to_le_bytes());
        }
        Op::JmpReg { src } => {
            out.push(opcode::JMPREG);
            out.push(src.index() as u8);
        }
        Op::Call { target } => {
            out.push(opcode::CALL);
            out.extend_from_slice(&target.to_le_bytes());
        }
        Op::Ret => out.push(opcode::RET),
        Op::Nop => out.push(opcode::NOP),
        Op::Halt => out.push(opcode::HALT),
    }
    out.len() - start
}

/// Encodes a whole program.
pub fn encode_program(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(program.len() * 4);
    for inst in &program.insts {
        encode_inst(inst, &mut out);
    }
    out
}

/// Encoded size of a program in bytes — the paper's code-size metric.
///
/// # Examples
///
/// ```
/// use protean_isa::{assemble, code_size};
///
/// let base = assemble("mov r0, r1\nhalt\n").unwrap();
/// let inst = assemble("prot mov r0, r1\nmov r1, r1\nhalt\n").unwrap();
/// assert!(code_size(&inst) > code_size(&base));
/// ```
pub fn code_size(program: &Program) -> usize {
    encode_program(program).len()
}

/// Decodes a byte stream produced by [`encode_program`].
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated or malformed input.
pub fn decode_program(bytes: &[u8]) -> Result<Vec<Inst>, DecodeError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let mut insts = Vec::new();
    while !cursor.done() {
        insts.push(decode_inst(&mut cursor)?);
    }
    Ok(insts)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let mut buf = [0u8; 4];
        for b in &mut buf {
            *b = self.u8()?;
        }
        Ok(u32::from_le_bytes(buf))
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let b = self.u8()? as usize;
        if b >= Reg::COUNT {
            return Err(DecodeError::BadOperand);
        }
        Ok(Reg::new(b))
    }

    fn imm(&mut self) -> Result<u64, DecodeError> {
        let len = self.u8()? as usize;
        if len > 8 {
            return Err(DecodeError::BadOperand);
        }
        let mut buf = [0u8; 8];
        for b in buf.iter_mut().take(len) {
            *b = self.u8()?;
        }
        Ok(u64::from_le_bytes(buf))
    }

    fn operand(&mut self) -> Result<Operand, DecodeError> {
        match self.u8()? {
            0 => Ok(Operand::Reg(self.reg()?)),
            1 => Ok(Operand::Imm(self.imm()?)),
            _ => Err(DecodeError::BadOperand),
        }
    }

    fn mem(&mut self) -> Result<Mem, DecodeError> {
        let flags = self.u8()?;
        let mut mem = Mem::default();
        if flags & 1 != 0 {
            mem.base = Some(self.reg()?);
        }
        if flags & 2 != 0 {
            let reg = self.reg()?;
            let scale = self.u8()?;
            if !matches!(scale, 1 | 2 | 4 | 8) {
                return Err(DecodeError::BadOperand);
            }
            mem.index = Some((reg, scale));
        }
        if flags & 4 != 0 {
            mem.disp = self.imm()? as i64;
        }
        Ok(mem)
    }
}

fn decode_inst(c: &mut Cursor<'_>) -> Result<Inst, DecodeError> {
    let mut b = c.u8()?;
    let prot = b == PROT_PREFIX;
    if prot {
        b = c.u8()?;
    }
    let op = match b {
        opcode::MOV_IMM => {
            let (dst, width) = unpack_reg_width(c.u8()?)?;
            Op::MovImm {
                dst,
                imm: c.imm()?,
                width,
            }
        }
        opcode::MOV => {
            let (dst, width) = unpack_reg_width(c.u8()?)?;
            Op::Mov {
                dst,
                src: c.reg()?,
                width,
            }
        }
        opcode::CMOV => Op::CMov {
            cond: decode_cond(c.u8()?)?,
            dst: c.reg()?,
            src: c.reg()?,
        },
        opcode::ALU => {
            let op = decode_alu(c.u8()?)?;
            let (dst, width) = unpack_reg_width(c.u8()?)?;
            Op::Alu {
                op,
                dst,
                src1: c.reg()?,
                src2: c.operand()?,
                width,
            }
        }
        opcode::CMP => Op::Cmp {
            src1: c.reg()?,
            src2: c.operand()?,
        },
        opcode::DIV => Op::Div {
            dst: c.reg()?,
            src1: c.reg()?,
            src2: c.reg()?,
        },
        opcode::LOAD => {
            let (dst, size) = unpack_reg_width(c.u8()?)?;
            Op::Load {
                dst,
                addr: c.mem()?,
                size,
            }
        }
        opcode::STORE => {
            let size = decode_width(c.u8()?)?;
            Op::Store {
                src: c.operand()?,
                addr: c.mem()?,
                size,
            }
        }
        opcode::JMP => Op::Jmp { target: c.u32()? },
        opcode::JCC => Op::Jcc {
            cond: decode_cond(c.u8()?)?,
            target: c.u32()?,
        },
        opcode::JMPREG => Op::JmpReg { src: c.reg()? },
        opcode::CALL => Op::Call { target: c.u32()? },
        opcode::RET => Op::Ret,
        opcode::NOP => Op::Nop,
        opcode::HALT => Op::Halt,
        other => return Err(DecodeError::BadOpcode(other)),
    };
    let inst = Inst { op, prot };
    inst.validate().map_err(DecodeError::IllegalInst)?;
    Ok(inst)
}

fn put_imm(imm: u64, out: &mut Vec<u8>) {
    let bytes = imm.to_le_bytes();
    let len = (8 - imm.leading_zeros() as usize / 8).max(if imm == 0 { 0 } else { 1 });
    out.push(len as u8);
    out.extend_from_slice(&bytes[..len]);
}

fn put_operand(op: Operand, out: &mut Vec<u8>) {
    match op {
        Operand::Reg(r) => {
            out.push(0);
            out.push(r.index() as u8);
        }
        Operand::Imm(v) => {
            out.push(1);
            put_imm(v, out);
        }
    }
}

fn put_mem(mem: Mem, out: &mut Vec<u8>) {
    let mut flags = 0u8;
    if mem.base.is_some() {
        flags |= 1;
    }
    if mem.index.is_some() {
        flags |= 2;
    }
    if mem.disp != 0 {
        flags |= 4;
    }
    out.push(flags);
    if let Some(b) = mem.base {
        out.push(b.index() as u8);
    }
    if let Some((r, s)) = mem.index {
        out.push(r.index() as u8);
        out.push(s);
    }
    if mem.disp != 0 {
        put_imm(mem.disp as u64, out);
    }
}

fn pack_reg_width(reg: Reg, width: Width) -> u8 {
    (reg.index() as u8) | (width_code(width) << 6)
}

fn unpack_reg_width(b: u8) -> Result<(Reg, Width), DecodeError> {
    let reg = (b & 0x3f) as usize;
    if reg >= Reg::COUNT {
        return Err(DecodeError::BadOperand);
    }
    Ok((Reg::new(reg), decode_width(b >> 6)?))
}

fn width_code(w: Width) -> u8 {
    match w {
        Width::W8 => 0,
        Width::W16 => 1,
        Width::W32 => 2,
        Width::W64 => 3,
    }
}

fn decode_width(b: u8) -> Result<Width, DecodeError> {
    match b {
        0 => Ok(Width::W8),
        1 => Ok(Width::W16),
        2 => Ok(Width::W32),
        3 => Ok(Width::W64),
        _ => Err(DecodeError::BadOperand),
    }
}

fn alu_code(op: AluOp) -> u8 {
    AluOp::ALL.iter().position(|a| *a == op).unwrap() as u8
}

fn decode_alu(b: u8) -> Result<AluOp, DecodeError> {
    AluOp::ALL
        .get(b as usize)
        .copied()
        .ok_or(DecodeError::BadOperand)
}

fn cond_code(c: Cond) -> u8 {
    Cond::ALL.iter().position(|a| *a == c).unwrap() as u8
}

fn decode_cond(b: u8) -> Result<Cond, DecodeError> {
    Cond::ALL
        .get(b as usize)
        .copied()
        .ok_or(DecodeError::BadOperand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn roundtrip_representative_program() {
        let p = assemble(
            r#"
            mov r0, 0
            mov.w r1, 0xdeadbeef
            prot add r1, r0, 7
            sub.b r2, r1, r0
            cmov.ne r2, r1
            div r3, r1, r2
            prot load r4, [r0 + r1*4 + 0x20]
            load.h r5, [rsp]
            store [rsp - 16], r4
            store.b [r0], 0xff
            cmp r4, 0x123456789a
            jeq @12
            jmpreg r2
            call @14
            ret
            nop
            halt
            "#,
        )
        .unwrap();
        let bytes = encode_program(&p);
        let decoded = decode_program(&bytes).unwrap();
        assert_eq!(decoded, p.insts);
    }

    #[test]
    fn prot_prefix_costs_one_byte() {
        let base = assemble("mov r0, r1\nhalt\n").unwrap();
        let prot = assemble("prot mov r0, r1\nhalt\n").unwrap();
        assert_eq!(code_size(&prot), code_size(&base) + 1);
    }

    #[test]
    fn zero_imm_is_compact() {
        let p = assemble("mov r0, 0\nmov r1, 0xffffffffffffffff\nhalt\n").unwrap();
        let bytes = encode_program(&p);
        // mov r0, 0 is 3 bytes; mov r1, MAX is 11.
        assert_eq!(bytes.len(), 3 + 11 + 1);
    }

    #[test]
    fn truncated_stream_errors() {
        let p = assemble("mov r0, 0x1234\nhalt\n").unwrap();
        let bytes = encode_program(&p);
        for cut in 1..bytes.len() - 1 {
            // Every strict prefix either decodes to fewer insts or errors;
            // it must never panic.
            let _ = decode_program(&bytes[..cut]);
        }
        assert!(matches!(
            decode_program(&[opcode::MOV_IMM]),
            Err(DecodeError::UnexpectedEof)
        ));
        assert!(matches!(
            decode_program(&[0xee]),
            Err(DecodeError::BadOpcode(0xee))
        ));
    }
}
