//! Instruction definitions.
//!
//! Every instruction in this ISA corresponds to a single micro-op, so the
//! ProtISA rule that "each micro-op inherits any PROT prefix on the
//! instruction" (paper §IV-B) is satisfied by construction. The two
//! exceptions are [`Op::Call`] and [`Op::Ret`], which bundle a stack
//! access with a control transfer — exactly as x86 microcode does — and
//! are treated by the pipeline as a store-µop and load-µop respectively
//! (the `ret` stack load is one of the hottest transmitters SPT-SB stalls,
//! paper §IX-A1).

use crate::{Reg, RegSet};
use core::fmt;

/// ALU operation kinds for [`Op::Alu`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction (sets carry/overflow like x86 `sub`).
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (count masked by operand width: mod 64 for
    /// W64, mod 32 otherwise, per the x86 contract).
    Shl,
    /// Logical shift right of the width lane.
    Shr,
    /// Arithmetic shift right of the width lane (sign bit is the
    /// width's top bit, not bit 63).
    Sar,
    /// Rotate left (used heavily by the crypto workloads).
    Rol,
    /// Rotate right.
    Ror,
    /// Low 64 bits of the product.
    Mul,
}

impl AluOp {
    /// All ALU operations, for random generation.
    pub const ALL: [AluOp; 11] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Rol,
        AluOp::Ror,
        AluOp::Mul,
    ];

    /// Mnemonic used by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Rol => "rol",
            AluOp::Ror => "ror",
            AluOp::Mul => "mul",
        }
    }
}

/// Condition codes for conditional branches and conditional moves,
/// evaluated against [`Reg::RFLAGS`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below.
    Ult,
    /// Unsigned below-or-equal.
    Ule,
    /// Unsigned above.
    Ugt,
    /// Unsigned above-or-equal.
    Uge,
}

impl Cond {
    /// All condition codes, for random generation.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::Ult,
        Cond::Ule,
        Cond::Ugt,
        Cond::Uge,
    ];

    /// The mnemonic suffix (`jeq`, `jlt`, …, `cmov.eq`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::Ult => "ult",
            Cond::Ule => "ule",
            Cond::Ugt => "ugt",
            Cond::Uge => "uge",
        }
    }

    /// Evaluates the condition against a packed flags value (see
    /// [`Flags`]).
    pub fn eval(self, flags: Flags) -> bool {
        match self {
            Cond::Eq => flags.zf,
            Cond::Ne => !flags.zf,
            Cond::Lt => flags.sf != flags.of,
            Cond::Le => flags.zf || (flags.sf != flags.of),
            Cond::Gt => !flags.zf && (flags.sf == flags.of),
            Cond::Ge => flags.sf == flags.of,
            Cond::Ult => flags.cf,
            Cond::Ule => flags.cf || flags.zf,
            Cond::Ugt => !flags.cf && !flags.zf,
            Cond::Uge => !flags.cf,
        }
    }
}

/// The x86-style condition flags packed into [`Reg::RFLAGS`].
///
/// # Examples
///
/// ```
/// use protean_isa::{Cond, Flags};
///
/// let f = Flags::from_sub(3, 5); // 3 - 5
/// assert!(Cond::Lt.eval(f));
/// assert!(Cond::Ult.eval(f)); // 3 < 5 unsigned too
/// assert_eq!(Flags::from_bits(f.to_bits()), f);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag (unsigned borrow for subtraction).
    pub cf: bool,
    /// Overflow flag (signed overflow for subtraction).
    pub of: bool,
}

impl Flags {
    /// Flags produced by computing `a - b` (the semantics of `cmp a, b`).
    pub fn from_sub(a: u64, b: u64) -> Flags {
        Flags::from_sub_width(a, b, Width::W64)
    }

    /// Flags produced by an `a - b` performed at `width`: the operands
    /// are truncated to the width lane first, and the borrow, sign, and
    /// overflow are taken at that lane's top bit (x86 `sub r32, r32`
    /// sets SF from bit 31, not bit 63).
    pub fn from_sub_width(a: u64, b: u64, width: Width) -> Flags {
        let mask = width.mask();
        let sign = 1u64 << (width.bits() - 1);
        let (am, bm) = (a & mask, b & mask);
        let res = am.wrapping_sub(bm) & mask;
        Flags {
            zf: res == 0,
            sf: res & sign != 0,
            cf: am < bm,
            of: ((am ^ bm) & (am ^ res)) & sign != 0,
        }
    }

    /// Flags produced by a logical/arithmetic result (carry/overflow
    /// cleared, as for x86 logical ops).
    pub fn from_result(res: u64) -> Flags {
        Flags::from_result_width(res, Width::W64)
    }

    /// Flags produced by a logical/arithmetic result computed at `width`:
    /// ZF/SF are taken from the width-truncated lane (x86 `add r32, r32`
    /// reports ZF for a zero 32-bit result even if upstream math carried
    /// into bit 32, and SF from the lane's top bit).
    pub fn from_result_width(res: u64, width: Width) -> Flags {
        let res = res & width.mask();
        Flags {
            zf: res == 0,
            sf: res & (1u64 << (width.bits() - 1)) != 0,
            cf: false,
            of: false,
        }
    }

    /// Packs the flags into a register value.
    pub fn to_bits(self) -> u64 {
        (self.zf as u64) | (self.sf as u64) << 1 | (self.cf as u64) << 2 | (self.of as u64) << 3
    }

    /// Unpacks flags from a register value (ignores other bits).
    pub fn from_bits(bits: u64) -> Flags {
        Flags {
            zf: bits & 1 != 0,
            sf: bits & 2 != 0,
            cf: bits & 4 != 0,
            of: bits & 8 != 0,
        }
    }
}

/// Operand width for ALU-class operations.
///
/// `W32` zero-extends into the full register (x86 semantics — the source
/// of SPT's 32-bit untaint performance bug, paper §VII-B4c). `W8`/`W16`
/// merge into the low bits, preserving the upper bits, which is why
/// ProtISA handles sub-register updates conservatively (§IV-B1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Width {
    /// 1 byte (partial register write).
    W8,
    /// 2 bytes (partial register write).
    W16,
    /// 4 bytes (zero-extends into the full register).
    W32,
    /// 8 bytes (the default full width).
    #[default]
    W64,
}

impl Width {
    /// All widths, for random generation.
    pub const ALL: [Width; 4] = [Width::W8, Width::W16, Width::W32, Width::W64];

    /// Number of bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    /// Number of bits.
    pub fn bits(self) -> u32 {
        self.bytes() as u32 * 8
    }

    /// The mask x86 applies to a shift/rotate count at this operand
    /// width: counts are taken mod 64 for 64-bit operands and mod 32
    /// for everything narrower (SDM vol. 2, SHL/SHR/SAR/ROL/ROR).
    pub fn shift_count_mask(self) -> u64 {
        match self {
            Width::W64 => 63,
            _ => 31,
        }
    }

    /// Bitmask covering the width.
    pub fn mask(self) -> u64 {
        match self {
            Width::W8 => 0xff,
            Width::W16 => 0xffff,
            Width::W32 => 0xffff_ffff,
            Width::W64 => u64::MAX,
        }
    }

    /// Returns `true` for widths that only partially update the
    /// destination register (`W8`/`W16`).
    pub fn is_partial(self) -> bool {
        matches!(self, Width::W8 | Width::W16)
    }

    /// Applies this width's write semantics: merge `value` into `old`.
    ///
    /// `W64` replaces, `W32` zero-extends, `W8`/`W16` merge low bits.
    pub fn apply(self, old: u64, value: u64) -> u64 {
        match self {
            Width::W64 => value,
            Width::W32 => value & 0xffff_ffff,
            Width::W16 => (old & !0xffff) | (value & 0xffff),
            Width::W8 => (old & !0xff) | (value & 0xff),
        }
    }
}

/// A source operand: either a register or an immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand.
    Imm(u64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Returns `true` for immediate operands.
    pub fn is_imm(self) -> bool {
        matches!(self, Operand::Imm(_))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Operand {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => {
                if *v > 0xffff {
                    write!(f, "{:#x}", v)
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// An x86-style memory operand: `[base + index*scale + disp]`.
///
/// The CT observer mode exposes the *individual* address registers, not
/// just their sum (AMuLeT\* enhancement, paper §VII-B1b).
///
/// # Examples
///
/// ```
/// use protean_isa::{Mem, Reg};
///
/// let m = Mem::base(Reg::R0).with_index(Reg::R1, 8).with_disp(0x40);
/// assert_eq!(m.to_string(), "[r0 + r1*8 + 0x40]");
/// assert_eq!(m.regs().len(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Mem {
    /// Base register.
    pub base: Option<Reg>,
    /// Index register and scale (1, 2, 4, or 8).
    pub index: Option<(Reg, u8)>,
    /// Signed displacement.
    pub disp: i64,
}

impl Mem {
    /// A memory operand with only a base register.
    pub fn base(base: Reg) -> Mem {
        Mem {
            base: Some(base),
            ..Mem::default()
        }
    }

    /// A memory operand with only an absolute displacement.
    pub fn abs(addr: u64) -> Mem {
        Mem {
            disp: addr as i64,
            ..Mem::default()
        }
    }

    /// Adds an index register with a scale factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4, or 8.
    pub fn with_index(mut self, index: Reg, scale: u8) -> Mem {
        assert!(
            matches!(scale, 1 | 2 | 4 | 8),
            "scale must be 1, 2, 4, or 8"
        );
        self.index = Some((index, scale));
        self
    }

    /// Adds a displacement.
    pub fn with_disp(mut self, disp: i64) -> Mem {
        self.disp = disp;
        self
    }

    /// The set of address registers (these are the *sensitive* operands of
    /// load/store transmitters, paper §II-B1).
    pub fn regs(&self) -> RegSet {
        let mut set = RegSet::new();
        if let Some(b) = self.base {
            set.insert(b);
        }
        if let Some((i, _)) = self.index {
            set.insert(i);
        }
        set
    }

    /// Computes the effective address given a register lookup function.
    pub fn effective_address(&self, read: impl Fn(Reg) -> u64) -> u64 {
        let mut addr = self.disp as u64;
        if let Some(b) = self.base {
            addr = addr.wrapping_add(read(b));
        }
        if let Some((i, s)) = self.index {
            addr = addr.wrapping_add(read(i).wrapping_mul(s as u64));
        }
        addr
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            first = false;
        }
        if let Some((i, s)) = self.index {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{i}*{s}")?;
            first = false;
        }
        if self.disp != 0 || first {
            if first {
                write!(f, "{:#x}", self.disp)?;
            } else if self.disp < 0 {
                write!(f, " - {:#x}", -self.disp)?;
            } else {
                write!(f, " + {:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// A micro-op operation.
///
/// Branch targets are instruction indices into the owning
/// [`Program`](crate::Program) (resolved from labels by the builder or
/// assembler).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // variant fields are self-describing (dst/src/imm/...)
pub enum Op {
    /// `dst = imm` (does not write flags).
    MovImm { dst: Reg, imm: u64, width: Width },
    /// `dst = src` (does not write flags). An *unprefixed* identity move
    /// (`mov r, r`) is ProtISA's register-unprotect idiom (§IV-B3).
    Mov { dst: Reg, src: Reg, width: Width },
    /// `dst = if cond { src } else { dst }` — reads `RFLAGS`, `src`, and
    /// `dst`; does not write flags. The constant-time selection idiom.
    CMov { cond: Cond, dst: Reg, src: Reg },
    /// `dst = src1 <op> src2`; writes `RFLAGS`.
    Alu {
        op: AluOp,
        dst: Reg,
        src1: Reg,
        src2: Operand,
        width: Width,
    },
    /// Compare: writes `RFLAGS` only.
    Cmp { src1: Reg, src2: Operand },
    /// `dst = src1 / src2` — a **transmitter**: the gem5 divider leaks a
    /// function of both operands via early-exit latency and conditional
    /// faulting (paper §VII-B4b). Division by zero raises a fault.
    Div { dst: Reg, src1: Reg, src2: Reg },
    /// `dst = zext(mem[ea])` — narrow loads zero-extend into the full
    /// register (there is no partial-register load).
    Load { dst: Reg, addr: Mem, size: Width },
    /// `mem[ea] = src` (low `size` bytes).
    Store {
        src: Operand,
        addr: Mem,
        size: Width,
    },
    /// Direct unconditional jump (target is static: not a transmitter).
    Jmp { target: u32 },
    /// Conditional branch: reads `RFLAGS`; a **transmitter** of its
    /// condition.
    Jcc { cond: Cond, target: u32 },
    /// Indirect jump through a register: a **transmitter** of its target.
    JmpReg { src: Reg },
    /// Call: `rsp -= 8; mem[rsp] = return_pc; goto target`. A store-µop
    /// plus a direct branch.
    Call { target: u32 },
    /// Return: `target = mem[rsp]; rsp += 8; goto target`. A load-µop plus
    /// an indirect branch — a transmitter of both its address (`rsp`) and
    /// its loaded target.
    Ret,
    /// No operation.
    Nop,
    /// Stop the machine (architectural end of the program).
    Halt,
}

/// An instruction: an operation plus the ProtISA `PROT` prefix bit.
///
/// `PROT`-prefixed instructions add their output registers to the
/// architectural ProtSet; unprefixed instructions remove their output
/// registers and any read memory bytes from it (paper §IV-B).
///
/// # Examples
///
/// ```
/// use protean_isa::{Inst, Op, Reg, Width};
///
/// let i = Inst::prot(Op::Mov { dst: Reg::R0, src: Reg::R1, width: Width::W64 });
/// assert!(i.prot);
/// assert!(i.dst_regs().contains(Reg::R0));
/// assert!(i.src_regs().contains(Reg::R1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// The `PROT` prefix bit.
    pub prot: bool,
}

impl Inst {
    /// An unprefixed instruction.
    pub fn new(op: Op) -> Inst {
        Inst { op, prot: false }
    }

    /// A `PROT`-prefixed instruction.
    pub fn prot(op: Op) -> Inst {
        Inst { op, prot: true }
    }

    /// Output registers, including implicit ones (`RFLAGS` for ALU ops and
    /// compares, `RSP` for call/ret).
    pub fn dst_regs(&self) -> RegSet {
        let mut set = RegSet::new();
        match self.op {
            Op::MovImm { dst, .. } | Op::Mov { dst, .. } | Op::CMov { dst, .. } => {
                set.insert(dst);
            }
            Op::Alu { dst, .. } => {
                set.insert(dst);
                set.insert(Reg::RFLAGS);
            }
            Op::Cmp { .. } => {
                set.insert(Reg::RFLAGS);
            }
            Op::Div { dst, .. } => {
                set.insert(dst);
            }
            Op::Load { dst, .. } => {
                set.insert(dst);
            }
            Op::Call { .. } | Op::Ret => {
                set.insert(Reg::RSP);
            }
            Op::Store { .. }
            | Op::Jmp { .. }
            | Op::Jcc { .. }
            | Op::JmpReg { .. }
            | Op::Nop
            | Op::Halt => {}
        }
        set
    }

    /// The primary explicit destination register, if any (excludes the
    /// implicit `RFLAGS`/`RSP` outputs).
    pub fn explicit_dst(&self) -> Option<Reg> {
        match self.op {
            Op::MovImm { dst, .. }
            | Op::Mov { dst, .. }
            | Op::CMov { dst, .. }
            | Op::Alu { dst, .. }
            | Op::Div { dst, .. }
            | Op::Load { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// Checks ProtISA's structural legality rule: `RFLAGS` is written
    /// implicitly — by ALU ops and compares — and never named as an
    /// explicit destination. This is the single definition of
    /// instruction legality; [`decode_program`](crate::decode_program)
    /// and [`assemble`](crate::assemble) both reject instructions that
    /// fail it, so no legal program stream contains one.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated rule.
    ///
    /// # Examples
    ///
    /// ```
    /// use protean_isa::{Cond, Inst, Op, Reg};
    ///
    /// let bad = Inst::new(Op::CMov { cond: Cond::Eq, dst: Reg::RFLAGS, src: Reg::R0 });
    /// assert!(bad.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.explicit_dst() == Some(Reg::RFLAGS) {
            return Err("rflags cannot be an explicit destination");
        }
        Ok(())
    }

    /// Input registers, including implicit ones (`RFLAGS` for conditional
    /// ops, `RSP` for call/ret, the old destination for partial-width and
    /// conditional writes).
    pub fn src_regs(&self) -> RegSet {
        let mut set = RegSet::new();
        match self.op {
            Op::MovImm { dst, width, .. } => {
                if width.is_partial() {
                    set.insert(dst);
                }
            }
            Op::Mov { dst, src, width } => {
                set.insert(src);
                if width.is_partial() {
                    set.insert(dst);
                }
            }
            Op::CMov { dst, src, .. } => {
                set.insert(src);
                set.insert(dst);
                set.insert(Reg::RFLAGS);
            }
            Op::Alu {
                dst,
                src1,
                src2,
                width,
                ..
            } => {
                set.insert(src1);
                if let Operand::Reg(r) = src2 {
                    set.insert(r);
                }
                if width.is_partial() {
                    set.insert(dst);
                }
            }
            Op::Cmp { src1, src2 } => {
                set.insert(src1);
                if let Operand::Reg(r) = src2 {
                    set.insert(r);
                }
            }
            Op::Div { src1, src2, .. } => {
                set.insert(src1);
                set.insert(src2);
            }
            Op::Load { addr, .. } => {
                set = set.union(addr.regs());
            }
            Op::Store { src, addr, .. } => {
                if let Operand::Reg(r) = src {
                    set.insert(r);
                }
                set = set.union(addr.regs());
            }
            Op::Jcc { .. } => {
                set.insert(Reg::RFLAGS);
            }
            Op::JmpReg { src } => {
                set.insert(src);
            }
            Op::Call { .. } | Op::Ret => {
                set.insert(Reg::RSP);
            }
            Op::Jmp { .. } | Op::Nop | Op::Halt => {}
        }
        set
    }

    /// Returns `true` if the instruction performs a memory read
    /// (loads and `ret`).
    pub fn is_load(&self) -> bool {
        matches!(self.op, Op::Load { .. } | Op::Ret)
    }

    /// Returns `true` if the instruction performs a memory write
    /// (stores and `call`).
    pub fn is_store(&self) -> bool {
        matches!(self.op, Op::Store { .. } | Op::Call { .. })
    }

    /// Returns `true` for any memory access.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Returns `true` for control-flow instructions.
    pub fn is_branch(&self) -> bool {
        matches!(
            self.op,
            Op::Jmp { .. } | Op::Jcc { .. } | Op::JmpReg { .. } | Op::Call { .. } | Op::Ret
        )
    }

    /// Returns `true` for conditional branches.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.op, Op::Jcc { .. })
    }

    /// Returns `true` for indirect branches (`jmpreg`, `ret`).
    pub fn is_indirect_branch(&self) -> bool {
        matches!(self.op, Op::JmpReg { .. } | Op::Ret)
    }

    /// Returns `true` for the division µop.
    pub fn is_div(&self) -> bool {
        matches!(self.op, Op::Div { .. })
    }

    /// The memory operand, if the instruction has an explicit one.
    ///
    /// `call`/`ret` access memory implicitly through `RSP` and return
    /// `None` here; use [`Inst::address_regs`] for the sensitive address
    /// registers of *all* memory µops.
    pub fn mem_operand(&self) -> Option<Mem> {
        match self.op {
            Op::Load { addr, .. } | Op::Store { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// Registers that form the memory address, for memory µops
    /// (the sensitive operands of load/store transmitters).
    pub fn address_regs(&self) -> RegSet {
        match self.op {
            Op::Load { addr, .. } | Op::Store { addr, .. } => addr.regs(),
            Op::Call { .. } | Op::Ret => RegSet::from_regs([Reg::RSP]),
            _ => RegSet::new(),
        }
    }

    /// Memory access size in bytes, for memory µops.
    pub fn mem_size(&self) -> Option<u64> {
        match self.op {
            Op::Load { size, .. } | Op::Store { size, .. } => Some(size.bytes()),
            Op::Call { .. } | Op::Ret => Some(8),
            _ => None,
        }
    }

    /// The width of the register write, if any.
    ///
    /// Loads always report `W64`: narrow loads zero-extend into the full
    /// register (`movzx` / wasm `i32.load8_u` semantics) — `size` is only
    /// the *memory access* width.
    pub fn write_width(&self) -> Option<Width> {
        match self.op {
            Op::MovImm { width, .. } | Op::Mov { width, .. } | Op::Alu { width, .. } => Some(width),
            Op::Load { .. } | Op::CMov { .. } | Op::Div { .. } => Some(Width::W64),
            Op::Call { .. } | Op::Ret => Some(Width::W64),
            _ => None,
        }
    }

    /// Returns `true` if this instruction can fall through to the next.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self.op,
            Op::Jmp { .. } | Op::JmpReg { .. } | Op::Ret | Op::Halt
        )
    }

    /// The static branch target, if any (`jmp`, `jcc`, `call`).
    pub fn static_target(&self) -> Option<u32> {
        match self.op {
            Op::Jmp { target } | Op::Jcc { target, .. } | Op::Call { target } => Some(target),
            _ => None,
        }
    }

    /// Rewrites the static branch target (used by program transforms that
    /// insert instructions).
    pub fn set_static_target(&mut self, target: u32) {
        match &mut self.op {
            Op::Jmp { target: t } | Op::Jcc { target: t, .. } | Op::Call { target: t } => {
                *t = target;
            }
            _ => panic!("instruction has no static target: {self}"),
        }
    }

    /// Returns `true` for identity moves (`mov r, r` at full width) —
    /// ProtISA's register-unprotect idiom when unprefixed (§IV-B3).
    pub fn is_identity_move(&self) -> bool {
        matches!(self.op, Op::Mov { dst, src, width: Width::W64 } if dst == src)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prot {
            write!(f, "prot ")?;
        }
        match self.op {
            Op::MovImm { dst, imm, width } => {
                write!(f, "mov{} {dst}, {}", width_suffix(width), Operand::Imm(imm))
            }
            Op::Mov { dst, src, width } => {
                write!(f, "mov{} {dst}, {src}", width_suffix(width))
            }
            Op::CMov { cond, dst, src } => write!(f, "cmov.{} {dst}, {src}", cond.mnemonic()),
            Op::Alu {
                op,
                dst,
                src1,
                src2,
                width,
            } => write!(
                f,
                "{}{} {dst}, {src1}, {src2}",
                op.mnemonic(),
                width_suffix(width)
            ),
            Op::Cmp { src1, src2 } => write!(f, "cmp {src1}, {src2}"),
            Op::Div { dst, src1, src2 } => write!(f, "div {dst}, {src1}, {src2}"),
            Op::Load { dst, addr, size } => {
                write!(f, "load{} {dst}, {addr}", width_suffix(size))
            }
            Op::Store { src, addr, size } => {
                write!(f, "store{} {addr}, {src}", width_suffix(size))
            }
            Op::Jmp { target } => write!(f, "jmp @{target}"),
            Op::Jcc { cond, target } => write!(f, "j{} @{target}", cond.mnemonic()),
            Op::JmpReg { src } => write!(f, "jmpreg {src}"),
            Op::Call { target } => write!(f, "call @{target}"),
            Op::Ret => write!(f, "ret"),
            Op::Nop => write!(f, "nop"),
            Op::Halt => write!(f, "halt"),
        }
    }
}

fn width_suffix(width: Width) -> &'static str {
    match width {
        Width::W8 => ".b",
        Width::W16 => ".h",
        Width::W32 => ".w",
        Width::W64 => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(dst: Reg, src1: Reg, src2: Operand) -> Inst {
        Inst::new(Op::Alu {
            op: AluOp::Add,
            dst,
            src1,
            src2,
            width: Width::W64,
        })
    }

    #[test]
    fn alu_writes_flags() {
        let i = alu(Reg::R0, Reg::R1, Operand::Imm(4));
        assert!(i.dst_regs().contains(Reg::R0));
        assert!(i.dst_regs().contains(Reg::RFLAGS));
        assert!(i.src_regs().contains(Reg::R1));
        assert!(!i.src_regs().contains(Reg::R0));
    }

    #[test]
    fn partial_width_reads_old_dst() {
        let i = Inst::new(Op::Mov {
            dst: Reg::R0,
            src: Reg::R1,
            width: Width::W8,
        });
        assert!(i.src_regs().contains(Reg::R0));
        let full = Inst::new(Op::Mov {
            dst: Reg::R0,
            src: Reg::R1,
            width: Width::W64,
        });
        assert!(!full.src_regs().contains(Reg::R0));
    }

    #[test]
    fn cmov_reads_flags_and_dst() {
        let i = Inst::new(Op::CMov {
            cond: Cond::Eq,
            dst: Reg::R2,
            src: Reg::R3,
        });
        let srcs = i.src_regs();
        assert!(srcs.contains(Reg::RFLAGS));
        assert!(srcs.contains(Reg::R2));
        assert!(srcs.contains(Reg::R3));
    }

    #[test]
    fn call_ret_memory_classification() {
        let call = Inst::new(Op::Call { target: 7 });
        assert!(call.is_store());
        assert!(call.is_branch());
        assert!(call.dst_regs().contains(Reg::RSP));
        assert_eq!(call.mem_size(), Some(8));

        let ret = Inst::new(Op::Ret);
        assert!(ret.is_load());
        assert!(ret.is_indirect_branch());
        assert!(ret.address_regs().contains(Reg::RSP));
    }

    #[test]
    fn width_apply_semantics() {
        assert_eq!(Width::W64.apply(0xdead, 0x1234), 0x1234);
        assert_eq!(Width::W32.apply(0xffff_ffff_ffff_ffff, 0x1), 0x1);
        assert_eq!(
            Width::W16.apply(0xffff_ffff_ffff_ffff, 0x1),
            0xffff_ffff_ffff_0001
        );
        assert_eq!(Width::W8.apply(0xaabb, 0xcc), 0xaacc);
    }

    #[test]
    fn flags_sub_semantics() {
        let f = Flags::from_sub(5, 5);
        assert!(f.zf);
        assert!(Cond::Eq.eval(f));
        assert!(Cond::Ge.eval(f));
        assert!(Cond::Ule.eval(f));

        let f = Flags::from_sub(0, 1);
        assert!(Cond::Lt.eval(f));
        assert!(Cond::Ult.eval(f));
    }

    #[test]
    fn flags_signed_unsigned_disagree() {
        // -1 (as u64::MAX) vs 1: signed -1 < 1, unsigned MAX > 1.
        let f = Flags::from_sub(u64::MAX, 1);
        assert!(Cond::Lt.eval(f));
        assert!(Cond::Ugt.eval(f));
    }

    #[test]
    fn flags_roundtrip_bits() {
        for bits in 0..16u64 {
            let f = Flags::from_bits(bits);
            assert_eq!(f.to_bits(), bits);
        }
    }

    #[test]
    fn effective_address() {
        let m = Mem::base(Reg::R0).with_index(Reg::R1, 4).with_disp(-8);
        let ea = m.effective_address(|r| match r {
            Reg::R0 => 100,
            Reg::R1 => 3,
            _ => 0,
        });
        assert_eq!(ea, 100 + 12 - 8);
    }

    #[test]
    fn identity_move_detection() {
        let id = Inst::new(Op::Mov {
            dst: Reg::R4,
            src: Reg::R4,
            width: Width::W64,
        });
        assert!(id.is_identity_move());
        let not_id = Inst::new(Op::Mov {
            dst: Reg::R4,
            src: Reg::R5,
            width: Width::W64,
        });
        assert!(!not_id.is_identity_move());
    }

    #[test]
    fn display_formats() {
        let i = Inst::prot(Op::Load {
            dst: Reg::R2,
            addr: Mem::base(Reg::R0).with_index(Reg::R1, 8),
            size: Width::W64,
        });
        assert_eq!(i.to_string(), "prot load r2, [r0 + r1*8]");
        let j = Inst::new(Op::Jcc {
            cond: Cond::Lt,
            target: 12,
        });
        assert_eq!(j.to_string(), "jlt @12");
    }

    #[test]
    fn retarget() {
        let mut i = Inst::new(Op::Jmp { target: 3 });
        i.set_static_target(9);
        assert_eq!(i.static_target(), Some(9));
    }
}
