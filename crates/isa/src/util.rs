//! Small shared utilities with zero dependencies.

/// A fixed-capacity inline vector: up to `N` elements stored directly
/// in the struct, no heap allocation ever.
///
/// Replaces the per-µop `Vec`s on hot simulator paths (a µop has at
/// most a handful of source/destination operands), where the
/// allocator — not the elements — dominated the cost. `T: Copy +
/// Default` keeps the implementation safe-Rust-only: unused slots hold
/// `T::default()` and are never observable.
///
/// # Examples
///
/// ```
/// use protean_isa::InlineVec;
///
/// let mut v: InlineVec<u32, 4> = InlineVec::new();
/// v.push(7);
/// v.push(9);
/// assert_eq!(v.len(), 2);
/// assert_eq!(v[1], 9);
/// assert_eq!(v.iter().sum::<u32>(), 16);
/// ```
#[derive(Clone, Copy)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    len: u8,
    buf: [T; N],
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector.
    pub fn new() -> InlineVec<T, N> {
        const { assert!(N <= u8::MAX as usize) };
        InlineVec {
            len: 0,
            buf: [T::default(); N],
        }
    }

    /// Appends an element.
    ///
    /// # Panics
    ///
    /// Panics if the vector already holds `N` elements — capacities are
    /// sized to the ISA's operand maxima, so overflow is a bug, not a
    /// growth event.
    #[inline]
    pub fn push(&mut self, value: T) {
        self.buf[self.len as usize] = value;
        self.len += 1;
    }

    /// Removes all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> InlineVec<T, N> {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        &self.buf[..self.len as usize]
    }
}

impl<T: Copy + Default, const N: usize> std::ops::DerefMut for InlineVec<T, N> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf[..self.len as usize]
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

impl<T: Copy + Default, const N: usize> AsRef<[T]> for InlineVec<T, N> {
    fn as_ref(&self) -> &[T] {
        self
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> InlineVec<T, N> {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &InlineVec<T, N>) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<[T]> for InlineVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self[..] == *other
    }
}

impl<T: Copy + Default + PartialEq, const M: usize, const N: usize> PartialEq<[T; M]>
    for InlineVec<T, N>
{
    fn eq(&self, other: &[T; M]) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self[..] == other[..]
    }
}

impl<T: Copy + Default + std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_index_iterate() {
        let mut v: InlineVec<u64, 3> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], 1);
        assert_eq!(v.last(), Some(&3));
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3);
    }

    #[test]
    fn equality_and_clear() {
        let mut a: InlineVec<u8, 4> = [1, 2].into_iter().collect();
        let b: InlineVec<u8, 4> = [1, 2].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a, [1u8, 2]);
        assert_eq!(a, vec![1u8, 2]);
        a.clear();
        assert!(a.is_empty());
        assert_ne!(a, b);
    }

    #[test]
    fn unused_slots_not_compared() {
        let mut a: InlineVec<u8, 4> = InlineVec::new();
        let mut b: InlineVec<u8, 4> = InlineVec::new();
        a.push(9);
        a.clear();
        b.push(1);
        a.push(1);
        assert_eq!(a, b); // stale slot contents are unobservable
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut v: InlineVec<u32, 4> = [5, 6].into_iter().collect();
        v[0] = 50;
        v.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v, [50u32, 6]);
    }
}
