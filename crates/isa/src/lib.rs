//! # protean-isa
//!
//! A micro-op-granular, x86-flavoured instruction set with the **ProtISA**
//! `PROT` prefix from *"Protean: A Programmable Spectre Defense"* (HPCA
//! 2026, §IV).
//!
//! The crate provides:
//!
//! * [`Reg`]/[`RegSet`] — the architectural register file (14 GPRs,
//!   `RSP`, `RBP`, `RFLAGS`);
//! * [`Inst`]/[`Op`] — instructions, each one micro-op, with a
//!   [`prot`](Inst::prot) prefix bit that programs the architectural
//!   protection set (*ProtSet*);
//! * [`Program`]/[`Function`]/[`SecurityClass`] — programs with
//!   class-labelled functions, the unit at which ProtCC chooses a pass;
//! * [`TransmitterSet`] — the parametric set of transmitter kinds
//!   (loads, stores, branches, division µops) from the paper's threat
//!   model (§II-B1);
//! * [`DecodedProgram`]/[`DecodedInst`] — the pre-decoded µop table
//!   built once per program by the simulator's decode-once front end
//!   (and shared with the emulator oracle);
//! * [`ProgramBuilder`] and [`assemble`] — programmatic and textual
//!   front-ends;
//! * [`encode_program`]/[`decode_program`]/[`code_size`] — a binary
//!   encoding used for the paper's code-size-overhead metric (§IX-A2).
//!
//! # Example
//!
//! Build the paper's Fig. 3 example function and inspect its ProtISA
//! instrumentation:
//!
//! ```
//! use protean_isa::{Cond, Mem, ProgramBuilder, Reg};
//!
//! // int foo(int *p) { x = *p; y = 0; if (x >= 0) y = A[x]; return y; }
//! let (p, x, y) = (Reg::R0, Reg::R1, Reg::R2);
//! let mut b = ProgramBuilder::new();
//! let skip = b.label(".skip");
//! b.identity_move(p)                 // unprotect Rp (ProtCC-CT, line 1)
//!     .prot().load(x, Mem::base(p))  // Rx may be secret
//!     .mov_imm(y, 0)
//!     .prot().cmp(x, 0)              // rflags may be secret
//!     .jcc(Cond::Lt, skip)
//!     .identity_move(x)              // Rx now bound-to-leak
//!     .prot().load(y, Mem::base(x).with_disp(0x1000))
//!     .bind(skip)
//!     .halt();
//! let prog = b.build()?;
//! assert_eq!(prog.prot_count(), 3);
//! assert_eq!(prog.identity_move_count(), 2);
//! # Ok::<(), protean_isa::UnboundLabelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod asm;
mod builder;
mod decoded;
mod encode;
mod inst;
mod metadata;
mod program;
mod reg;
mod semantics;
mod util;

pub use asm::{assemble, AsmError};
pub use builder::{Label, ProgramBuilder, UnboundLabelError};
pub use decoded::{CtrlFlow, DecodedInst, DecodedProgram};
pub use encode::{
    code_size, decode_program, encode_inst, encode_program, DecodeError, PROT_PREFIX,
};
pub use inst::{AluOp, Cond, Flags, Inst, Mem, Op, Operand, Width};
pub use metadata::{MetadataDecodeError, ProtMetadataTable};
pub use program::{Function, Program, ProgramError, Reloc, SecurityClass, TransmitterSet};
pub use reg::{Reg, RegSet};
pub use semantics::{
    alu_eval, div_eval, div_latency, div_leakage, DivOutcome, DIV_BASE_LATENCY, DIV_FAULT_LATENCY,
};
pub use util::InlineVec;
