//! An ergonomic program builder with forward-reference labels.

use crate::{
    AluOp, Cond, Function, Inst, Mem, Op, Operand, Program, Reg, Reloc, SecurityClass, Width,
};
use std::collections::BTreeMap;

/// A label handle issued by [`ProgramBuilder::label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(u32);

/// Builds a [`Program`] instruction by instruction, resolving label
/// references (including forward references) at [`ProgramBuilder::build`]
/// time.
///
/// Convenience emitters exist for every opcode; each returns `&mut Self`
/// for chaining, and [`ProgramBuilder::prot`] applies a `PROT` prefix to
/// the *next* emitted instruction.
///
/// # Examples
///
/// ```
/// use protean_isa::{ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// let done = b.label("done");
/// b.mov_imm(Reg::R0, 7)
///     .cmp(Reg::R0, 7)
///     .jcc(protean_isa::Cond::Eq, done)
///     .prot()
///     .add(Reg::R1, Reg::R0, 1)
///     .bind(done)
///     .halt();
/// let prog = b.build().unwrap();
/// assert_eq!(prog.prot_count(), 1);
/// assert!(prog.validate().is_ok());
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    /// label id -> resolved index
    bound: Vec<Option<u32>>,
    names: Vec<String>,
    /// (inst index) -> label id, for fixup
    fixups: Vec<(usize, Label)>,
    /// (MovImm index) -> label id whose PC it materializes
    reloc_fixups: Vec<(usize, Label)>,
    functions: Vec<Function>,
    open_function: Option<(String, u32, SecurityClass)>,
    next_prot: bool,
}

/// Error returned by [`ProgramBuilder::build`] when a label was referenced
/// but never bound.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnboundLabelError {
    /// The label's name.
    pub name: String,
}

impl std::fmt::Display for UnboundLabelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "label `{}` referenced but never bound", self.name)
    }
}

impl std::error::Error for UnboundLabelError {}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Declares a label (may be bound later with [`ProgramBuilder::bind`]).
    pub fn label(&mut self, name: impl Into<String>) -> Label {
        let id = Label(self.bound.len() as u32);
        self.bound.push(None);
        self.names.push(name.into());
        id
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.bound[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len() as u32);
        self
    }

    /// Declares and immediately binds a label.
    pub fn here(&mut self, name: impl Into<String>) -> Label {
        let l = self.label(name);
        self.bind(l);
        l
    }

    /// Marks the *next* emitted instruction with a `PROT` prefix.
    pub fn prot(&mut self) -> &mut Self {
        self.next_prot = true;
        self
    }

    /// Opens a function with the given class; instructions emitted until
    /// [`ProgramBuilder::end_function`] belong to it.
    ///
    /// # Panics
    ///
    /// Panics if a function is already open.
    pub fn begin_function(&mut self, name: impl Into<String>, class: SecurityClass) -> &mut Self {
        assert!(self.open_function.is_none(), "function already open");
        self.open_function = Some((name.into(), self.insts.len() as u32, class));
        self
    }

    /// Closes the open function.
    ///
    /// # Panics
    ///
    /// Panics if no function is open.
    pub fn end_function(&mut self) -> &mut Self {
        let (name, start, class) = self.open_function.take().expect("no open function");
        self.functions.push(Function {
            name,
            start,
            end: self.insts.len() as u32,
            class,
        });
        self
    }

    /// Emits a raw instruction (applying any pending `PROT` prefix).
    pub fn emit(&mut self, op: Op) -> &mut Self {
        let prot = std::mem::take(&mut self.next_prot);
        self.insts.push(Inst { op, prot });
        self
    }

    /// Current instruction index (where the next instruction will go).
    pub fn cursor(&self) -> u32 {
        self.insts.len() as u32
    }

    // --- Opcode emitters -------------------------------------------------

    /// `mov dst, pc_of(label)` — materializes a code pointer, recorded
    /// in the program's relocation table so instrumentation passes keep
    /// it correct.
    pub fn mov_code_pointer(&mut self, dst: Reg, label: Label) -> &mut Self {
        self.reloc_fixups.push((self.insts.len(), label));
        self.emit(Op::MovImm {
            dst,
            imm: u64::MAX, // resolved at build time
            width: Width::W64,
        })
    }

    /// `mov dst, imm`
    pub fn mov_imm(&mut self, dst: Reg, imm: u64) -> &mut Self {
        self.emit(Op::MovImm {
            dst,
            imm,
            width: Width::W64,
        })
    }

    /// `mov dst, src`
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Op::Mov {
            dst,
            src,
            width: Width::W64,
        })
    }

    /// `mov r, r` — ProtISA's unprotect-register idiom (§IV-B3).
    pub fn identity_move(&mut self, reg: Reg) -> &mut Self {
        self.mov(reg, reg)
    }

    /// `cmov.cond dst, src`
    pub fn cmov(&mut self, cond: Cond, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Op::CMov { cond, dst, src })
    }

    /// Generic ALU emitter.
    pub fn alu(&mut self, op: AluOp, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.emit(Op::Alu {
            op,
            dst,
            src1,
            src2: src2.into(),
            width: Width::W64,
        })
    }

    /// `add dst, src1, src2`
    pub fn add(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Add, dst, src1, src2)
    }

    /// `sub dst, src1, src2`
    pub fn sub(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Sub, dst, src1, src2)
    }

    /// `and dst, src1, src2`
    pub fn and(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::And, dst, src1, src2)
    }

    /// `or dst, src1, src2`
    pub fn or(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Or, dst, src1, src2)
    }

    /// `xor dst, src1, src2`
    pub fn xor(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Xor, dst, src1, src2)
    }

    /// `shl dst, src1, src2`
    pub fn shl(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shl, dst, src1, src2)
    }

    /// `shr dst, src1, src2`
    pub fn shr(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Shr, dst, src1, src2)
    }

    /// `rol dst, src1, src2`
    pub fn rol(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Rol, dst, src1, src2)
    }

    /// `ror dst, src1, src2`
    pub fn ror(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Ror, dst, src1, src2)
    }

    /// `mul dst, src1, src2`
    pub fn mul(&mut self, dst: Reg, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.alu(AluOp::Mul, dst, src1, src2)
    }

    /// `div dst, src1, src2` (a transmitter).
    pub fn div(&mut self, dst: Reg, src1: Reg, src2: Reg) -> &mut Self {
        self.emit(Op::Div { dst, src1, src2 })
    }

    /// `cmp src1, src2`
    pub fn cmp(&mut self, src1: Reg, src2: impl Into<Operand>) -> &mut Self {
        self.emit(Op::Cmp {
            src1,
            src2: src2.into(),
        })
    }

    /// `load dst, addr` (8 bytes).
    pub fn load(&mut self, dst: Reg, addr: Mem) -> &mut Self {
        self.emit(Op::Load {
            dst,
            addr,
            size: Width::W64,
        })
    }

    /// Sized load.
    pub fn load_sized(&mut self, dst: Reg, addr: Mem, size: Width) -> &mut Self {
        self.emit(Op::Load { dst, addr, size })
    }

    /// `store addr, src` (8 bytes).
    pub fn store(&mut self, addr: Mem, src: impl Into<Operand>) -> &mut Self {
        self.emit(Op::Store {
            src: src.into(),
            addr,
            size: Width::W64,
        })
    }

    /// Sized store.
    pub fn store_sized(&mut self, addr: Mem, src: impl Into<Operand>, size: Width) -> &mut Self {
        self.emit(Op::Store {
            src: src.into(),
            addr,
            size,
        })
    }

    /// `jmp label`
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label));
        self.emit(Op::Jmp { target: u32::MAX })
    }

    /// `j<cond> label`
    pub fn jcc(&mut self, cond: Cond, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label));
        self.emit(Op::Jcc {
            cond,
            target: u32::MAX,
        })
    }

    /// `jmpreg src` (indirect jump).
    pub fn jmpreg(&mut self, src: Reg) -> &mut Self {
        self.emit(Op::JmpReg { src })
    }

    /// `call label`
    pub fn call(&mut self, label: Label) -> &mut Self {
        self.fixups.push((self.insts.len(), label));
        self.emit(Op::Call { target: u32::MAX })
    }

    /// `ret`
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Op::Ret)
    }

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Op::Nop)
    }

    /// `halt`
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Op::Halt)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundLabelError`] if a referenced label was never
    /// bound.
    ///
    /// # Panics
    ///
    /// Panics if a function is still open.
    pub fn build(mut self) -> Result<Program, UnboundLabelError> {
        assert!(
            self.open_function.is_none(),
            "function still open at build time"
        );
        for (idx, label) in &self.fixups {
            match self.bound[label.0 as usize] {
                Some(target) => self.insts[*idx].set_static_target(target),
                None => {
                    return Err(UnboundLabelError {
                        name: self.names[label.0 as usize].clone(),
                    })
                }
            }
        }
        let mut labels = BTreeMap::new();
        for (id, bound) in self.bound.iter().enumerate() {
            if let Some(idx) = bound {
                labels.insert(self.names[id].clone(), *idx);
            }
        }
        let mut relocs = Vec::with_capacity(self.reloc_fixups.len());
        let mut insts = self.insts;
        for (idx, label) in &self.reloc_fixups {
            let Some(target) = self.bound[label.0 as usize] else {
                return Err(UnboundLabelError {
                    name: self.names[label.0 as usize].clone(),
                });
            };
            let pc = Program::DEFAULT_CODE_BASE + 4 * target as u64;
            match &mut insts[*idx].op {
                Op::MovImm { imm, .. } => *imm = pc,
                other => unreachable!("reloc slot holds {other:?}"),
            }
            relocs.push(Reloc {
                inst: *idx as u32,
                target,
            });
        }
        Ok(Program {
            insts,
            functions: self.functions,
            labels,
            relocs,
            code_base: Program::DEFAULT_CODE_BASE,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let top = b.here("top");
        let out = b.label("out");
        b.cmp(Reg::R0, 10)
            .jcc(Cond::Ge, out)
            .add(Reg::R0, Reg::R0, 1)
            .jmp(top)
            .bind(out)
            .halt();
        let p = b.build().unwrap();
        assert!(p.validate().is_ok());
        assert_eq!(p.insts[1].static_target(), Some(4));
        assert_eq!(p.insts[3].static_target(), Some(0));
        assert_eq!(p.labels["top"], 0);
        assert_eq!(p.labels["out"], 4);
    }

    #[test]
    fn unbound_label_is_error() {
        let mut b = ProgramBuilder::new();
        let l = b.label("nowhere");
        b.jmp(l);
        let err = b.build().unwrap_err();
        assert_eq!(err.name, "nowhere");
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn prot_applies_to_next_only() {
        let mut b = ProgramBuilder::new();
        b.prot().mov_imm(Reg::R0, 1).mov_imm(Reg::R1, 2).halt();
        let p = b.build().unwrap();
        assert!(p.insts[0].prot);
        assert!(!p.insts[1].prot);
        assert_eq!(p.prot_count(), 1);
    }

    #[test]
    fn functions_recorded() {
        let mut b = ProgramBuilder::new();
        b.begin_function("f", SecurityClass::Cts);
        b.ret();
        b.end_function();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].end, 1);
        assert_eq!(p.function_at(0).unwrap().class, SecurityClass::Cts);
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.here("l");
        b.bind(l);
    }
}
