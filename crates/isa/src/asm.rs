//! A textual assembler for the ISA.
//!
//! The syntax is exactly what [`Inst`]'s `Display` implementation and
//! [`Program::disassemble`] emit, so assembly and disassembly round-trip.
//! Branch targets may be written as labels (`loop`, `.skip`) or absolute
//! instruction indices (`@12`).
//!
//! ```text
//! .func leak ct          ; function directive (class: arch|cts|ct|unr)
//! top:
//!   prot load r1, [r0 + r2*8 + 0x10]
//!   cmp r1, 0
//!   jeq .skip
//!   add r3, r3, 1
//! .skip:
//!   ret
//! .endfunc
//!   halt
//! ```

use crate::{AluOp, Cond, Function, Inst, Mem, Op, Operand, Program, Reg, SecurityClass, Width};
use std::collections::BTreeMap;
use std::fmt;

/// An assembly error, with the 1-based source line where it occurred.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles a textual program.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics/registers, and undefined labels.
///
/// # Examples
///
/// ```
/// use protean_isa::assemble;
///
/// let prog = assemble(
///     "start:\n  mov r0, 5\n  cmp r0, 5\n  jeq start\n  halt\n",
/// ).unwrap();
/// assert_eq!(prog.len(), 4);
/// assert_eq!(prog.labels["start"], 0);
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    Assembler::default().assemble(source)
}

#[derive(Default)]
struct Assembler {
    insts: Vec<Inst>,
    labels: BTreeMap<String, u32>,
    // (inst index, label, line)
    fixups: Vec<(usize, String, usize)>,
    functions: Vec<Function>,
    open_func: Option<(String, u32, SecurityClass, usize)>,
}

impl Assembler {
    fn assemble(mut self, source: &str) -> Result<Program, AsmError> {
        for (lineno, raw) in source.lines().enumerate() {
            let line = lineno + 1;
            let text = strip_comment(raw).trim();
            if text.is_empty() {
                continue;
            }
            self.line(text, line)?;
        }
        if let Some((name, _, _, line)) = &self.open_func {
            return Err(err(
                *line,
                format!(".func {name} never closed with .endfunc"),
            ));
        }
        for (idx, label, line) in std::mem::take(&mut self.fixups) {
            match self.labels.get(&label) {
                Some(target) => self.insts[idx].set_static_target(*target),
                None => return Err(err(line, format!("undefined label `{label}`"))),
            }
        }
        Ok(Program {
            insts: self.insts,
            functions: self.functions,
            labels: self.labels,
            relocs: Vec::new(),
            code_base: Program::DEFAULT_CODE_BASE,
        })
    }

    fn line(&mut self, text: &str, line: usize) -> Result<(), AsmError> {
        // Directives.
        if let Some(rest) = text.strip_prefix(".func ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| err(line, ".func requires a name".into()))?;
            let class = match parts.next() {
                Some(c) => parse_class(c).ok_or_else(|| {
                    err(line, format!("unknown class `{c}` (want arch|cts|ct|unr)"))
                })?,
                None => SecurityClass::Unr,
            };
            if self.open_func.is_some() {
                return Err(err(line, "nested .func".into()));
            }
            // The function name doubles as a label at its entry.
            if self
                .labels
                .insert(name.to_string(), self.insts.len() as u32)
                .is_some()
            {
                return Err(err(line, format!("label `{name}` defined twice")));
            }
            self.open_func = Some((name.to_string(), self.insts.len() as u32, class, line));
            return Ok(());
        }
        if text == ".endfunc" {
            let (name, start, class, _) = self
                .open_func
                .take()
                .ok_or_else(|| err(line, ".endfunc without .func".into()))?;
            self.functions.push(Function {
                name,
                start,
                end: self.insts.len() as u32,
                class,
            });
            return Ok(());
        }
        // Labels (possibly several on a line, then an instruction).
        let mut rest = text;
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let head = head.trim();
            if head.is_empty() || !is_label_ident(head) {
                break;
            }
            if self
                .labels
                .insert(head.to_string(), self.insts.len() as u32)
                .is_some()
            {
                return Err(err(line, format!("label `{head}` defined twice")));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            return Ok(());
        }
        let inst = self.parse_inst(rest, line)?;
        self.insts.push(inst);
        Ok(())
    }

    fn parse_inst(&mut self, text: &str, line: usize) -> Result<Inst, AsmError> {
        let mut words = text.splitn(2, char::is_whitespace);
        let mut mnemonic = words.next().unwrap();
        let mut prot = false;
        let mut rest = words.next().unwrap_or("").trim();
        if mnemonic.eq_ignore_ascii_case("prot") {
            prot = true;
            let mut words = rest.splitn(2, char::is_whitespace);
            mnemonic = words
                .next()
                .filter(|m| !m.is_empty())
                .ok_or_else(|| err(line, "`prot` without an instruction".into()))?;
            rest = words.next().unwrap_or("").trim();
        }
        let mnemonic = mnemonic.to_ascii_lowercase();
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            split_operands(rest)
        };
        let op = self.parse_op(&mnemonic, &ops, line)?;
        let inst = Inst { op, prot };
        inst.validate().map_err(|why| err(line, why.into()))?;
        Ok(inst)
    }

    fn parse_op(&mut self, mnemonic: &str, ops: &[&str], line: usize) -> Result<Op, AsmError> {
        let (base, width) = split_width(mnemonic);
        let e = |msg: &str| err(line, format!("{mnemonic}: {msg}"));

        let alu_op = match base {
            "add" => Some(AluOp::Add),
            "sub" => Some(AluOp::Sub),
            "and" => Some(AluOp::And),
            "or" => Some(AluOp::Or),
            "xor" => Some(AluOp::Xor),
            "shl" => Some(AluOp::Shl),
            "shr" => Some(AluOp::Shr),
            "sar" => Some(AluOp::Sar),
            "rol" => Some(AluOp::Rol),
            "ror" => Some(AluOp::Ror),
            "mul" => Some(AluOp::Mul),
            _ => None,
        };
        if let Some(aop) = alu_op {
            let [d, s1, s2] = three(ops).ok_or_else(|| e("expected 3 operands"))?;
            return Ok(Op::Alu {
                op: aop,
                dst: parse_reg(d, line)?,
                src1: parse_reg(s1, line)?,
                src2: parse_operand(s2, line)?,
                width,
            });
        }
        if let Some(cc) = base.strip_prefix("cmov.") {
            let cond = parse_cond(cc).ok_or_else(|| e("unknown condition"))?;
            let [d, s] = two(ops).ok_or_else(|| e("expected 2 operands"))?;
            return Ok(Op::CMov {
                cond,
                dst: parse_reg(d, line)?,
                src: parse_reg(s, line)?,
            });
        }
        if let Some(cc) = base.strip_prefix('j') {
            if base != "jmp" && base != "jmpreg" {
                let cond = parse_cond(cc).ok_or_else(|| e("unknown condition"))?;
                let [t] = one(ops).ok_or_else(|| e("expected a target"))?;
                let target = self.parse_target(t, line)?;
                return Ok(Op::Jcc { cond, target });
            }
        }
        match base {
            "mov" => {
                let [d, s] = two(ops).ok_or_else(|| e("expected 2 operands"))?;
                let dst = parse_reg(d, line)?;
                match parse_operand(s, line)? {
                    Operand::Reg(src) => Ok(Op::Mov { dst, src, width }),
                    Operand::Imm(imm) => Ok(Op::MovImm { dst, imm, width }),
                }
            }
            "cmp" => {
                let [s1, s2] = two(ops).ok_or_else(|| e("expected 2 operands"))?;
                Ok(Op::Cmp {
                    src1: parse_reg(s1, line)?,
                    src2: parse_operand(s2, line)?,
                })
            }
            "div" => {
                let [d, s1, s2] = three(ops).ok_or_else(|| e("expected 3 operands"))?;
                Ok(Op::Div {
                    dst: parse_reg(d, line)?,
                    src1: parse_reg(s1, line)?,
                    src2: parse_reg(s2, line)?,
                })
            }
            "load" => {
                let [d, m] = two(ops).ok_or_else(|| e("expected 2 operands"))?;
                Ok(Op::Load {
                    dst: parse_reg(d, line)?,
                    addr: parse_mem(m, line)?,
                    size: width,
                })
            }
            "store" => {
                let [m, s] = two(ops).ok_or_else(|| e("expected 2 operands"))?;
                Ok(Op::Store {
                    src: parse_operand(s, line)?,
                    addr: parse_mem(m, line)?,
                    size: width,
                })
            }
            "jmp" => {
                let [t] = one(ops).ok_or_else(|| e("expected a target"))?;
                Ok(Op::Jmp {
                    target: self.parse_target(t, line)?,
                })
            }
            "jmpreg" => {
                let [s] = one(ops).ok_or_else(|| e("expected a register"))?;
                Ok(Op::JmpReg {
                    src: parse_reg(s, line)?,
                })
            }
            "call" => {
                let [t] = one(ops).ok_or_else(|| e("expected a target"))?;
                Ok(Op::Call {
                    target: self.parse_target(t, line)?,
                })
            }
            "ret" => Ok(Op::Ret),
            "nop" => Ok(Op::Nop),
            "halt" => Ok(Op::Halt),
            _ => Err(err(line, format!("unknown mnemonic `{mnemonic}`"))),
        }
    }

    fn parse_target(&mut self, text: &str, line: usize) -> Result<u32, AsmError> {
        if let Some(idx) = text.strip_prefix('@') {
            return idx
                .parse::<u32>()
                .map_err(|_| err(line, format!("bad absolute target `{text}`")));
        }
        if !is_label_ident(text) {
            return Err(err(line, format!("bad branch target `{text}`")));
        }
        // Defer resolution: record a fixup against the instruction being
        // assembled (it will be pushed right after parsing).
        self.fixups.push((self.insts.len(), text.to_string(), line));
        Ok(u32::MAX)
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_label_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

fn split_width(mnemonic: &str) -> (&str, Width) {
    if let Some(base) = mnemonic.strip_suffix(".b") {
        (base, Width::W8)
    } else if let Some(base) = mnemonic.strip_suffix(".h") {
        (base, Width::W16)
    } else if let Some(base) = mnemonic.strip_suffix(".w") {
        (base, Width::W32)
    } else {
        (mnemonic, Width::W64)
    }
}

/// Splits on top-level commas (commas inside `[...]` do not occur, but be
/// permissive anyway).
fn split_operands(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(text[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(text[start..].trim());
    out
}

fn parse_class(s: &str) -> Option<SecurityClass> {
    match s.to_ascii_lowercase().as_str() {
        "arch" => Some(SecurityClass::Arch),
        "cts" => Some(SecurityClass::Cts),
        "ct" => Some(SecurityClass::Ct),
        "unr" => Some(SecurityClass::Unr),
        _ => None,
    }
}

fn parse_cond(s: &str) -> Option<Cond> {
    Cond::ALL.into_iter().find(|c| c.mnemonic() == s)
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::parse(s).ok_or_else(|| err(line, format!("unknown register `{s}`")))
}

fn parse_imm(s: &str, line: usize) -> Result<u64, AsmError> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        body.parse::<u64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{s}`")))?;
    Ok(if neg { value.wrapping_neg() } else { value })
}

fn parse_operand(s: &str, line: usize) -> Result<Operand, AsmError> {
    if let Some(r) = Reg::parse(s) {
        Ok(Operand::Reg(r))
    } else {
        parse_imm(s, line).map(Operand::Imm)
    }
}

/// Parses `[base + index*scale + disp]` with terms in any order.
fn parse_mem(s: &str, line: usize) -> Result<Mem, AsmError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected memory operand, got `{s}`")))?;
    let mut mem = Mem::default();
    // Normalize "a - b" into "a + -b" then split on '+'.
    let normalized = inner.replace("- ", "+ -").replace('-', "+-");
    // Careful: a leading negative disp like "[-8]" becomes "[+-8]".
    for term in normalized.split('+') {
        let term = term.trim();
        if term.is_empty() {
            continue;
        }
        if let Some((reg_s, scale_s)) = term.split_once('*') {
            let reg = parse_reg(reg_s.trim(), line)?;
            let scale: u8 = scale_s
                .trim()
                .parse()
                .map_err(|_| err(line, format!("bad scale `{scale_s}`")))?;
            if !matches!(scale, 1 | 2 | 4 | 8) {
                return Err(err(line, format!("scale must be 1/2/4/8, got {scale}")));
            }
            if mem.index.is_some() {
                return Err(err(line, "two index terms in memory operand".into()));
            }
            mem.index = Some((reg, scale));
        } else if let Some(reg) = Reg::parse(term) {
            if mem.base.is_some() {
                if mem.index.is_some() {
                    return Err(err(line, "three register terms in memory operand".into()));
                }
                mem.index = Some((reg, 1));
            } else {
                mem.base = Some(reg);
            }
        } else {
            let v = parse_imm(term, line)?;
            mem.disp = mem.disp.wrapping_add(v as i64);
        }
    }
    Ok(mem)
}

fn err(line: usize, message: String) -> AsmError {
    AsmError { line, message }
}

fn one<'a>(ops: &[&'a str]) -> Option<[&'a str; 1]> {
    (ops.len() == 1).then(|| [ops[0]])
}

fn two<'a>(ops: &[&'a str]) -> Option<[&'a str; 2]> {
    (ops.len() == 2).then(|| [ops[0], ops[1]])
}

fn three<'a>(ops: &[&'a str]) -> Option<[&'a str; 3]> {
    (ops.len() == 3).then(|| [ops[0], ops[1], ops[2]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_program() {
        let p = assemble(
            r#"
            ; a tiny loop
            start:
              mov r0, 0
            loop:
              add r0, r0, 1
              cmp r0, 10
              jlt loop
              halt
            "#,
        )
        .unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.insts[3].static_target(), Some(1));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn prot_prefix_and_memory() {
        let p = assemble("prot load r1, [r0 + r2*8 + 0x10]\nstore [rsp - 8], r1\nhalt\n").unwrap();
        assert!(p.insts[0].prot);
        match p.insts[0].op {
            Op::Load { dst, addr, .. } => {
                assert_eq!(dst, Reg::R1);
                assert_eq!(addr.base, Some(Reg::R0));
                assert_eq!(addr.index, Some((Reg::R2, 8)));
                assert_eq!(addr.disp, 0x10);
            }
            _ => panic!("wrong op"),
        }
        match p.insts[1].op {
            Op::Store { addr, .. } => assert_eq!(addr.disp, -8),
            _ => panic!("wrong op"),
        }
    }

    #[test]
    fn functions_and_classes() {
        let p = assemble(".func crypt ct\n  xor r0, r0, r1\n  ret\n.endfunc\nhalt\n").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].class, SecurityClass::Ct);
        assert_eq!(p.functions[0].range(), 0..2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));

        let e = assemble("jmp nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = assemble("load r0, r1\n").unwrap_err();
        assert!(e.message.contains("memory operand"));
    }

    #[test]
    fn absolute_targets() {
        let p = assemble("jmp @1\nhalt\n").unwrap();
        assert_eq!(p.insts[0].static_target(), Some(1));
    }

    #[test]
    fn width_suffixes() {
        let p = assemble("mov.w r0, 5\nload.b r1, [r0]\nstore.h [r0], r1\nhalt\n").unwrap();
        assert!(matches!(
            p.insts[0].op,
            Op::MovImm {
                width: Width::W32,
                ..
            }
        ));
        assert!(matches!(
            p.insts[1].op,
            Op::Load {
                size: Width::W8,
                ..
            }
        ));
        assert!(matches!(
            p.insts[2].op,
            Op::Store {
                size: Width::W16,
                ..
            }
        ));
    }

    #[test]
    fn roundtrip_display_assemble() {
        let src = r#"
            mov r0, 0
            prot add r1, r0, 7
            cmov.ne r2, r1
            div r3, r1, r2
            prot load r4, [r0 + r1*4 + 0x20]
            store [rsp - 16], r4
            cmp r4, 0x1234
            jeq @8
            jmpreg r2
            call @10
            ret
            halt
        "#;
        let p1 = assemble(src).unwrap();
        let text: String = p1.insts.iter().map(|i| format!("{i}\n")).collect();
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.insts, p2.insts);
    }
}
