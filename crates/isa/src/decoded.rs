//! Pre-decoded µop table: every per-instruction classification the
//! pipeline front end needs, computed once per static instruction.
//!
//! The simulator's fetch/rename stages used to re-derive operand sets,
//! memory classification, and branch kind from [`Inst`] on every
//! *dynamic* visit — for a hot loop body that is the same work thousands
//! of times over. [`DecodedProgram`] lowers each static instruction
//! exactly once (at `Core::reset`) into a [`DecodedInst`]: a flat,
//! `Copy` record with operands in inline-vector form and the control
//! flow pre-classified into [`CtrlFlow`], so the per-visit cost is one
//! indexed copy.
//!
//! [`DecodedInst::decode`] is the single lowering function; the
//! pipeline's legacy decode-per-visit fallback calls the same function,
//! which makes the cached and uncached paths identical by construction
//! (and lets a differential test exercise everything *around* them).

use crate::inst::{Inst, Op, Operand, Width};
use crate::program::Program;
use crate::reg::{Reg, RegSet};
use crate::util::InlineVec;

/// Pre-classified control flow of one static instruction.
///
/// Branch targets are instruction indices (as in [`Op`]); resolving the
/// *predicted* next index still needs dynamic state (TAGE direction,
/// RSB, BTB), but the kind dispatch and target extraction are static.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CtrlFlow {
    /// Falls through to the next instruction; never redirects fetch.
    Fall,
    /// Direct unconditional jump to a static target.
    Jmp {
        /// Target instruction index.
        target: u32,
    },
    /// Conditional branch: taken to `target`, else falls through.
    Jcc {
        /// Taken-path target instruction index.
        target: u32,
    },
    /// Call: pushes the return address and jumps to a static target.
    Call {
        /// Target instruction index.
        target: u32,
    },
    /// Return: indirect through the RSB (or BTB on RSB underflow).
    Ret,
    /// Indirect jump through a register: predicted via the BTB.
    JmpReg,
    /// Architectural end of the program; fetch stops here.
    Halt,
}

/// One statically decoded µop: the instruction plus every derived fact
/// the front end consults per dynamic visit.
///
/// All fields are plain data (`Copy`), so the pipeline copies the table
/// entry into a local and never holds a borrow across rename's mutable
/// bookkeeping.
#[derive(Clone, Copy, Debug)]
pub struct DecodedInst {
    /// The instruction itself.
    pub inst: Inst,
    /// Its program counter (`Program::pc_of` of the index).
    pub pc: u64,
    /// Source registers, in [`RegSet`] iteration order (the order the
    /// rename stage reads them). No instruction names more than three.
    pub srcs: InlineVec<Reg, 3>,
    /// Destination registers, in [`RegSet`] iteration order. At most
    /// two: the explicit destination plus an implicit `RFLAGS`/`RSP`.
    pub dsts: InlineVec<Reg, 2>,
    /// The explicit destination register ([`Inst::explicit_dst`]).
    pub explicit_dst: Option<Reg>,
    /// Address-forming registers of memory µops ([`Inst::address_regs`]).
    pub addr_regs: RegSet,
    /// A store's pure *data* register operand, if it has one — the
    /// operand split off as STD, allowed to lag the address operands.
    /// `None` for `call` (its data is the constant return address).
    pub store_data_reg: Option<Reg>,
    /// Memory access size in bytes (8 for non-memory µops, matching the
    /// pipeline's `mem_size().unwrap_or(8)` convention).
    pub mem_size: u64,
    /// Register write width (`W64` for µops without one, matching the
    /// pipeline's `write_width().unwrap_or(W64)` convention).
    pub write_width: Width,
    /// Performs a memory read (loads and `ret`).
    pub is_load: bool,
    /// Performs a memory write (stores and `call`).
    pub is_store: bool,
    /// Any memory access (`is_load || is_store`).
    pub is_mem: bool,
    /// Control-flow instruction ([`Inst::is_branch`]).
    pub is_branch: bool,
    /// Pre-classified control flow for fetch's next-index prediction.
    pub ctrl: CtrlFlow,
}

impl DecodedInst {
    /// Lowers the instruction at `idx` of `program`.
    ///
    /// This is the *only* lowering routine: [`DecodedProgram`] applies
    /// it per static instruction, and any decode-per-visit fallback
    /// must call it too, so both paths agree by construction.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for `program`.
    pub fn decode(program: &Program, idx: u32) -> DecodedInst {
        let inst = program.insts[idx as usize];
        let (store_data_reg, ctrl) = match inst.op {
            Op::Store {
                src: Operand::Reg(r),
                ..
            } => (Some(r), CtrlFlow::Fall),
            Op::Jmp { target } => (None, CtrlFlow::Jmp { target }),
            Op::Jcc { target, .. } => (None, CtrlFlow::Jcc { target }),
            Op::Call { target } => (None, CtrlFlow::Call { target }),
            Op::Ret => (None, CtrlFlow::Ret),
            Op::JmpReg { .. } => (None, CtrlFlow::JmpReg),
            Op::Halt => (None, CtrlFlow::Halt),
            _ => (None, CtrlFlow::Fall),
        };
        DecodedInst {
            inst,
            pc: program.pc_of(idx),
            srcs: inst.src_regs().iter().collect(),
            dsts: inst.dst_regs().iter().collect(),
            explicit_dst: inst.explicit_dst(),
            addr_regs: inst.address_regs(),
            store_data_reg,
            mem_size: inst.mem_size().unwrap_or(8),
            write_width: inst.write_width().unwrap_or(Width::W64),
            is_load: inst.is_load(),
            is_store: inst.is_store(),
            is_mem: inst.is_mem(),
            is_branch: inst.is_branch(),
            ctrl,
        }
    }
}

/// A program's full pre-decoded µop table, indexed by instruction index.
#[derive(Clone, Debug, Default)]
pub struct DecodedProgram {
    insts: Vec<DecodedInst>,
}

impl DecodedProgram {
    /// Decodes every static instruction of `program`.
    pub fn new(program: &Program) -> DecodedProgram {
        let mut d = DecodedProgram::default();
        d.rebuild(program);
        d
    }

    /// Re-decodes for a (possibly different) program, reusing the
    /// table's backing allocation — the arena-reset path.
    pub fn rebuild(&mut self, program: &Program) {
        self.insts.clear();
        self.insts
            .extend((0..program.len() as u32).map(|idx| DecodedInst::decode(program, idx)));
    }

    /// Drops all entries (used when the table is disabled) while keeping
    /// the allocation for a later [`DecodedProgram::rebuild`].
    pub fn clear(&mut self) {
        self.insts.clear();
    }

    /// The entry for instruction index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: u32) -> &DecodedInst {
        &self.insts[idx as usize]
    }

    /// All entries, in instruction-index order.
    pub fn insts(&self) -> &[DecodedInst] {
        &self.insts
    }

    /// Number of decoded entries.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Cond, Mem};

    fn sample_program() -> Program {
        let insts = vec![
            Inst::new(Op::MovImm {
                dst: Reg::R0,
                imm: 5,
                width: Width::W64,
            }),
            Inst::prot(Op::Load {
                dst: Reg::R1,
                addr: Mem::base(Reg::R0).with_index(Reg::R2, 8),
                size: Width::W32,
            }),
            Inst::new(Op::Store {
                src: Operand::Reg(Reg::R1),
                addr: Mem::base(Reg::R3),
                size: Width::W64,
            }),
            Inst::new(Op::Store {
                src: Operand::Imm(7),
                addr: Mem::abs(0x100),
                size: Width::W8,
            }),
            Inst::new(Op::Alu {
                op: AluOp::Add,
                dst: Reg::R4,
                src1: Reg::R0,
                src2: Operand::Reg(Reg::R1),
                width: Width::W16,
            }),
            Inst::new(Op::Jcc {
                cond: Cond::Eq,
                target: 0,
            }),
            Inst::new(Op::Call { target: 8 }),
            Inst::new(Op::Ret),
            Inst::new(Op::JmpReg { src: Reg::R5 }),
            Inst::new(Op::Jmp { target: 1 }),
            Inst::new(Op::Halt),
        ];
        Program::from_insts(insts)
    }

    #[test]
    fn decode_matches_inst_helpers() {
        let p = sample_program();
        let d = DecodedProgram::new(&p);
        assert_eq!(d.len(), p.len());
        for idx in 0..p.len() as u32 {
            let e = d.get(idx);
            let inst = p.insts[idx as usize];
            assert_eq!(e.inst, inst);
            assert_eq!(e.pc, p.pc_of(idx));
            let srcs: Vec<Reg> = inst.src_regs().iter().collect();
            assert_eq!(&e.srcs[..], &srcs[..], "srcs of {inst}");
            let dsts: Vec<Reg> = inst.dst_regs().iter().collect();
            assert_eq!(&e.dsts[..], &dsts[..], "dsts of {inst}");
            assert_eq!(e.explicit_dst, inst.explicit_dst());
            assert_eq!(e.addr_regs, inst.address_regs());
            assert_eq!(e.mem_size, inst.mem_size().unwrap_or(8));
            assert_eq!(e.write_width, inst.write_width().unwrap_or(Width::W64));
            assert_eq!(e.is_load, inst.is_load());
            assert_eq!(e.is_store, inst.is_store());
            assert_eq!(e.is_mem, inst.is_mem());
            assert_eq!(e.is_branch, inst.is_branch());
        }
    }

    #[test]
    fn control_flow_classification() {
        let p = sample_program();
        let d = DecodedProgram::new(&p);
        assert_eq!(d.get(0).ctrl, CtrlFlow::Fall);
        assert_eq!(d.get(2).ctrl, CtrlFlow::Fall);
        assert_eq!(d.get(5).ctrl, CtrlFlow::Jcc { target: 0 });
        assert_eq!(d.get(6).ctrl, CtrlFlow::Call { target: 8 });
        assert_eq!(d.get(7).ctrl, CtrlFlow::Ret);
        assert_eq!(d.get(8).ctrl, CtrlFlow::JmpReg);
        assert_eq!(d.get(9).ctrl, CtrlFlow::Jmp { target: 1 });
        assert_eq!(d.get(10).ctrl, CtrlFlow::Halt);
    }

    #[test]
    fn store_data_reg_split() {
        let p = sample_program();
        let d = DecodedProgram::new(&p);
        // Register-data store names its STD operand; immediate-data
        // store and call (constant return address) do not.
        assert_eq!(d.get(2).store_data_reg, Some(Reg::R1));
        assert_eq!(d.get(3).store_data_reg, None);
        assert_eq!(d.get(6).store_data_reg, None);
    }

    #[test]
    fn rebuild_reuses_and_replaces() {
        let p = sample_program();
        let mut d = DecodedProgram::new(&p);
        let small = Program::from_insts(vec![Inst::new(Op::Halt)]);
        d.rebuild(&small);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(0).ctrl, CtrlFlow::Halt);
        d.rebuild(&p);
        assert_eq!(d.len(), p.len());
    }
}
