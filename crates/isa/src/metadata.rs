//! Prefix-less ProtSet encoding: the instruction metadata table.
//!
//! The paper introduces ProtISA for x86 because it is the only major ISA
//! with instruction prefixes, and notes (§IV) that "ProtISA can be
//! extended to work with any major ISA by storing PROT prefixes
//! separately in an instruction metadata table". This module implements
//! that alternative: a bit-packed side table carrying one protection bit
//! per instruction, so the code stream itself stays prefix-free.

use crate::Program;
use core::fmt;

/// A per-instruction protection-bit table (the prefix-less ProtISA
/// encoding for ISAs without instruction prefixes).
///
/// # Examples
///
/// ```
/// use protean_isa::{assemble, ProtMetadataTable};
///
/// let prog = assemble("prot mov r0, r1\nmov r2, r3\nhalt\n").unwrap();
/// let (stripped, table) = ProtMetadataTable::strip(&prog);
/// assert!(stripped.insts.iter().all(|i| !i.prot));
/// assert!(table.is_protected(0));
/// assert!(!table.is_protected(1));
/// let restored = table.apply(&stripped);
/// assert_eq!(restored.insts, prog.insts);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ProtMetadataTable {
    bits: Vec<u64>,
    len: usize,
}

/// Error from [`ProtMetadataTable::decode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MetadataDecodeError;

impl fmt::Display for MetadataDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "truncated protection-metadata stream")
    }
}

impl std::error::Error for MetadataDecodeError {}

impl ProtMetadataTable {
    /// Builds the table from a program's `PROT` prefixes.
    pub fn from_program(program: &Program) -> ProtMetadataTable {
        let len = program.len();
        let mut bits = vec![0u64; len.div_ceil(64)];
        for (i, inst) in program.insts.iter().enumerate() {
            if inst.prot {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        ProtMetadataTable { bits, len }
    }

    /// Extracts the table and returns the prefix-free program alongside
    /// it.
    pub fn strip(program: &Program) -> (Program, ProtMetadataTable) {
        let table = ProtMetadataTable::from_program(program);
        let mut stripped = program.clone();
        for inst in &mut stripped.insts {
            inst.prot = false;
        }
        (stripped, table)
    }

    /// Re-applies the table's protection bits to a program of the same
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if the program's length differs from the table's.
    pub fn apply(&self, program: &Program) -> Program {
        assert_eq!(program.len(), self.len, "metadata table length mismatch");
        let mut out = program.clone();
        for (i, inst) in out.insts.iter_mut().enumerate() {
            inst.prot = self.is_protected(i as u32);
        }
        out
    }

    /// Whether instruction `idx` is protected.
    pub fn is_protected(&self, idx: u32) -> bool {
        let i = idx as usize;
        i < self.len && self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of instructions covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for an empty table.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of protected instructions.
    pub fn protected_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Storage cost in bytes: one bit per instruction (compare with the
    /// one *byte* per protected instruction of the prefix encoding).
    pub fn size_bytes(&self) -> usize {
        self.len.div_ceil(8)
    }

    /// Serializes the table (length-prefixed, bit-packed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.bits.len() * 8);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Deserializes a table produced by [`ProtMetadataTable::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`MetadataDecodeError`] on truncated input.
    pub fn decode(bytes: &[u8]) -> Result<ProtMetadataTable, MetadataDecodeError> {
        if bytes.len() < 8 {
            return Err(MetadataDecodeError);
        }
        let len = u64::from_le_bytes(bytes[..8].try_into().expect("checked")) as usize;
        let words = len.div_ceil(64);
        if bytes.len() < 8 + words * 8 {
            return Err(MetadataDecodeError);
        }
        let bits = (0..words)
            .map(|w| u64::from_le_bytes(bytes[8 + w * 8..16 + w * 8].try_into().expect("checked")))
            .collect();
        Ok(ProtMetadataTable { bits, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    fn sample() -> Program {
        assemble(
            "prot mov r0, r1\nmov r2, r3\nprot add r4, r5, 1\ncmp r0, 0\nprot load r6, [r0]\nhalt\n",
        )
        .unwrap()
    }

    #[test]
    fn strip_apply_roundtrip() {
        let prog = sample();
        let (stripped, table) = ProtMetadataTable::strip(&prog);
        assert_eq!(stripped.prot_count(), 0);
        assert_eq!(table.protected_count(), 3);
        assert_eq!(table.apply(&stripped).insts, prog.insts);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let table = ProtMetadataTable::from_program(&sample());
        let bytes = table.encode();
        assert_eq!(ProtMetadataTable::decode(&bytes).unwrap(), table);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = ProtMetadataTable::from_program(&sample()).encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                ProtMetadataTable::decode(&bytes[..cut]),
                Err(MetadataDecodeError),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn table_is_denser_than_prefixes_for_heavy_protection() {
        // A UNR-style binary protects most instructions: one bit per
        // instruction beats one prefix byte per protected instruction.
        let mut prog = sample();
        for inst in &mut prog.insts {
            inst.prot = true;
        }
        let table = ProtMetadataTable::from_program(&prog);
        assert!(table.size_bytes() < prog.prot_count());
    }

    #[test]
    fn out_of_range_reads_unprotected() {
        let table = ProtMetadataTable::from_program(&sample());
        assert!(!table.is_protected(999));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_checks_length() {
        let table = ProtMetadataTable::from_program(&sample());
        let other = assemble("halt\n").unwrap();
        let _ = table.apply(&other);
    }
}
