//! The liveness invariant every policy must satisfy: once a µop is
//! non-speculative (at the ROB head under ATCOMMIT), `may_execute`,
//! `may_wakeup`, and `may_resolve` must all return `true`, no matter how
//! tainted or protected its operands are — otherwise the pipeline
//! deadlocks. (The watchdog in `protean-sim` would catch a violation at
//! runtime; this checks the policies directly.)

use protean_baselines::{AccessDelayPolicy, SptPolicy, SptSbPolicy, SttPolicy};
use protean_isa::{Inst, Mem, Op, Reg, Width};
use protean_sim::{
    DefensePolicy, DynInst, MemState, RegTags, SpecFrontier, SpeculationModel, UnsafePolicy,
    UopStatus,
};

/// A maximally "dangerous" µop: a load with protected, tainted sensitive
/// operands, forwarded from a tainted store, predicted no-access, with a
/// delayed-wakeup flag.
fn worst_case_uop(seq: u64) -> DynInst {
    DynInst {
        seq,
        idx: 3,
        pc: 0x40000c,
        inst: Inst::prot(Op::Load {
            dst: Reg::R1,
            addr: Mem::base(Reg::R0),
            size: Width::W64,
        }),
        srcs: [(Reg::R0, 17)].into_iter().collect(),
        dsts: Default::default(),
        status: UopStatus::Done,
        mem: Some(MemState {
            addr: Some(0x1000),
            size: 8,
            is_store: false,
            value: 0,
            data_ready: true,
            data_prot: true,
            data_yrot: seq.saturating_sub(1).max(1),
            data_taint: true,
            fwd_from: Some(seq.saturating_sub(1).max(1)),
            fwd_data_yrot: seq.saturating_sub(1).max(1),
            fwd_data_taint: true,
        }),
        pred_next: Some(4),
        pred_taken: false,
        actual_next: Some(Some(9)),
        actual_taken: true,
        mispredicted: true,
        resolved: false,
        wakeup_done: false,
        hist_snapshot: 0,
        rsb_snapshot: [].into(),
        prot_out: true,
        src_prot: true,
        sens_prot: true,
        mem_prot: Some(true),
        in_taint: true,
        in_yrot: seq.saturating_sub(1).max(1),
        delay_wakeup_nonspec: true,
        wakeup_hold_root: seq.saturating_sub(1).max(1),
        pred_no_access: Some(true),
        div_fault: false,
        addr_regs: protean_isa::RegSet::from_regs([Reg::R0]),
        data_reg: None,
        fetch_cycle: 0,
        rename_cycle: 0,
        issue_cycle: 0,
        complete_cycle: 0,
    }
}

fn policies() -> Vec<Box<dyn DefensePolicy>> {
    vec![
        Box::new(UnsafePolicy),
        Box::new(AccessDelayPolicy::nda()),
        Box::new(SttPolicy::fixed()),
        Box::new(SttPolicy::original()),
        Box::new(SptPolicy::fixed()),
        Box::new(SptPolicy::original()),
        Box::new(SptSbPolicy::fixed()),
        Box::new(SptSbPolicy::original()),
    ]
}

#[test]
fn non_speculative_uops_are_never_blocked() {
    for model in [SpeculationModel::AtCommit, SpeculationModel::Control] {
        for policy in policies() {
            let name = policy.name();
            let seq = 10;
            let u = worst_case_uop(seq);
            // Even fully tainted register state…
            let mut tags = RegTags::new(64, 32);
            for t in tags.taint.iter_mut() {
                *t = true;
            }
            for y in tags.yrot.iter_mut() {
                *y = 9;
            }
            for p in tags.prot.iter_mut() {
                *p = true;
            }
            // …must not block a µop at the non-speculative frontier.
            let fr = SpecFrontier {
                head_seq: seq,
                // Under CONTROL the µop itself may be the oldest
                // unresolved branch.
                oldest_unresolved_branch: seq,
                model,
            };
            assert!(fr.is_non_speculative(seq), "frontier setup");
            assert!(
                policy.may_execute(&u, &tags, &fr),
                "{name} blocks execution at the head ({model:?})"
            );
            assert!(
                policy.may_resolve(&u, &tags, &fr),
                "{name} blocks resolution at the head ({model:?})"
            );
            // Wakeup may additionally be held by a forwarded root; that
            // root (seq-1) is older than the head, hence non-speculative
            // too, so wakeup must be allowed.
            assert!(
                policy.may_wakeup(&u, &tags, &fr),
                "{name} blocks wakeup at the head ({model:?})"
            );
        }
    }
}

#[test]
fn speculative_worst_case_is_blocked_by_secure_policies() {
    // Sanity inverse: deep in the window, the same µop must be blocked
    // from executing by every policy that gates loads.
    let u = worst_case_uop(100);
    let mut tags = RegTags::new(64, 32);
    tags.taint[17] = true;
    tags.yrot[17] = 99;
    tags.prot[17] = true;
    let fr = SpecFrontier {
        head_seq: 5,
        oldest_unresolved_branch: 3,
        model: SpeculationModel::AtCommit,
    };
    for policy in policies() {
        let name = policy.name();
        if name.starts_with("STT") || name.starts_with("SPT") {
            assert!(
                !policy.may_execute(&u, &tags, &fr),
                "{name} should block a tainted-address speculative load"
            );
        }
    }
}
