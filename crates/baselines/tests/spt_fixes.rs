//! The SPT patches of paper §VII-B4c, verified in isolation:
//!
//! * the 32-bit untaint performance fix: without it, `mov eax, imm`-style
//!   zero-extending writes leave the destination tainted, stalling
//!   transmitters that use it;
//! * the original configuration (no division transmitters) leaves the
//!   divider channel open — covered by the fuzzer campaigns; here we
//!   check the taint toggle's timing effect directly.

use protean_arch::ArchState;
use protean_baselines::SptPolicy;
use protean_isa::{assemble, Program};
use protean_sim::{Core, CoreConfig, DefensePolicy, SimExit};

fn run(program: &Program, policy: Box<dyn DefensePolicy>) -> u64 {
    let mut init = ArchState::new();
    for i in 0..64u64 {
        init.mem.write(0x10000 + i * 8, 8, i % 7);
    }
    let core = Core::new(program, CoreConfig::p_core(), policy, &init);
    let r = core.run(1_000_000, 60_000_000);
    assert_eq!(r.exit, SimExit::Halted);
    r.stats.cycles
}

/// A loop that loads private data into `r1`, then *fully overwrites* it
/// with a 32-bit constant before using it as a load index. With the fix
/// the index is public; without it, the stale upper-bits taint makes
/// every indexed load a stalled transmitter.
#[test]
fn upper32_untaint_fix_removes_stalls() {
    let program = assemble(
        r#"
          mov r3, 0
        loop:
          load r1, [0x10000 + r3*8]   ; private data into r1
          add r2, r2, r1
          mov.w r1, 64                 ; 32-bit reset: zero-extends
          load r4, [0x10000 + r1*1]    ; r1-indexed: public with the fix
          add r2, r2, r4
          add r3, r3, 1
          cmp r3, 2000
          jlt loop
          halt
        "#,
    )
    .unwrap();
    let fixed = run(&program, Box::new(SptPolicy::fixed()));
    let unfixed = run(&program, Box::new(SptPolicy::fixed_without_perf_fix()));
    assert!(
        unfixed > fixed + fixed / 10,
        "the 32-bit untaint fix should remove taint stalls: fixed={fixed}, unfixed={unfixed}"
    );
}

/// A division on data loaded from private memory: the fixed SPT treats
/// divisions as transmitters and stalls them; the original does not.
#[test]
fn division_transmitter_gating_costs_cycles() {
    let program = assemble(
        r#"
          mov r3, 0
          mov r5, 7
        loop:
          load r1, [0x10000 + r3*8]   ; private data
          add r1, r1, 1
          div r2, r1, r5              ; transmitter under the fixed model
          add r4, r4, r2
          add r3, r3, 1
          cmp r3, 2000
          jlt loop
          halt
        "#,
    )
    .unwrap();
    let fixed = run(&program, Box::new(SptPolicy::fixed()));
    let original = run(&program, Box::new(SptPolicy::original()));
    assert!(
        fixed > original,
        "div gating should cost cycles: fixed={fixed}, original={original}"
    );
}
