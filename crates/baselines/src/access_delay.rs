//! AccessDelay: the NDA / SpecShield protection mechanism (paper §VI-A1).
//!
//! Speculative *access instructions* (loads, under the hardware-defined
//! all-memory ProtSet these defenses assume) may execute and write back,
//! but may not wake their dependents until they become non-speculative.
//! This prevents transiently loaded data from reaching any transmitter —
//! sufficient to secure non-secret-accessing (ARCH) code, which is
//! NDA/SpecShield's target.

use protean_isa::TransmitterSet;
use protean_sim::{BlockPoint, DefensePolicy, DynInst, RegTags, SpecFrontier};

/// The AccessDelay policy (NDA \[138\] / SpecShield \[13\]).
///
/// # Examples
///
/// ```
/// use protean_baselines::AccessDelayPolicy;
/// use protean_sim::DefensePolicy;
///
/// let nda = AccessDelayPolicy::nda();
/// assert_eq!(nda.name(), "NDA");
/// ```
#[derive(Clone, Debug)]
pub struct AccessDelayPolicy {
    label: &'static str,
    xmit: TransmitterSet,
}

impl AccessDelayPolicy {
    /// NDA's configuration.
    pub fn nda() -> AccessDelayPolicy {
        AccessDelayPolicy {
            label: "NDA",
            xmit: TransmitterSet::paper(),
        }
    }

    /// SpecShield's configuration (identical mechanism).
    pub fn spec_shield() -> AccessDelayPolicy {
        AccessDelayPolicy {
            label: "SpecShield",
            xmit: TransmitterSet::paper(),
        }
    }
}

impl DefensePolicy for AccessDelayPolicy {
    fn name(&self) -> String {
        self.label.into()
    }

    fn transmitters(&self) -> TransmitterSet {
        self.xmit
    }

    fn on_rename(&mut self, u: &mut DynInst, tags: &mut RegTags) {
        protean_sim::propagate_tags(u, tags);
        // Every load is an access instruction: its dependents wait until
        // it is non-speculative.
        if u.is_load() {
            u.delay_wakeup_nonspec = true;
        }
    }

    fn may_wakeup(&self, u: &DynInst, _tags: &RegTags, fr: &SpecFrontier) -> bool {
        !u.delay_wakeup_nonspec || fr.is_non_speculative(u.seq)
    }

    fn may_resolve(&self, u: &DynInst, _tags: &RegTags, fr: &SpecFrontier) -> bool {
        // A `ret`'s squash decision transmits its (speculatively loaded)
        // target: the load may not "wake" the squash logic either.
        !(u.is_load() && u.delay_wakeup_nonspec) || fr.is_non_speculative(u.seq)
    }

    fn block_rule(
        &self,
        _u: &DynInst,
        point: BlockPoint,
        _tags: &RegTags,
        _fr: &SpecFrontier,
    ) -> &'static str {
        match point {
            BlockPoint::Execute => "blocked",
            BlockPoint::Wakeup => "spec-load-wakeup",
            BlockPoint::Resolve => "spec-ret-target-resolve",
        }
    }
}
