//! # protean-baselines
//!
//! The state-of-the-art comprehensive, programmer-transparent Spectre
//! defenses that *"Protean: A Programmable Spectre Defense"* (HPCA 2026)
//! evaluates against, each implemented as a
//! [`DefensePolicy`](protean_sim::DefensePolicy) for the `protean-sim`
//! out-of-order core:
//!
//! | Defense | ProtSet (hardware-defined) | Mechanism | Targets |
//! |---------|---------------------------|-----------|---------|
//! | [`AccessDelayPolicy`] (NDA/SpecShield) | all memory | AccessDelay | ARCH |
//! | [`SttPolicy`] (STT) | all memory | AccessTrack | ARCH |
//! | [`SptPolicy`] (SPT) | untransmitted state | AccessTrack† | CT |
//! | [`SptSbPolicy`] (SPT-SB) | all state | XmitDelay | UNR |
//!
//! Each policy has a `fixed()` constructor (the fully patched version the
//! paper benchmarks, with division transmitters and the pending-squash
//! fix) and an `original()` constructor reproducing the pre-fix artifacts
//! that AMuLeT\* finds contract violations in (§VII-B4).
//!
//! # Example
//!
//! ```
//! use protean_arch::ArchState;
//! use protean_baselines::SttPolicy;
//! use protean_isa::assemble;
//! use protean_sim::{Core, CoreConfig};
//!
//! let prog = assemble("load r1, [r0]\nload r2, [r1]\nhalt\n").unwrap();
//! let core = Core::new(&prog, CoreConfig::test_tiny(), Box::new(SttPolicy::fixed()),
//!                      &ArchState::new());
//! let r = core.run(1_000, 100_000);
//! assert_eq!(r.exit, protean_sim::SimExit::Halted);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod access_delay;
mod spt;
mod sptsb;
mod stt;

pub use access_delay::AccessDelayPolicy;
pub use spt::SptPolicy;
pub use sptsb::SptSbPolicy;
pub use stt::SttPolicy;
