//! STT: Speculative Taint Tracking (paper §VI-A2, [148]).
//!
//! The AccessTrack mechanism under a hardware-defined all-memory ProtSet:
//! every speculative load roots taint on its output; taint propagates
//! through register dependencies at rename; a transmitter with a tainted
//! sensitive operand may not execute (loads/stores/divisions) or resolve
//! (branches) until its *youngest root of taint* (YRoT) becomes
//! non-speculative, at which point the data is architecturally accessed
//! and — under STT's ARCH-SEQ contract — fair game.

use protean_isa::TransmitterSet;
use protean_sim::{
    sensitive_root_tainted, BlockPoint, DefensePolicy, DynInst, RegTags, SpecFrontier,
};

/// The STT policy.
///
/// `buggy_squash` reproduces the pending-squash bug the paper found in
/// STT's gem5 implementation and fixed upstream (§VII-B4b);
/// `TransmitterSet::legacy()` reproduces the pre-fix defense that did not
/// treat division µops as transmitters.
///
/// # Examples
///
/// ```
/// use protean_baselines::SttPolicy;
/// use protean_sim::DefensePolicy;
///
/// let stt = SttPolicy::fixed();
/// assert!(stt.transmitters().divs);
/// assert!(!SttPolicy::original().transmitters().divs);
/// ```
#[derive(Clone, Debug)]
pub struct SttPolicy {
    xmit: TransmitterSet,
    buggy_squash: bool,
}

impl SttPolicy {
    /// The fully fixed STT evaluated in the paper's Tab. IV/V: division
    /// transmitters handled, pending-squash bug patched.
    pub fn fixed() -> SttPolicy {
        SttPolicy {
            // STT assumes loads and branches transmit; the fixed version
            // adds division µops (§VII-B3). It does not stall stores.
            xmit: TransmitterSet {
                loads: true,
                stores: false,
                branches: true,
                divs: true,
            },
            buggy_squash: false,
        }
    }

    /// The original artifact: no division transmitters, pending-squash
    /// bug present — the configuration AMuLeT\* finds 9 violations in.
    pub fn original() -> SttPolicy {
        SttPolicy {
            xmit: TransmitterSet {
                loads: true,
                stores: false,
                branches: true,
                divs: false,
            },
            buggy_squash: true,
        }
    }
}

impl DefensePolicy for SttPolicy {
    fn name(&self) -> String {
        if self.buggy_squash {
            "STT (original)".into()
        } else {
            "STT".into()
        }
    }

    fn transmitters(&self) -> TransmitterSet {
        self.xmit
    }

    fn pending_squash_bug(&self) -> bool {
        self.buggy_squash
    }

    fn on_rename(&mut self, u: &mut DynInst, tags: &mut RegTags) {
        protean_sim::propagate_tags(u, tags);
        // Loads root taint: their output depends on speculatively
        // accessed memory.
        if u.is_load() {
            let yrot = u.in_yrot.max(u.seq);
            for d in &u.dsts {
                tags.yrot[d.new_phys] = yrot;
            }
        }
    }

    fn may_execute(&self, u: &DynInst, tags: &RegTags, fr: &SpecFrontier) -> bool {
        if u.inst.is_branch() {
            return true; // branches execute; their *resolution* is gated
        }
        if !self.xmit.is_transmitter(&u.inst) {
            return true;
        }
        fr.is_non_speculative(u.seq) || !sensitive_root_tainted(u, &self.xmit, tags, fr)
    }

    fn may_resolve(&self, u: &DynInst, tags: &RegTags, fr: &SpecFrontier) -> bool {
        if fr.is_non_speculative(u.seq) {
            return true;
        }
        // A squash transmits the branch predicate / target.
        if sensitive_root_tainted(u, &self.xmit, tags, fr) {
            return false;
        }
        // `ret` transmits its speculatively *loaded* target, which is
        // tainted by the ret's own load (rooted at itself).
        !u.is_load()
    }

    fn block_rule(
        &self,
        u: &DynInst,
        point: BlockPoint,
        tags: &RegTags,
        fr: &SpecFrontier,
    ) -> &'static str {
        match point {
            BlockPoint::Execute => "tainted-transmitter-delay",
            BlockPoint::Wakeup => "blocked",
            BlockPoint::Resolve => {
                if sensitive_root_tainted(u, &self.xmit, tags, fr) {
                    "tainted-branch-resolve"
                } else {
                    "tainted-ret-target-resolve"
                }
            }
        }
    }
}
