//! SPT-SB: SPT's secure baseline (paper §III-C) — the XmitDelay
//! mechanism over an all-state ProtSet.
//!
//! Every register and memory byte is protected at all times, so every
//! speculative transmitter (load, store, branch, division) stalls until
//! it is non-speculative. This secures even unrestricted (UNR) code —
//! before Protean, it was the *only* defense able to fully secure
//! multi-class programs like nginx — at the cost of the highest overhead
//! in the paper's evaluation (≈2.9× on SPEC, Tab. IV).

use protean_isa::TransmitterSet;
use protean_sim::{BlockPoint, DefensePolicy, DynInst, RegTags, SpecFrontier};

/// The SPT-SB policy.
///
/// # Examples
///
/// ```
/// use protean_baselines::SptSbPolicy;
/// use protean_sim::DefensePolicy;
///
/// assert_eq!(SptSbPolicy::fixed().name(), "SPT-SB");
/// ```
#[derive(Clone, Debug)]
pub struct SptSbPolicy {
    xmit: TransmitterSet,
    buggy_squash: bool,
}

impl SptSbPolicy {
    /// The fully patched SPT-SB evaluated in the paper.
    pub fn fixed() -> SptSbPolicy {
        SptSbPolicy {
            xmit: TransmitterSet::paper(),
            buggy_squash: false,
        }
    }

    /// The original artifact (no division transmitters, pending-squash
    /// bug).
    pub fn original() -> SptSbPolicy {
        SptSbPolicy {
            xmit: TransmitterSet::legacy(),
            buggy_squash: true,
        }
    }
}

impl DefensePolicy for SptSbPolicy {
    fn name(&self) -> String {
        if self.buggy_squash {
            "SPT-SB (original)".into()
        } else {
            "SPT-SB".into()
        }
    }

    fn transmitters(&self) -> TransmitterSet {
        self.xmit
    }

    fn pending_squash_bug(&self) -> bool {
        self.buggy_squash
    }

    fn may_execute(&self, u: &DynInst, _tags: &RegTags, fr: &SpecFrontier) -> bool {
        if u.inst.is_branch() {
            return true;
        }
        !self.xmit.is_transmitter(&u.inst) || fr.is_non_speculative(u.seq)
    }

    fn may_resolve(&self, u: &DynInst, _tags: &RegTags, fr: &SpecFrontier) -> bool {
        // Every squash signal transmits protected state.
        !self.xmit.branches || fr.is_non_speculative(u.seq)
    }

    fn block_rule(
        &self,
        _u: &DynInst,
        point: BlockPoint,
        _tags: &RegTags,
        _fr: &SpecFrontier,
    ) -> &'static str {
        match point {
            BlockPoint::Execute => "spec-transmitter-delay",
            BlockPoint::Wakeup => "blocked",
            BlockPoint::Resolve => "spec-squash-delay",
        }
    }
}
