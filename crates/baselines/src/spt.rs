//! SPT: Speculative Privacy Tracking (paper §III-C, [32]).
//!
//! SPT's hardware-defined ProtSet is "all *untransmitted* state": data
//! that the program has already architecturally transmitted (passed to a
//! transmitter's sensitive operand) is public and needs no protection, so
//! SPT targets constant-time (CT) code. Mechanically it extends
//! AccessTrack with value-based taint:
//!
//! * registers start tainted (private); constants are untainted;
//! * taint propagates through register dataflow at rename;
//! * loads take the taint of the bytes they read, tracked in per-byte
//!   shadow bits on the L1D (evictions forget publicness);
//! * a speculative transmitter with a tainted sensitive operand stalls
//!   until non-speculative;
//! * when a transmitter *retires*, its sensitive operands become public:
//!   the transmitted register values are untainted (the bytes they were
//!   loaded from stay private — SPT cannot declassify backwards, §IX-B3).
//!
//! The paper's two SPT patches are modelled as toggles: the §VII-B4c
//! *taint-all-at-rename* security fix (loads are conservatively tainted
//! from rename until their shadow bits arrive) and the 32-bit
//! *upper-bits-untaint* performance fix (§VII-B4c: without it, `mov eax,
//! imm`-style zero-extending writes leave the destination tainted).

use protean_isa::{Op, TransmitterSet, Width};
use protean_sim::{
    sensitive_phys, sensitive_value_tainted, BlockPoint, Cache, DefensePolicy, DynInst, RegTags,
    SpecFrontier,
};

/// The SPT policy. See the module docs for the modelled semantics.
///
/// # Examples
///
/// ```
/// use protean_baselines::SptPolicy;
/// use protean_sim::DefensePolicy;
///
/// assert_eq!(SptPolicy::fixed().name(), "SPT");
/// assert!(!SptPolicy::fixed().l1d_meta_fill()); // shadow bits: cold = private
/// ```
#[derive(Clone, Debug)]
pub struct SptPolicy {
    xmit: TransmitterSet,
    /// Apply the 32-bit zero-extension untaint performance fix.
    fix_upper32: bool,
    buggy_squash: bool,
}

impl SptPolicy {
    /// The fully patched SPT evaluated in the paper's Tab. IV/V.
    pub fn fixed() -> SptPolicy {
        SptPolicy {
            xmit: TransmitterSet::paper(),
            fix_upper32: true,
            buggy_squash: false,
        }
    }

    /// Security fixes applied but *not* the 32-bit performance fix — the
    /// configuration whose overhead §IX-A7 quantifies.
    pub fn fixed_without_perf_fix() -> SptPolicy {
        SptPolicy {
            fix_upper32: false,
            ..SptPolicy::fixed()
        }
    }

    /// The original artifact: no division transmitters, pending-squash
    /// bug present.
    pub fn original() -> SptPolicy {
        SptPolicy {
            xmit: TransmitterSet::legacy(),
            fix_upper32: false,
            buggy_squash: true,
        }
    }
}

impl DefensePolicy for SptPolicy {
    fn name(&self) -> String {
        if self.buggy_squash {
            "SPT (original)".into()
        } else if !self.fix_upper32 {
            "SPT (no 32-bit fix)".into()
        } else {
            "SPT".into()
        }
    }

    fn transmitters(&self) -> TransmitterSet {
        self.xmit
    }

    fn pending_squash_bug(&self) -> bool {
        self.buggy_squash
    }

    /// Shadow bits: `true` = public; cold lines are private.
    fn l1d_meta_fill(&self) -> bool {
        false
    }

    fn on_rename(&mut self, u: &mut DynInst, tags: &mut RegTags) {
        protean_sim::propagate_tags(u, tags);
        let mut taint = u.in_taint;
        match u.inst.op {
            // Constants are public (they appear in the code).
            Op::MovImm { .. } => taint = false,
            // Loads: conservatively tainted from rename (the
            // taint-all-at-rename fix); refined by the shadow bits at
            // execute in `on_load_data`.
            _ if u.is_load() => taint = true,
            _ => {}
        }
        // The 32-bit untaint bug: zero-extending writes architecturally
        // clear the upper bits, but unpatched SPT keeps the old
        // register's taint OR-ed in.
        if !self.fix_upper32 && u.inst.write_width() == Some(Width::W32) {
            if let Some(d) = u.dsts.first() {
                taint |= tags.taint[d.prev_phys];
            }
        }
        for d in &u.dsts {
            tags.taint[d.new_phys] = taint;
        }
    }

    fn on_load_data(&mut self, u: &mut DynInst, tags: &mut RegTags, l1d: &Cache) {
        let m = u.mem.as_ref().expect("load has mem state");
        let addr = m.addr.expect("load executed");
        let size = m.size;
        let private = match m.fwd_from {
            Some(_) => m.fwd_data_taint,
            None => !l1d.meta_all(addr, size), // any non-public byte
        };
        // `mem_prot` doubles as "read private bytes" for this policy
        // (gates `ret` resolution).
        u.mem_prot = Some(private);
        for d in &u.dsts {
            tags.taint[d.new_phys] = private;
        }
    }

    fn may_execute(&self, u: &DynInst, tags: &RegTags, fr: &SpecFrontier) -> bool {
        if u.inst.is_branch() {
            return true;
        }
        if !self.xmit.is_transmitter(&u.inst) {
            return true;
        }
        fr.is_non_speculative(u.seq) || !sensitive_value_tainted(u, &self.xmit, tags)
    }

    fn may_resolve(&self, u: &DynInst, tags: &RegTags, fr: &SpecFrontier) -> bool {
        if fr.is_non_speculative(u.seq) {
            return true;
        }
        if sensitive_value_tainted(u, &self.xmit, tags) {
            return false;
        }
        // `ret`: the loaded target itself must be public.
        u.mem_prot != Some(true)
    }

    fn block_rule(
        &self,
        u: &DynInst,
        point: BlockPoint,
        tags: &RegTags,
        _fr: &SpecFrontier,
    ) -> &'static str {
        match point {
            BlockPoint::Execute => "private-transmitter-delay",
            BlockPoint::Wakeup => "blocked",
            BlockPoint::Resolve => {
                if sensitive_value_tainted(u, &self.xmit, tags) {
                    "private-branch-resolve"
                } else {
                    "private-ret-target-resolve"
                }
            }
        }
    }

    fn on_commit(&mut self, u: &DynInst, tags: &mut RegTags, l1d: &mut Cache) {
        // Stores publish their data's taint state to the shadow bits.
        if let Some(m) = &u.mem {
            if m.is_store {
                l1d.meta_set(m.addr.expect("committed store"), m.size, !m.data_taint);
            }
        }
        // A retired transmitter makes its sensitive operands public —
        // the transmitted *register value* only. SPT cannot declassify
        // the memory bytes the value came from (it would need to know
        // they are equal, which only invertible-dependency tracking of
        // exact copies could establish); this inability to "publish
        // backwards" is why SPT keeps stalling on pointer-shaped data
        // that ProtCC unprotects statically (§IX-B2, §IX-B3).
        if self.xmit.is_transmitter(&u.inst) {
            for &p in sensitive_phys(u, &self.xmit).iter() {
                tags.taint[p] = false;
            }
        }
    }
}
