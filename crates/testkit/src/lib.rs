//! A minimal, dependency-free property-testing harness.
//!
//! Replaces the workspace's former `proptest` dev-dependency with the
//! three features the test suite actually relies on, built on the
//! in-tree deterministic [`Rng`]:
//!
//! * **seeded case generation** — every case derives from a campaign
//!   seed through SplitMix64, so a failing run is reproducible from one
//!   number;
//! * **failure-seed reporting** — a failing case panics with its case
//!   seed and the generated input's `Debug` form;
//! * **regression-seed replay** — failing seeds get pinned with
//!   [`Checker::regression`] and re-run first on every future run,
//!   replacing proptest's `.proptest-regressions` sidecar files with
//!   explicit, reviewable code.
//!
//! There is no shrinking: generators here are small and structured, and
//! a pinned seed replays the exact failing input, which has proven
//! enough to debug this codebase. What the harness buys instead is
//! *zero external dependencies* and bit-stable streams across runs and
//! hosts.
//!
//! # Example
//!
//! ```
//! use protean_testkit::Checker;
//!
//! Checker::new("addition_commutes")
//!     .cases(64)
//!     .regression(0xdead_beef) // a previously failing case seed
//!     .run(
//!         |rng| (rng.gen::<u32>(), rng.gen::<u32>()),
//!         |&(a, b)| {
//!             assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!         },
//!     );
//! ```
//!
//! To replay one specific case from a failure report, either pin it
//! with [`Checker::regression`] or run the test under
//! `PROTEAN_CHECK_REPLAY=<case seed>` (which runs only that case).

#![warn(missing_docs)]

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use protean_rng::{Rng, SplitMix64};

/// Default number of generated cases per property (matching proptest's
/// historical default, so coverage does not regress).
pub const DEFAULT_CASES: u32 = 256;

/// Default campaign seed. Changing it is a conscious act: recorded
/// regression seeds stay valid (they replay verbatim), but the novel
/// case stream moves.
pub const DEFAULT_SEED: u64 = 0x70e4_6a11_5eed_0001;

/// A property checker: a named campaign of seeded random cases.
///
/// See the [crate docs](crate) for the model and an example.
#[derive(Clone, Debug)]
pub struct Checker {
    name: &'static str,
    cases: u32,
    seed: u64,
    regressions: Vec<u64>,
}

impl Checker {
    /// Creates a checker for the property `name` (used in failure
    /// reports; conventionally the test function's name).
    ///
    /// The environment overrides `PROTEAN_CHECK_CASES` and
    /// `PROTEAN_CHECK_SEED` take precedence over [`Checker::cases`] and
    /// [`Checker::seed`] — they exist to replay a reported failure or
    /// to crank case counts in CI without editing code.
    pub fn new(name: &'static str) -> Checker {
        Checker {
            name,
            cases: env_u64("PROTEAN_CHECK_CASES").map_or(DEFAULT_CASES, |n| n as u32),
            seed: env_u64("PROTEAN_CHECK_SEED").unwrap_or(DEFAULT_SEED),
            regressions: Vec::new(),
        }
    }

    /// Sets the number of novel cases (unless overridden by
    /// `PROTEAN_CHECK_CASES`).
    pub fn cases(mut self, cases: u32) -> Checker {
        if std::env::var_os("PROTEAN_CHECK_CASES").is_none() {
            self.cases = cases;
        }
        self
    }

    /// Sets the campaign seed (unless overridden by
    /// `PROTEAN_CHECK_SEED`).
    pub fn seed(mut self, seed: u64) -> Checker {
        if std::env::var_os("PROTEAN_CHECK_SEED").is_none() {
            self.seed = seed;
        }
        self
    }

    /// Pins a case seed from a past failure. Regression seeds replay
    /// before any novel case, on every run — the in-code replacement
    /// for proptest's `.proptest-regressions` files.
    pub fn regression(mut self, seed: u64) -> Checker {
        self.regressions.push(seed);
        self
    }

    /// Runs the property: `gen` builds an input from a seeded [`Rng`],
    /// `prop` asserts about it (panicking on violation, e.g. via
    /// `assert!`).
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, reporting the property name,
    /// the case seed, and the generated input.
    pub fn run<T: Debug>(&self, gen: impl Fn(&mut Rng) -> T, prop: impl Fn(&T)) {
        self.run_inner(&gen, |value, _| prop(value));
    }

    /// Like [`Checker::run`], but `prop` also receives a fresh [`Rng`]
    /// (derived from the same case seed) for properties that need
    /// randomness beyond input generation.
    pub fn run_with_rng<T: Debug>(&self, gen: impl Fn(&mut Rng) -> T, prop: impl Fn(&T, &mut Rng)) {
        self.run_inner(&gen, prop);
    }

    fn run_inner<T: Debug>(&self, gen: &impl Fn(&mut Rng) -> T, prop: impl Fn(&T, &mut Rng)) {
        if let Some(seed) = env_u64("PROTEAN_CHECK_REPLAY") {
            self.run_case(seed, gen, &prop, CaseKind::Replay);
            return;
        }
        for (i, seed) in self.regressions.iter().enumerate() {
            self.run_case(*seed, gen, &prop, CaseKind::Regression(i));
        }
        let mut case_seeds = SplitMix64::new(self.seed);
        for i in 0..self.cases {
            self.run_case(case_seeds.next_u64(), gen, &prop, CaseKind::Novel(i));
        }
    }

    fn run_case<T: Debug>(
        &self,
        case_seed: u64,
        gen: &impl Fn(&mut Rng) -> T,
        prop: &impl Fn(&T, &mut Rng),
        kind: CaseKind,
    ) {
        let mut rng = Rng::seed_from_u64(case_seed);
        let value = gen(&mut rng);
        // An independent stream for the property itself, so adding
        // draws to `prop` never perturbs input generation.
        let mut prop_rng = Rng::seed_from_u64(case_seed ^ 0x9e37_79b9_7f4a_7c15);
        let outcome = catch_unwind(AssertUnwindSafe(|| prop(&value, &mut prop_rng)));
        if let Err(payload) = outcome {
            let msg = panic_message(&*payload);
            panic!(
                "property `{}` failed on {} (case seed {:#018x})\n\
                 input: {:?}\n\
                 cause: {}\n\
                 replay: pin with `.regression({:#018x})` or run with \
                 PROTEAN_CHECK_REPLAY={:#x}",
                self.name, kind, case_seed, value, msg, case_seed, case_seed,
            );
        }
    }
}

enum CaseKind {
    Regression(usize),
    Novel(u32),
    Replay,
}

impl std::fmt::Display for CaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseKind::Regression(i) => write!(f, "pinned regression #{i}"),
            CaseKind::Novel(i) => write!(f, "novel case #{i}"),
            CaseKind::Replay => write!(f, "PROTEAN_CHECK_REPLAY case"),
        }
    }
}

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("{var}={raw} is not a u64")))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        Checker::new("counts").cases(17).seed(1).run(
            |rng| rng.gen::<u64>(),
            |_| {
                counter.set(counter.get() + 1);
            },
        );
        count += counter.get();
        assert_eq!(count, 17);
    }

    #[test]
    fn failing_property_reports_seed_and_input() {
        let result = catch_unwind(|| {
            Checker::new("fails").cases(8).seed(2).run(
                |rng| rng.gen_range(0..100u64),
                |v| assert!(*v > 100, "impossible"),
            );
        });
        let msg = panic_message(&*result.unwrap_err());
        assert!(msg.contains("property `fails` failed"), "got: {msg}");
        assert!(msg.contains("case seed 0x"), "got: {msg}");
        assert!(msg.contains("input: "), "got: {msg}");
    }

    #[test]
    fn regression_seeds_run_first_and_replay_exactly() {
        let seen = std::cell::RefCell::new(Vec::new());
        Checker::new("replay")
            .cases(0)
            .regression(42)
            .regression(43)
            .run(|rng| rng.gen::<u64>(), |v| seen.borrow_mut().push(*v));
        let direct: Vec<u64> = [42u64, 43]
            .iter()
            .map(|s| Rng::seed_from_u64(*s).gen::<u64>())
            .collect();
        assert_eq!(*seen.borrow(), direct);
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            Checker::new("det")
                .cases(16)
                .seed(7)
                .run(|rng| rng.gen::<u64>(), |v| seen.borrow_mut().push(*v));
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
