//! # protean-jobs
//!
//! A deterministic, zero-dependency parallel job runner for the
//! embarrassingly parallel fan-out sites in this workspace: AMuLeT\*
//! fuzzing campaigns (one job per generated program), bench table /
//! figure / ablation cells (one job per simulated run), and wall-clock
//! bench cases.
//!
//! ## The determinism contract
//!
//! Results are collected **in job order**, regardless of which worker
//! ran which job or in what order jobs finished. A caller that derives
//! every job's inputs up front (per-job seeds, never a shared RNG) and
//! merges results in job index order therefore produces *byte-identical*
//! output at any worker count — `PROTEAN_JOBS=1` and `PROTEAN_JOBS=32`
//! must be indistinguishable from the output alone. The campaign and
//! bench drivers enforce this with same-seed 1-vs-N tests.
//!
//! ## Worker-count resolution
//!
//! An explicit count passed to [`map_indexed_with`] wins; otherwise the
//! `PROTEAN_JOBS` environment variable; otherwise
//! [`std::thread::available_parallelism`]. `PROTEAN_JOBS=1` forces
//! serial in-thread execution (no worker threads are spawned).
//!
//! ## Panics
//!
//! A panicking job does not poison its siblings: remaining jobs keep
//! running, then the pool re-panics on the *lowest* failed job index
//! with the job's context attached (`job 7 of 30 panicked: ...`), so a
//! failure inside a parallel campaign is attributable to one job — and,
//! through the caller's seed-splitting discipline, to one seed — no
//! matter how many workers raced past it.
//!
//! # Examples
//!
//! ```
//! let squares = protean_jobs::map_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let lens = protean_jobs::map(&["a", "bcd"], |_, s| s.len());
//! assert_eq!(lens, vec![1, 3]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The resolved default worker count: `PROTEAN_JOBS` if set (must be a
/// positive integer), else the machine's available parallelism.
///
/// # Panics
///
/// Panics if `PROTEAN_JOBS` is set but not a positive integer — a
/// misspelled override silently running serial (or all-cores) would be
/// much harder to notice than a crash.
pub fn worker_count() -> usize {
    match std::env::var("PROTEAN_JOBS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("PROTEAN_JOBS={raw} is not a positive integer"),
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs jobs `0..n` on the default worker count (see [`worker_count`])
/// and returns their results in job order.
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(worker_count(), n, f)
}

/// Runs `f(i, &items[i])` for every item and returns the results in
/// item order, on the default worker count.
pub fn map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    map_indexed(items.len(), |i| f(i, &items[i]))
}

/// Runs jobs `0..n` on exactly `workers` threads (clamped to `[1, n]`)
/// and returns their results in job order.
///
/// `workers == 1` runs every job serially on the calling thread; no
/// threads are spawned. Panic reporting is identical on both paths.
pub fn map_indexed_with<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_range_with(workers, 0..n, f)
}

/// Runs jobs over an arbitrary index `range` (absolute job indices are
/// passed to `f`) on exactly `workers` threads, returning results in
/// index order.
///
/// This is the chunked-work-queue primitive behind resumable campaign
/// engines: a driver that partitions `0..total` into consecutive chunks
/// and calls `map_range_with` per chunk gets results identical to one
/// `map_indexed_with(workers, total, f)` call — concatenation over
/// chunks commutes with the ordered merge (test-asserted) — so it can
/// checkpoint after any chunk and resume from the next without changing
/// a single result.
pub fn map_range_with<T, F>(workers: usize, range: std::ops::Range<usize>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (start, end) = (range.start, range.end);
    let n = end.saturating_sub(start);
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        return (start..end)
            .map(|i| match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => v,
                Err(payload) => repanic(i, end, payload),
            })
            .collect();
    }

    // Chunked dynamic scheduling: workers grab contiguous index ranges
    // from a shared cursor. Chunks keep cursor contention negligible
    // while staying small enough that heterogeneous jobs (e.g. the
    // unsafe-baseline campaign cell next to a cheap Protean cell) still
    // balance.
    let chunk = (n / (workers * 8)).max(1);
    let cursor = AtomicUsize::new(start);
    let f = &f;
    let per_worker: Vec<Vec<(usize, std::thread::Result<T>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    'grab: loop {
                        let first = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if first >= end {
                            break;
                        }
                        for i in first..(first + chunk).min(end) {
                            let r = catch_unwind(AssertUnwindSafe(|| f(i)));
                            let failed = r.is_err();
                            out.push((i, r));
                            if failed {
                                // Leave remaining work to the other
                                // workers; the pool re-panics after the
                                // scope joins.
                                break 'grab;
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker closures never panic"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    for (i, r) in per_worker.into_iter().flatten() {
        match r {
            Ok(v) => slots[i - start] = Some(v),
            Err(payload) => {
                if first_panic.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_panic = Some((i, payload));
                }
            }
        }
    }
    if let Some((i, payload)) = first_panic {
        repanic(i, end, payload);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job ran exactly once"))
        .collect()
}

/// Re-raises a caught job panic with the job index attached.
fn repanic(job: usize, n: usize, payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    panic!("job {job} of {n} panicked: {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order_at_any_worker_count() {
        for workers in [1, 2, 3, 7, 64] {
            let got = map_indexed_with(workers, 100, |i| i * 3);
            assert_eq!(got, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_and_parallel_agree_on_heavier_jobs() {
        let work = |i: usize| {
            let mut acc = i as u64;
            for k in 0..5_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        assert_eq!(map_indexed_with(1, 33, work), map_indexed_with(4, 33, work));
    }

    #[test]
    fn empty_and_single_job_edge_cases() {
        assert_eq!(map_indexed_with(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed_with(8, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn range_map_passes_absolute_indices() {
        for workers in [1, 3] {
            let got = map_range_with(workers, 10..25, |i| i * 2);
            assert_eq!(got, (10..25).map(|i| i * 2).collect::<Vec<_>>());
        }
        assert_eq!(map_range_with(4, 7..7, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn chunked_range_maps_concatenate_to_one_full_map() {
        // The resumable-campaign contract: partitioning 0..n into
        // consecutive chunks and concatenating the per-chunk results
        // reproduces the single-call output, at any worker count and
        // any chunk boundary.
        let work = |i: usize| (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
        let whole = map_indexed_with(3, 29, work);
        for chunk in [1, 4, 7, 29, 100] {
            let mut glued = Vec::new();
            let mut at = 0;
            while at < 29 {
                let end = (at + chunk).min(29);
                glued.extend(map_range_with(3, at..end, work));
                at = end;
            }
            assert_eq!(glued, whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn range_panic_carries_absolute_index() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            map_range_with(4, 10..20, |i| {
                if i == 13 {
                    panic!("boom thirteen");
                }
                i
            })
        }))
        .expect_err("job 13 must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(
            msg.contains("job 13 of 20") && msg.contains("boom thirteen"),
            "missing absolute job context: {msg}"
        );
    }

    #[test]
    fn map_passes_item_and_index() {
        let items = ["x", "yy", "zzz"];
        let got = map(&items, |i, s| (i, s.len()));
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn panicking_job_surfaces_its_job_index() {
        for workers in [1, 4] {
            let err = catch_unwind(AssertUnwindSafe(|| {
                map_indexed_with(workers, 10, |i| {
                    if i == 6 {
                        panic!("boom at six");
                    }
                    i
                })
            }))
            .expect_err("job 6 must propagate");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .expect("formatted panic message");
            assert!(
                msg.contains("job 6 of 10") && msg.contains("boom at six"),
                "missing job context: {msg}"
            );
        }
    }

    #[test]
    fn lowest_failed_index_wins_when_several_jobs_panic() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            map_indexed_with(4, 12, |i| {
                if i % 3 == 2 {
                    panic!("bad {i}");
                }
                i
            })
        }))
        .expect_err("must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("job 2 of 12"), "not the lowest index: {msg}");
    }
}
