//! User-provided secrecy annotations (paper §V-C).
//!
//! "Users willing to trade programmer transparency for additional
//! performance can refine the ProtSets inferred by ProtCC through manual
//! annotations": this module implements the *public* annotations — entry
//! registers known public (function arguments carrying lengths, modes,
//! pointers) and memory ranges known public (plaintext buffers, tables).
//!
//! Hints only ever *unprotect*; a wrong hint is a user-declared
//! declassification, exactly like a wrong class label (§V-B).

use crate::analysis::pinned_public;
use crate::cfg::FunctionCfg;
use crate::edit::ProgramEditor;
use crate::passes::{Compiled, Pass};
use protean_isa::{Mem, Op, Program, RegSet};

/// Public-data annotations for a compilation unit.
///
/// # Examples
///
/// ```
/// use protean_cc::{compile_with_hints, Pass, PublicHints};
/// use protean_isa::{assemble, Reg};
///
/// // A CT kernel whose `r0` argument is a public length and whose table
/// // at 0x1000 is public: with hints, the length-derived compare and the
/// // table loads stay unprotected.
/// let prog = assemble(
///     "load r1, [0x1000 + r0*8]\ncmp r1, r0\nprot load r2, [0x2000]\nret\n",
/// ).unwrap();
/// let mut hints = PublicHints::new();
/// hints.entry_public.insert(Reg::R0);
/// hints.add_public_range(0x1000, 0x100);
/// let hinted = compile_with_hints(&prog, Pass::Ct, &hints);
/// let unhinted = protean_cc::compile_with(&prog, Pass::Ct);
/// assert!(hinted.stats.prot_prefixes <= unhinted.stats.prot_prefixes);
/// ```
#[derive(Clone, Debug, Default)]
pub struct PublicHints {
    /// Registers whose values are public at region entry.
    pub entry_public: RegSet,
    /// Half-open address ranges of memory declared public.
    pub public_ranges: Vec<(u64, u64)>,
}

impl PublicHints {
    /// No hints (fully programmer-transparent compilation).
    pub fn new() -> PublicHints {
        PublicHints::default()
    }

    /// Declares `[base, base+len)` public.
    pub fn add_public_range(&mut self, base: u64, len: u64) -> &mut Self {
        self.public_ranges.push((base, base + len));
        self
    }

    /// Whether a static memory operand provably reads only hinted-public
    /// memory: an absolute address (no registers) fully inside a range.
    pub fn covers(&self, mem: &Mem, size: u64) -> bool {
        if mem.base.is_some() || mem.index.is_some() {
            return false;
        }
        let start = mem.disp as u64;
        let end = start.wrapping_add(size);
        self.public_ranges
            .iter()
            .any(|(lo, hi)| *lo <= start && end <= *hi)
    }

    /// Whether any hints are present.
    pub fn is_empty(&self) -> bool {
        self.entry_public.is_empty() && self.public_ranges.is_empty()
    }
}

/// Compiles with a single pass plus user annotations: after the pass's
/// own instrumentation, hinted-public definitions are *un*-prefixed and
/// hinted-public entry registers are declassified with identity moves.
pub fn compile_with_hints(program: &Program, pass: Pass, hints: &PublicHints) -> Compiled {
    // Run the automatic pass first.
    let base = crate::passes::compile_with(program, pass);
    if hints.is_empty() || matches!(pass, Pass::Arch | Pass::Rand { .. }) {
        return base;
    }
    let program = base.program;
    let mut editor = ProgramEditor::new(program.clone());
    let mut stats = base.stats;

    // 1. Hinted-public static loads need no protection: their value is
    //    user-declared public.
    for (idx, inst) in program.insts.iter().enumerate() {
        if !inst.prot {
            continue;
        }
        if let Op::Load { addr, size, .. } = inst.op {
            if hints.covers(&addr, size.bytes()) {
                editor.set_prot(idx as u32, false);
                stats.prot_prefixes = stats.prot_prefixes.saturating_sub(1);
            }
        }
    }

    // 2. Hinted-public entry registers: declassify with identity moves at
    //    region entry (only those the pass did not already declassify).
    let cfg = FunctionCfg::build(&program, 0, program.len() as u32);
    let _ = cfg;
    let mut extra = hints.entry_public.difference(pinned_public());
    extra.remove(protean_isa::Reg::RFLAGS);
    for r in extra.iter() {
        editor.insert_identity_move(0, r);
        stats.identity_moves += 1;
    }

    Compiled {
        program: editor.apply(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_isa::{assemble, Reg};

    #[test]
    fn public_range_unprefixes_static_loads() {
        let prog = assemble("prot load r1, [0x1000]\nprot load r2, [0x2000]\nret\n").unwrap();
        // UNR would protect both loads; a hint clears the first.
        let mut hints = PublicHints::new();
        hints.add_public_range(0x1000, 0x10);
        let out = compile_with_hints(&prog, Pass::Unr, &hints);
        assert!(!out.program.insts[0].prot, "hinted load unprotected");
        assert!(out.program.insts[1].prot, "unhinted load stays protected");
    }

    #[test]
    fn covers_requires_full_containment_and_static_address() {
        let mut hints = PublicHints::new();
        hints.add_public_range(0x1000, 0x100);
        assert!(hints.covers(&Mem::abs(0x1000), 8));
        assert!(hints.covers(&Mem::abs(0x10f8), 8));
        assert!(!hints.covers(&Mem::abs(0x10fc), 8)); // straddles the end
        assert!(!hints.covers(&Mem::base(Reg::R0).with_disp(0x1000), 8)); // dynamic
    }

    #[test]
    fn entry_hint_adds_identity_move() {
        let prog = assemble("add r1, r0, 1\nstore [rsp], r1\nret\n").unwrap();
        let mut hints = PublicHints::new();
        hints.entry_public.insert(Reg::R0);
        let out = compile_with_hints(&prog, Pass::Unr, &hints);
        assert!(out.program.insts[0].is_identity_move());
        assert!(matches!(
            out.program.insts[0].op,
            Op::Mov { dst: Reg::R0, .. }
        ));
    }

    #[test]
    fn empty_hints_are_identity() {
        let prog = assemble("prot load r1, [0x1000]\nret\n").unwrap();
        let a = compile_with_hints(&prog, Pass::Ct, &PublicHints::new());
        let b = crate::passes::compile_with(&prog, Pass::Ct);
        assert_eq!(a.program.insts, b.program.insts);
    }

    #[test]
    fn semantics_preserved_under_hints() {
        use protean_arch::{ArchState, Emulator};
        let prog = assemble(
            "mov rsp, 0x8000\nload r1, [0x1000]\nadd r2, r1, 5\nstore [0x3000], r2\nhalt\n",
        )
        .unwrap();
        let mut hints = PublicHints::new();
        hints.add_public_range(0x1000, 0x20);
        hints.entry_public.insert(Reg::R3);
        let out = compile_with_hints(&prog, Pass::Unr, &hints);
        let mut init = ArchState::new();
        init.mem.write(0x1000, 8, 37);
        let mut a = Emulator::new(&prog, init.clone());
        a.run(100);
        let mut b = Emulator::new(&out.program, init);
        b.run(100);
        for r in Reg::all() {
            assert_eq!(a.state.reg(r), b.state.reg(r));
        }
        assert_eq!(a.state.mem.read(0x3000, 8), b.state.mem.read(0x3000, 8));
    }

    /// The PassStats bookkeeping stays consistent.
    #[test]
    fn stats_track_hint_effects() {
        let prog = assemble("prot load r1, [0x1000]\nret\n").unwrap();
        let mut hints = PublicHints::new();
        hints.add_public_range(0x1000, 0x10);
        hints.entry_public.insert(Reg::R5);
        let out = compile_with_hints(&prog, Pass::Unr, &hints);
        let _ = out.stats; // counts adjusted without underflow
        assert_eq!(out.program.identity_move_count(), 1);
    }
}
