//! # protean-cc
//!
//! **ProtCC**: the compiler passes that automatically, programmer-
//! transparently program ProtISA protection sets, from *"Protean: A
//! Programmable Spectre Defense"* (HPCA 2026, §V).
//!
//! One pass per vulnerable-code class (Fig. 2):
//!
//! * [`Pass::Arch`] — no-op: unmodified binaries already program the
//!   non-secret-accessing ProtSet;
//! * [`Pass::Cts`] — Serberus-style secrecy-typing inference for static
//!   constant-time code;
//! * [`Pass::Ct`] — past-leaked / bound-to-leak register dataflow for
//!   constant-time code, with identity-move declassification;
//! * [`Pass::Unr`] — never-secret residue (stack pointer, constants) for
//!   unrestricted code;
//! * [`Pass::Rand`] — random prefixes, for UNPROT-SEQ fuzzing (§VII-B4).
//!
//! [`compile`] drives multi-class programs: each class-labelled function
//! is instrumented by its own pass — how Protean targets nginx
//! (§VIII-B3). Supporting machinery: [`FunctionCfg`], the
//! [`analysis`] dataflow module, [`cts`] typing inference, and the
//! [`ProgramEditor`] that inserts identity moves while retargeting
//! branches.
//!
//! # Example
//!
//! The paper's Fig. 3 function under ProtCC-CT:
//!
//! ```
//! use protean_cc::{compile_with, Pass};
//! use protean_isa::assemble;
//!
//! let prog = assemble(
//!     "load r1, [r0]\nmov r2, 0\ncmp r1, 0\njlt @5\nload r2, [r1*4 + 0x1000]\nret\n",
//! ).unwrap();
//! let out = compile_with(&prog, Pass::Ct);
//! assert_eq!(out.stats.prot_prefixes, 3);
//! assert_eq!(out.stats.identity_moves, 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
mod cfg;
pub mod cts;
mod edit;
mod hints;
mod passes;

pub use cfg::FunctionCfg;
pub use edit::ProgramEditor;
pub use hints::{compile_with_hints, PublicHints};
pub use passes::{compile, compile_with, Compiled, Pass, PassStats};

use protean_arch::PublicTyping;
use protean_isa::Program;

/// Computes the CTS observer mode's [`PublicTyping`] for a (possibly
/// instrumented) program: per instruction, the publicly-typed output
/// registers. Functions are typed independently; instructions outside
/// any function are treated as one region.
///
/// Used by the AMuLeT\*-style fuzzer to build the CTS-SEQ contract
/// (paper §VII-B1c).
pub fn public_typing(program: &Program) -> PublicTyping {
    let mut typing = PublicTyping::all_secret(program.len());
    let mut regions: Vec<(u32, u32)> = program.functions.iter().map(|f| (f.start, f.end)).collect();
    regions.sort_unstable();
    let mut cursor = 0u32;
    let mut all: Vec<(u32, u32)> = Vec::new();
    for (s, e) in regions {
        if cursor < s {
            all.push((cursor, s));
        }
        all.push((s, e));
        cursor = cursor.max(e);
    }
    if cursor < program.len() as u32 {
        all.push((cursor, program.len() as u32));
    }
    for (s, e) in all {
        if s >= e {
            continue;
        }
        let cfg = FunctionCfg::build(program, s, e);
        let t = cts::infer_typing(program, &cfg);
        for local in 0..cfg.len() {
            typing.per_inst[(s + local as u32) as usize] = t.public_outputs[local];
        }
    }
    typing
}
