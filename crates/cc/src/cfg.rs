//! Instruction-level control-flow graphs over function ranges.
//!
//! ProtCC's analyses are intraprocedural (paper §V-A): each node is one
//! instruction, edges follow fall-through and static branch targets
//! within the function, and `ret`/`halt`/indirect jumps are exits. Calls
//! are treated as opaque: an edge to the next instruction, with
//! analysis-specific conservative effects at the call site.

use protean_isa::{Op, Program};

/// The CFG of one function (a contiguous instruction range).
#[derive(Clone, Debug)]
pub struct FunctionCfg {
    /// First instruction index of the function.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successors of each instruction (function-relative indices).
    pub succs: Vec<Vec<u32>>,
    /// Predecessors of each instruction (function-relative indices).
    pub preds: Vec<Vec<u32>>,
    /// Whether each instruction is a function exit (`ret`, `halt`,
    /// indirect jump, or a branch out of the range).
    pub exits: Vec<bool>,
}

impl FunctionCfg {
    /// Builds the CFG of `program[start..end]`.
    ///
    /// Branches whose targets lie outside the range (tail calls into
    /// other functions) are treated as exits.
    pub fn build(program: &Program, start: u32, end: u32) -> FunctionCfg {
        let n = (end - start) as usize;
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut exits = vec![false; n];
        let in_range = |idx: u32| idx >= start && idx < end;
        for local in 0..n {
            let idx = start + local as u32;
            let inst = &program.insts[idx as usize];
            let mut out: Vec<u32> = Vec::new();
            match inst.op {
                Op::Ret | Op::Halt | Op::JmpReg { .. } => {
                    exits[local] = true;
                }
                Op::Call { .. } => {
                    // Opaque call: control returns to the next
                    // instruction (analyses apply call effects there).
                    if in_range(idx + 1) {
                        out.push(idx + 1 - start);
                    } else {
                        exits[local] = true;
                    }
                }
                _ => {
                    if inst.falls_through() {
                        if in_range(idx + 1) {
                            out.push(idx + 1 - start);
                        } else {
                            exits[local] = true;
                        }
                    }
                    if let Some(t) = inst.static_target() {
                        if in_range(t) {
                            out.push(t - start);
                        } else {
                            exits[local] = true;
                        }
                    }
                }
            }
            for s in &out {
                preds[*s as usize].push(local as u32);
            }
            succs[local] = out;
        }
        FunctionCfg {
            start,
            end,
            succs,
            preds,
            exits,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Returns `true` for an empty range.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Function-relative indices that start a basic block: the entry,
    /// branch targets, and fall-throughs of branches.
    pub fn block_leaders(&self) -> Vec<u32> {
        let mut leader = vec![false; self.len()];
        if !leader.is_empty() {
            leader[0] = true;
        }
        for (i, out) in self.succs.iter().enumerate() {
            if out.len() > 1 {
                for s in out {
                    leader[*s as usize] = true;
                }
            }
            for s in out {
                if *s as usize != i + 1 {
                    leader[*s as usize] = true;
                }
            }
        }
        // Any instruction with multiple predecessors also starts a block.
        for (i, p) in self.preds.iter().enumerate() {
            if p.len() > 1 {
                leader[i] = true;
            }
        }
        leader
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.then_some(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_isa::assemble;

    #[test]
    fn diamond_cfg() {
        let p = assemble(
            r#"
            cmp r0, 0       ; 0
            jeq else        ; 1
            add r1, r1, 1   ; 2
            jmp join        ; 3
          else:
            add r1, r1, 2   ; 4
          join:
            ret             ; 5
            "#,
        )
        .unwrap();
        let cfg = FunctionCfg::build(&p, 0, 6);
        assert_eq!(cfg.succs[1], vec![2, 4]);
        assert_eq!(cfg.succs[3], vec![5]);
        assert_eq!(cfg.succs[4], vec![5]);
        assert_eq!(cfg.preds[5], vec![3, 4]);
        assert!(cfg.exits[5]);
        let leaders = cfg.block_leaders();
        assert!(leaders.contains(&0));
        assert!(leaders.contains(&4));
        assert!(leaders.contains(&5));
        assert!(!leaders.contains(&3));
    }

    #[test]
    fn loop_back_edge() {
        let p = assemble("top:\nadd r0, r0, 1\ncmp r0, 5\njlt top\nhalt\n").unwrap();
        let cfg = FunctionCfg::build(&p, 0, 4);
        assert_eq!(cfg.succs[2], vec![3, 0]);
        assert!(cfg.preds[0].contains(&2));
        assert!(cfg.exits[3]);
    }

    #[test]
    fn out_of_range_target_is_exit() {
        let p = assemble("jmp @2\nhalt\nnop\nhalt\n").unwrap();
        let cfg = FunctionCfg::build(&p, 0, 2);
        assert!(cfg.exits[0]); // target 2 is outside [0, 2)
        assert!(cfg.succs[0].is_empty());
    }

    #[test]
    fn call_falls_through() {
        let p = assemble("call @3\nnop\nhalt\nret\n").unwrap();
        let cfg = FunctionCfg::build(&p, 0, 3);
        assert_eq!(cfg.succs[0], vec![1]);
    }
}
