//! The register-level dataflow analyses behind ProtCC-CT and ProtCC-UNR
//! (paper §V-A3, §V-A4).
//!
//! All three analyses work on [`RegSet`] lattices over an instruction-
//! level [`FunctionCfg`] with *must* (intersection) merges — an
//! under-approximation is required, since their results license
//! **un**protection:
//!
//! * [`past_leaked`] — registers whose current value already *fully*
//!   leaked along all prior paths, or holds a constant;
//! * [`bound_to_leak`] — registers whose current value will be *fully*
//!   transmitted along all future paths before redefinition;
//! * [`never_secret`] — registers derivable only from the stack pointer
//!   and constants (the ProtCC-UNR residue).
//!
//! "Fully transmitted" excludes conditional branches and divisions: a
//! `jcc` reveals one predicate bit of `rflags` and a divider only a
//! latency class — *partial* transmission, which cannot justify
//! unprotecting the register under CT rules (it can under CTS typing,
//! see [`crate::cts`]; this distinction is exactly why ProtCC-CTS
//! outperforms SPT in §IX-B2).

use crate::cfg::FunctionCfg;
use protean_isa::{Inst, Op, Program, Reg, RegSet, Width};

/// Registers `inst` *fully* transmits: memory address registers and
/// indirect-jump targets.
pub fn fully_transmitted(inst: &Inst) -> RegSet {
    let mut set = inst.address_regs();
    if let Op::JmpReg { src } = inst.op {
        set.insert(src);
    }
    set
}

/// The never-secret-by-convention registers (stack and frame pointer):
/// pinned unprotected by every pass, as ProtCC-UNR's stack-pointer rule
/// (§V-A4, and the §IX-A1 `blackscholes` analysis) requires.
pub fn pinned_public() -> RegSet {
    RegSet::from_regs([Reg::RSP, Reg::RBP])
}

fn is_call(inst: &Inst) -> bool {
    matches!(inst.op, Op::Call { .. })
}

/// Result of a forward/backward register analysis: per-instruction `IN`
/// and `OUT` sets (function-relative indexing).
#[derive(Clone, Debug)]
pub struct RegFlow {
    /// Set holding *before* each instruction.
    pub before: Vec<RegSet>,
    /// Set holding *after* each instruction.
    pub after: Vec<RegSet>,
}

/// Forward must-analysis: past-leaked registers (paper §V-A3).
pub fn past_leaked(program: &Program, cfg: &FunctionCfg) -> RegFlow {
    let n = cfg.len();
    let mut before = vec![RegSet::all(); n];
    let mut after = vec![RegSet::all(); n];
    if n == 0 {
        return RegFlow { before, after };
    }
    before[0] = pinned_public();
    let transfer = |local: usize, input: RegSet| -> RegSet {
        let inst = &program.insts[(cfg.start + local as u32) as usize];
        if is_call(inst) {
            // Opaque call: only the pinned registers survive.
            return pinned_public();
        }
        // Values being transmitted now are leaked afterwards…
        let base = input.union(fully_transmitted(inst));
        // …unless the instruction overwrites them.
        let mut out = base.difference(inst.dst_regs());
        // A deterministic function of fully-leaked inputs is itself
        // public knowledge (the attacker knows the code): constants,
        // copies, and ALU results over leaked operands. Loads are
        // excluded — a public *address* says nothing about the loaded
        // value.
        let width_ok = |w: Width, dst: Reg| !w.is_partial() || base.contains(dst);
        match inst.op {
            Op::MovImm { dst, width, .. } if width_ok(width, dst) => {
                out.insert(dst);
            }
            Op::Mov { dst, src, width } if base.contains(src) && width_ok(width, dst) => {
                out.insert(dst);
            }
            _ if !inst.is_load() && !inst.dst_regs().is_empty() => {
                let inputs_public = inst.src_regs().is_superset(RegSet::new())
                    && inst.src_regs().iter().all(|r| base.contains(r));
                if inputs_public {
                    // Partial-width writes already require the old dst
                    // public via src_regs (it is listed as an input).
                    for d in inst.dst_regs().iter() {
                        out.insert(d);
                    }
                }
            }
            _ => {}
        }
        out.union(pinned_public())
    };
    fixpoint_forward(cfg, &mut before, &mut after, pinned_public(), transfer);
    RegFlow { before, after }
}

/// Backward must-analysis: bound-to-leak registers (paper §V-A3).
pub fn bound_to_leak(program: &Program, cfg: &FunctionCfg) -> RegFlow {
    let n = cfg.len();
    let mut before = vec![RegSet::all(); n];
    let mut after = vec![RegSet::all(); n];
    if n == 0 {
        return RegFlow { before, after };
    }
    let transfer = |local: usize, output: RegSet| -> RegSet {
        let inst = &program.insts[(cfg.start + local as u32) as usize];
        if is_call(inst) {
            // The callee's behaviour is unknown: only the call's own
            // transmission (of RSP) is guaranteed.
            return fully_transmitted(inst);
        }
        output
            .difference(inst.dst_regs())
            .union(fully_transmitted(inst))
    };
    // Iterate to a fixpoint, backward.
    let mut changed = true;
    while changed {
        changed = false;
        for local in (0..n).rev() {
            let mut out = if cfg.exits[local] && cfg.succs[local].is_empty() {
                RegSet::new()
            } else {
                let mut acc = RegSet::all();
                for s in &cfg.succs[local] {
                    acc = acc.intersection(before[*s as usize]);
                }
                if cfg.succs[local].is_empty() {
                    acc = RegSet::new();
                }
                acc
            };
            if cfg.exits[local] && !cfg.succs[local].is_empty() {
                // Mixed exit/successor (cannot happen with current ops,
                // but stay conservative).
                out = RegSet::new();
            }
            let inp = transfer(local, out);
            if out != after[local] || inp != before[local] {
                after[local] = out;
                before[local] = inp;
                changed = true;
            }
        }
    }
    RegFlow { before, after }
}

/// Forward must-analysis: never-secret registers (ProtCC-UNR, §V-A4).
pub fn never_secret(program: &Program, cfg: &FunctionCfg) -> RegFlow {
    let n = cfg.len();
    let mut before = vec![RegSet::all(); n];
    let mut after = vec![RegSet::all(); n];
    if n == 0 {
        return RegFlow { before, after };
    }
    before[0] = pinned_public();
    let transfer = |local: usize, input: RegSet| -> RegSet {
        let inst = &program.insts[(cfg.start + local as u32) as usize];
        if is_call(inst) {
            return pinned_public();
        }
        let ns_operand = |op: protean_isa::Operand| match op {
            protean_isa::Operand::Reg(r) => input.contains(r),
            protean_isa::Operand::Imm(_) => true,
        };
        let mut out = input.difference(inst.dst_regs());
        let full = |w: Width, dst: Reg| !w.is_partial() || input.contains(dst);
        match inst.op {
            Op::MovImm { dst, width, .. } if full(width, dst) => {
                out.insert(dst);
            }
            Op::Mov { dst, src, width } if input.contains(src) && full(width, dst) => {
                out.insert(dst);
            }
            Op::CMov { dst, src, .. }
                if input.contains(src) && input.contains(dst) && input.contains(Reg::RFLAGS) =>
            {
                out.insert(dst);
            }
            Op::Alu {
                dst,
                src1,
                src2,
                width,
                ..
            } if input.contains(src1) && ns_operand(src2) && full(width, dst) => {
                out.insert(dst);
                out.insert(Reg::RFLAGS);
            }
            Op::Cmp { src1, src2 } if input.contains(src1) && ns_operand(src2) => {
                out.insert(Reg::RFLAGS);
            }
            Op::Div { dst, src1, src2 } if input.contains(src1) && input.contains(src2) => {
                out.insert(dst);
            }
            // Loaded values may be secret in unrestricted code.
            Op::Load { .. } | Op::Ret => {}
            _ => {}
        }
        out.union(pinned_public())
    };
    fixpoint_forward(cfg, &mut before, &mut after, pinned_public(), transfer);
    RegFlow { before, after }
}

fn fixpoint_forward(
    cfg: &FunctionCfg,
    before: &mut [RegSet],
    after: &mut [RegSet],
    entry: RegSet,
    transfer: impl Fn(usize, RegSet) -> RegSet,
) {
    let n = cfg.len();
    let mut changed = true;
    while changed {
        changed = false;
        for local in 0..n {
            let inp = if local == 0 && cfg.preds[0].is_empty() {
                entry
            } else {
                let mut acc = if local == 0 { entry } else { RegSet::all() };
                let mut any = local == 0;
                for p in &cfg.preds[local] {
                    acc = acc.intersection(after[*p as usize]);
                    any = true;
                }
                if !any {
                    // Unreachable: keep TOP (never constrains anything).
                    RegSet::all()
                } else {
                    acc
                }
            };
            let out = transfer(local, inp);
            if inp != before[local] || out != after[local] {
                before[local] = inp;
                after[local] = out;
                changed = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_isa::assemble;

    fn cfg_of(p: &Program) -> FunctionCfg {
        FunctionCfg::build(p, 0, p.len() as u32)
    }

    /// The paper's Fig. 3 example:
    /// `x = *p; y = 0; if (x >= 0) y = A[x];`
    fn fig3() -> Program {
        assemble(
            r#"
            load r1, [r0]            ; 0: x = *p
            mov r2, 0                ; 1: y = 0
            cmp r1, 0                ; 2
            jlt skip                 ; 3
            load r2, [r1*4 + 0x1000] ; 4: y = A[x]
          skip:
            ret                      ; 5
            "#,
        )
        .unwrap()
    }

    #[test]
    fn bound_to_leak_matches_fig3() {
        let p = fig3();
        let cfg = cfg_of(&p);
        let bl = bound_to_leak(&p, &cfg);
        // Rp (r0) is bound-to-leak at entry: the load at 0 transmits it
        // on all paths.
        assert!(bl.before[0].contains(Reg::R0));
        // Rx (r1) is NOT bound-to-leak before the branch (the taken path
        // never transmits it)…
        assert!(!bl.before[3].contains(Reg::R1));
        // …but becomes bound-to-leak on the fall-through edge.
        assert!(bl.before[4].contains(Reg::R1));
        // rflags is never fully transmitted.
        assert!(!bl.before[3].contains(Reg::RFLAGS));
    }

    #[test]
    fn past_leaked_matches_fig3() {
        let p = fig3();
        let cfg = cfg_of(&p);
        let pl = past_leaked(&p, &cfg);
        // Ry (r2) holds a constant after instruction 1.
        assert!(pl.after[1].contains(Reg::R2));
        // …but not after being overwritten by the load at 4.
        assert!(!pl.after[4].contains(Reg::R2));
        // Rp (r0) is past-leaked once the load at 0 transmitted it.
        assert!(pl.after[0].contains(Reg::R0));
        // The loaded Rx is not leaked.
        assert!(!pl.after[0].contains(Reg::R1));
        // The stack pointer is pinned leaked.
        assert!(pl.before[0].contains(Reg::RSP));
    }

    #[test]
    fn never_secret_tracks_constants_and_rsp() {
        let p = assemble(
            r#"
            mov r0, 0          ; const: NS
            add r1, r0, 8      ; derived from const: NS
            mov r2, rsp        ; derived from rsp: NS
            load r3, [r2]      ; loaded: not NS
            add r4, r3, r0     ; mixes loaded: not NS
            halt
            "#,
        )
        .unwrap();
        let cfg = cfg_of(&p);
        let ns = never_secret(&p, &cfg);
        assert!(ns.after[0].contains(Reg::R0));
        assert!(ns.after[1].contains(Reg::R1));
        assert!(ns.after[2].contains(Reg::R2));
        assert!(!ns.after[3].contains(Reg::R3));
        assert!(!ns.after[4].contains(Reg::R4));
        assert!(ns.after[4].contains(Reg::RSP));
    }

    #[test]
    fn loop_counter_is_never_secret() {
        // The paper: "loop indices starting at 0" stay never-secret.
        let p = assemble("mov r0, 0\ntop:\nadd r0, r0, 1\ncmp r0, 10\njlt top\nhalt\n").unwrap();
        let cfg = cfg_of(&p);
        let ns = never_secret(&p, &cfg);
        for i in 1..4 {
            assert!(ns.before[i].contains(Reg::R0), "inst {i}");
        }
    }

    #[test]
    fn must_merge_intersects() {
        // r1 leaked on one path only -> not past-leaked at the join.
        let p = assemble(
            r#"
            cmp r0, 0
            jeq other
            load r2, [r1]      ; transmits r1
            jmp join
          other:
            nop
          join:
            halt
            "#,
        )
        .unwrap();
        let cfg = cfg_of(&p);
        let pl = past_leaked(&p, &cfg);
        let join = 5;
        assert!(!pl.before[join].contains(Reg::R1));
    }

    #[test]
    fn call_clobbers_everything_but_pins() {
        let p = assemble("mov r0, 0\ncall @3\nhalt\nret\n").unwrap();
        let cfg = FunctionCfg::build(&p, 0, 3);
        let pl = past_leaked(&p, &cfg);
        assert!(!pl.before[2].contains(Reg::R0));
        assert!(pl.before[2].contains(Reg::RSP));
        let ns = never_secret(&p, &cfg);
        assert!(!ns.before[2].contains(Reg::R0));
        assert!(ns.before[2].contains(Reg::RSP));
    }
}
