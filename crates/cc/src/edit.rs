//! Batch program editing: `PROT`-prefix toggles and instruction
//! insertions with automatic retargeting of branches, labels, and
//! function ranges.

use protean_isa::{Inst, Program};

/// A batch editor over a [`Program`].
///
/// Collect prefix changes and insertions, then [`ProgramEditor::apply`]
/// rewrites every branch target, label, and function range in one pass.
/// An instruction inserted *at* position `p` executes before the
/// original instruction `p`, and branches to `p` land on the insertion —
/// exactly what block-entry instrumentation (identity moves) needs.
///
/// # Examples
///
/// ```
/// use protean_cc::ProgramEditor;
/// use protean_isa::{assemble, Reg};
///
/// let prog = assemble("jmp skip\nnop\nskip:\nhalt\n").unwrap();
/// let mut ed = ProgramEditor::new(prog);
/// ed.set_prot(1, true);
/// ed.insert_identity_move(2, Reg::R5); // at the branch target
/// let out = ed.apply();
/// assert_eq!(out.insts[0].static_target(), Some(2)); // retargeted to the move
/// assert!(out.insts[2].is_identity_move());
/// assert!(out.validate().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct ProgramEditor {
    program: Program,
    /// (position, instruction), kept sorted by position (stable).
    insertions: Vec<(u32, Inst)>,
}

impl ProgramEditor {
    /// Starts editing `program`.
    pub fn new(program: Program) -> ProgramEditor {
        ProgramEditor {
            program,
            insertions: Vec::new(),
        }
    }

    /// Read access to the (pre-edit) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Sets or clears the `PROT` prefix of instruction `idx`.
    pub fn set_prot(&mut self, idx: u32, prot: bool) {
        self.program.insts[idx as usize].prot = prot;
    }

    /// Inserts `inst` before position `pos` (branches to `pos` will land
    /// on it).
    pub fn insert_before(&mut self, pos: u32, inst: Inst) {
        self.insertions.push((pos, inst));
    }

    /// Inserts ProtISA's register-unprotect idiom — an unprefixed
    /// identity move (`mov r, r`, §IV-B3) — before position `pos`.
    pub fn insert_identity_move(&mut self, pos: u32, reg: protean_isa::Reg) {
        self.insert_before(
            pos,
            Inst::new(protean_isa::Op::Mov {
                dst: reg,
                src: reg,
                width: protean_isa::Width::W64,
            }),
        );
    }

    /// Number of pending insertions.
    pub fn pending_insertions(&self) -> usize {
        self.insertions.len()
    }

    /// Applies all edits and returns the rewritten program.
    pub fn apply(mut self) -> Program {
        if self.insertions.is_empty() {
            return self.program;
        }
        // Stable sort by position keeps same-position insertion order.
        self.insertions.sort_by_key(|(pos, _)| *pos);
        let positions: Vec<u32> = self.insertions.iter().map(|(p, _)| *p).collect();
        // Number of insertions strictly before `idx`.
        let shift_lt = |idx: u32| positions.partition_point(|p| *p < idx) as u32;

        let old = &self.program;
        let mut insts = Vec::with_capacity(old.insts.len() + self.insertions.len());
        let mut ins_iter = self.insertions.iter().peekable();
        for (idx, inst) in old.insts.iter().enumerate() {
            while let Some((pos, new_inst)) = ins_iter.peek() {
                if *pos as usize == idx {
                    insts.push(*new_inst);
                    ins_iter.next();
                } else {
                    break;
                }
            }
            let mut inst = *inst;
            if let Some(t) = inst.static_target() {
                inst.set_static_target(t + shift_lt(t));
            }
            insts.push(inst);
        }
        // Trailing insertions (pos == len).
        for (_, new_inst) in ins_iter {
            insts.push(*new_inst);
        }

        let functions = old
            .functions
            .iter()
            .map(|f| protean_isa::Function {
                name: f.name.clone(),
                start: f.start + shift_lt(f.start),
                end: f.end + shift_lt(f.end),
                class: f.class,
            })
            .collect();
        let labels = old
            .labels
            .iter()
            .map(|(name, idx)| (name.clone(), idx + shift_lt(*idx)))
            .collect();
        // Relocations: shift both ends and rewrite the materialized PC
        // (branches to `target` land on insertions at that position, so
        // code pointers must too).
        let relocs: Vec<protean_isa::Reloc> = old
            .relocs
            .iter()
            .map(|r| protean_isa::Reloc {
                inst: r.inst + shift_lt(r.inst),
                target: r.target + shift_lt(r.target),
            })
            .collect();
        let mut out = Program {
            insts,
            functions,
            labels,
            relocs,
            code_base: old.code_base,
        };
        for r in out.relocs.clone() {
            let pc = out.pc_of(r.target);
            match &mut out.insts[r.inst as usize].op {
                protean_isa::Op::MovImm { imm, .. } => *imm = pc,
                other => panic!("relocation slot holds {other:?}"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_isa::{assemble, Op, Reg, SecurityClass};

    #[test]
    fn insertion_shifts_targets() {
        let prog = assemble("top:\nadd r0, r0, 1\ncmp r0, 5\njlt top\nhalt\n").unwrap();
        let mut ed = ProgramEditor::new(prog);
        ed.insert_identity_move(0, Reg::R1);
        ed.insert_identity_move(3, Reg::R2);
        let out = ed.apply();
        assert_eq!(out.len(), 6);
        // Back edge to `top` (old 0) lands on the inserted move (new 0).
        let jlt = out.insts.iter().find(|i| i.is_cond_branch()).unwrap();
        assert_eq!(jlt.static_target(), Some(0));
        assert_eq!(out.labels["top"], 0);
        assert!(out.validate().is_ok());
    }

    #[test]
    fn same_position_order_preserved() {
        let prog = assemble("nop\nhalt\n").unwrap();
        let mut ed = ProgramEditor::new(prog);
        ed.insert_identity_move(0, Reg::R1);
        ed.insert_identity_move(0, Reg::R2);
        let out = ed.apply();
        assert!(matches!(out.insts[0].op, Op::Mov { dst: Reg::R1, .. }));
        assert!(matches!(out.insts[1].op, Op::Mov { dst: Reg::R2, .. }));
    }

    #[test]
    fn function_ranges_follow() {
        let mut prog = assemble("nop\nret\nnop\nhalt\n").unwrap();
        prog.functions.push(protean_isa::Function {
            name: "f".into(),
            start: 0,
            end: 2,
            class: SecurityClass::Ct,
        });
        let mut ed = ProgramEditor::new(prog);
        ed.insert_identity_move(0, Reg::R0); // inside f
        ed.insert_identity_move(2, Reg::R1); // after f
        let out = ed.apply();
        let f = out.function("f").unwrap();
        assert_eq!((f.start, f.end), (0, 3)); // grew by the entry move
        assert!(out.insts[3].is_identity_move()); // the post-f move
    }

    #[test]
    fn prefix_toggle() {
        let prog = assemble("mov r0, r1\nhalt\n").unwrap();
        let mut ed = ProgramEditor::new(prog);
        ed.set_prot(0, true);
        let out = ed.apply();
        assert!(out.insts[0].prot);
    }

    #[test]
    fn trailing_insertion() {
        let prog = assemble("nop\nhalt\n").unwrap();
        let mut ed = ProgramEditor::new(prog);
        ed.insert_before(2, Inst::new(Op::Halt));
        let out = ed.apply();
        assert_eq!(out.len(), 3);
        assert!(matches!(out.insts[2].op, Op::Halt));
    }
}
