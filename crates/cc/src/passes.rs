//! The ProtCC passes and the multi-class compilation driver (paper §V).

use crate::analysis::{bound_to_leak, never_secret, past_leaked, pinned_public};
use crate::cfg::FunctionCfg;
use crate::cts::infer_typing;
use crate::edit::ProgramEditor;
use protean_isa::{Program, Reg, RegSet, SecurityClass};
use protean_rng::Rng;

/// A ProtCC pass (paper §V-A, one per vulnerable-code class, plus the
/// random instrumentation used for UNPROT-SEQ fuzzing, §VII-B4).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Pass {
    /// ProtCC-ARCH: a no-op — unmodified binaries already program the
    /// ARCH ProtSet (only architecturally accessed memory is
    /// unprotected).
    Arch,
    /// ProtCC-CTS: secrecy-typing inference; protects secret-typed
    /// definitions, unprotects publicly-typed arguments at entry.
    Cts,
    /// ProtCC-CT: past-leaked/bound-to-leak analyses; protects
    /// possibly-secret definitions, declassifies newly bound-to-leak
    /// registers with identity moves.
    Ct,
    /// ProtCC-UNR: protects everything except never-secret registers
    /// (stack pointer, constants, and values computed solely from them).
    Unr,
    /// ProtCC-RAND: `PROT`-prefix a random subset of instructions (for
    /// testing against UNPROT-SEQ).
    Rand {
        /// Probability of prefixing each instruction.
        prob: f64,
        /// RNG seed.
        seed: u64,
    },
}

impl Pass {
    /// The pass for a given vulnerable-code class.
    pub fn for_class(class: SecurityClass) -> Pass {
        match class {
            SecurityClass::Arch => Pass::Arch,
            SecurityClass::Cts => Pass::Cts,
            SecurityClass::Ct => Pass::Ct,
            SecurityClass::Unr => Pass::Unr,
        }
    }

    /// Short name (`ARCH`, `CTS`, `CT`, `UNR`, `RAND`).
    pub fn name(&self) -> &'static str {
        match self {
            Pass::Arch => "ARCH",
            Pass::Cts => "CTS",
            Pass::Ct => "CT",
            Pass::Unr => "UNR",
            Pass::Rand { .. } => "RAND",
        }
    }
}

/// Instrumentation statistics (the §IX-A2 overhead metrics).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PassStats {
    /// `PROT` prefixes added.
    pub prot_prefixes: usize,
    /// Identity moves inserted.
    pub identity_moves: usize,
}

/// A compiled program plus instrumentation statistics.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The instrumented program.
    pub program: Program,
    /// Instrumentation counts.
    pub stats: PassStats,
}

/// Compiles every function according to its class label; instructions
/// outside any function get `default_pass`. This is how multi-class
/// programs like nginx are targeted (paper §V-A, §VIII-B3).
///
/// # Examples
///
/// ```
/// use protean_cc::{compile, Pass};
/// use protean_isa::assemble;
///
/// let prog = assemble(
///     ".func crypt ct\n  load r1, [r0]\n  xor r1, r1, r2\n  ret\n.endfunc\nhalt\n",
/// ).unwrap();
/// let out = compile(&prog, Pass::Arch);
/// assert!(out.stats.prot_prefixes > 0); // the CT function got protected
/// assert!(out.program.validate().is_ok());
/// ```
pub fn compile(program: &Program, default_pass: Pass) -> Compiled {
    let mut regions: Vec<(u32, u32, Pass)> = Vec::new();
    let mut cursor = 0u32;
    let mut functions: Vec<_> = program.functions.clone();
    functions.sort_by_key(|f| f.start);
    for f in &functions {
        if cursor < f.start {
            regions.push((cursor, f.start, default_pass));
        }
        regions.push((f.start, f.end, Pass::for_class(f.class)));
        cursor = cursor.max(f.end);
    }
    if cursor < program.len() as u32 {
        regions.push((cursor, program.len() as u32, default_pass));
    }
    compile_regions(program, &regions)
}

/// Compiles the whole program with a single pass, ignoring function
/// class labels.
pub fn compile_with(program: &Program, pass: Pass) -> Compiled {
    compile_regions(program, &[(0, program.len() as u32, pass)])
}

fn compile_regions(program: &Program, regions: &[(u32, u32, Pass)]) -> Compiled {
    let mut editor = ProgramEditor::new(program.clone());
    let mut stats = PassStats::default();
    for (start, end, pass) in regions {
        apply_pass(program, &mut editor, *start, *end, *pass, &mut stats);
    }
    stats.identity_moves = editor.pending_insertions();
    Compiled {
        program: editor.apply(),
        stats,
    }
}

/// Registers eligible for instrumentation decisions: everything but the
/// pinned never-secret registers.
fn protectable(dsts: RegSet) -> RegSet {
    dsts.difference(pinned_public())
}

/// Registers eligible for identity-move declassification (flags cannot
/// be moved).
fn movable(set: RegSet) -> RegSet {
    let mut out = set.difference(pinned_public());
    out.remove(Reg::RFLAGS);
    out
}

fn apply_pass(
    program: &Program,
    editor: &mut ProgramEditor,
    start: u32,
    end: u32,
    pass: Pass,
    stats: &mut PassStats,
) {
    if start >= end {
        return;
    }
    match pass {
        Pass::Arch => {}
        Pass::Rand { prob, seed } => {
            let mut rng = Rng::seed_from_u64(seed);
            for idx in start..end {
                if rng.gen_bool(prob) {
                    editor.set_prot(idx, true);
                    stats.prot_prefixes += 1;
                }
            }
        }
        Pass::Cts => {
            let cfg = FunctionCfg::build(program, start, end);
            let typing = infer_typing(program, &cfg);
            for local in 0..cfg.len() {
                let idx = start + local as u32;
                let dsts = protectable(program.insts[idx as usize].dst_regs());
                if !typing.public_outputs[local].is_superset(dsts) {
                    editor.set_prot(idx, true);
                    stats.prot_prefixes += 1;
                }
            }
            for r in movable(typing.public_entry).iter() {
                editor.insert_identity_move(start, r);
            }
        }
        Pass::Ct => {
            let cfg = FunctionCfg::build(program, start, end);
            let pl = past_leaked(program, &cfg);
            let bl = bound_to_leak(program, &cfg);
            for local in 0..cfg.len() {
                let idx = start + local as u32;
                let dsts = protectable(program.insts[idx as usize].dst_regs());
                let safe = pl.after[local].union(bl.after[local]);
                if !safe.is_superset(dsts) {
                    editor.set_prot(idx, true);
                    stats.prot_prefixes += 1;
                }
            }
            // Declassify newly bound-to-leak registers at block entries
            // (rule (ii), §V-A3) and function entry.
            for r in movable(bl.before[0]).iter() {
                editor.insert_identity_move(start, r);
            }
            for leader in cfg.block_leaders() {
                if leader == 0 {
                    continue;
                }
                let mut already = RegSet::all();
                for p in &cfg.preds[leader as usize] {
                    already = already.intersection(bl.after[*p as usize]);
                }
                let newly = movable(bl.before[leader as usize].difference(already));
                for r in newly.iter() {
                    editor.insert_identity_move(start + leader, r);
                }
            }
        }
        Pass::Unr => {
            let cfg = FunctionCfg::build(program, start, end);
            let ns = never_secret(program, &cfg);
            for local in 0..cfg.len() {
                let idx = start + local as u32;
                let dsts = protectable(program.insts[idx as usize].dst_regs());
                if !ns.after[local].is_superset(dsts) {
                    editor.set_prot(idx, true);
                    stats.prot_prefixes += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_isa::assemble;

    /// The paper's Fig. 3 source, compiled by each pass; the expected
    /// instrumentation follows Fig. 3b–e.
    fn fig3() -> Program {
        assemble(
            r#"
            load r1, [r0]            ; 0: Rx = *Rp
            mov r2, 0                ; 1: Ry = 0
            cmp r1, 0                ; 2
            jlt skip                 ; 3
            load r2, [r1*4 + 0x1000] ; 4: Ry = A[Rx]
          skip:
            ret                      ; 5
            "#,
        )
        .unwrap()
    }

    #[test]
    fn arch_pass_is_noop() {
        let out = compile_with(&fig3(), Pass::Arch);
        assert_eq!(out.program.insts, fig3().insts);
        assert_eq!(out.stats, PassStats::default());
    }

    /// Fig. 3c: CTS prefixes only the reloading of Ry and unprotects Rp
    /// at entry.
    #[test]
    fn cts_pass_matches_fig3c() {
        let out = compile_with(&fig3(), Pass::Cts);
        let p = &out.program;
        // One identity move at entry (Rp).
        assert!(p.insts[0].is_identity_move());
        assert!(matches!(
            p.insts[0].op,
            protean_isa::Op::Mov { dst: Reg::R0, .. }
        ));
        // Prefixed: only the A[x] load (old index 4 -> new index 5).
        let prefixed: Vec<usize> = p
            .insts
            .iter()
            .enumerate()
            .filter_map(|(i, inst)| inst.prot.then_some(i))
            .collect();
        assert_eq!(prefixed, vec![5]);
        assert_eq!(out.stats.prot_prefixes, 1);
        assert_eq!(out.stats.identity_moves, 1);
    }

    /// Fig. 3d: CT prefixes the first load, the cmp, and the A[x] load,
    /// and inserts identity moves for Rp (entry) and Rx (fall-through
    /// edge).
    #[test]
    fn ct_pass_matches_fig3d() {
        let out = compile_with(&fig3(), Pass::Ct);
        let p = &out.program;
        assert_eq!(out.stats.identity_moves, 2);
        assert_eq!(out.stats.prot_prefixes, 3);
        // Entry move unprotects Rp.
        assert!(matches!(
            p.insts[0].op,
            protean_isa::Op::Mov { dst: Reg::R0, .. }
        ));
        assert!(!p.insts[0].prot);
        // Old indices shift by 1 for the entry move; the edge move for
        // Rx sits before the A[x] load.
        // Layout: [mov r0,r0][load][mov r2,0][cmp][jlt][mov r1,r1][load A][ret]
        assert!(p.insts[1].prot, "x = *p load is protected");
        assert!(!p.insts[2].prot, "constant y = 0 is unprotected");
        assert!(p.insts[3].prot, "cmp (rflags only partially transmitted)");
        assert!(p.insts[5].is_identity_move());
        assert!(matches!(
            p.insts[5].op,
            protean_isa::Op::Mov { dst: Reg::R1, .. }
        ));
        assert!(p.insts[6].prot, "y = A[x] load is protected");
        assert!(!p.insts[7].prot, "ret is never prefixed");
        assert!(p.validate().is_ok());
        // The branch still targets the ret.
        assert_eq!(p.insts[4].static_target(), Some(7));
    }

    /// Fig. 3e: UNR unprotects only the constant `mov Ry, 0`.
    #[test]
    fn unr_pass_matches_fig3e() {
        let out = compile_with(&fig3(), Pass::Unr);
        let p = &out.program;
        assert_eq!(out.stats.identity_moves, 0);
        let unprefixed: Vec<usize> = p
            .insts
            .iter()
            .enumerate()
            .filter(|(_, i)| !i.prot && !i.dst_regs().is_empty())
            .map(|(i, _)| i)
            .collect();
        // `mov r2, 0` (index 1) and `ret` (RSP-only output) stay
        // unprefixed.
        assert_eq!(unprefixed, vec![1, 5]);
        assert!(p.insts[0].prot); // the load
        assert!(p.insts[2].prot); // cmp on loaded data
    }

    #[test]
    fn rand_pass_is_deterministic() {
        let a = compile_with(&fig3(), Pass::Rand { prob: 0.5, seed: 7 });
        let b = compile_with(&fig3(), Pass::Rand { prob: 0.5, seed: 7 });
        assert_eq!(a.program.insts, b.program.insts);
        let c = compile_with(&fig3(), Pass::Rand { prob: 0.5, seed: 8 });
        assert!(a.program.insts != c.program.insts || a.stats == c.stats);
    }

    #[test]
    fn multi_class_compiles_per_function() {
        let prog = assemble(
            r#"
            .func main arch
              mov r0, 0x1000
              call crypt
              halt
            .endfunc
            .func crypt unr
              load r1, [r0]
              add r1, r1, 1
              ret
            .endfunc
            "#,
        )
        .unwrap();
        let out = compile(&prog, Pass::Arch);
        let p = &out.program;
        let main = p.function("main").unwrap();
        let crypt = p.function("crypt").unwrap();
        // ARCH region untouched.
        for i in main.range() {
            assert!(!p.insts[i].prot, "main inst {i} must stay unprefixed");
        }
        // UNR region: the load and the add are prefixed.
        let crypt_prot: Vec<bool> = crypt.range().map(|i| p.insts[i].prot).collect();
        assert_eq!(crypt_prot, vec![true, true, false]); // load, add, ret
    }

    #[test]
    fn ct_identity_moves_only_on_sound_edges() {
        // r1 leaks on both sides of a diamond -> bound-to-leak before the
        // branch; no *newly* bound-to-leak edge moves needed inside.
        let prog = assemble(
            r#"
            cmp r0, 0
            jeq b
            load r2, [r1]
            jmp join
          b:
            load r3, [r1]
          join:
            ret
            "#,
        )
        .unwrap();
        let out = compile_with(&prog, Pass::Ct);
        // Exactly one identity move (r1 at entry; r0 is only partially
        // transmitted via cmp so it gets none).
        assert_eq!(out.stats.identity_moves, 1);
        assert!(matches!(
            out.program.insts[0].op,
            protean_isa::Op::Mov { dst: Reg::R1, .. }
        ));
    }
}
