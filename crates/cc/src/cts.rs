//! ProtCC-CTS: automatic secrecy-typing inference for static
//! constant-time code (paper §V-A2).
//!
//! Following the Serberus approach the paper builds on, the inference
//! (i) starts with every definition secret-typed, then (ii) applies the
//! standard secrecy typing rules — all *sensitive transmitter operands*
//! must be publicly typed, and public outputs require public inputs —
//! and (iii) resolves each violation by retyping the culprit definition
//! public, until convergence. For genuinely-CTS code this computes a
//! conservative typing: every secret stays secret-typed.
//!
//! Unlike the CT analyses, *partially* transmitted operands (branch
//! predicates, divider inputs) are also publicly typed — the reason
//! ProtCC-CTS can unprotect more registers than SPT ever can (§IX-B2).

use crate::analysis::pinned_public;
use crate::cfg::FunctionCfg;
use protean_isa::{Op, Program, Reg, RegSet};

/// The inferred typing of one function.
#[derive(Clone, Debug)]
pub struct CtsTyping {
    /// Per instruction (function-relative): the publicly-typed output
    /// registers.
    pub public_outputs: Vec<RegSet>,
    /// Registers publicly typed at function entry (arguments to
    /// unprotect with identity moves).
    pub public_entry: RegSet,
}

/// Sensitive operands under CTS typing: fully transmitted registers plus
/// partially transmitted ones (branch predicates, divider operands).
pub fn cts_sensitive(inst: &protean_isa::Inst) -> RegSet {
    let mut set = crate::analysis::fully_transmitted(inst);
    match inst.op {
        Op::Jcc { .. } => {
            set.insert(Reg::RFLAGS);
        }
        Op::Div { src1, src2, .. } => {
            set.insert(src1);
            set.insert(src2);
        }
        _ => {}
    }
    set
}

/// Infers a conservative secrecy typing for `program[cfg.start..cfg.end]`.
pub fn infer_typing(program: &Program, cfg: &FunctionCfg) -> CtsTyping {
    let n = cfg.len();
    // ---- Definition sites -------------------------------------------
    // Entry defs: one per architectural register (ids 0..Reg::COUNT);
    // then one def per (instruction, output) pair.
    let mut def_of: Vec<Vec<(Reg, usize)>> = vec![Vec::new(); n]; // per inst
    let mut defs: Vec<(Option<usize>, Reg)> = Reg::all().map(|r| (None, r)).collect();
    for (local, def_slot) in def_of.iter_mut().enumerate() {
        let inst = &program.insts[(cfg.start + local as u32) as usize];
        for r in inst.dst_regs().iter() {
            let id = defs.len();
            defs.push((Some(local), r));
            def_slot.push((r, id));
        }
    }
    let n_defs = defs.len();

    // ---- Reaching definitions (forward, union) -----------------------
    let words = n_defs.div_ceil(64);
    let empty = vec![0u64; words];
    let mut r_in: Vec<Vec<u64>> = vec![empty.clone(); n];
    let set_bit = |v: &mut [u64], id: usize| v[id / 64] |= 1 << (id % 64);
    let get_bit = |v: &[u64], id: usize| v[id / 64] & (1 << (id % 64)) != 0;

    // Entry state: the entry defs.
    let mut entry_state = empty.clone();
    for id in 0..Reg::COUNT {
        set_bit(&mut entry_state, id);
    }

    let transfer = |local: usize, input: &[u64]| -> Vec<u64> {
        let inst = &program.insts[(cfg.start + local as u32) as usize];
        let mut out = input.to_vec();
        let killed = if inst.write_width().is_some_and(|w| w.is_partial()) {
            // Partial writes keep the old definition live too.
            RegSet::new()
        } else {
            inst.dst_regs()
        };
        if !killed.is_empty() {
            for (id, (_, r)) in defs.iter().enumerate() {
                if killed.contains(*r) && get_bit(&out, id) {
                    out[id / 64] &= !(1 << (id % 64));
                }
            }
        }
        for (_, id) in &def_of[local] {
            set_bit(&mut out, *id);
        }
        out
    };

    let mut changed = true;
    while changed {
        changed = false;
        for local in 0..n {
            let mut inp = if local == 0 {
                entry_state.clone()
            } else {
                empty.clone()
            };
            for p in &cfg.preds[local] {
                let pout = transfer(*p as usize, &r_in[*p as usize]);
                for (w, pw) in inp.iter_mut().zip(pout) {
                    *w |= pw;
                }
            }
            if inp != r_in[local] {
                r_in[local] = inp;
                changed = true;
            }
        }
    }

    // ---- Public closure ----------------------------------------------
    let mut public = vec![false; n_defs];
    let mut work: Vec<usize> = Vec::new();
    let mark = |public: &mut Vec<bool>, work: &mut Vec<usize>, id: usize| {
        if !public[id] {
            public[id] = true;
            work.push(id);
        }
    };
    // Constants and pinned registers are public.
    for (id, (site, r)) in defs.iter().enumerate() {
        let constant = site.is_some_and(|local| {
            matches!(
                program.insts[(cfg.start + local as u32) as usize].op,
                Op::MovImm { width, .. } if !width.is_partial()
            )
        });
        if constant || pinned_public().contains(*r) {
            mark(&mut public, &mut work, id);
        }
    }
    // Demand: sensitive operands must be public.
    let reaching = |local: usize, r: Reg| -> Vec<usize> {
        (0..n_defs)
            .filter(|id| defs[*id].1 == r && get_bit(&r_in[local], *id))
            .collect()
    };
    for local in 0..n {
        let inst = &program.insts[(cfg.start + local as u32) as usize];
        for r in cts_sensitive(inst).iter() {
            for id in reaching(local, r) {
                mark(&mut public, &mut work, id);
            }
        }
    }
    // Closure: a public output needs public inputs.
    while let Some(id) = work.pop() {
        let (site, _) = defs[id];
        let Some(local) = site else { continue };
        let inst = &program.insts[(cfg.start + local as u32) as usize];
        // Loads draw their value from memory (typed separately; the
        // address registers are already public via the demand rule).
        if inst.is_load() {
            continue;
        }
        for s in inst.src_regs().iter() {
            for rid in reaching(local, s) {
                mark(&mut public, &mut work, rid);
            }
        }
    }

    // ---- Forward derivation -------------------------------------------
    // Demand gave the *required* public set; typing also permits any
    // definition computed purely from public inputs to be publicly typed
    // (rule: public inputs -> public output is always derivable). Loads
    // and entry definitions stay secret unless demanded. Computed as a
    // *greatest* fixpoint: start optimistic (every non-load definition is
    // a candidate) and strike candidates with a non-candidate input, so
    // loop-carried public chains (counters, LCG fills) type correctly.
    let mut candidate: Vec<bool> = (0..n_defs)
        .map(|id| {
            public[id]
                || defs[id].0.is_some_and(|local| {
                    !program.insts[(cfg.start + local as u32) as usize].is_load()
                })
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (local, local_defs) in def_of.iter().enumerate() {
            let inst = &program.insts[(cfg.start + local as u32) as usize];
            if inst.is_load() || local_defs.is_empty() {
                continue;
            }
            let inputs_ok = inst
                .src_regs()
                .iter()
                .all(|s| reaching(local, s).into_iter().all(|rid| candidate[rid]));
            if !inputs_ok {
                for (_, id) in local_defs {
                    if candidate[*id] && !public[*id] {
                        candidate[*id] = false;
                        changed = true;
                    }
                }
            }
        }
    }
    for id in 0..n_defs {
        public[id] = public[id] || candidate[id];
    }

    // ---- Extract ------------------------------------------------------
    let mut public_outputs = vec![RegSet::new(); n];
    for local in 0..n {
        for (r, id) in &def_of[local] {
            if public[*id] {
                public_outputs[local].insert(*r);
            }
        }
    }
    let mut public_entry = RegSet::new();
    for id in 0..Reg::COUNT {
        if public[id] {
            public_entry.insert(defs[id].1);
        }
    }
    CtsTyping {
        public_outputs,
        public_entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_isa::assemble;

    fn typing_of(src: &str) -> (Program, CtsTyping) {
        let p = assemble(src).unwrap();
        let cfg = FunctionCfg::build(&p, 0, p.len() as u32);
        let t = infer_typing(&p, &cfg);
        (p, t)
    }

    /// The paper's Fig. 3c walkthrough: Rp, Rx, and the constant Ry are
    /// typed public; the reloaded Ry (line 4) stays secret.
    #[test]
    fn fig3_typing() {
        let (_, t) = typing_of(
            r#"
            load r1, [r0]            ; 0: Rx = *Rp
            mov r2, 0                ; 1: Ry = 0
            cmp r1, 0                ; 2
            jlt skip                 ; 3
            load r2, [r1*4 + 0x1000] ; 4: Ry = A[Rx]
          skip:
            ret                      ; 5
            "#,
        );
        // Rp public at entry (passed to the load's address).
        assert!(t.public_entry.contains(Reg::R0));
        // Rx's definition (load 0) is public: it reaches the line-4
        // address and the cmp (partial transmit).
        assert!(t.public_outputs[0].contains(Reg::R1));
        // The constant Ry is public…
        assert!(t.public_outputs[1].contains(Reg::R2));
        // …the reloaded Ry is secret.
        assert!(!t.public_outputs[4].contains(Reg::R2));
        // cmp's rflags are public (branch predicates are partially
        // transmitted — CTS may type them public, unlike CT).
        assert!(t.public_outputs[2].contains(Reg::RFLAGS));
    }

    #[test]
    fn secret_key_stays_secret() {
        // A classic CTS kernel: load key, xor into data, store. Nothing
        // demands the key public.
        let (_, t) = typing_of(
            r#"
            load r1, [r0]          ; 0: key (secret)
            load r2, [r0 + 8]      ; 1: data (secret)
            xor r2, r2, r1         ; 2
            store [r0 + 16], r2    ; 3
            ret                    ; 4
            "#,
        );
        assert!(t.public_entry.contains(Reg::R0)); // pointer: public
        assert!(!t.public_outputs[0].contains(Reg::R1)); // key: secret
        assert!(!t.public_outputs[2].contains(Reg::R2)); // derived: secret
    }

    #[test]
    fn closure_propagates_backwards() {
        // r2 = r1 + 1 is used as an address, so r1's def must be public.
        let (_, t) = typing_of(
            r#"
            mov r1, r0             ; 0
            add r2, r1, 1          ; 1
            load r3, [r2]          ; 2: transmits r2
            ret                    ; 3
            "#,
        );
        assert!(t.public_outputs[1].contains(Reg::R2));
        assert!(t.public_outputs[0].contains(Reg::R1));
        assert!(t.public_entry.contains(Reg::R0));
        // The loaded r3 stays secret.
        assert!(!t.public_outputs[2].contains(Reg::R3));
    }

    #[test]
    fn div_operands_demanded_public() {
        let (_, t) = typing_of("div r2, r0, r1\nret\n");
        assert!(t.public_entry.contains(Reg::R0));
        assert!(t.public_entry.contains(Reg::R1));
        // The quotient of two public operands is derivably public.
        assert!(t.public_outputs[0].contains(Reg::R2));
    }

    #[test]
    fn flags_over_public_operands_stay_public() {
        // `and t, i, mask` over a public loop counter must not poison the
        // instruction via its flags output — the flags are a function of
        // public data.
        let (_, t) = typing_of("mov r0, 0\nand r1, r0, 0xff8\nload r2, [r1 + 0x1000]\nret\n");
        assert!(t.public_outputs[1].contains(Reg::R1));
        assert!(t.public_outputs[1].contains(Reg::RFLAGS));
        // The loaded value stays secret.
        assert!(!t.public_outputs[2].contains(Reg::R2));
    }
}
