//! Property tests for the program editor and the ProtCC passes:
//! arbitrary batches of identity-move insertions never break control
//! flow or change architectural semantics, and pass outputs are always
//! structurally valid.

use proptest::prelude::*;
use protean_arch::{ArchState, Emulator, ExitStatus};
use protean_cc::{compile_with, Pass, ProgramEditor};
use protean_isa::{assemble, Program, Reg};

/// A deterministic, branchy base program with a loop and a diamond.
fn base_program() -> Program {
    assemble(
        r#"
          mov rsp, 0x8000
          mov r0, 0
          mov r2, 0
        loop:
          and r1, r0, 7
          cmp r1, 3
          jlt small
          add r2, r2, r1
          jmp next
        small:
          xor r2, r2, r0
        next:
          store [0x1000 + r1*8], r2
          load r3, [0x1000 + r1*8]
          add r0, r0, 1
          cmp r0, 40
          jlt loop
          halt
        "#,
    )
    .unwrap()
}

fn final_state(program: &Program) -> ([u64; Reg::COUNT], u64) {
    let mut emu = Emulator::new(program, ArchState::new());
    let (status, _) = emu.run(50_000);
    assert_eq!(status, ExitStatus::Halted);
    (emu.state.regs, emu.state.mem.read(0x1000, 8))
}

proptest! {
    /// Identity moves inserted at arbitrary positions are architectural
    /// no-ops: same final registers and memory, valid program.
    #[test]
    fn random_identity_insertions_are_noops(
        points in prop::collection::vec((0u32..15, 0usize..Reg::GPR_COUNT), 0..12)
    ) {
        let program = base_program();
        let reference = final_state(&program);
        let mut editor = ProgramEditor::new(program.clone());
        for (pos, reg) in &points {
            editor.insert_identity_move(*pos, Reg::gpr(*reg));
        }
        let edited = editor.apply();
        prop_assert!(edited.validate().is_ok());
        prop_assert_eq!(edited.len(), program.len() + points.len());
        let after = final_state(&edited);
        prop_assert_eq!(reference.0, after.0);
        prop_assert_eq!(reference.1, after.1);
    }

    /// Random prefix toggles never affect architectural results (PROT
    /// changes protection state, not values), and the program stays
    /// valid.
    #[test]
    fn random_prefixes_are_semantically_inert(flips in prop::collection::vec(0u32..15, 0..15)) {
        let program = base_program();
        let reference = final_state(&program);
        let mut editor = ProgramEditor::new(program);
        for idx in flips {
            editor.set_prot(idx, true);
        }
        let edited = editor.apply();
        prop_assert!(edited.validate().is_ok());
        let after = final_state(&edited);
        prop_assert_eq!(reference.0, after.0);
    }

    /// Every pass on every RAND-prefix starting point yields a valid,
    /// semantics-preserving program (passes must be insensitive to
    /// pre-existing prefixes).
    #[test]
    fn passes_valid_on_randomly_preprotected_inputs(seed in 0u64..32, prob in 0.0f64..1.0) {
        let pre = compile_with(&base_program(), Pass::Rand { prob, seed }).program;
        let reference = final_state(&pre);
        for pass in [Pass::Cts, Pass::Ct, Pass::Unr] {
            let out = compile_with(&pre, pass).program;
            prop_assert!(out.validate().is_ok());
            let after = final_state(&out);
            prop_assert_eq!(reference.0, after.0, "pass {}", pass.name());
        }
    }
}
