//! Property tests for the program editor and the ProtCC passes:
//! arbitrary batches of identity-move insertions never break control
//! flow or change architectural semantics, and pass outputs are always
//! structurally valid.

use protean_arch::{ArchState, Emulator, ExitStatus};
use protean_cc::{compile_with, Pass, ProgramEditor};
use protean_isa::{assemble, Program, Reg};
use protean_testkit::Checker;

/// A deterministic, branchy base program with a loop and a diamond.
/// 15 instructions long — insertion positions range over `0..=15`,
/// where 15 is a trailing insertion.
const BASE_LEN: u32 = 15;

fn base_program() -> Program {
    let program = assemble(
        r#"
          mov rsp, 0x8000
          mov r0, 0
          mov r2, 0
        loop:
          and r1, r0, 7
          cmp r1, 3
          jlt small
          add r2, r2, r1
          jmp next
        small:
          xor r2, r2, r0
        next:
          store [0x1000 + r1*8], r2
          load r3, [0x1000 + r1*8]
          add r0, r0, 1
          cmp r0, 40
          jlt loop
          halt
        "#,
    )
    .unwrap();
    assert_eq!(program.len() as u32, BASE_LEN);
    program
}

fn final_state(program: &Program) -> ([u64; Reg::COUNT], u64) {
    let mut emu = Emulator::new(program, ArchState::new());
    let (status, _) = emu.run(50_000);
    assert_eq!(status, ExitStatus::Halted);
    (emu.state.regs, emu.state.mem.read(0x1000, 8))
}

/// Identity moves at the given positions (up to and including the
/// program's end) must be architectural no-ops: same final registers
/// and memory, valid program.
fn check_identity_insertions_are_noops(points: &[(u32, usize)]) {
    let program = base_program();
    let reference = final_state(&program);
    let mut editor = ProgramEditor::new(program.clone());
    for (pos, reg) in points {
        editor.insert_identity_move(*pos, Reg::gpr(*reg));
    }
    let edited = editor.apply();
    assert!(edited.validate().is_ok());
    assert_eq!(edited.len(), program.len() + points.len());
    let after = final_state(&edited);
    assert_eq!(reference.0, after.0);
    assert_eq!(reference.1, after.1);
}

/// Identity moves inserted at arbitrary positions — including the
/// trailing position `len` — are architectural no-ops.
#[test]
fn random_identity_insertions_are_noops() {
    Checker::new("random_identity_insertions_are_noops").run(
        |rng| {
            let n = rng.gen_range(0..12usize);
            (0..n)
                .map(|_| {
                    (
                        rng.gen_range(0..=BASE_LEN),
                        rng.gen_range(0..Reg::GPR_COUNT),
                    )
                })
                .collect::<Vec<(u32, usize)>>()
        },
        |points| check_identity_insertions_are_noops(points),
    );
}

/// Former proptest counterexample (`shrinks to points = [(15, 0)]`): an
/// identity move inserted at position 15 — one past the last
/// instruction of the 15-instruction base program. The editor used to
/// mishandle trailing insertions, and the property's insertion range
/// was narrowed to `0..15` to dodge it; the range is widened back to
/// `0..=15` above, and this pins the exact failing input.
#[test]
fn regression_trailing_identity_insertion() {
    check_identity_insertions_are_noops(&[(15, 0)]);
}

/// Random prefix toggles never affect architectural results (PROT
/// changes protection state, not values), and the program stays
/// valid.
#[test]
fn random_prefixes_are_semantically_inert() {
    Checker::new("random_prefixes_are_semantically_inert").run(
        |rng| {
            let n = rng.gen_range(0..15usize);
            (0..n)
                .map(|_| rng.gen_range(0..BASE_LEN))
                .collect::<Vec<u32>>()
        },
        |flips| {
            let program = base_program();
            let reference = final_state(&program);
            let mut editor = ProgramEditor::new(program);
            for idx in flips {
                editor.set_prot(*idx, true);
            }
            let edited = editor.apply();
            assert!(edited.validate().is_ok());
            let after = final_state(&edited);
            assert_eq!(reference.0, after.0);
        },
    );
}

/// Every pass on every RAND-prefix starting point yields a valid,
/// semantics-preserving program (passes must be insensitive to
/// pre-existing prefixes).
#[test]
fn passes_valid_on_randomly_preprotected_inputs() {
    Checker::new("passes_valid_on_randomly_preprotected_inputs")
        .cases(64) // each case emulates four programs; keep runtime sane
        .run(
            |rng| (rng.gen_range(0u64..32), rng.gen_range(0.0..1.0f64)),
            |&(seed, prob)| {
                let pre = compile_with(&base_program(), Pass::Rand { prob, seed }).program;
                let reference = final_state(&pre);
                for pass in [Pass::Cts, Pass::Ct, Pass::Unr] {
                    let out = compile_with(&pre, pass).program;
                    assert!(out.validate().is_ok());
                    let after = final_state(&out);
                    assert_eq!(reference.0, after.0, "pass {}", pass.name());
                }
            },
        );
}
