//! Deterministic, dependency-free random number generation.
//!
//! Every stochastic component of the Protean reproduction — the
//! AMuLeT\*-style contract fuzzer (§VII-B), the ProtCC-RAND
//! instrumentation pass, the synthetic workload generators, and the
//! randomized tests — must replay **bit-identical** campaigns from a
//! seed: the recorded Table I–V results are only checkable if the same
//! seed regenerates the same programs and inputs on every host and
//! toolchain. Owning the generator in-tree removes both the build-time
//! dependency on crates.io and the risk that an upstream algorithm
//! change silently invalidates recorded results.
//!
//! The crate provides:
//!
//! * [`Rng`] — the workhorse generator: **xoshiro256++** (Blackman &
//!   Vigna, 2019), seeded from a single `u64` by SplitMix64 state
//!   expansion (Vigna's recommended seeding discipline);
//! * [`SplitMix64`] — the seeder, also usable directly for cheap
//!   stream-splitting (one campaign seed → per-case seeds);
//! * [`Sample`]/[`SampleRange`] — the typed-draw and range traits
//!   behind [`Rng::gen`] and [`Rng::gen_range`].
//!
//! The surface mirrors the `rand` 0.8 idioms used across the workspace
//! (`seed_from_u64`, `gen_range`, `gen_bool`, `gen::<u64>()`,
//! `fill_bytes`, `choose`, `shuffle`) so call sites swap over with
//! import-level changes only.
//!
//! # Example
//!
//! ```
//! use protean_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6u32);
//! assert!((1..=6).contains(&die));
//! let coin = rng.gen_bool(0.5);
//! let word: u64 = rng.gen();
//! let _ = (coin, word);
//!
//! // Same seed, same stream — always.
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![warn(missing_docs)]

mod sample;
mod splitmix;
mod xoshiro;

pub use sample::{Sample, SampleRange};
pub use splitmix::SplitMix64;
pub use xoshiro::Rng;
