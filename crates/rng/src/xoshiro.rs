//! xoshiro256++ — the workspace's standard generator.

use crate::sample::{Sample, SampleRange};
use crate::splitmix::SplitMix64;

/// A xoshiro256++ generator (Blackman & Vigna, 2019).
///
/// 256 bits of state, period 2²⁵⁶−1, passes BigCrush; the `++`
/// scrambler makes all 64 output bits full-quality (unlike the `+`
/// variant's weak low bits). This is the only generator experiment
/// code should use — every draw is a pure function of the seed, so
/// campaigns, workload inputs, and instrumentation decisions replay
/// bit-identically.
///
/// # Examples
///
/// ```
/// use protean_rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(0xfeed);
/// let idx = rng.gen_range(0..10usize);
/// assert!(idx < 10);
///
/// let mut bytes = [0u8; 16];
/// rng.fill_bytes(&mut bytes);
///
/// let suites = ["spec", "parsec", "wasm"];
/// let pick = rng.choose(&suites).unwrap();
/// assert!(suites.contains(pick));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the 256-bit state from one `u64` by four SplitMix64 steps
    /// (the upstream-recommended discipline; never yields the illegal
    /// all-zero state).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state (the one fixed point of the
    /// transition function).
    pub fn from_state(s: [u64; 4]) -> Rng {
        assert!(s != [0; 4], "xoshiro256++ state must not be all zero");
        Rng { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (the high half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A typed draw: `rng.gen::<u64>()`, `rng.gen::<bool>()`, ….
    ///
    /// Integers draw uniformly over their full range; `f64`/`f32` draw
    /// uniformly from `[0, 1)`.
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from a range: `rng.gen_range(0..6)`,
    /// `rng.gen_range(1..=20u64)`, `rng.gen_range(0.0..1.0)`.
    ///
    /// Integer draws are unbiased (Lemire's multiply-shift rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            slice.swap(i, self.gen_range(0..=i));
        }
    }

    /// An unbiased draw from `0..n` (`n > 0`) via Lemire's
    /// multiply-shift rejection.
    #[inline]
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection threshold: 2^64 mod n; draws whose low product half
        // falls below it would be biased.
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}
