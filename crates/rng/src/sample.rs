//! The [`Sample`] and [`SampleRange`] traits behind the typed-draw
//! surface (`gen::<T>()`, `gen_range(lo..hi)`).

use crate::xoshiro::Rng;
use core::ops::{Range, RangeInclusive};

/// Types drawable uniformly over their natural domain.
///
/// Integers cover their full range; `bool` is a fair coin; floats are
/// uniform in `[0, 1)` with 53 (`f64`) / 24 (`f32`) bits of mantissa
/// entropy.
pub trait Sample: Sized {
    /// Draws one value.
    fn sample(rng: &mut Rng) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            #[inline]
            fn sample(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Sample for u128 {
    #[inline]
    fn sample(rng: &mut Rng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Sample for i128 {
    #[inline]
    fn sample(rng: &mut Rng) -> i128 {
        u128::sample(rng) as i128
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut Rng) -> bool {
        // The ++ scrambler's bits are uniformly strong; use the top one.
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    #[inline]
    fn sample(rng: &mut Rng) -> f64 {
        // 53 mantissa bits → uniform multiples of 2⁻⁵³ in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    #[inline]
    fn sample(rng: &mut Rng) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges drawable by [`Rng::gen_range`].
///
/// Implemented for `Range` and `RangeInclusive` over the primitive
/// integers (unbiased) and for `Range` over floats (uniform by linear
/// interpolation).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Wrapping subtraction in the unsigned twin maps signed
                // spans onto 0..2^64 correctly.
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_one(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u) as u64;
                if span == <$u>::MAX as u64 && core::mem::size_of::<$t>() == 8 {
                    // Full 64-bit domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_one(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = rng.gen();
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);
