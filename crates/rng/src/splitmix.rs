//! SplitMix64 — the seeding and stream-splitting generator.

/// SplitMix64 (Steele, Lea & Flood, 2014; Vigna's public-domain
/// constants).
///
/// A 64-bit state, 64-bit output generator that equidistributes over
/// its full period. Too weak to drive experiments on its own, but ideal
/// for two jobs it has here:
///
/// * expanding one user-facing `u64` seed into the 256-bit
///   [`Rng`](crate::Rng) state (the seeding discipline xoshiro's
///   authors recommend, avoiding the all-zero state);
/// * splitting one campaign seed into per-case sub-seeds in the
///   property-test harness, so each case replays independently.
///
/// # Examples
///
/// ```
/// use protean_rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(0);
/// // The published test vector for seed 0.
/// assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    #[inline]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}
