//! Golden-value and edge-case tests pinning the RNG's exact output
//! streams.
//!
//! The recorded bench tables and fuzzing campaigns are only
//! reproducible if these streams never move. A failure here means the
//! generator drifted — that is a breaking change to every recorded
//! result, not a test to update casually.

use protean_rng::{Rng, SplitMix64};

/// Published SplitMix64 test vector for seed 0 (Vigna's reference
/// implementation).
#[test]
fn splitmix64_seed0_reference_vector() {
    let mut sm = SplitMix64::new(0);
    let expected = [
        0xe220a8397b1dcdaf_u64,
        0x6e789e6aa1b965f4,
        0x06c45d188009454f,
        0xf88bb8a8724c81ec,
        0x1b39896a51a8749b,
    ];
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(sm.next_u64(), *want, "splitmix64 output {i}");
    }
}

/// Reference vector for xoshiro256++ from state `[1, 2, 3, 4]` (the
/// same vector rand_xoshiro pins; the first two terms are also easy to
/// verify by hand from the recurrence).
#[test]
fn xoshiro256pp_state1234_reference_vector() {
    let mut rng = Rng::from_state([1, 2, 3, 4]);
    let expected = [
        41943041_u64,
        58720359,
        3588806011781223,
        3591011842654386,
        9228616714210784205,
        9973669472204895162,
        14011001112246962877,
        12406186145184390807,
        15849039046786891736,
        10450023813501588000,
    ];
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(rng.next_u64(), *want, "xoshiro256++ output {i}");
    }
}

/// Pins the composite seeding discipline: `seed_from_u64` must expand
/// through SplitMix64 exactly as it does today.
#[test]
fn seed_from_u64_pinned_stream() {
    let mut rng = Rng::seed_from_u64(0);
    let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    let expected = [
        0x53175d61490b23df_u64,
        0x61da6f3dc380d507,
        0x5c0fdf91ec9a7bfc,
        0x02eebf8c3bbe5e1a,
    ];
    assert_eq!(got, expected);

    let mut rng = Rng::seed_from_u64(0x5eed);
    let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    let expected = [
        0x8eb2871b24ae0c00_u64,
        0xfdd2c14d7560f757,
        0x17460bdf1e7c3333,
        0x6ff7f624b0c6310f,
    ];
    assert_eq!(got, expected);
}

#[test]
fn same_seed_same_stream() {
    let mut a = Rng::seed_from_u64(123);
    let mut b = Rng::seed_from_u64(123);
    for _ in 0..1000 {
        assert_eq!(a.next_u64(), b.next_u64());
    }
    // And a different seed diverges immediately.
    let mut c = Rng::seed_from_u64(124);
    assert_ne!(Rng::seed_from_u64(123).next_u64(), c.next_u64());
}

#[test]
fn gen_range_exclusive_bounds() {
    let mut rng = Rng::seed_from_u64(1);
    for _ in 0..2000 {
        let v = rng.gen_range(10..13u32);
        assert!((10..13).contains(&v));
    }
    // A one-element exclusive range only has one answer.
    for _ in 0..16 {
        assert_eq!(rng.gen_range(7..8u64), 7);
    }
    // Signed ranges spanning zero stay in bounds.
    for _ in 0..2000 {
        let v = rng.gen_range(-5..5i64);
        assert!((-5..5).contains(&v));
    }
}

#[test]
fn gen_range_inclusive_bounds_hit_both_ends() {
    let mut rng = Rng::seed_from_u64(2);
    let (mut lo_seen, mut hi_seen) = (false, false);
    for _ in 0..2000 {
        let v = rng.gen_range(0..=3u8);
        assert!(v <= 3);
        lo_seen |= v == 0;
        hi_seen |= v == 3;
    }
    assert!(lo_seen && hi_seen, "both inclusive endpoints must occur");
    // Degenerate inclusive range.
    assert_eq!(rng.gen_range(42..=42u64), 42);
}

#[test]
fn gen_range_full_u64_domain() {
    let mut rng = Rng::seed_from_u64(3);
    // Must not hang or panic; the span overflows to 0 internally.
    for _ in 0..64 {
        let _ = rng.gen_range(0..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}

#[test]
#[should_panic(expected = "empty range")]
fn gen_range_empty_panics() {
    let mut rng = Rng::seed_from_u64(4);
    let _ = rng.gen_range(5..5u32);
}

#[test]
fn gen_range_float_unit_interval() {
    let mut rng = Rng::seed_from_u64(5);
    for _ in 0..2000 {
        let v = rng.gen_range(0.0..1.0f64);
        assert!((0.0..1.0).contains(&v));
        let w = rng.gen_range(-2.0..2.0f32);
        assert!((-2.0..2.0).contains(&w));
    }
}

#[test]
fn gen_bool_extremes_and_bias() {
    let mut rng = Rng::seed_from_u64(6);
    for _ in 0..100 {
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
    let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
    assert!(
        (2000..3000).contains(&heads),
        "p=0.25 over 10k draws gave {heads}"
    );
}

#[test]
fn choose_empty_slice_is_none() {
    let mut rng = Rng::seed_from_u64(7);
    let empty: [u32; 0] = [];
    assert_eq!(rng.choose(&empty), None);
    let one = [99u32];
    assert_eq!(rng.choose(&one), Some(&99));
}

#[test]
fn shuffle_is_a_permutation() {
    let mut rng = Rng::seed_from_u64(8);
    let mut v: Vec<u32> = (0..100).collect();
    rng.shuffle(&mut v);
    let mut sorted = v.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    // Seeded shuffles replay.
    let mut w: Vec<u32> = (0..100).collect();
    Rng::seed_from_u64(8).shuffle(&mut w);
    assert_eq!(v, w);
}

#[test]
fn fill_bytes_all_lengths() {
    let mut rng = Rng::seed_from_u64(9);
    for len in 0..33 {
        let mut buf = vec![0u8; len];
        rng.fill_bytes(&mut buf);
        if len >= 8 {
            assert!(buf.iter().any(|b| *b != 0), "len {len} stayed zero");
        }
    }
    // fill_bytes consumes the same stream as next_u64.
    let mut a = Rng::seed_from_u64(10);
    let mut buf = [0u8; 8];
    a.fill_bytes(&mut buf);
    assert_eq!(u64::from_le_bytes(buf), Rng::seed_from_u64(10).next_u64());
}

#[test]
fn typed_draws_cover_primitives() {
    let mut rng = Rng::seed_from_u64(11);
    let _: u8 = rng.gen();
    let _: u16 = rng.gen();
    let _: u32 = rng.gen();
    let _: u64 = rng.gen();
    let _: u128 = rng.gen();
    let _: usize = rng.gen();
    let _: i64 = rng.gen();
    let _: i128 = rng.gen();
    let f: f64 = rng.gen();
    assert!((0.0..1.0).contains(&f));
    let g: f32 = rng.gen();
    assert!((0.0..1.0).contains(&g));
    let _: bool = rng.gen();
}

/// Lemire rejection must stay unbiased at the edge: a span just above
/// 2⁶³ exercises the rejection path.
#[test]
fn below_large_span_in_bounds() {
    let mut rng = Rng::seed_from_u64(12);
    let span = (1u64 << 63) + 3;
    for _ in 0..256 {
        assert!(rng.gen_range(0..span) < span);
    }
}
