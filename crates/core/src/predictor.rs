//! ProtTrack's secure access predictor (paper §VI-B2a).
//!
//! A 1-bit, untagged, PC-indexed table predicting whether a load will
//! read *protected* memory (i.e. be an access instruction). The paper
//! chooses 1024 entries (128 bytes total) from the Fig. 5 sensitivity
//! study, which `protean-bench --bin figure_5` regenerates.

/// The access predictor.
///
/// # Examples
///
/// ```
/// use protean_core::AccessPredictor;
///
/// let mut p = AccessPredictor::new(1024);
/// let pc = 0x400840;
/// assert!(p.predict_access(pc)); // cold: assume access (safe)
/// p.update(pc, false);
/// assert!(!p.predict_access(pc)); // learned no-access
/// assert_eq!(p.size_bytes(), 128);
/// ```
#[derive(Clone, Debug)]
pub struct AccessPredictor {
    /// One bit per entry: `true` = the load read protected memory last
    /// time (predict *access*).
    table: Vec<bool>,
    entries: usize,
    // Statistics for the Fig. 5 misprediction-rate metric.
    lookups: u64,
    false_negatives: u64,
    false_positives: u64,
    /// Retired unprefixed loads with unprotected outputs (the Fig. 5
    /// denominator).
    eligible_retired: u64,
    eligible_mispredicted: u64,
}

impl AccessPredictor {
    /// Creates a predictor with `entries` 1-bit entries (rounded up to a
    /// power of two). All entries start at *access* — cold predictions
    /// are conservative, never a security risk.
    pub fn new(entries: usize) -> AccessPredictor {
        let n = entries.next_power_of_two().max(1);
        AccessPredictor {
            table: vec![true; n],
            entries: n,
            lookups: 0,
            false_negatives: 0,
            false_positives: 0,
            eligible_retired: 0,
            eligible_mispredicted: 0,
        }
    }

    /// An effectively infinite predictor (for the Fig. 5 asymptote).
    pub fn unbounded() -> AccessPredictor {
        AccessPredictor::new(1 << 22)
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Total storage in bytes (1 bit per entry — 128 B at the paper's
    /// 1024 entries).
    pub fn size_bytes(&self) -> usize {
        self.entries / 8
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.entries - 1)
    }

    /// Predicts at rename whether the load at `pc` will read protected
    /// memory.
    pub fn predict_access(&mut self, pc: u64) -> bool {
        self.lookups += 1;
        self.table[self.index(pc)]
    }

    /// Updates with the retired load's actual outcome and records
    /// misprediction statistics.
    pub fn update(&mut self, pc: u64, actually_accessed_protected: bool) {
        let idx = self.index(pc);
        let predicted = self.table[idx];
        if predicted && !actually_accessed_protected {
            self.false_positives += 1;
        }
        if !predicted && actually_accessed_protected {
            self.false_negatives += 1;
        }
        self.table[idx] = actually_accessed_protected;
    }

    /// Records a retired load that is eligible for the Fig. 5
    /// misprediction-rate metric (unprefixed, unprotected output), and
    /// whether its prediction was wrong.
    pub fn record_eligible(&mut self, mispredicted: bool) {
        self.eligible_retired += 1;
        if mispredicted {
            self.eligible_mispredicted += 1;
        }
    }

    /// The Fig. 5 access-misprediction rate.
    pub fn misprediction_rate(&self) -> f64 {
        if self.eligible_retired == 0 {
            0.0
        } else {
            self.eligible_mispredicted as f64 / self.eligible_retired as f64
        }
    }

    /// (lookups, false negatives, false positives).
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.lookups, self.false_negatives, self.false_positives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_per_pc_behaviour() {
        let mut p = AccessPredictor::new(64);
        let hot = 0x1000; // index 0
        let cold = 0x1010; // index 4 (0x2000 would alias to 0 in 64 entries)
        p.update(hot, false);
        p.update(cold, true);
        assert!(!p.predict_access(hot));
        assert!(p.predict_access(cold));
    }

    #[test]
    fn aliasing_in_small_tables() {
        // Two PCs 4*64 apart alias in a 64-entry table.
        let mut p = AccessPredictor::new(64);
        let a = 0x1000;
        let b = 0x1000 + 4 * 64;
        p.update(a, false);
        assert!(!p.predict_access(b), "aliased entry shared");
        // A big table separates them.
        let mut big = AccessPredictor::new(4096);
        big.update(a, false);
        assert!(big.predict_access(b), "no aliasing in large table");
    }

    #[test]
    fn misprediction_stats() {
        let mut p = AccessPredictor::new(16);
        p.record_eligible(false);
        p.record_eligible(true);
        p.record_eligible(false);
        p.record_eligible(false);
        assert!((p.misprediction_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn counters_track_outcomes() {
        let mut p = AccessPredictor::new(16);
        let pc = 0x40;
        p.update(pc, false); // predicted access (cold) but wasn't: FP
        p.update(pc, true); // predicted no-access but was: FN
        let (_, fneg, fpos) = p.counters();
        assert_eq!((fneg, fpos), (1, 1));
    }

    #[test]
    fn paper_sizing() {
        let p = AccessPredictor::new(1024);
        assert_eq!(p.entries(), 1024);
        assert_eq!(p.size_bytes(), 128);
    }
}
