//! # protean-core
//!
//! The primary contribution of *"Protean: A Programmable Spectre
//! Defense"* (HPCA 2026): the hardware protection mechanisms that
//! enforce software-programmed ProtISA protection sets.
//!
//! * [`ProtDelayPolicy`] — **ProtDelay** (§VI-B1): AccessDelay extended
//!   to delay access transmitters and relaxed to only delay dependents
//!   of *unprefixed* accesses. Lower hardware complexity, good
//!   performance.
//! * [`ProtTrackPolicy`] — **ProtTrack** (§VI-B2): AccessTrack extended
//!   the same way, plus a 1024-entry [`AccessPredictor`] that
//!   predictively untaints loads expected to read unprotected memory,
//!   falling back to ProtDelay on false negatives and on tainted store
//!   forwarding. Best performance, more hardware.
//! * [`area`] — the §IV-C2a protection-bit storage/area cost model
//!   (6 KiB / 0.0418 mm² per P-core, ≈1.4 % of the L1D).
//!
//! Both policies set
//! [`uses_protisa`](protean_sim::DefensePolicy::uses_protisa), which
//! turns on the ProtISA tag plumbing in the `protean-sim` pipeline:
//! rename-map protection bits, physical-register protection tags, LSQ
//! protection bits, and per-byte L1D protection bits (with
//! evict-to-protected semantics).
//!
//! # Example
//!
//! A `PROT`-prefixed load keeps its (secret) result from transiently
//! reaching a transmitter, while unprefixed public-data code runs at
//! full speed:
//!
//! ```
//! use protean_arch::ArchState;
//! use protean_core::ProtTrackPolicy;
//! use protean_isa::assemble;
//! use protean_sim::{Core, CoreConfig, SimExit};
//!
//! let prog = assemble(
//!     "prot load r1, [r0 + 0x1000]\nload r2, [r1 + 0x2000]\nhalt\n",
//! ).unwrap();
//! let core = Core::new(&prog, CoreConfig::test_tiny(),
//!                      Box::new(ProtTrackPolicy::new()), &ArchState::new());
//! assert_eq!(core.run(1_000, 100_000).exit, SimExit::Halted);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
mod delay;
mod predictor;
mod support;
mod track;

pub use delay::ProtDelayPolicy;
pub use predictor::AccessPredictor;
pub use support::is_access_transmitter;
pub use track::ProtTrackPolicy;
