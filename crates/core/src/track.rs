//! ProtTrack (paper §VI-B2): AccessTrack adapted to software-programmed
//! ProtISA ProtSets, with a secure access predictor.
//!
//! Relative to STT's AccessTrack:
//!
//! * **Security**: access transmitters (protected sensitive operand) are
//!   delayed until non-speculative, like ProtDelay — AccessTrack alone
//!   lets an *untainted but protected* register be transmitted.
//! * **Performance**: whether a load reads protected memory is unknown at
//!   rename, so raw AccessTrack must taint *every* load. ProtTrack
//!   instead consults a 1024-entry, 1-bit access predictor: a load
//!   predicted *no-access* with an unprotected output is predictively
//!   untainted. Mispredictions are handled securely:
//!   - **false negatives** (predicted no-access, read protected memory):
//!     fall back to ProtDelay — the load's dependents wait until it
//!     retires, so protected data never propagates to an untainted,
//!     unprotected register;
//!   - **false positives** are benign (just taint that persists);
//!   - **tainted store forwarding**: an untainted load that forwards
//!     from a store of tainted/protected data stalls its wakeup until
//!     the store's data becomes untainted (not until commit).

use crate::predictor::AccessPredictor;
use crate::support::is_access_transmitter;
use protean_isa::TransmitterSet;
use protean_sim::{
    sensitive_root_tainted, BlockPoint, Cache, DefensePolicy, DynInst, RegTags, SpecFrontier,
    NO_ROOT,
};

/// The ProtTrack policy.
///
/// # Examples
///
/// ```
/// use protean_core::ProtTrackPolicy;
/// use protean_sim::DefensePolicy;
///
/// let p = ProtTrackPolicy::new();
/// assert!(p.uses_protisa());
/// assert_eq!(p.name(), "Protean-Track");
/// ```
#[derive(Clone, Debug)]
pub struct ProtTrackPolicy {
    xmit: TransmitterSet,
    predictor: Option<AccessPredictor>,
}

impl ProtTrackPolicy {
    /// The paper's ProtTrack with its 1024-entry access predictor.
    pub fn new() -> ProtTrackPolicy {
        ProtTrackPolicy::with_predictor_entries(1024)
    }

    /// ProtTrack with a custom predictor size (the Fig. 5 sweep).
    pub fn with_predictor_entries(entries: usize) -> ProtTrackPolicy {
        ProtTrackPolicy {
            xmit: TransmitterSet::paper(),
            predictor: Some(AccessPredictor::new(entries)),
        }
    }

    /// ProtTrack with an unbounded predictor (the Fig. 5 asymptote).
    pub fn unbounded_predictor() -> ProtTrackPolicy {
        ProtTrackPolicy {
            xmit: TransmitterSet::paper(),
            predictor: Some(AccessPredictor::unbounded()),
        }
    }

    /// Raw AccessTrack under ProtISA (predictor disabled: every load
    /// taints) — the §IX-A4 ablation.
    pub fn raw_access_track() -> ProtTrackPolicy {
        ProtTrackPolicy {
            xmit: TransmitterSet::paper(),
            predictor: None,
        }
    }

    /// The access predictor's misprediction rate so far (Fig. 5 metric).
    pub fn predictor_misprediction_rate(&self) -> f64 {
        self.predictor
            .as_ref()
            .map(AccessPredictor::misprediction_rate)
            .unwrap_or(0.0)
    }
}

impl Default for ProtTrackPolicy {
    fn default() -> ProtTrackPolicy {
        ProtTrackPolicy::new()
    }
}

impl DefensePolicy for ProtTrackPolicy {
    fn name(&self) -> String {
        if self.predictor.is_some() {
            "Protean-Track".into()
        } else {
            "AccessTrack/ProtISA".into()
        }
    }

    fn transmitters(&self) -> TransmitterSet {
        self.xmit
    }

    fn uses_protisa(&self) -> bool {
        true
    }

    fn on_rename(&mut self, u: &mut DynInst, tags: &mut RegTags) {
        protean_sim::propagate_tags(u, tags);
        let mut yrot = u.in_yrot;
        // Register-side accesses root taint.
        if u.src_prot {
            yrot = yrot.max(u.seq);
        }
        if u.is_load() {
            let pred_access = match &mut self.predictor {
                Some(p) => p.predict_access(u.pc),
                None => true, // raw AccessTrack: all loads taint
            };
            let predict_no_access = !pred_access && !u.prot_out;
            u.pred_no_access = Some(predict_no_access);
            if !predict_no_access {
                yrot = yrot.max(u.seq);
            }
        }
        if yrot != u.in_yrot {
            for d in &u.dsts {
                tags.yrot[d.new_phys] = yrot;
            }
        }
    }

    fn on_load_data(&mut self, u: &mut DynInst, _tags: &mut RegTags, _l1d: &Cache) {
        let mem_prot = u.mem_prot.unwrap_or(true);
        if u.pred_no_access == Some(true) {
            if mem_prot {
                // False negative: fall back to ProtDelay — dependents wait
                // until the load is non-speculative (§VI-B2b).
                u.delay_wakeup_nonspec = true;
            }
            // Tainted store forwarding (§VI-B2c): an untainted load
            // forwarding tainted/protected store data stalls its wakeup
            // until the store's data operand untaints.
            if let Some(m) = &u.mem {
                if m.fwd_from.is_some() {
                    if m.fwd_data_yrot != NO_ROOT {
                        u.wakeup_hold_root = m.fwd_data_yrot;
                    }
                    if m.data_prot {
                        // Forwarded *protected* data: full ProtDelay
                        // fallback (already triggered above via
                        // `mem_prot`, which forwards copy from the
                        // store's LSQ prot bit — kept explicit for
                        // clarity).
                        u.delay_wakeup_nonspec = true;
                    }
                }
            }
        }
    }

    fn may_execute(&self, u: &DynInst, tags: &RegTags, fr: &SpecFrontier) -> bool {
        if u.inst.is_branch() {
            return true;
        }
        if !self.xmit.is_transmitter(&u.inst) {
            return true;
        }
        if fr.is_non_speculative(u.seq) {
            return true;
        }
        // Tainted sensitive operand (AccessTrack) or protected sensitive
        // operand (access transmitter): stall.
        !sensitive_root_tainted(u, &self.xmit, tags, fr)
            && !is_access_transmitter(u, &self.xmit, tags)
    }

    fn may_wakeup(&self, u: &DynInst, _tags: &RegTags, fr: &SpecFrontier) -> bool {
        if u.delay_wakeup_nonspec && !fr.is_non_speculative(u.seq) {
            return false;
        }
        // Store-forwarding hold: until the forwarded data's root retires.
        !fr.root_speculative(u.wakeup_hold_root)
    }

    fn may_resolve(&self, u: &DynInst, tags: &RegTags, fr: &SpecFrontier) -> bool {
        if fr.is_non_speculative(u.seq) {
            return true;
        }
        if sensitive_root_tainted(u, &self.xmit, tags, fr) {
            return false;
        }
        if is_access_transmitter(u, &self.xmit, tags) {
            return false;
        }
        // `ret`: loaded target must be neither protected nor tainted.
        if u.is_load() {
            if u.mem_prot == Some(true) {
                return false;
            }
            if u.pred_no_access != Some(true) {
                // Tainted loaded value (rooted at the ret itself).
                return false;
            }
            if let Some(m) = &u.mem {
                if fr.root_speculative(m.fwd_data_yrot) {
                    return false;
                }
            }
        }
        true
    }

    fn block_rule(
        &self,
        u: &DynInst,
        point: BlockPoint,
        tags: &RegTags,
        fr: &SpecFrontier,
    ) -> &'static str {
        match point {
            BlockPoint::Execute => {
                if sensitive_root_tainted(u, &self.xmit, tags, fr) {
                    "tainted-transmitter-delay"
                } else {
                    "access-transmitter-delay"
                }
            }
            BlockPoint::Wakeup => {
                if u.delay_wakeup_nonspec && !fr.is_non_speculative(u.seq) {
                    "protdelay-fallback-wakeup"
                } else {
                    "tainted-forward-wakeup"
                }
            }
            BlockPoint::Resolve => {
                if sensitive_root_tainted(u, &self.xmit, tags, fr) {
                    "tainted-branch-resolve"
                } else if is_access_transmitter(u, &self.xmit, tags) {
                    "protected-branch-resolve"
                } else {
                    "ret-target-resolve"
                }
            }
        }
    }

    fn on_commit(&mut self, u: &DynInst, _tags: &mut RegTags, _l1d: &mut Cache) {
        // Predictor update with the actual outcome at retire (§VI-B2b).
        if u.is_load() {
            if let Some(p) = &mut self.predictor {
                let actual = u.mem_prot.unwrap_or(true);
                if !u.prot_out {
                    let predicted_access = u.pred_no_access != Some(true);
                    p.record_eligible(predicted_access != actual);
                }
                p.update(u.pc, actual);
            }
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        match &self.predictor {
            Some(p) => {
                let (lookups, fneg, fpos) = p.counters();
                vec![
                    ("access_pred_lookups".into(), lookups as f64),
                    ("access_pred_false_neg".into(), fneg as f64),
                    ("access_pred_false_pos".into(), fpos as f64),
                    ("access_pred_mispred_rate".into(), p.misprediction_rate()),
                ]
            }
            None => Vec::new(),
        }
    }
}
