//! Shared helpers for the Protean protection mechanisms.

use protean_isa::TransmitterSet;
use protean_sim::{DynInst, RegTags};

/// Whether `u` is an *access transmitter* (ProtISA Definition 1): a
/// transmitter whose sensitive operand is protected.
///
/// Register-side protection is resolved at rename (`u.sens_prot`); the
/// physical-register protection tags are immutable after rename, so no
/// re-query is needed.
pub fn is_access_transmitter(u: &DynInst, xmit: &TransmitterSet, _tags: &RegTags) -> bool {
    xmit.is_transmitter(&u.inst) && u.sens_prot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definition_matches_paper() {
        // Sanity: the helper keys on the rename-time sensitive-operand
        // protection bit; non-transmitters are never access transmitters.
        // (Full pipeline-level behaviour is exercised by the integration
        // tests in `tests/`.)
        let xmit = TransmitterSet::paper();
        assert!(xmit.loads && xmit.stores && xmit.branches && xmit.divs);
    }
}
