//! ProtDelay (paper §VI-B1): AccessDelay adapted to software-programmed
//! ProtISA ProtSets.
//!
//! Relative to NDA/SpecShield's AccessDelay:
//!
//! * **Security**: *access transmitters* — transmitters with a protected
//!   sensitive operand — additionally have their own execution
//!   (transmission) delayed until non-speculative. AccessDelay alone
//!   would let `leak rax` transmit its protected input directly.
//! * **Performance**: only *unprefixed* access instructions delay the
//!   wakeup of their dependents. Dependents of a `PROT`-prefixed access
//!   re-access a protected register, making them access instructions
//!   themselves, which ProtDelay will delay as needed — so waking them
//!   early is safe.
//!
//! Access instructions are determined per ProtISA's Definition 1:
//! protected register inputs are known at rename; protected *memory*
//! inputs only at execute, from the L1D/LSQ protection bits.

use crate::support::is_access_transmitter;
use protean_isa::TransmitterSet;
use protean_sim::{BlockPoint, Cache, DefensePolicy, DynInst, RegTags, SpecFrontier};

/// The ProtDelay policy.
///
/// `selective_wakeup = false` reproduces raw AccessDelay applied to
/// ProtISA (the §IX-A4 ablation): every access delays its dependents,
/// prefixed or not.
///
/// # Examples
///
/// ```
/// use protean_core::ProtDelayPolicy;
/// use protean_sim::DefensePolicy;
///
/// let p = ProtDelayPolicy::new();
/// assert!(p.uses_protisa());
/// assert_eq!(p.name(), "Protean-Delay");
/// ```
#[derive(Clone, Debug)]
pub struct ProtDelayPolicy {
    xmit: TransmitterSet,
    selective_wakeup: bool,
}

impl ProtDelayPolicy {
    /// The paper's ProtDelay.
    pub fn new() -> ProtDelayPolicy {
        ProtDelayPolicy {
            xmit: TransmitterSet::paper(),
            selective_wakeup: true,
        }
    }

    /// Raw AccessDelay under ProtISA (selective wakeup disabled) — the
    /// §IX-A4 ablation.
    pub fn raw_access_delay() -> ProtDelayPolicy {
        ProtDelayPolicy {
            xmit: TransmitterSet::paper(),
            selective_wakeup: false,
        }
    }
}

impl Default for ProtDelayPolicy {
    fn default() -> ProtDelayPolicy {
        ProtDelayPolicy::new()
    }
}

impl DefensePolicy for ProtDelayPolicy {
    fn name(&self) -> String {
        if self.selective_wakeup {
            "Protean-Delay".into()
        } else {
            "AccessDelay/ProtISA".into()
        }
    }

    fn transmitters(&self) -> TransmitterSet {
        self.xmit
    }

    fn uses_protisa(&self) -> bool {
        true
    }

    fn on_rename(&mut self, u: &mut DynInst, tags: &mut RegTags) {
        protean_sim::propagate_tags(u, tags);
        // Register-side access detection at rename: an instruction with a
        // protected register input is an access. Unprefixed (or, in the
        // raw ablation, any) accesses delay their dependents.
        if u.src_prot && (!u.prot_out || !self.selective_wakeup) {
            u.delay_wakeup_nonspec = true;
        }
    }

    fn on_load_data(&mut self, u: &mut DynInst, _tags: &mut RegTags, _l1d: &Cache) {
        // Memory-side access detection at execute: the load read
        // protected bytes (L1D prot bits / LSQ prot bit on forward).
        if u.mem_prot == Some(true) && (!u.prot_out || !self.selective_wakeup) {
            u.delay_wakeup_nonspec = true;
        }
    }

    fn may_execute(&self, u: &DynInst, tags: &RegTags, fr: &SpecFrontier) -> bool {
        if u.inst.is_branch() {
            return true;
        }
        if !self.xmit.is_transmitter(&u.inst) {
            return true;
        }
        // Access transmitters may not transmit speculatively.
        fr.is_non_speculative(u.seq) || !is_access_transmitter(u, &self.xmit, tags)
    }

    fn may_wakeup(&self, u: &DynInst, _tags: &RegTags, fr: &SpecFrontier) -> bool {
        !u.delay_wakeup_nonspec || fr.is_non_speculative(u.seq)
    }

    fn may_resolve(&self, u: &DynInst, tags: &RegTags, fr: &SpecFrontier) -> bool {
        if fr.is_non_speculative(u.seq) {
            return true;
        }
        // A branch whose predicate/target is protected is an access
        // transmitter: its squash signal may not fire speculatively.
        if is_access_transmitter(u, &self.xmit, tags) {
            return false;
        }
        // `ret` transmits its loaded target: protected bytes must not
        // resolve it.
        u.mem_prot != Some(true)
    }

    fn block_rule(
        &self,
        u: &DynInst,
        point: BlockPoint,
        tags: &RegTags,
        _fr: &SpecFrontier,
    ) -> &'static str {
        match point {
            BlockPoint::Execute => "access-transmitter-delay",
            BlockPoint::Wakeup => {
                if u.mem_prot == Some(true) {
                    "protected-mem-access-wakeup"
                } else {
                    "protected-reg-access-wakeup"
                }
            }
            BlockPoint::Resolve => {
                if is_access_transmitter(u, &self.xmit, tags) {
                    "protected-branch-resolve"
                } else {
                    "protected-ret-target-resolve"
                }
            }
        }
    }
}
