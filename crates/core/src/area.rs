//! Hardware-cost model for ProtISA's protection-bit storage
//! (paper §IV-C2a).
//!
//! The paper sizes the L1D protection-bit array with Cacti 7 at 22 nm:
//! 6 KiB of bits for a 48 KiB P-core L1D at 0.0418 mm², and 4 KiB for a
//! 32 KiB E-core L1D at 0.0292 mm² — about 1.4 % of each L1D's area.
//! This module reproduces those numbers from a per-bit area constant
//! derived from the same data.

/// SRAM area per protection bit at 22 nm, derived from the paper's
/// Cacti-reported 0.0418 mm² for 48 Ki bits (P-core array).
pub const AREA_PER_BIT_MM2: f64 = 0.0418 / (48.0 * 1024.0);

/// Reference L1D area of the P-core (mm², from the paper).
pub const P_CORE_L1D_AREA_MM2: f64 = 3.0560;

/// Reference L1D area of the E-core (mm², from the paper).
pub const E_CORE_L1D_AREA_MM2: f64 = 2.1527;

/// Protection-bit storage for an L1D of `l1d_bytes` (one bit per byte),
/// in bytes — 6 KiB for the P-core, 4 KiB for the E-core.
pub fn prot_bits_bytes(l1d_bytes: usize) -> usize {
    l1d_bytes / 8
}

/// Estimated area of the protection-bit array, in mm².
pub fn prot_bit_array_area_mm2(l1d_bytes: usize) -> f64 {
    l1d_bytes as f64 * AREA_PER_BIT_MM2
}

/// Area overhead of the protection bits relative to the given L1D area.
pub fn prot_bit_area_overhead(l1d_bytes: usize, l1d_area_mm2: f64) -> f64 {
    prot_bit_array_area_mm2(l1d_bytes) / l1d_area_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_storage_numbers() {
        assert_eq!(prot_bits_bytes(48 * 1024), 6 * 1024); // P-core
        assert_eq!(prot_bits_bytes(32 * 1024), 4 * 1024); // E-core
    }

    #[test]
    fn paper_area_numbers() {
        let p = prot_bit_array_area_mm2(48 * 1024);
        assert!((p - 0.0418).abs() < 1e-4, "P-core array: {p}");
        let e = prot_bit_array_area_mm2(32 * 1024);
        // The paper reports 0.0292 mm² for the E-core; a linear per-bit
        // model lands within a few percent.
        assert!((e - 0.0292).abs() / 0.0292 < 0.05, "E-core array: {e}");
    }

    #[test]
    fn overhead_about_1_4_percent() {
        let p = prot_bit_area_overhead(48 * 1024, P_CORE_L1D_AREA_MM2);
        assert!((0.012..0.016).contains(&p), "P-core overhead: {p}");
        let e = prot_bit_area_overhead(32 * 1024, E_CORE_L1D_AREA_MM2);
        assert!((0.012..0.016).contains(&e), "E-core overhead: {e}");
    }
}
