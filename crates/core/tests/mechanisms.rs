//! Mechanism-specific behaviour of ProtDelay and ProtTrack (paper §VI-B):
//! the optimizations that distinguish them from raw AccessDelay /
//! AccessTrack, and the secure fallbacks.

use protean_arch::ArchState;
use protean_core::{ProtDelayPolicy, ProtTrackPolicy};
use protean_isa::{assemble, Program};
use protean_sim::{Core, CoreConfig, DefensePolicy, SimExit, SimResult};

fn run(program: &Program, policy: Box<dyn DefensePolicy>) -> SimResult {
    let mut init = ArchState::new();
    for i in 0..512u64 {
        init.mem.write(0x10000 + i * 8, 8, i % 97);
    }
    let mut core = Core::new(program, CoreConfig::p_core(), policy, &init);
    core.record_traces(true);
    let r = core.run(1_000_000, 60_000_000);
    assert_eq!(r.exit, SimExit::Halted);
    r
}

/// §VI-B1: ProtDelay only delays dependents of *unprefixed* accesses —
/// dependents of a `PROT`-prefixed access may compute speculatively
/// (they are accesses themselves and will be delayed where it matters).
/// Independent per-iteration `PROT` arithmetic chains over streamed
/// protected data overlap under ProtDelay but serialize at the commit
/// frontier under raw AccessDelay.
#[test]
fn selective_wakeup_speeds_up_protected_chains() {
    let program = assemble(
        r#"
          mov r3, 0
        loop:
          and r4, r3, 0x1f8
          prot load r1, [0x40000 + r4*1] ; L1-resident *protected* data
          prot mul r2, r1, 3             ; independent PROT chain
          prot add r2, r2, 7
          prot rol r2, r2, 5
          prot xor r2, r2, r1
          prot mul r2, r2, 9
          prot add r2, r2, 1
          prot store [0x90000 + r4*8], r2
          add r3, r3, 1
          cmp r3, 1500
          jlt loop
          halt
        "#,
    )
    .unwrap();
    let delay = run(&program, Box::new(ProtDelayPolicy::new())).stats.cycles;
    let raw = run(&program, Box::new(ProtDelayPolicy::raw_access_delay()))
        .stats
        .cycles;
    assert!(
        raw as f64 > delay as f64 * 1.15,
        "raw AccessDelay should serialize PROT chains: delay={delay}, raw={raw}"
    );
}

/// §VI-B2: ProtTrack's access predictor lets loads of unprotected memory
/// run untainted; raw AccessTrack taints every load, serializing the
/// load->load chains below.
#[test]
fn access_predictor_avoids_taint_serialization() {
    let program = assemble(
        r#"
          mov r3, 0
          ; warm the table so it is architecturally unprotected
        warm:
          shl r4, r3, 3
          and r4, r4, 0xff8
          load r1, [0x10000 + r4*1]
          add r3, r3, 1
          cmp r3, 512
          jlt warm
          mov r3, 0
        loop:
          and r4, r3, 0xff8
          load r1, [0x10000 + r4*1]    ; unprotected after warmup
          and r1, r1, 0xff8
          load r2, [0x10000 + r1*1]    ; dependent load
          add r5, r5, r2
          add r3, r3, 8
          cmp r3, 24000
          jlt loop
          halt
        "#,
    )
    .unwrap();
    let track = run(&program, Box::new(ProtTrackPolicy::new())).stats.cycles;
    let raw = run(&program, Box::new(ProtTrackPolicy::raw_access_track()))
        .stats
        .cycles;
    assert!(
        raw as f64 > track as f64 * 1.3,
        "raw AccessTrack should serialize warmed load-load chains: track={track}, raw={raw}"
    );
}

/// The predictor's misprediction rate on a stable workload must be tiny
/// (the Fig. 5 premise), and its statistics must be exposed.
#[test]
fn predictor_stats_reported_and_low_on_stable_code() {
    let program = assemble(
        r#"
          mov r3, 0
        loop:
          and r4, r3, 0xff8
          load r1, [0x10000 + r4*1]
          add r5, r5, r1
          add r3, r3, 8
          cmp r3, 32000
          jlt loop
          halt
        "#,
    )
    .unwrap();
    let r = run(&program, Box::new(ProtTrackPolicy::new()));
    let rate = r
        .stats
        .policy
        .iter()
        .find(|(k, _)| k == "access_pred_mispred_rate")
        .map(|(_, v)| *v)
        .expect("ProtTrack reports its misprediction rate");
    assert!(
        rate < 0.05,
        "stable single-PC load should predict well, got {rate}"
    );
}

/// Both mechanisms must produce identical architectural results to each
/// other and to the sequential emulator on a branchy protected kernel.
#[test]
fn mechanisms_agree_architecturally() {
    let program = assemble(
        r#"
          mov r3, 0
          prot load r1, [0x10000]
        loop:
          prot and r4, r1, 1
          prot cmp r4, 1
          prot rol r1, r1, 3
          prot xor r1, r1, r3
          add r3, r3, 1
          cmp r3, 500
          jlt loop
          prot store [0x10100], r1
          halt
        "#,
    )
    .unwrap();
    let a = run(&program, Box::new(ProtDelayPolicy::new()));
    let b = run(&program, Box::new(ProtTrackPolicy::new()));
    assert_eq!(a.final_regs, b.final_regs);
    assert_eq!(a.committed_idxs, b.committed_idxs);
}

/// The same liveness invariant the baselines satisfy (see
/// `protean-baselines/tests/no_deadlock_invariant.rs`): a non-speculative
/// µop is never blocked by ProtDelay or ProtTrack, however protected or
/// tainted.
#[test]
fn protean_policies_never_block_at_the_head() {
    use protean_isa::{Inst, Mem, Op, Reg, Width};
    use protean_sim::{MemState, RegTags, SpecFrontier, SpeculationModel, UopStatus};
    let seq = 10;
    let u = protean_sim::DynInst {
        seq,
        idx: 3,
        pc: 0x40000c,
        inst: Inst::prot(Op::Load {
            dst: Reg::R1,
            addr: Mem::base(Reg::R0),
            size: Width::W64,
        }),
        srcs: [(Reg::R0, 17)].into_iter().collect(),
        dsts: Default::default(),
        status: UopStatus::Done,
        mem: Some(MemState {
            addr: Some(0x1000),
            size: 8,
            is_store: false,
            value: 0,
            data_ready: true,
            data_prot: true,
            data_yrot: seq - 1,
            data_taint: true,
            fwd_from: Some(seq - 1),
            fwd_data_yrot: seq - 1,
            fwd_data_taint: true,
        }),
        pred_next: Some(4),
        pred_taken: false,
        actual_next: Some(Some(9)),
        actual_taken: true,
        mispredicted: true,
        resolved: false,
        wakeup_done: false,
        hist_snapshot: 0,
        rsb_snapshot: [].into(),
        prot_out: true,
        src_prot: true,
        sens_prot: true,
        mem_prot: Some(true),
        in_taint: true,
        in_yrot: seq - 1,
        delay_wakeup_nonspec: true,
        wakeup_hold_root: seq - 1,
        pred_no_access: Some(true),
        div_fault: false,
        addr_regs: protean_isa::RegSet::from_regs([Reg::R0]),
        data_reg: None,
        fetch_cycle: 0,
        rename_cycle: 0,
        issue_cycle: 0,
        complete_cycle: 0,
    };
    let mut tags = RegTags::new(64, 32);
    tags.taint[17] = true;
    tags.yrot[17] = seq - 1;
    tags.prot[17] = true;
    for model in [SpeculationModel::AtCommit, SpeculationModel::Control] {
        let fr = SpecFrontier {
            head_seq: seq,
            oldest_unresolved_branch: seq,
            model,
        };
        let policies: Vec<Box<dyn DefensePolicy>> = vec![
            Box::new(ProtDelayPolicy::new()),
            Box::new(ProtDelayPolicy::raw_access_delay()),
            Box::new(ProtTrackPolicy::new()),
            Box::new(ProtTrackPolicy::raw_access_track()),
        ];
        for policy in policies {
            let name = policy.name();
            assert!(policy.may_execute(&u, &tags, &fr), "{name} ({model:?})");
            assert!(policy.may_wakeup(&u, &tags, &fr), "{name} ({model:?})");
            assert!(policy.may_resolve(&u, &tags, &fr), "{name} ({model:?})");
        }
    }
}
