//! Defense-decision audit integration with the real Protean policies:
//! the per-gate blocked-cycle totals in the pipeline trace must
//! reconcile exactly with `Stats`, and the audit rules must be the ones
//! the policies advertise.

use protean_arch::ArchState;
use protean_core::{ProtDelayPolicy, ProtTrackPolicy};
use protean_isa::{assemble, Program};
use protean_sim::{BlockPoint, Core, CoreConfig, DefensePolicy, SimExit, SimResult};

/// Protected loads feeding dependent protected loads and data-dependent
/// branches: exercises the execute, wakeup, and resolve gates of both
/// mechanisms.
fn workload() -> (Program, ArchState) {
    let prog = assemble(
        r#"
          mov r3, 0
          mov r7, 0
        loop:
          and r4, r3, 0xf8
          prot load r1, [0x40000 + r4*1]
          and r5, r1, 0xf8
          prot load r2, [0x40000 + r5*1]  ; address depends on protected data
          and r6, r2, 1
          cmp r6, 0
          jeq skip
          add r7, r7, r2
        skip:
          add r3, r3, 1
          cmp r3, 300
          jlt loop
          halt
        "#,
    )
    .unwrap();
    let mut init = ArchState::new();
    for i in 0..64u64 {
        init.mem
            .write(0x40000 + i * 8, 8, (i * 0x9e37).rotate_left(11) & 0xff);
    }
    (prog, init)
}

fn run(policy: Box<dyn DefensePolicy>, trace: bool) -> SimResult {
    let (prog, init) = workload();
    let mut cfg = CoreConfig::p_core();
    cfg.trace = trace;
    let core = Core::new(&prog, cfg, policy, &init);
    let r = core.run(100_000, 6_000_000);
    assert_eq!(r.exit, SimExit::Halted);
    r
}

fn reconcile(policy: Box<dyn DefensePolicy>, allowed_rules: &[&str]) {
    let name = policy.name();
    let r = run(policy, true);
    let trace = r.trace.expect("traced run");
    assert_eq!(trace.policy, name);
    let totals = trace.blocked_totals();
    assert!(
        totals.iter().sum::<u64>() > 0,
        "{name} must block on this workload"
    );
    assert_eq!(totals[0], r.stats.exec_blocked_cycles, "{name}: execute");
    assert_eq!(totals[1], r.stats.wakeup_blocked_cycles, "{name}: wakeup");
    assert_eq!(totals[2], r.stats.resolve_blocked_cycles, "{name}: resolve");
    for (point, rule, cycles) in trace.blocked_by_rule() {
        assert!(cycles > 0);
        assert!(
            allowed_rules.contains(&rule),
            "{name} blocked at {point:?} under unadvertised rule {rule:?}"
        );
        assert_ne!(rule, "blocked", "{name} must name its {point:?} rules");
    }
}

#[test]
fn protdelay_audit_reconciles_with_stats() {
    reconcile(
        Box::new(ProtDelayPolicy::new()),
        &[
            "access-transmitter-delay",
            "protected-mem-access-wakeup",
            "protected-reg-access-wakeup",
            "protected-branch-resolve",
            "protected-ret-target-resolve",
        ],
    );
}

#[test]
fn prottrack_audit_reconciles_with_stats() {
    reconcile(
        Box::new(ProtTrackPolicy::new()),
        &[
            "tainted-transmitter-delay",
            "access-transmitter-delay",
            "protdelay-fallback-wakeup",
            "tainted-forward-wakeup",
            "tainted-branch-resolve",
            "protected-branch-resolve",
            "ret-target-resolve",
        ],
    );
}

#[test]
fn tracing_does_not_change_policy_timing() {
    for policy in [
        Box::new(ProtDelayPolicy::new()) as Box<dyn DefensePolicy>,
        Box::new(ProtTrackPolicy::new()),
    ] {
        let name = policy.name();
        let plain = run(dyn_clone(&name), false);
        let traced = run(policy, true);
        assert_eq!(plain.stats.cycles, traced.stats.cycles, "{name}");
        assert_eq!(plain.final_regs, traced.final_regs, "{name}");
        assert_eq!(
            plain.stats.exec_blocked_cycles, traced.stats.exec_blocked_cycles,
            "{name}"
        );
    }
}

/// Fresh policy instance by name (policies carry mutable predictor
/// state, so each run needs its own).
fn dyn_clone(name: &str) -> Box<dyn DefensePolicy> {
    match name {
        "Protean-Delay" => Box::new(ProtDelayPolicy::new()),
        "Protean-Track" => Box::new(ProtTrackPolicy::new()),
        other => panic!("unknown policy {other}"),
    }
}

#[test]
fn audit_records_point_at_real_uops() {
    let r = run(Box::new(ProtDelayPolicy::new()), true);
    let trace = r.trace.expect("traced run");
    let audit = trace.audit();
    assert!(!audit.is_empty());
    for rec in &audit {
        assert!(rec.seq >= 1);
        assert!(!rec.disasm.is_empty());
        assert!(rec.cycles > 0);
        assert!(matches!(
            rec.point,
            BlockPoint::Execute | BlockPoint::Wakeup | BlockPoint::Resolve
        ));
    }
}
