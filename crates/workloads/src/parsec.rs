//! PARSEC-like multi-threaded kernels (paper §VIII-B1): data-parallel
//! compute phases on disjoint per-thread regions sharing a read-mostly
//! input through the L3.
//!
//! `blackscholes.p` is the key kernel: its per-element work is a call
//! into a leaf function that spills and reloads locals at fixed stack
//! offsets (`[rsp + k]`, `ret`) — the access pattern behind SPT-SB's
//! 3.4× slowdown that ProtCC-UNR avoids by unprotecting the stack
//! pointer (§IX-A1).

use crate::{Scale, Suite, Workload};
use protean_arch::ArchState;
use protean_isa::{Cond, Mem, Program, ProgramBuilder, Reg, SecurityClass};
use protean_rng::Rng;

/// Threads per workload (the paper runs 8P+8E; four keeps simulation
/// time reasonable while exercising L3 sharing).
pub const THREADS: usize = 4;

const IN_BASE: u64 = 0x20_0000; // shared read-mostly input
const OUT_BASE: u64 = 0x60_0000; // per-thread output (disjoint)
const STACK0: u64 = 0xf_0000; // per-thread stacks (disjoint)

/// All PARSEC-like workloads.
pub fn parsec(scale: Scale) -> Vec<Workload> {
    vec![
        blackscholes(scale),
        canneal(scale),
        swaptions(scale),
        fluidanimate(scale),
        dedup(scale),
        ferret(scale),
    ]
}

fn multi(name: &str, make: impl Fn(usize) -> (Program, ArchState), budget_hint: u64) -> Workload {
    let threads: Vec<(Program, ArchState)> = (0..THREADS).map(make).collect();
    let mut max_insts = 0;
    for (p, init) in &threads {
        p.validate().expect("parsec kernel is well-formed");
        max_insts = max_insts.max(crate::measure_thread(name, p, init, budget_hint));
    }
    Workload {
        name: name.into(),
        suite: Suite::Parsec,
        class: SecurityClass::Arch,
        threads,
        max_insts,
    }
}

/// Warm-up sweep over the shared input (see `wasm::emit_warmup`).
fn emit_warmup(b: &mut ProgramBuilder, bytes: u64) {
    b.mov_imm(Reg::R12, 0);
    let top = b.here("warm");
    b.load(Reg::R13, Mem::abs(IN_BASE).with_index(Reg::R12, 1));
    b.add(Reg::R12, Reg::R12, 8);
    b.cmp(Reg::R12, bytes);
    b.jcc(Cond::Ult, top);
}

fn thread_state(tid: usize, seed: u64, shared_words: u64) -> ArchState {
    let mut s = ArchState::new();
    s.set_reg(Reg::RSP, STACK0 + tid as u64 * 0x1_0000);
    let mut rng = Rng::seed_from_u64(seed);
    for k in 0..shared_words {
        s.mem.write(IN_BASE + k * 8, 8, rng.gen_range(1..10_000));
    }
    s
}

/// `blackscholes.p`: per-option pricing via a leaf call that keeps its
/// locals on the stack.
fn blackscholes(scale: Scale) -> Workload {
    let options = 500 * scale.0;
    let make = |tid: usize| {
        let mut b = ProgramBuilder::new();
        emit_warmup(&mut b, 0x3000);
        let (i, s, k, t, price) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        let out = OUT_BASE + tid as u64 * 0x10000;
        let price_fn = b.label("price_one");
        let top_l = b.label("top");
        b.mov_imm(i, 0);
        b.bind(top_l);
        // Load the option's parameters from the shared input.
        b.and(Reg::R13, i, 0x7f8);
        b.load(s, Mem::abs(IN_BASE).with_index(Reg::R13, 1));
        b.load(k, Mem::abs(IN_BASE + 0x1000).with_index(Reg::R13, 1));
        b.load(t, Mem::abs(IN_BASE + 0x2000).with_index(Reg::R13, 1));
        b.call(price_fn);
        b.shl(Reg::R13, i, 3);
        b.and(Reg::R13, Reg::R13, 0xfff8);
        b.store(Mem::abs(out).with_index(Reg::R13, 1), price);
        b.add(i, i, 1);
        b.cmp(i, options);
        b.jcc(Cond::Ult, top_l);
        b.halt();
        // --- price_one: spills everything to fixed stack offsets ------
        b.bind(price_fn);
        b.sub(Reg::RSP, Reg::RSP, 64);
        b.store(Mem::base(Reg::RSP), s);
        b.store(Mem::base(Reg::RSP).with_disp(8), k);
        b.store(Mem::base(Reg::RSP).with_disp(16), t);
        // Fixed-point-ish Black-Scholes-shaped arithmetic with repeated
        // reloads of the spilled locals.
        for round in 0..4i64 {
            b.load(Reg::R5, Mem::base(Reg::RSP));
            b.load(Reg::R6, Mem::base(Reg::RSP).with_disp(8));
            b.mul(Reg::R5, Reg::R5, 47);
            b.add(Reg::R5, Reg::R5, Reg::R6);
            b.shr(Reg::R5, Reg::R5, 3);
            b.load(Reg::R7, Mem::base(Reg::RSP).with_disp(16));
            b.xor(Reg::R5, Reg::R5, Reg::R7);
            b.store(Mem::base(Reg::RSP).with_disp(24 + round * 8), Reg::R5);
        }
        b.load(price, Mem::base(Reg::RSP).with_disp(24));
        b.load(Reg::R5, Mem::base(Reg::RSP).with_disp(48));
        b.add(price, price, Reg::R5);
        b.add(Reg::RSP, Reg::RSP, 64);
        b.ret();
        let prog = b.build().expect("blackscholes builds");
        (prog, thread_state(tid, 21, 0x600))
    };
    multi("blackscholes.p", make, 40_000 * scale.0)
}

/// `canneal.p`: pointer chasing over a shared net-list with per-thread
/// cost accumulation.
fn canneal(scale: Scale) -> Workload {
    let nodes: u64 = 8 * 1024;
    let hops = 6_000 * scale.0;
    let make = move |tid: usize| {
        let mut b = ProgramBuilder::new();
        emit_warmup(&mut b, 0x20000);
        let (p, v, acc, i) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3);
        let out = OUT_BASE + tid as u64 * 0x10000;
        b.mov_imm(p, IN_BASE + (tid as u64 * 1024) % (nodes * 16));
        b.mov_imm(i, 0);
        let top = b.here("top");
        b.load(v, Mem::base(p).with_disp(8));
        b.add(acc, acc, v);
        b.load(p, Mem::base(p));
        b.add(i, i, 1);
        b.cmp(i, hops);
        b.jcc(Cond::Ult, top);
        b.store(Mem::abs(out), acc);
        b.halt();
        let prog = b.build().expect("canneal builds");
        // Build the shared permutation ring once per thread state (same
        // seed: identical shared input).
        let mut s = ArchState::new();
        s.set_reg(Reg::RSP, STACK0 + tid as u64 * 0x1_0000);
        let mut rng = Rng::seed_from_u64(22);
        let mut order: Vec<u64> = (1..nodes).collect();
        for k in (1..order.len()).rev() {
            order.swap(k, rng.gen_range(0..=k));
        }
        let mut cur = 0u64;
        for &nxt in &order {
            s.mem.write(IN_BASE + cur * 16, 8, IN_BASE + nxt * 16);
            s.mem
                .write(IN_BASE + cur * 16 + 8, 8, rng.gen_range(0..100));
            cur = nxt;
        }
        s.mem.write(IN_BASE + cur * 16, 8, IN_BASE);
        s.mem.write(IN_BASE + cur * 16 + 8, 8, 1);
        (prog, s)
    };
    multi("canneal.p", make, 40_000 * scale.0)
}

/// `swaptions.p`: Monte-Carlo simulation — LCG streams plus arithmetic
/// reduction, barely memory-bound.
fn swaptions(scale: Scale) -> Workload {
    let paths = 8_000 * scale.0;
    let make = move |tid: usize| {
        let mut b = ProgramBuilder::new();
        emit_warmup(&mut b, 0x80);
        let (x, i, acc, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3);
        let out = OUT_BASE + tid as u64 * 0x10000;
        // Per-thread RNG state loaded from the shared input.
        b.load(x, Mem::abs(IN_BASE + 8 * (tid as u64 % 8)));
        b.add(x, x, 7919 + tid as u64);
        b.mov_imm(i, 0);
        let top = b.here("top");
        b.mul(x, x, 6364136223846793005);
        b.add(x, x, 1442695040888963407);
        b.shr(t, x, 41);
        b.add(acc, acc, t);
        b.rol(acc, acc, 5);
        b.add(i, i, 1);
        b.cmp(i, paths);
        b.jcc(Cond::Ult, top);
        b.store(Mem::abs(out), acc);
        b.halt();
        (
            b.build().expect("swaptions builds"),
            thread_state(tid, 23, 16),
        )
    };
    multi("swaptions.p", make, 70_000 * scale.0)
}

/// `fluidanimate.p`: grid stencil — each cell reads its neighbours from
/// the shared grid and writes a private next-state grid.
fn fluidanimate(scale: Scale) -> Workload {
    let cells = 4_000 * scale.0;
    let make = move |tid: usize| {
        let mut b = ProgramBuilder::new();
        emit_warmup(&mut b, 0x4800);
        let (i, a, l, r, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        let out = OUT_BASE + tid as u64 * 0x20000;
        b.mov_imm(i, 0);
        let top = b.here("top");
        b.shl(t, i, 3);
        b.and(t, t, 0xfff8);
        b.load(a, Mem::abs(IN_BASE).with_index(t, 1));
        b.load(l, Mem::abs(IN_BASE + 8).with_index(t, 1));
        b.load(r, Mem::abs(IN_BASE + 16).with_index(t, 1));
        b.add(a, a, l);
        b.add(a, a, r);
        b.mul(a, a, 21845);
        b.shr(a, a, 16);
        b.store(Mem::abs(out).with_index(t, 1), a);
        b.add(i, i, 1);
        b.cmp(i, cells);
        b.jcc(Cond::Ult, top);
        b.halt();
        (
            b.build().expect("fluidanimate builds"),
            thread_state(tid, 24, 0x900),
        )
    };
    multi("fluidanimate.p", make, 50_000 * scale.0)
}

/// `dedup.p`: rolling-hash chunking plus a hash-table membership check.
fn dedup(scale: Scale) -> Workload {
    let bytes = 20_000 * scale.0;
    let make = move |tid: usize| {
        let mut b = ProgramBuilder::new();
        emit_warmup(&mut b, 0x10000);
        let (i, h, c, t, acc) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        let out = OUT_BASE + tid as u64 * 0x10000;
        b.mov_imm(i, 0);
        b.mov_imm(h, 0);
        let top = b.here("top");
        let boundary = b.label("boundary");
        let cont = b.label("cont");
        b.and(t, i, 0x3fff);
        b.load_sized(
            c,
            Mem::abs(IN_BASE).with_index(t, 1),
            protean_isa::Width::W8,
        );
        b.mul(h, h, 31);
        b.add(h, h, c);
        b.and(t, h, 0xfff);
        b.cmp(t, 64); // chunk boundary ~ every 64 bytes
        b.jcc(Cond::Ult, boundary);
        b.jmp(cont);
        b.bind(boundary);
        b.and(t, h, 0x7ff8);
        b.load(c, Mem::abs(IN_BASE + 0x8000).with_index(t, 1)); // dedup table
        b.add(acc, acc, c);
        b.bind(cont);
        b.add(i, i, 1);
        b.cmp(i, bytes);
        b.jcc(Cond::Ult, top);
        b.store(Mem::abs(out), acc);
        b.halt();
        (
            b.build().expect("dedup builds"),
            thread_state(tid, 25, 0x2000),
        )
    };
    multi("dedup.p", make, 170_000 * scale.0)
}

/// `ferret.p`: similarity search — per query, distance computations
/// against candidate feature vectors selected through an index table
/// (load->load), followed by a top-k compare chain.
fn ferret(scale: Scale) -> Workload {
    let queries = 900 * scale.0;
    let make = move |tid: usize| {
        let mut b = ProgramBuilder::new();
        emit_warmup(&mut b, 0x6000);
        let (q, cand, dist, best, t, f) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        let out = OUT_BASE + tid as u64 * 0x10000;
        b.mov_imm(q, 0);
        let top = b.here("query");
        b.mov_imm(best, 0xffffff);
        for probe in 0..2u64 {
            // Candidate id from the index (load), then its features
            // (dependent loads).
            b.mul(t, q, 37 + probe);
            b.and(t, t, 0x7f8);
            b.load(cand, Mem::abs(IN_BASE + 0x4000).with_index(t, 1));
            b.and(cand, cand, 0x1ff8);
            b.mov_imm(dist, 0);
            for k in 0..3i64 {
                b.load(f, Mem::abs(IN_BASE).with_disp(k * 8).with_index(cand, 1));
                b.xor(f, f, q);
                b.and(f, f, 0xffff);
                b.add(dist, dist, f);
            }
            let worse = b.label("worse");
            b.cmp(dist, best);
            b.jcc(Cond::Uge, worse);
            b.mov(best, dist);
            b.bind(worse);
        }
        b.shl(t, q, 3);
        b.and(t, t, 0xfff8);
        b.store(Mem::abs(out).with_index(t, 1), best);
        b.add(q, q, 1);
        b.cmp(q, queries);
        b.jcc(Cond::Ult, top);
        b.halt();
        let mut s = thread_state(tid, 26, 0xc00);
        // The candidate index table.
        let mut rng = Rng::seed_from_u64(27);
        for k in 0..0x100u64 {
            s.mem
                .write(IN_BASE + 0x4000 + k * 8, 8, rng.gen_range(0..0x400u64) * 8);
        }
        (b.build().expect("ferret builds"), s)
    };
    multi("ferret.p", make, 60_000 * scale.0)
}
