//! ARCH-Wasm: SPEC2006-like kernels "compiled to WebAssembly"
//! (paper §VIII-B2).
//!
//! Wasm sandboxing turns every memory access into a masked offset into
//! linear memory, and indirections become *two dependent loads* (fetch
//! the pointer from linear memory, mask it, dereference it). STT taints
//! every load's output until retirement, so these load→load chains
//! serialize completely under STT — the 2.5× average (3.7× on `milc`)
//! that Protean avoids because its protection-tagged L1D knows the
//! accessed memory is unprotected (§IX-B1: only ~10 % of the hot
//! dependencies touch protected data).

use crate::{Scale, Suite, Workload};
use protean_arch::ArchState;
use protean_isa::{Cond, Mem, ProgramBuilder, Reg, SecurityClass, Width};
use protean_rng::Rng;

/// Linear-memory base (the sandbox).
const LINMEM: u64 = 0x40_0000;
/// Linear-memory size mask (1 MiB sandbox).
const MASK: u64 = 0xf_fff8;
const STACK_TOP: u64 = 0x20_0000;

/// All ARCH-Wasm workloads (the paper's SPEC2006 subset).
pub fn arch_wasm(scale: Scale) -> Vec<Workload> {
    vec![
        bzip2(scale),
        mcf(scale),
        milc(scale),
        namd(scale),
        libquantum(scale),
        lbm(scale),
    ]
}

fn workload(name: &str, b: ProgramBuilder, init: ArchState, max_insts: u64) -> Workload {
    Workload::single(
        name,
        Suite::ArchWasm,
        SecurityClass::Arch,
        b.build().expect("wasm kernel builds"),
        init,
        max_insts,
    )
}

fn state(seed: u64, words: u64) -> ArchState {
    let mut s = ArchState::new();
    s.set_reg(Reg::RSP, STACK_TOP);
    let mut rng = Rng::seed_from_u64(seed);
    for k in 0..words {
        s.mem.write(LINMEM + k * 8, 8, rng.gen_range(0..0x8000));
    }
    s
}

/// Emits a warm-up sweep: unprefixed loads over `[LINMEM, LINMEM+bytes)`
/// at 8-byte stride. ARCH binaries carry no `PROT` prefixes, so these
/// loads architecturally unprotect the working set — standing in for the
/// paper's 10 M-instruction warm-up before each simpoint (§VIII-A3).
fn emit_warmup(b: &mut ProgramBuilder, bytes: u64) {
    b.mov_imm(Reg::R12, 0);
    let top = b.here("warm");
    b.load(Reg::R13, Mem::abs(LINMEM).with_index(Reg::R12, 1));
    b.add(Reg::R12, Reg::R12, 8);
    b.cmp(Reg::R12, bytes);
    b.jcc(Cond::Ult, top);
}

/// Emits a sandboxed load: `dst = linmem[(addr_reg) & MASK]`.
fn sandboxed_load(b: &mut ProgramBuilder, dst: Reg, addr: Reg) {
    b.and(Reg::R13, addr, MASK);
    b.load(dst, Mem::abs(LINMEM).with_index(Reg::R13, 1));
}

/// Emits a sandboxed store.
fn sandboxed_store(b: &mut ProgramBuilder, addr: Reg, src: Reg) {
    b.and(Reg::R13, addr, MASK);
    b.store(Mem::abs(LINMEM).with_index(Reg::R13, 1), src);
}

/// `bzip2`: byte-granular run-length/move-to-front-style transformation.
fn bzip2(scale: Scale) -> Workload {
    let n = 18_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, 0x4200);
    let (i, c, prev, run, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(i, 0);
    let top = b.here("top");
    let same = b.label("same");
    let cont = b.label("cont");
    b.and(t, i, 0x3fff); // 16 KiB window, revisited
    b.load_sized(c, Mem::abs(LINMEM).with_index(t, 1), Width::W8);
    b.cmp(c, prev);
    b.jcc(Cond::Eq, same);
    b.mov_imm(run, 0);
    b.mov(prev, c);
    b.jmp(cont);
    b.bind(same);
    b.add(run, run, 1);
    b.bind(cont);
    // Move-to-front: deref a table entry selected by the *loaded* byte —
    // the `mov ptr,[mem]; mov data,[ptr]` chain STT serializes (§IX-B1).
    b.shl(t, c, 3);
    b.add(t, t, 0x2000);
    sandboxed_load(&mut b, Reg::R5, t);
    b.add(run, run, Reg::R5);
    b.add(t, c, run);
    sandboxed_store(&mut b, t, run);
    b.add(i, i, 1);
    b.cmp(i, n);
    b.jcc(Cond::Ult, top);
    b.halt();
    workload("bzip2", b, state(31, 0x4000), 100_000 * scale.0)
}

/// `mcf`: sandboxed pointer chasing — fetch "pointer", mask, deref.
fn mcf(scale: Scale) -> Workload {
    let hops = 16_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, 0x4000);
    let (p, v, acc, i) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3);
    b.mov_imm(p, 0);
    b.mov_imm(i, 0);
    let top = b.here("top");
    sandboxed_load(&mut b, v, p); // next "pointer" (an offset)
                                  // Arc-data lookups off the chased pointer: independent of the chase,
                                  // so the unsafe core overlaps them across hops; STT delays them until
                                  // the pointer load retires.
    b.add(Reg::R4, v, 0x4000);
    sandboxed_load(&mut b, Reg::R5, Reg::R4);
    b.add(acc, acc, Reg::R5);
    b.add(Reg::R4, v, 0x8000);
    sandboxed_load(&mut b, Reg::R5, Reg::R4);
    b.xor(acc, acc, Reg::R5);
    b.mov(p, v); // dependent chain through the sandbox
    b.add(i, i, 1);
    b.cmp(i, hops);
    b.jcc(Cond::Ult, top);
    b.halt();
    // Build a permutation in offsets so the chase doesn't trivialize.
    let mut s = ArchState::new();
    s.set_reg(Reg::RSP, STACK_TOP);
    let nodes: u64 = 2 * 1024; // revisited ~4x: mostly warm after pass 1
    let mut rng = Rng::seed_from_u64(32);
    let mut order: Vec<u64> = (1..nodes).collect();
    for k in (1..order.len()).rev() {
        order.swap(k, rng.gen_range(0..=k));
    }
    let mut cur = 0u64;
    for &nxt in &order {
        s.mem.write(LINMEM + cur * 8, 8, nxt * 8);
        cur = nxt;
    }
    s.mem.write(LINMEM + cur * 8, 8, 0);
    workload("mcf", b, s, 70_000 * scale.0)
}

/// `milc`: the paper's worst case for STT — every element access is
/// `ptr = load(base + i); val = load(ptr)` (a two-level indirection
/// table, as lattice-QCD field accesses become under wasm2c).
fn milc(scale: Scale) -> Workload {
    let n = 16_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, 0x10000);
    let (i, ptr, v, acc, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(i, 0);
    let top = b.here("top");
    // Site table wraps at 2 K entries: after the first pass the table
    // and fields are warm, so only ~1/3 of accesses touch cold
    // (protected) lines — matching the paper's observation that just
    // 10 % of STT-serialized dependencies touch protected data.
    b.shl(t, i, 3);
    b.and(t, t, 0x3ff8);
    sandboxed_load(&mut b, ptr, t); // site table: ptr = T[i mod 2K]
    sandboxed_load(&mut b, v, ptr); // field value: v = *ptr
    b.mul(v, v, 3);
    b.add(acc, acc, v);
    b.add(t, ptr, 8);
    sandboxed_load(&mut b, v, t); // second field word
    b.xor(acc, acc, v);
    b.rol(acc, acc, 3);
    b.add(i, i, 1);
    b.cmp(i, n);
    b.jcc(Cond::Ult, top);
    b.halt();
    workload("milc", b, state(33, 0x8000), 90_000 * scale.0)
}

/// `namd`: force computation — mostly arithmetic on sandboxed operands.
fn namd(scale: Scale) -> Workload {
    let n = 12_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, 0x4200);
    let (i, x, y, f, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(i, 0);
    let top = b.here("top");
    b.shl(t, i, 3);
    b.and(t, t, 0x3ff8);
    sandboxed_load(&mut b, x, t); // neighbor index j = nbr[i]
    sandboxed_load(&mut b, y, x); // position pos[j]: dependent deref
    b.sub(f, x, y);
    b.mul(f, f, f);
    b.add(f, f, 1);
    b.mul(x, x, 13);
    b.add(f, f, x);
    b.shr(f, f, 4);
    b.add(t, t, 0x100);
    sandboxed_store(&mut b, t, f);
    b.add(i, i, 1);
    b.cmp(i, n);
    b.jcc(Cond::Ult, top);
    b.halt();
    workload("namd", b, state(34, 0x4000), 80_000 * scale.0)
}

/// `libquantum`: gate application — a sweep with a conditional bit-flip
/// per amplitude.
fn libquantum(scale: Scale) -> Workload {
    let n = 15_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, 0x8000);
    let (i, a, t) = (Reg::R0, Reg::R1, Reg::R3);
    b.mov_imm(i, 0);
    let top = b.here("top");
    let flip = b.label("flip");
    let cont = b.label("cont");
    b.shl(t, i, 3);
    b.and(t, t, 0x7ff8);
    sandboxed_load(&mut b, a, t); // target-qubit index
    sandboxed_load(&mut b, a, a); // amplitude word: dependent deref
    b.and(Reg::R4, a, 0x40);
    b.cmp(Reg::R4, 0);
    b.jcc(Cond::Ne, flip);
    b.jmp(cont);
    b.bind(flip);
    b.xor(a, a, 0x1000);
    b.shl(t, i, 3);
    b.and(t, t, 0x7ff8);
    sandboxed_store(&mut b, t, a);
    b.bind(cont);
    b.add(i, i, 1);
    b.cmp(i, n);
    b.jcc(Cond::Ult, top);
    b.halt();
    workload("libquantum", b, state(35, 0x8000), 90_000 * scale.0)
}

/// `lmb` (lbm): streaming stencil within the sandbox — the easy case
/// every defense handles well (Tab. V shows ~1.0 for all).
fn lbm(scale: Scale) -> Workload {
    let n = 15_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, 0x28000);
    let (i, a, c, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R4);
    b.mov_imm(i, 0);
    let top = b.here("top");
    b.shl(t, i, 3);
    b.and(t, t, 0x7ff8);
    sandboxed_load(&mut b, a, t);
    b.add(t, t, 8);
    sandboxed_load(&mut b, c, t);
    b.add(a, a, c);
    b.shr(a, a, 1);
    b.add(t, t, 0x20000);
    sandboxed_store(&mut b, t, a);
    b.add(i, i, 1);
    b.cmp(i, n);
    b.jcc(Cond::Ult, top);
    b.halt();
    workload("lmb", b, state(36, 0x4000), 80_000 * scale.0)
}
