//! The multi-class nginx HTTPS web-server model (paper Fig. 1,
//! §VIII-B3).
//!
//! The main request loop is non-secret-accessing (ARCH): it parses
//! public request bytes, looks up a handler, and copies the response.
//! Secret computation is delegated to "OpenSSL" functions of every
//! class: an RSA-style handshake (UNR: square-and-multiply on the
//! private key), a KDF and a MAC (CTS: keyed hashing), and a record
//! cipher (CT: ARX with `cmov`-based padding selection). Each function
//! carries its class label, so [`protean_cc::compile`] instruments each
//! with its own pass — exactly the per-component targeting that lets
//! Protean beat SPT-SB by 3–5× here (Tab. V).
//!
//! The request stream plays the role of `siege -c<c> -r<r>`: `c`
//! simulated clients each issuing `r` requests; a client's first request
//! triggers the (expensive, UNR) handshake, subsequent ones only the
//! record path — so the c×r grid shifts the ARCH/UNR instruction mix
//! just as it does in the paper.

use crate::{Scale, Suite, Workload};
use protean_arch::ArchState;
use protean_isa::{Cond, Mem, ProgramBuilder, Reg, SecurityClass};
use protean_rng::Rng;

const KEY_BASE: u64 = 0x5_0000; // server private key + session keys (secret)
const REQ_BASE: u64 = 0x6_0000; // request bytes (public)
const RESP_BASE: u64 = 0x7_0000; // response buffer
const STACK_TOP: u64 = 0x4_0000;

/// Builds the `nginx.c{c}r{r}` workload.
pub fn nginx(clients: u64, requests_per_client: u64, scale: Scale) -> Workload {
    let mut b = ProgramBuilder::new();

    // ---- main (ARCH): the request loop ------------------------------
    let handshake = b.label("tls_handshake");
    let kdf = b.label("tls_kdf");
    let encrypt = b.label("tls_encrypt");
    let mac = b.label("tls_mac");
    let send = b.label("send_buf");
    let parse = b.label("parse_request");

    b.begin_function("main", SecurityClass::Arch);
    let (client, req) = (Reg::R11, Reg::R12);
    b.mov_imm(Reg::RSP, STACK_TOP);
    b.mov_imm(client, 0);
    let client_loop = b.here("client_loop");
    // New client: full handshake + key derivation.
    b.call(handshake);
    b.call(kdf);
    b.mov_imm(req, 0);
    let req_loop = b.here("req_loop");
    b.call(parse);
    b.call(encrypt);
    b.call(mac);
    b.call(send);
    b.add(req, req, 1);
    b.cmp(req, requests_per_client * 6 * scale.0);
    b.jcc(Cond::Ult, req_loop);
    b.add(client, client, 1);
    b.cmp(client, clients);
    b.jcc(Cond::Ult, client_loop);
    b.halt();
    b.end_function();

    // ---- parse_request (ARCH): byte scan + header hash ---------------
    b.begin_function("parse_request", SecurityClass::Arch);
    b.bind(parse);
    let (i, c, h, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3);
    b.mov_imm(h, 5381);
    b.mov_imm(i, 0);
    let scan = b.here("scan");
    b.mul(t, req, 64);
    b.add(t, t, i);
    b.mul(t, t, 3); // scatter reads across the request buffer
    b.and(t, t, 0x3fff);
    b.load_sized(
        c,
        Mem::abs(REQ_BASE).with_index(t, 1),
        protean_isa::Width::W8,
    );
    b.mul(h, h, 33);
    b.add(h, h, c);
    // Stop at '\n' (10) or after 48 bytes.
    b.cmp(c, 10);
    let stop = b.label("scan_stop");
    b.jcc(Cond::Eq, stop);
    b.add(i, i, 1);
    b.cmp(i, 96);
    b.jcc(Cond::Ult, scan);
    b.bind(stop);
    b.store(Mem::abs(RESP_BASE - 16), h); // route hash
    b.ret();
    b.end_function();

    // ---- tls_handshake (UNR): RSA-style square-and-multiply over a
    // memory-resident bignum reached through a loaded limb pointer
    // (OpenSSL's BIGNUM->d) — ProtCC-UNR cannot prove the pointer
    // never-secret, so this function costs Protean nearly as much as
    // SPT-SB, which is why the paper compiles only the hottest non-UNR
    // OpenSSL functions with cheaper passes (§VIII-B3).
    b.begin_function("tls_handshake", SecurityClass::Unr);
    b.bind(handshake);
    let (limbp, base, e, bit, l0) = (Reg::R0, Reg::R1, Reg::R2, Reg::R4, Reg::R6);
    b.mov_imm(limbp, RESP_BASE + 0x2000); // ctx cell
    b.store(Mem::base(limbp), RESP_BASE + 0x2100); // ctx->d
    b.load(limbp, Mem::base(limbp)); // loaded pointer: not never-secret
    b.load(base, Mem::abs(REQ_BASE + 0x3000)); // client random (public)
    b.load(e, Mem::abs(KEY_BASE)); // private exponent (secret!)
    for limb in 0..4i64 {
        b.store(Mem::base(limbp).with_disp(limb * 8), limb as u64 + 3);
    }
    b.mov_imm(Reg::R5, 0);
    let sq = b.here("sq");
    let domul = b.label("domul");
    let skipmul = b.label("skipmul");
    // square: four limb updates through the pointer
    for limb in 0..4i64 {
        b.load(l0, Mem::base(limbp).with_disp(limb * 8));
        b.mul(l0, l0, l0);
        b.xor(l0, l0, limb as u64 + 1);
        b.store(Mem::base(limbp).with_disp(limb * 8), l0);
    }
    b.and(t, Reg::R5, 63);
    b.shr(bit, e, t);
    b.and(bit, bit, 1);
    b.cmp(bit, 0);
    b.jcc(Cond::Ne, domul); // secret-dependent branch (non-CT)
    b.jmp(skipmul);
    b.bind(domul);
    for limb in 0..2i64 {
        b.load(l0, Mem::base(limbp).with_disp(limb * 8));
        b.mul(l0, l0, base);
        b.store(Mem::base(limbp).with_disp(limb * 8), l0);
    }
    b.bind(skipmul);
    b.add(Reg::R5, Reg::R5, 1);
    b.cmp(Reg::R5, 64 * scale.0);
    b.jcc(Cond::Ult, sq);
    b.load(l0, Mem::base(limbp));
    b.store(Mem::abs(KEY_BASE + 0x100), l0); // premaster (secret)
    b.ret();
    b.end_function();

    // ---- tls_kdf (CTS): keyed hash expanding the premaster -----------
    b.begin_function("tls_kdf", SecurityClass::Cts);
    b.bind(kdf);
    let (a, ee, w) = (Reg::R0, Reg::R1, Reg::R2);
    b.load(a, Mem::abs(KEY_BASE + 0x100)); // premaster (secret)
    b.load(ee, Mem::abs(KEY_BASE + 8)); // salt (secret)
    b.mov_imm(Reg::R5, 0);
    let rounds = b.here("kdf_rounds");
    b.ror(w, a, 7);
    b.xor(w, w, ee);
    b.add(a, a, w);
    b.ror(ee, ee, 13);
    b.xor(ee, ee, a);
    b.add(Reg::R5, Reg::R5, 1);
    b.cmp(Reg::R5, 48 * scale.0);
    b.jcc(Cond::Ult, rounds);
    b.store(Mem::abs(KEY_BASE + 0x110), a); // session key (secret)
    b.store(Mem::abs(KEY_BASE + 0x118), ee); // MAC key (secret)
    b.ret();
    b.end_function();

    // ---- tls_encrypt (CT): ARX record cipher with cmov padding -------
    b.begin_function("tls_encrypt", SecurityClass::Ct);
    b.bind(encrypt);
    let (k0, s0, s1, m) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3);
    b.load(k0, Mem::abs(KEY_BASE + 0x110)); // session key (secret)
    b.mov(s0, k0);
    b.xor(s1, k0, req); // nonce from the request counter
    b.mov_imm(Reg::R5, 0);
    let blk = b.here("enc_blk");
    for _ in 0..4 {
        b.add(s0, s0, s1);
        b.xor(s1, s1, s0);
        b.rol(s1, s1, 17);
    }
    b.shl(t, Reg::R5, 3);
    b.and(t, t, 0xff8);
    b.load(m, Mem::abs(REQ_BASE + 0x2000).with_index(t, 1)); // plaintext
    b.xor(m, m, s0);
    // Constant-time last-block padding select.
    b.cmp(Reg::R5, 15);
    b.cmov(Cond::Eq, m, s1);
    b.store(Mem::abs(RESP_BASE).with_index(t, 1), m);
    b.add(Reg::R5, Reg::R5, 1);
    b.cmp(Reg::R5, 16 * scale.0);
    b.jcc(Cond::Ult, blk);
    b.ret();
    b.end_function();

    // ---- tls_mac (CTS): Poly1305-style tag over the ciphertext -------
    b.begin_function("tls_mac", SecurityClass::Cts);
    b.bind(mac);
    let (hh, r) = (Reg::R0, Reg::R1);
    b.load(r, Mem::abs(KEY_BASE + 0x118)); // MAC key (secret)
    b.mov_imm(hh, 0);
    b.mov_imm(Reg::R5, 0);
    let mw = b.here("mac_w");
    b.shl(t, Reg::R5, 3);
    b.and(t, t, 0xff8);
    b.load(Reg::R2, Mem::abs(RESP_BASE).with_index(t, 1));
    b.add(hh, hh, Reg::R2);
    b.mul(hh, hh, r);
    b.shr(t, hh, 44);
    b.and(hh, hh, 0xfff_ffff_ffff);
    b.add(hh, hh, t);
    b.add(Reg::R5, Reg::R5, 1);
    b.cmp(Reg::R5, 16 * scale.0);
    b.jcc(Cond::Ult, mw);
    b.store(Mem::abs(RESP_BASE + 0x800), hh);
    b.ret();
    b.end_function();

    // ---- send_buf (ARCH): copy the ciphertext to the "socket" --------
    b.begin_function("send_buf", SecurityClass::Arch);
    b.bind(send);
    b.mov_imm(Reg::R5, 0);
    let cp = b.here("cp");
    b.shl(t, Reg::R5, 3);
    b.and(t, t, 0xff8);
    b.load(Reg::R0, Mem::abs(RESP_BASE).with_index(t, 1));
    b.store(Mem::abs(RESP_BASE + 0x1000).with_index(t, 1), Reg::R0);
    b.add(Reg::R5, Reg::R5, 1);
    b.cmp(Reg::R5, 16 * scale.0);
    b.jcc(Cond::Ult, cp);
    b.ret();
    b.end_function();

    let program = b.build().expect("nginx model builds");
    let mut init = ArchState::new();
    init.set_reg(Reg::RSP, STACK_TOP);
    let mut rng = Rng::seed_from_u64(51);
    for k in 0..64u64 {
        init.mem.write(KEY_BASE + k * 8, 8, rng.gen()); // secrets
    }
    for k in 0..0x1000u64 {
        // Request bytes: printable-ish with newlines sprinkled in.
        let byte: u8 = if rng.gen_bool(1.0 / 40.0) {
            10
        } else {
            rng.gen_range(32..127)
        };
        init.mem.write_u8(REQ_BASE + k, byte);
    }
    for k in 0..0x400u64 {
        init.mem.write(REQ_BASE + 0x2000 + k * 8, 8, rng.gen());
    }

    let total = clients * requests_per_client;
    let name = format!("nginx.c{clients}r{requests_per_client}");

    Workload::single(
        name,
        Suite::Nginx,
        SecurityClass::Unr, // outer bound; functions carry labels
        program,
        init,
        (20_000 + total * 40_000) * scale.0,
    )
}
