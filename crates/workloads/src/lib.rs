//! # protean-workloads
//!
//! Synthetic benchmark suites standing in for the workloads of
//! *"Protean: A Programmable Spectre Defense"* (HPCA 2026, §VIII-B).
//!
//! SPEC CPU2017, PARSEC, the Wasm-compiled SPEC2006 subset, the
//! HACL\*/libsodium/BearSSL/OpenSSL crypto kernels, and nginx cannot be
//! vendored, so each suite here is a set of kernels engineered to
//! preserve the *behaviour that drives the paper's results* (see
//! `DESIGN.md` §6):
//!
//! * [`spec2017`] — general-purpose mixes: pointer chasing (STT's
//!   load-load serialization, §IX-B1), branchy search, streaming
//!   arithmetic, table lookups;
//! * [`parsec`] — multi-threaded data-parallel kernels, including a
//!   `blackscholes`-like kernel dominated by fixed-offset stack accesses
//!   (the §IX-A1 SPT-SB pathology);
//! * [`arch_wasm`] — sandboxed kernels with masked, bounds-checked
//!   memory accesses (dense load→load dependence);
//! * [`cts_crypto`] / [`ct_crypto`] — genuinely constant-time ARX /
//!   bitsliced / cmov kernels over secret state;
//! * [`unr_crypto`] — *non*-constant-time OpenSSL-style kernels
//!   (square-and-multiply with key-bit branches, secret-indexed tables);
//! * [`nginx`] — the multi-class web server of Fig. 1: an ARCH request
//!   loop invoking ARCH/CTS/CT/UNR "OpenSSL" functions.
//!
//! Every workload is deterministic, bounded, and validated; the
//! `protean-bench` crate compiles them with the appropriate ProtCC pass
//! and regenerates the paper's tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod crypto;
mod nginx;
mod parsec;
mod spec;
mod wasm;

pub use nginx::nginx;

use protean_arch::ArchState;
use protean_isa::{Program, SecurityClass};

/// Which paper suite a workload belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// SPEC CPU2017-like single-thread general-purpose kernels.
    Spec2017,
    /// PARSEC-like multi-threaded kernels.
    Parsec,
    /// WebAssembly-compiled SPEC2006-like sandboxed kernels.
    ArchWasm,
    /// Static constant-time crypto kernels.
    CtsCrypto,
    /// Constant-time crypto kernels.
    CtCrypto,
    /// Non-constant-time (unrestricted) crypto kernels.
    UnrCrypto,
    /// The multi-class nginx model.
    Nginx,
}

/// A runnable benchmark: one program+state per hardware thread.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (paper Tab. V / Fig. 6 row).
    pub name: String,
    /// The suite it belongs to.
    pub suite: Suite,
    /// The class its ProtCC binary is compiled as (multi-class programs
    /// carry per-function labels and use [`SecurityClass::Unr`] here as
    /// the outer bound).
    pub class: SecurityClass,
    /// One `(program, initial state)` pair per thread (length 1 for
    /// single-thread workloads).
    pub threads: Vec<(Program, ArchState)>,
    /// Committed-µop budget per thread (safety limit; workloads halt on
    /// their own below this).
    pub max_insts: u64,
}

impl Workload {
    fn single(
        name: impl Into<String>,
        suite: Suite,
        class: SecurityClass,
        program: Program,
        initial: ArchState,
        budget_hint: u64,
    ) -> Workload {
        program
            .validate()
            .unwrap_or_else(|e| panic!("workload program invalid: {e}"));
        let name = name.into();
        let measured = measure_dynamic_length(&name, &program, &initial, budget_hint);
        Workload {
            name,
            suite,
            class,
            threads: vec![(program, initial)],
            max_insts: budget(measured),
        }
    }

    /// Whether this is a multi-threaded workload.
    pub fn is_multithreaded(&self) -> bool {
        self.threads.len() > 1
    }
}

/// Runs the sequential emulator to halt and returns the dynamic
/// instruction count (workload budgets are derived from it, so the
/// simulator's limits can never truncate a run).
fn measure_dynamic_length(
    name: &str,
    program: &Program,
    initial: &ArchState,
    budget_hint: u64,
) -> u64 {
    let mut emu = protean_arch::Emulator::new(program, initial.clone());
    let limit = budget_hint.max(1) * 64;
    loop {
        if emu.step().is_none() {
            return emu.steps();
        }
        if emu.steps() > limit {
            panic!("workload {name} exceeded its emulation budget ({limit})");
        }
    }
}

/// Simulation budget with headroom: ProtCC instrumentation adds identity
/// moves, so instrumented binaries commit somewhat more µops.
fn budget(dynamic_len: u64) -> u64 {
    dynamic_len + dynamic_len / 2 + 10_000
}

/// Budgeted measurement for one thread (used by the multi-threaded
/// suites).
pub(crate) fn measure_thread(
    name: &str,
    program: &Program,
    initial: &ArchState,
    budget_hint: u64,
) -> u64 {
    budget(measure_dynamic_length(name, program, initial, budget_hint))
}

pub use crypto::{ct_crypto, cts_crypto, unr_crypto};
pub use parsec::{parsec, THREADS};
pub use spec::{spec2017, spec2017_int};
pub use wasm::arch_wasm;

/// Scale factor for workload sizes: 1 = the default (~100 K committed
/// µops per workload); larger values lengthen every loop proportionally.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scale(pub u64);

impl Default for Scale {
    fn default() -> Scale {
        Scale(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_arch::{Emulator, ExitStatus};

    /// Every workload must terminate architecturally within its budget.
    #[test]
    fn all_workloads_terminate() {
        let mut all: Vec<Workload> = Vec::new();
        all.extend(spec2017(Scale(1)));
        all.extend(parsec(Scale(1)));
        all.extend(arch_wasm(Scale(1)));
        all.extend(cts_crypto(Scale(1)));
        all.extend(ct_crypto(Scale(1)));
        all.extend(unr_crypto(Scale(1)));
        all.push(nginx(1, 1, Scale(1)));
        assert!(all.len() >= 25, "expected a full workload roster");
        for w in &all {
            for (t, (prog, init)) in w.threads.iter().enumerate() {
                let mut emu = Emulator::new(prog, init.clone());
                let (status, _) = emu.run(w.max_insts * 4);
                assert_eq!(
                    status,
                    ExitStatus::Halted,
                    "{} thread {t} did not halt",
                    w.name
                );
            }
        }
    }
}
