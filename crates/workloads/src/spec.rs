//! SPEC CPU2017-like single-thread kernels (paper §VIII-B1).
//!
//! Each kernel mirrors the microarchitectural character of its namesake:
//! `mcf_s` is dominated by dependent pointer chasing (the load-load
//! serialization that makes STT slow, §IX-B1), `deepsjeng_s` by
//! hard-to-predict branches, `lbm_s` by streaming arithmetic, `gcc_s` /
//! `xalancbmk_s` by table lookups, `omnetpp_s` by an in-memory priority
//! queue, `exchange2_s`/`leela_s` by register-heavy compute, and
//! `perlbench_s` by byte-wise string hashing.

use crate::{Scale, Suite, Workload};
use protean_arch::ArchState;
use protean_isa::{AluOp, Cond, Mem, ProgramBuilder, Reg, SecurityClass, Width};
use protean_rng::Rng;

const DATA: u64 = 0x10_0000;
const STACK_TOP: u64 = 0xf_0000;
/// A context cell holding the data-segment pointer (a GOT/global slot):
/// compiled code reaches its data through *loaded* pointers, which is
/// what makes ProtCC-UNR expensive (loaded values are never provably
/// never-secret) and keeps SPT stalling (initial-memory bytes are never
/// published).
const CTX: u64 = 0xe_0000;

/// All SPEC2017-like kernels.
pub fn spec2017(scale: Scale) -> Vec<Workload> {
    vec![
        perlbench(scale),
        gcc(scale),
        mcf(scale),
        xalancbmk(scale),
        deepsjeng(scale),
        leela(scale),
        exchange2(scale),
        omnetpp(scale),
        x264(scale),
        xz(scale),
        lbm(scale),
        nab(scale),
    ]
}

/// The integer subset (used by the §IX-A2…A7 ablations).
pub fn spec2017_int(scale: Scale) -> Vec<Workload> {
    spec2017(scale)
        .into_iter()
        .filter(|w| w.name != "lbm.s" && w.name != "nab.s")
        .collect()
}

fn workload(name: &str, b: ProgramBuilder, init: ArchState, max_insts: u64) -> Workload {
    Workload::single(
        name,
        Suite::Spec2017,
        SecurityClass::Arch,
        b.build().expect("kernel builds"),
        init,
        max_insts,
    )
}

/// Warm-up sweep over `[base, base+bytes)` (see `wasm::emit_warmup`):
/// unprefixed loads unprotect the working set, standing in for the
/// paper's pre-simpoint warm-up.
fn emit_warmup(b: &mut ProgramBuilder, base: u64, bytes: u64) {
    b.mov_imm(Reg::R12, 0);
    let top = b.here("warm");
    b.load(Reg::R13, Mem::abs(base).with_index(Reg::R12, 1));
    b.add(Reg::R12, Reg::R12, 8);
    b.cmp(Reg::R12, bytes);
    b.jcc(Cond::Ult, top);
}

fn base_state() -> ArchState {
    let mut s = ArchState::new();
    s.set_reg(Reg::RSP, STACK_TOP);
    s.mem.write(CTX, 8, DATA);
    s.mem.write(CTX + 8, 8, DATA + 0x8000);
    s.mem.write(CTX + 16, 8, DATA + 0x10000);
    s.mem.write(CTX + 24, 8, DATA + 0x40000);
    s
}

/// Loads the data-segment base pointers into `R11`/`R10` (see [`CTX`]).
fn emit_load_bases(b: &mut ProgramBuilder, second: u64) {
    b.load(Reg::R11, Mem::abs(CTX));
    b.load(Reg::R10, Mem::abs(CTX + second));
}

/// `perlbench_s`: byte-wise string hashing over many small strings.
fn perlbench(scale: Scale) -> Workload {
    let strings = 400 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0x2800);
    emit_warmup(&mut b, DATA + 0x8000, 0x4000);
    let (sptr, i, j, h, c, acc) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    emit_load_bases(&mut b, 8);
    b.mov(sptr, Reg::R11);
    b.mov_imm(i, 0);
    b.mov_imm(acc, 0);
    let outer = b.here("outer");
    // `mov eax, 5381`-style 32-bit reset: exercises SPT's upper-bits
    // untaint performance fix (§VII-B4c).
    b.emit(protean_isa::Op::MovImm {
        dst: h,
        imm: 5381,
        width: Width::W32,
    });
    b.mov_imm(j, 0);
    let inner = b.here("inner");
    // h = h*33 + byte
    b.load_sized(c, Mem::base(sptr).with_index(j, 1), Width::W8);
    b.emit(protean_isa::Op::Alu {
        op: AluOp::Mul,
        dst: h,
        src1: h,
        src2: protean_isa::Operand::Imm(33),
        width: Width::W32, // 32-bit hash arithmetic (zero-extends)
    });
    b.emit(protean_isa::Op::Alu {
        op: AluOp::Add,
        dst: h,
        src1: h,
        src2: protean_isa::Operand::Reg(c),
        width: Width::W32,
    });
    b.add(j, j, 1);
    b.cmp(j, 24);
    b.jcc(Cond::Ult, inner);
    // bucket update
    b.and(h, h, 0x3ff8);
    b.load(c, Mem::base(Reg::R10).with_index(h, 1));
    b.add(c, c, 1);
    b.store(Mem::base(Reg::R10).with_index(h, 1), c);
    b.add(acc, acc, h);
    b.add(sptr, sptr, 24);
    b.add(i, i, 1);
    b.cmp(i, strings);
    b.jcc(Cond::Ult, outer);
    b.store(Mem::abs(DATA - 8), acc);
    b.halt();

    let mut init = base_state();
    let mut rng = Rng::seed_from_u64(11);
    for a in 0..(strings * 24 + 64) {
        init.mem.write_u8(DATA + a, rng.gen());
    }
    workload("perlbench.s", b, init, 40_000 * scale.0)
}

/// `gcc_s`: opcode-dispatch-style table lookups plus branchy rewriting.
fn gcc(scale: Scale) -> Workload {
    let n = 3_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0x8000);
    emit_warmup(&mut b, DATA + 0x10000, 0x1000);
    let (i, op, t, v, acc) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    emit_load_bases(&mut b, 16);
    b.mov_imm(i, 0);
    b.mov_imm(acc, 0);
    let top = b.here("top");
    let simple = b.label("simple");
    let join = b.label("join");
    b.and(t, i, 0x7ff8);
    b.load(op, Mem::base(Reg::R11).with_index(t, 1)); // "IR opcode"
    b.and(t, op, 0xff8);
    b.load(v, Mem::base(Reg::R10).with_index(t, 1)); // dispatch: load->load
    b.cmp(v, 128);
    b.jcc(Cond::Ult, simple);
    b.mul(acc, acc, 17);
    b.add(acc, acc, v);
    b.jmp(join);
    b.bind(simple);
    b.or(Reg::R5, v, 1);
    b.div(acc, acc, Reg::R5); // cost-normalization divide (a transmitter)
    b.bind(join);
    b.and(t, acc, 0x7ff8);
    b.store(Mem::base(Reg::R11).with_index(t, 1), acc);
    // Streaming IR growth: a long-latency miss every 4th iteration keeps
    // the window full, so the dispatch load->load pairs above wait far
    // from the ROB head under taint tracking.
    let nostream = b.label("nostream");
    b.add(Reg::R9, Reg::R9, 1);
    b.and(Reg::R5, Reg::R9, 3);
    b.cmp(Reg::R5, 0);
    b.jcc(Cond::Ne, nostream);
    b.mul(t, i, 163);
    b.and(t, t, 0x7_fff8);
    b.load(Reg::R5, Mem::base(Reg::R10).with_index(t, 1));
    b.add(acc, acc, Reg::R5);
    b.bind(nostream);
    b.add(i, i, 40);
    b.cmp(i, n * 40);
    b.jcc(Cond::Ult, top);
    b.halt();

    let mut init = base_state();
    let mut rng = Rng::seed_from_u64(12);
    for k in 0..0x3000 {
        init.mem.write(DATA + k * 8, 8, rng.gen_range(0..4096));
    }
    workload("gcc.s", b, init, 45_000 * scale.0)
}

/// `mcf_s`: dependent pointer chasing over an L2-sized linked structure —
/// each load's address comes from the previous load.
fn mcf(scale: Scale) -> Workload {
    let nodes: u64 = 4 * 1024; // 4 K nodes * 16 B spans L1/L2
    let hops = 10_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0x10000);
    let (p, v, acc, i) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3);
    b.load(p, Mem::abs(CTX)); // list head through the context
    b.mov_imm(i, 0);
    let top = b.here("top");
    b.load(v, Mem::base(p).with_disp(8)); // node payload
    b.add(acc, acc, v);
    b.load(p, Mem::base(p)); // next pointer: the dependent chain
    b.add(i, i, 1);
    b.cmp(i, hops);
    b.jcc(Cond::Ult, top);
    b.store(Mem::abs(DATA - 8), acc);
    b.halt();

    let mut init = base_state();
    // A random permutation cycle of nodes.
    let mut rng = Rng::seed_from_u64(13);
    let mut order: Vec<u64> = (1..nodes).collect();
    for k in (1..order.len()).rev() {
        order.swap(k, rng.gen_range(0..=k));
    }
    let mut cur = 0u64;
    for &nxt in &order {
        init.mem.write(DATA + cur * 16, 8, DATA + nxt * 16);
        init.mem
            .write(DATA + cur * 16 + 8, 8, rng.gen_range(0..1000));
        cur = nxt;
    }
    init.mem.write(DATA + cur * 16, 8, DATA);
    init.mem.write(DATA + cur * 16 + 8, 8, 7);
    workload("mcf.s", b, init, 70_000 * scale.0)
}

/// `xalancbmk_s`: hash-table probing with compare-and-continue loops.
fn xalancbmk(scale: Scale) -> Workload {
    let lookups = 2_500 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0x4000);
    let (key, slot, v, i, acc, probes) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    emit_load_bases(&mut b, 8);
    b.mov_imm(i, 0);
    let top = b.here("top");
    let probe = b.label("probe");
    let found = b.label("found");
    // Every 4th lookup hashes a streamed key string (long-latency miss):
    // keeps the window full while the probe chain's load->load pairs wait.
    let hotkey = b.label("hotkey");
    b.and(key, i, 3);
    b.cmp(key, 0);
    b.jcc(Cond::Ne, hotkey);
    b.mul(key, i, 4597);
    b.and(key, key, 0x7_fff8);
    b.load(key, Mem::base(Reg::R10).with_index(key, 1));
    b.bind(hotkey);
    b.mul(key, i, 2654435761);
    b.mov(slot, key);
    b.mov_imm(probes, 0);
    b.bind(probe);
    b.and(slot, slot, 0x3ff8);
    b.load(v, Mem::base(Reg::R11).with_index(slot, 1));
    b.cmp(v, 0);
    b.jcc(Cond::Eq, found); // empty slot
    b.add(slot, slot, v); // rehash step from the *loaded* entry
    b.add(slot, slot, 8);
    b.add(probes, probes, 1);
    b.cmp(probes, 8);
    b.jcc(Cond::Ult, probe);
    b.bind(found);
    b.add(acc, acc, probes);
    b.add(i, i, 1);
    b.cmp(i, lookups);
    b.jcc(Cond::Ult, top);
    b.store(Mem::abs(DATA - 8), acc);
    b.halt();

    let mut init = base_state();
    let mut rng = Rng::seed_from_u64(14);
    for k in 0..0x800u64 {
        // Half the table occupied.
        let val = if rng.gen_bool(0.5) {
            rng.gen_range(1..100u64)
        } else {
            0
        };
        init.mem.write(DATA + k * 8, 8, val);
    }
    workload("xalancbmk.s", b, init, 60_000 * scale.0)
}

/// `deepsjeng_s`: data-dependent branching over pseudo-random positions —
/// a high misprediction rate stresses squash paths.
fn deepsjeng(scale: Scale) -> Workload {
    let n = 4_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0x2000);
    let (x, i, acc, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3);
    emit_load_bases(&mut b, 8);
    // The position seed comes from memory (the transposition table):
    // SPT treats it — and every index derived from it — as private
    // forever, since the derived values are transmitted but the seed's
    // own chain is not.
    b.load(x, Mem::base(Reg::R11).with_disp(0x1ff0));
    b.or(x, x, 1);
    b.mov_imm(i, 0);
    let top = b.here("top");
    let a1 = b.label("a1");
    let a2 = b.label("a2");
    let join = b.label("join");
    // xorshift: unpredictable low bits.
    b.shl(t, x, 13);
    b.xor(x, x, t);
    b.shr(t, x, 7);
    b.xor(x, x, t);
    b.shl(t, x, 17);
    b.xor(x, x, t);
    b.and(t, x, 3);
    b.cmp(t, 1);
    b.jcc(Cond::Ult, a1);
    b.cmp(t, 2);
    b.jcc(Cond::Ult, a2);
    b.mul(acc, acc, 3);
    b.jmp(join);
    b.bind(a1);
    b.add(acc, acc, 1);
    b.jmp(join);
    b.bind(a2);
    b.xor(acc, acc, x);
    b.bind(join);
    b.and(t, x, 0x1ff8);
    b.load(t, Mem::base(Reg::R11).with_index(t, 1)); // eval-table lookup
    b.add(acc, acc, t);
    b.add(i, i, 1);
    b.cmp(i, n);
    b.jcc(Cond::Ult, top);
    b.store(Mem::abs(DATA - 8), acc);
    b.halt();

    let mut init = base_state();
    let mut rng = Rng::seed_from_u64(15);
    for k in 0..0x400u64 {
        init.mem.write(DATA + k * 8, 8, rng.gen_range(0..256));
    }
    workload("deepsjeng.s", b, init, 75_000 * scale.0)
}

/// `leela_s`: Monte-Carlo-style playouts: LCG + small-board updates.
fn leela(scale: Scale) -> Workload {
    let n = 5_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0x1000);
    let (x, i, acc, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3);
    emit_load_bases(&mut b, 8);
    // RNG state restored from memory (a saved game tree).
    b.load(x, Mem::base(Reg::R11).with_disp(0xff0));
    b.or(x, x, 7);
    b.mov_imm(i, 0);
    let top = b.here("top");
    b.mul(x, x, 6364136223846793005);
    b.add(x, x, 1442695040888963407);
    b.shr(t, x, 33);
    b.and(t, t, 0xff8);
    b.load(acc, Mem::base(Reg::R11).with_index(t, 1));
    b.add(acc, acc, 1);
    b.store(Mem::base(Reg::R11).with_index(t, 1), acc);
    b.add(i, i, 1);
    b.cmp(i, n);
    b.jcc(Cond::Ult, top);
    b.halt();

    let init = base_state();
    workload("leela.s", b, init, 50_000 * scale.0)
}

/// `exchange2_s`: register-resident nested loops (a Sudoku-solver-like
/// permutation search touching almost no memory).
fn exchange2(scale: Scale) -> Workload {
    let n = 1_200 * scale.0;
    let mut b = ProgramBuilder::new();
    let (i, j, a, c, acc) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    b.mov_imm(i, 0);
    let outer = b.here("outer");
    b.mov_imm(j, 0);
    b.mov_imm(a, 1);
    let inner = b.here("inner");
    b.mul(a, a, 9);
    b.add(a, a, j);
    b.rol(a, a, 7);
    b.xor(c, a, i);
    b.add(acc, acc, c);
    b.add(j, j, 1);
    b.cmp(j, 30);
    b.jcc(Cond::Ult, inner);
    b.add(i, i, 1);
    b.cmp(i, n);
    b.jcc(Cond::Ult, outer);
    b.store(Mem::abs(DATA), acc);
    b.halt();

    workload("exchange2.s", b, base_state(), 110_000 * scale.0)
}

/// `omnetpp_s`: a binary-heap event queue: sift-down loops of dependent
/// loads, compares, and stores.
fn omnetpp(scale: Scale) -> Workload {
    let events = 1_200 * scale.0;
    let heap = DATA;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0x800);
    let (i, k, child, hv, cv, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    emit_load_bases(&mut b, 8);
    b.mov_imm(i, 0);
    let top = b.here("top");
    // Every 4th event fetches its payload from the streamed event pool
    // (a long-latency miss), then replace the root and sift down.
    let hotev = b.label("hotev");
    b.and(t, i, 3);
    b.cmp(t, 0);
    b.jcc(Cond::Ne, hotev);
    b.mul(t, i, 379);
    b.and(t, t, 0x7_fff8);
    b.load(t, Mem::base(Reg::R10).with_index(t, 1));
    b.bind(hotev);
    b.mul(t, i, 2862933555777941757);
    b.shr(t, t, 20);
    b.store(Mem::base(Reg::R11), t);
    b.mov_imm(k, 0);
    let sift = b.here("sift");
    let stop = b.label("stop");
    let swap = b.label("swap");
    b.shl(child, k, 1);
    b.add(child, child, 1);
    b.cmp(child, 255);
    b.jcc(Cond::Uge, stop);
    b.shl(t, k, 3);
    b.load(hv, Mem::base(Reg::R11).with_index(t, 1));
    b.shl(t, child, 3);
    b.load(cv, Mem::base(Reg::R11).with_index(t, 1));
    b.cmp(cv, hv);
    b.jcc(Cond::Ult, swap);
    b.jmp(stop);
    b.bind(swap);
    b.shl(t, k, 3);
    b.store(Mem::base(Reg::R11).with_index(t, 1), cv);
    b.shl(t, child, 3);
    b.store(Mem::base(Reg::R11).with_index(t, 1), hv);
    b.mov(k, child);
    b.jmp(sift);
    b.bind(stop);
    b.add(i, i, 1);
    b.cmp(i, events);
    b.jcc(Cond::Ult, top);
    b.halt();

    let mut init = base_state();
    let mut rng = Rng::seed_from_u64(16);
    for k in 0..256u64 {
        init.mem
            .write(heap + k * 8, 8, rng.gen_range(0..1u64 << 40));
    }
    workload("omnetpp.s", b, init, 60_000 * scale.0)
}

/// `lbm_s`: a streaming 1-D stencil: regular loads, FMA-like arithmetic,
/// regular stores (high MLP; every defense does comparatively well).
fn lbm(scale: Scale) -> Workload {
    let cells = 6_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0xc000);
    emit_warmup(&mut b, DATA + 0x40000, 0xc000);
    let (i, a, c, r, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4);
    emit_load_bases(&mut b, 24);
    b.mov_imm(i, 0);
    let top = b.here("top");
    b.shl(t, i, 3);
    b.load(a, Mem::base(Reg::R11).with_index(t, 1));
    b.load(c, Mem::base(Reg::R11).with_disp(8).with_index(t, 1));
    b.load(r, Mem::base(Reg::R11).with_disp(16).with_index(t, 1));
    b.mul(a, a, 3);
    b.add(a, a, c);
    b.add(a, a, r);
    b.shr(a, a, 2);
    b.store(Mem::base(Reg::R10).with_index(t, 1), a);
    b.add(i, i, 1);
    b.cmp(i, cells);
    b.jcc(Cond::Ult, top);
    b.halt();

    let mut init = base_state();
    let mut rng = Rng::seed_from_u64(17);
    for k in 0..(cells + 4) {
        init.mem.write(DATA + k * 8, 8, rng.gen_range(0..1000));
    }
    let _ = AluOp::Add; // (suite uses the full ALU set via builders)
    workload("lbm.s", b, init, 75_000 * scale.0)
}

/// `x264_s`: motion-estimation-shaped work — SAD over candidate blocks
/// selected by table lookups, with an early-exit branch per candidate.
fn x264(scale: Scale) -> Workload {
    let mbs = 1_500 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0x8000);
    let (i, cand, sad, best, t, px) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    emit_load_bases(&mut b, 8);
    b.mov_imm(i, 0);
    let top = b.here("mb");
    b.mov_imm(best, 0xffff);
    // Candidate offset from the motion-vector table (load -> load).
    b.and(t, i, 0xff8);
    b.load(cand, Mem::base(Reg::R11).with_index(t, 1));
    b.and(cand, cand, 0x3ff8);
    // 4-pixel-group SAD.
    b.mov_imm(sad, 0);
    for k in 0..4u64 {
        b.load(
            px,
            Mem::base(Reg::R11)
                .with_disp(k as i64 * 8)
                .with_index(cand, 1),
        );
        b.xor(px, px, i);
        b.and(px, px, 0xff);
        b.add(sad, sad, px);
    }
    // Early exit if this candidate beats the (running) best.
    let keep = b.label("keep");
    b.cmp(sad, best);
    b.jcc(Cond::Uge, keep);
    b.mov(best, sad);
    b.bind(keep);
    b.and(t, i, 0x7f8);
    b.store(Mem::base(Reg::R10).with_index(t, 1), best);
    b.add(i, i, 1);
    b.cmp(i, mbs);
    b.jcc(Cond::Ult, top);
    b.halt();

    let mut init = base_state();
    let mut rng = Rng::seed_from_u64(18);
    for k in 0..0x1000u64 {
        init.mem.write(DATA + k * 8, 8, rng.gen_range(0..0x4000));
    }
    workload("x264.s", b, init, 60_000 * scale.0)
}

/// `xz_s`: LZMA-style match finding — a hash-chain walk (dependent
/// loads) with byte compares and a literal/match branch.
fn xz(scale: Scale) -> Workload {
    let positions = 2_500 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0x8000);
    let (i, h, link, cur, t, acc) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    emit_load_bases(&mut b, 8);
    b.mov_imm(i, 0);
    let top = b.here("pos");
    // Hash the current position's bytes.
    b.and(t, i, 0x3fff);
    b.load_sized(cur, Mem::base(Reg::R11).with_index(t, 1), Width::W16);
    b.mul(h, cur, 2654435761);
    b.shr(h, h, 20);
    b.and(h, h, 0xff8);
    // Walk two links of the hash chain (dependent loads).
    b.load(link, Mem::base(Reg::R10).with_index(h, 1));
    b.and(link, link, 0xff8);
    b.load(link, Mem::base(Reg::R10).with_index(link, 1));
    b.and(link, link, 0x3fff);
    // Compare the candidate's bytes; branch literal vs match.
    b.load_sized(t, Mem::base(Reg::R11).with_index(link, 1), Width::W16);
    let literal = b.label("literal");
    b.cmp(t, cur);
    b.jcc(Cond::Ne, literal);
    b.add(acc, acc, 2);
    b.bind(literal);
    b.add(acc, acc, 1);
    // Update the chain head.
    b.store(Mem::base(Reg::R10).with_index(h, 1), i);
    b.add(i, i, 3);
    b.cmp(i, positions * 3);
    b.jcc(Cond::Ult, top);
    b.halt();

    let mut init = base_state();
    let mut rng = Rng::seed_from_u64(19);
    for k in 0..0x2000u64 {
        init.mem
            .write(DATA + k * 8, 8, rng.gen::<u64>() & 0xffff_ffff);
    }
    for k in 0..0x200u64 {
        init.mem
            .write(DATA + 0x8000 + k * 8, 8, rng.gen_range(0..0x200u64) * 8);
    }
    workload("xz.s", b, init, 70_000 * scale.0)
}

/// `nab_s` (fp): molecular-dynamics-shaped arithmetic over neighbour
/// pairs — mostly multiply/add chains with regular loads.
fn nab(scale: Scale) -> Workload {
    let pairs = 4_000 * scale.0;
    let mut b = ProgramBuilder::new();
    emit_warmup(&mut b, DATA, 0x8000);
    let (i, xi, xj, d, e, t) = (Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    emit_load_bases(&mut b, 8);
    b.mov_imm(i, 0);
    let top = b.here("pair");
    b.shl(t, i, 3);
    b.and(t, t, 0x3ff8);
    b.load(xi, Mem::base(Reg::R11).with_index(t, 1));
    b.load(xj, Mem::base(Reg::R11).with_disp(0x4000).with_index(t, 1));
    b.sub(d, xi, xj);
    b.mul(e, d, d);
    b.mul(e, e, d);
    b.shr(e, e, 12);
    b.add(e, e, 1);
    b.mul(d, d, e);
    b.shr(d, d, 8);
    b.store(Mem::base(Reg::R10).with_index(t, 1), d);
    b.add(i, i, 1);
    b.cmp(i, pairs);
    b.jcc(Cond::Ult, top);
    b.halt();

    let mut init = base_state();
    let mut rng = Rng::seed_from_u64(20);
    for k in 0..0x1000u64 {
        init.mem.write(DATA + k * 8, 8, rng.gen_range(0..1 << 20));
    }
    workload("nab.s", b, init, 70_000 * scale.0)
}
