//! Each crypto workload must genuinely belong to its declared class:
//! CTS/CT kernels produce identical CT traces for different keys
//! (constant-time), UNR kernels do not, and ARCH kernels never hold
//! secrets at all (there is nothing secret in their state).

use protean_arch::{ArchState, Emulator, ExitStatus, Obs, ObserverMode};
use protean_workloads::{ct_crypto, cts_crypto, nginx, unr_crypto, Scale, Workload};

const KEY_BASE: u64 = 0x5_0000;

fn ct_trace(w: &Workload, key_seed: u64) -> Vec<Obs> {
    let (prog, init) = &w.threads[0];
    let mut state: ArchState = init.clone();
    // Re-randomize the key material only.
    let mut x = key_seed;
    for k in 0..64u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state.mem.write(KEY_BASE + k * 8, 8, x);
    }
    let mut emu = Emulator::new(prog, state);
    let (status, records) = emu.run(w.max_insts * 4);
    assert_eq!(status, ExitStatus::Halted, "{} did not halt", w.name);
    ObserverMode::Ct.trace(&records)
}

#[test]
fn cts_and_ct_kernels_are_constant_time() {
    for w in cts_crypto(Scale(1))
        .iter()
        .chain(ct_crypto(Scale(1)).iter())
    {
        let a = ct_trace(w, 1);
        let b = ct_trace(w, 2);
        assert_eq!(
            a, b,
            "{} leaks its key architecturally — not constant-time",
            w.name
        );
    }
}

#[test]
fn unr_kernels_are_not_constant_time() {
    for w in unr_crypto(Scale(1)) {
        let a = ct_trace(&w, 1);
        let b = ct_trace(&w, 2);
        assert_ne!(
            a, b,
            "{} should be non-constant-time (it is the UNR suite)",
            w.name
        );
    }
}

#[test]
fn nginx_is_multiclass() {
    let w = nginx(2, 2, Scale(1));
    let prog = &w.threads[0].0;
    use protean_isa::SecurityClass::*;
    let classes: Vec<_> = prog.functions.iter().map(|f| f.class).collect();
    for class in [Arch, Cts, Ct, Unr] {
        assert!(
            classes.contains(&class),
            "nginx must contain {class} code (Fig. 1)"
        );
    }
    // The UNR handshake makes the whole thing non-constant-time.
    let a = ct_trace(&w, 1);
    let b = ct_trace(&w, 2);
    assert_ne!(a, b, "the nginx handshake is non-constant-time by design");
}
