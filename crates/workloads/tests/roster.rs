//! Roster invariants: unique names, correct suites and classes, all
//! rows that the paper's tables reference are present.

use protean_isa::SecurityClass;
use protean_workloads::{
    arch_wasm, ct_crypto, cts_crypto, nginx, parsec, spec2017, spec2017_int, unr_crypto, Scale,
    Suite,
};

#[test]
fn names_are_unique_and_suites_consistent() {
    let mut names = std::collections::HashSet::new();
    let suites = [
        (spec2017(Scale(1)), Suite::Spec2017),
        (parsec(Scale(1)), Suite::Parsec),
        (arch_wasm(Scale(1)), Suite::ArchWasm),
        (cts_crypto(Scale(1)), Suite::CtsCrypto),
        (ct_crypto(Scale(1)), Suite::CtCrypto),
        (unr_crypto(Scale(1)), Suite::UnrCrypto),
    ];
    for (ws, suite) in suites {
        for w in ws {
            assert!(names.insert(w.name.clone()), "duplicate name {}", w.name);
            assert_eq!(w.suite, suite, "{}", w.name);
        }
    }
}

#[test]
fn paper_table_v_rows_present() {
    let wasm: Vec<String> = arch_wasm(Scale(1)).into_iter().map(|w| w.name).collect();
    for name in ["bzip2", "mcf", "milc", "namd", "libquantum", "lmb"] {
        assert!(wasm.contains(&name.to_string()), "missing {name}");
    }
    let cts: Vec<String> = cts_crypto(Scale(1)).into_iter().map(|w| w.name).collect();
    for name in [
        "hacl.chacha20",
        "hacl.curve25519",
        "hacl.poly1305",
        "sodium.salsa20",
        "sodium.sha256",
        "ossl.chacha20",
        "ossl.curve25519",
        "ossl.sha256",
    ] {
        assert!(cts.contains(&name.to_string()), "missing {name}");
    }
    let ct: Vec<String> = ct_crypto(Scale(1)).into_iter().map(|w| w.name).collect();
    for name in ["bearssl", "ctaes", "djbsort"] {
        assert!(ct.contains(&name.to_string()), "missing {name}");
    }
    let unr: Vec<String> = unr_crypto(Scale(1)).into_iter().map(|w| w.name).collect();
    for name in ["ossl.bnexp", "ossl.dh", "ossl.ecadd"] {
        assert!(unr.contains(&name.to_string()), "missing {name}");
    }
}

#[test]
fn classes_match_suites() {
    for w in cts_crypto(Scale(1)) {
        assert_eq!(w.class, SecurityClass::Cts, "{}", w.name);
    }
    for w in ct_crypto(Scale(1)) {
        assert_eq!(w.class, SecurityClass::Ct, "{}", w.name);
    }
    for w in unr_crypto(Scale(1)) {
        assert_eq!(w.class, SecurityClass::Unr, "{}", w.name);
    }
    for w in spec2017(Scale(1)).into_iter().chain(arch_wasm(Scale(1))) {
        assert_eq!(w.class, SecurityClass::Arch, "{}", w.name);
    }
}

#[test]
fn int_subset_excludes_fp() {
    let int: Vec<String> = spec2017_int(Scale(1)).into_iter().map(|w| w.name).collect();
    assert!(!int.contains(&"lbm.s".to_string()));
    assert!(!int.contains(&"nab.s".to_string()));
    assert!(int.contains(&"gcc.s".to_string()));
}

#[test]
fn parsec_is_multithreaded() {
    for w in parsec(Scale(1)) {
        assert!(w.is_multithreaded(), "{}", w.name);
        assert_eq!(w.threads.len(), protean_workloads::THREADS, "{}", w.name);
    }
    assert!(!nginx(1, 1, Scale(1)).is_multithreaded());
}

#[test]
fn scale_grows_workloads() {
    let small = &cts_crypto(Scale(1))[0];
    let big = &cts_crypto(Scale(2))[0];
    assert!(big.max_insts > small.max_insts);
}
