//! Criterion microbenchmarks of the simulator substrate itself:
//! pipeline throughput under each defense, branch predictor, cache, and
//! access-predictor operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protean_arch::ArchState;
use protean_baselines::{SptPolicy, SptSbPolicy, SttPolicy};
use protean_cc::{compile_with, Pass};
use protean_core::{AccessPredictor, ProtDelayPolicy, ProtTrackPolicy};
use protean_isa::{assemble, Program};
use protean_sim::{
    Btb, Cache, CacheConfig, Core, CoreConfig, DefensePolicy, TagePredictor, UnsafePolicy,
};

fn kernel() -> (Program, ArchState) {
    let prog = assemble(
        r#"
          mov r0, 0x10000
          mov r1, 0
        loop:
          and r2, r1, 0x1ff8
          load r3, [r0 + r2]
          mul r4, r3, 3
          add r5, r5, r4
          cmp r3, 500
          jlt skip
          xor r5, r5, r1
        skip:
          add r1, r1, 8
          cmp r1, 40000
          jlt loop
          halt
        "#,
    )
    .unwrap();
    let mut init = ArchState::new();
    for i in 0..0x400u64 {
        init.mem.write(0x10000 + i * 8, 8, i * 7 % 1000);
    }
    (prog, init)
}

fn bench_pipeline(c: &mut Criterion) {
    let (prog, init) = kernel();
    let mut group = c.benchmark_group("pipeline_50k_uops");
    group.sample_size(10);
    let defenses: Vec<(&str, fn() -> Box<dyn DefensePolicy>)> = vec![
        ("unsafe", || Box::new(UnsafePolicy)),
        ("stt", || Box::new(SttPolicy::fixed())),
        ("spt", || Box::new(SptPolicy::fixed())),
        ("spt-sb", || Box::new(SptSbPolicy::fixed())),
        ("prot-delay", || Box::new(ProtDelayPolicy::new())),
        ("prot-track", || Box::new(ProtTrackPolicy::new())),
    ];
    for (name, make) in defenses {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let core = Core::new(&prog, CoreConfig::p_core(), make(), &init);
                core.run(1_000_000, 60_000_000)
            })
        });
    }
    group.finish();
}

fn bench_protcc(c: &mut Criterion) {
    let (prog, _) = kernel();
    let mut group = c.benchmark_group("protcc_compile");
    for pass in [Pass::Cts, Pass::Ct, Pass::Unr] {
        group.bench_function(BenchmarkId::from_parameter(pass.name()), |b| {
            b.iter(|| compile_with(&prog, pass))
        });
    }
    group.finish();
}

fn bench_structures(c: &mut Criterion) {
    c.bench_function("tage_predict_update", |b| {
        let mut p = TagePredictor::new();
        let mut i = 0u64;
        b.iter(|| {
            let pc = 0x400000 + (i % 64) * 8;
            let pred = p.predict(pc);
            p.update(pc, pred, i % 3 == 0);
            i += 1;
        })
    });
    c.bench_function("btb_lookup", |b| {
        let mut btb = Btb::new(4096);
        for i in 0..512u64 {
            btb.update(0x400000 + i * 4, i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            btb.lookup(0x400000 + (i % 512) * 4)
        })
    });
    c.bench_function("l1d_access", |b| {
        let cfg = CacheConfig {
            size_bytes: 48 * 1024,
            ways: 12,
            line_bytes: 64,
            latency: 5,
        };
        let mut cache = Cache::new(cfg, true);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x40);
            cache.access(i % (1 << 20))
        })
    });
    c.bench_function("access_predictor", |b| {
        let mut p = AccessPredictor::new(1024);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pc = 0x400000 + (i % 200) * 4;
            let pred = p.predict_access(pc);
            p.update(pc, !pred);
        })
    });
}

criterion_group!(benches, bench_pipeline, bench_protcc, bench_structures);
criterion_main!(benches);
