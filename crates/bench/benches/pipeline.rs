//! Microbenchmarks of the simulator substrate itself: pipeline
//! throughput under each defense, branch predictor, cache, and
//! access-predictor operations.
//!
//! Run with `cargo bench --bench pipeline`. Sample counts can be
//! overridden with `PROTEAN_BENCH_SAMPLES`/`PROTEAN_BENCH_WARMUP`.

use protean_arch::ArchState;
use protean_baselines::{SptPolicy, SptSbPolicy, SttPolicy};
use protean_bench::harness::{Bench, Case};
use protean_cc::{compile_with, Pass};
use protean_core::{AccessPredictor, ProtDelayPolicy, ProtTrackPolicy};
use protean_isa::{assemble, Program};
use protean_sim::{
    Btb, Cache, CacheConfig, Core, CoreConfig, DefensePolicy, TagePredictor, UnsafePolicy,
};

fn kernel() -> (Program, ArchState) {
    let prog = assemble(
        r#"
          mov r0, 0x10000
          mov r1, 0
        loop:
          and r2, r1, 0x1ff8
          load r3, [r0 + r2]
          mul r4, r3, 3
          add r5, r5, r4
          cmp r3, 500
          jlt skip
          xor r5, r5, r1
        skip:
          add r1, r1, 8
          cmp r1, 40000
          jlt loop
          halt
        "#,
    )
    .unwrap();
    let mut init = ArchState::new();
    for i in 0..0x400u64 {
        init.mem.write(0x10000 + i * 8, 8, i * 7 % 1000);
    }
    (prog, init)
}

fn bench_pipeline() {
    let (prog, init) = kernel();
    let bench = Bench::new("pipeline_50k_uops");
    let defenses: Vec<(&str, fn() -> Box<dyn DefensePolicy>)> = vec![
        ("unsafe", || Box::new(UnsafePolicy)),
        ("stt", || Box::new(SttPolicy::fixed())),
        ("spt", || Box::new(SptPolicy::fixed())),
        ("spt-sb", || Box::new(SptSbPolicy::fixed())),
        ("prot-delay", || Box::new(ProtDelayPolicy::new())),
        ("prot-track", || Box::new(ProtTrackPolicy::new())),
    ];
    // One parallel job per defense case; samples within a case stay
    // serial (see `Bench::run_parallel`).
    let cases: Vec<Case<'_, _>> = defenses
        .into_iter()
        .map(|(name, make)| {
            let (prog, init) = (&prog, &init);
            let f: Box<dyn Fn() -> _ + Send + Sync> = Box::new(move || {
                let core = Core::new(prog, CoreConfig::p_core(), make(), init);
                core.run(1_000_000, 60_000_000)
            });
            (name, f)
        })
        .collect();
    bench.run_parallel(cases);
}

fn bench_protcc() {
    let (prog, _) = kernel();
    let bench = Bench::new("protcc_compile").samples(20);
    for pass in [Pass::Cts, Pass::Ct, Pass::Unr] {
        bench.run(pass.name(), || compile_with(&prog, pass));
    }
}

fn bench_structures() {
    // Structure operations are nanosecond-scale; batch them so each
    // sample is long enough for the wall clock to resolve.
    const BATCH: u64 = 100_000;
    let bench = Bench::new("structures_100k_ops").samples(20);
    bench.run("tage_predict_update", || {
        let mut p = TagePredictor::new();
        let mut acc = 0u64;
        for i in 0..BATCH {
            let pc = 0x400000 + (i % 64) * 8;
            let pred = p.predict(pc);
            p.update(pc, pred, i % 3 == 0);
            acc += pred as u64;
        }
        acc
    });
    bench.run("btb_lookup", || {
        let mut btb = Btb::new(4096);
        for i in 0..512u64 {
            btb.update(0x400000 + i * 4, i);
        }
        let mut acc = 0u64;
        for i in 0..BATCH {
            acc += btb.lookup(0x400000 + (i % 512) * 4).unwrap_or(0);
        }
        acc
    });
    bench.run("l1d_access", || {
        let cfg = CacheConfig {
            size_bytes: 48 * 1024,
            ways: 12,
            line_bytes: 64,
            latency: 5,
        };
        let mut cache = Cache::new(cfg, true);
        for i in 0..BATCH {
            cache.access((i * 0x40) % (1 << 20));
        }
        cache.hits
    });
    bench.run("access_predictor", || {
        let mut p = AccessPredictor::new(1024);
        let mut acc = 0u64;
        for i in 0..BATCH {
            let pc = 0x400000 + (i % 200) * 4;
            let pred = p.predict_access(pc);
            p.update(pc, !pred);
            acc += pred as u64;
        }
        acc
    });
}

fn main() {
    bench_pipeline();
    bench_protcc();
    bench_structures();
}
