//! Criterion wrappers around the table-generation harness: one
//! representative workload per paper table, timed end to end (the same
//! subset the artifact's `--bench` quick mode uses, §A-F1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protean_bench::{binary_for, run_workload, Binary, Defense};
use protean_sim::CoreConfig;
use protean_workloads::{arch_wasm, ct_crypto, cts_crypto, nginx, unr_crypto, Scale};

fn bench_table_v_rows(c: &mut Criterion) {
    let core = CoreConfig::p_core();
    let mut group = c.benchmark_group("table_v_row");
    group.sample_size(10);
    // The shortest-host-runtime benchmark of each suite, as in §A-F1.
    let rows: Vec<(&str, protean_workloads::Workload, Defense)> = vec![
        ("lmb/STT", arch_wasm(Scale(1)).remove(5), Defense::Stt),
        ("poly1305/SPT", cts_crypto(Scale(1)).remove(2), Defense::Spt),
        ("bearssl/SPT", ct_crypto(Scale(1)).remove(0), Defense::Spt),
        (
            "bnexp/SPT-SB",
            unr_crypto(Scale(1)).remove(0),
            Defense::SptSb,
        ),
        ("nginx.c1r1/SPT-SB", nginx(1, 1, Scale(1)), Defense::SptSb),
    ];
    for (name, w, baseline) in rows {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let base = run_workload(&w, &core, Defense::Unsafe, Binary::Base);
                let bl = run_workload(&w, &core, baseline, Binary::Base);
                let track = run_workload(
                    &w,
                    &core,
                    Defense::ProtTrack,
                    binary_for(Defense::ProtTrack, w.class),
                );
                (base.cycles, bl.cycles, track.cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table_v_rows);
criterion_main!(benches);
