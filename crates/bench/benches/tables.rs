//! End-to-end timings of the table-generation harness: one
//! representative workload per paper table (the same subset the
//! artifact's `--bench` quick mode uses, §A-F1).
//!
//! Run with `cargo bench --bench tables`.

use protean_bench::harness::{Bench, Case};
use protean_bench::{binary_for, run_workload, Binary, Defense};
use protean_sim::CoreConfig;
use protean_workloads::{arch_wasm, ct_crypto, cts_crypto, nginx, unr_crypto, Scale};

fn main() {
    let core = CoreConfig::p_core();
    let bench = Bench::new("table_v_row");
    // The shortest-host-runtime benchmark of each suite, as in §A-F1.
    let rows: Vec<(&str, protean_workloads::Workload, Defense)> = vec![
        ("lmb/STT", arch_wasm(Scale(1)).remove(5), Defense::Stt),
        ("poly1305/SPT", cts_crypto(Scale(1)).remove(2), Defense::Spt),
        ("bearssl/SPT", ct_crypto(Scale(1)).remove(0), Defense::Spt),
        (
            "bnexp/SPT-SB",
            unr_crypto(Scale(1)).remove(0),
            Defense::SptSb,
        ),
        ("nginx.c1r1/SPT-SB", nginx(1, 1, Scale(1)), Defense::SptSb),
    ];
    // One parallel job per table row; each row's three simulations stay
    // serial inside its job (see `Bench::run_parallel`).
    let cases: Vec<Case<'_, _>> = rows
        .iter()
        .map(|(name, w, baseline)| {
            let core = &core;
            let f: Box<dyn Fn() -> _ + Send + Sync> = Box::new(move || {
                let base = run_workload(w, core, Defense::Unsafe, Binary::Base);
                let bl = run_workload(w, core, *baseline, Binary::Base);
                let track = run_workload(
                    w,
                    core,
                    Defense::ProtTrack,
                    binary_for(Defense::ProtTrack, w.class),
                );
                (base.cycles, bl.cycles, track.cycles)
            });
            (*name, f)
        })
        .collect();
    bench.run_parallel(cases);
}
