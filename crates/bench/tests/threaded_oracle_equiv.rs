//! Differential property test for the threaded-code architectural
//! oracle: the closure-IR fast mode ([`Emulator::with_threaded`]) and
//! the reference interpreter must produce **bit-identical executions**
//! — exit status, the full per-step [`ExecRecord`] stream (PCs, operand
//! reads, register/memory writes, branch resolutions, protection
//! bits), final architectural registers, and the final ProtSet — on
//! random amulet-generated programs under every ProtCC instrumentation
//! pass, and therefore identical projections under every observer mode.
//!
//! This is the property that lets `amulet::fuzzer` run the threaded
//! backend by default while the interpreter stays the semantic ground
//! truth: any divergence here is a lowering bug, never a tolerated
//! approximation.

use protean_amulet::{generate, init_cold_chain, GenConfig, PUBLIC_BASE, PUBLIC_SIZE};
use protean_arch::{ArchState, Emulator, ObserverMode, ThreadedProgram};
use protean_cc::{compile_with, public_typing, Pass};
use protean_isa::{Program, Reg};
use protean_testkit::{Checker, Rng};

/// Matches the fuzzer's architectural step budget.
const MAX_STEPS: u64 = 60_000;

/// The shipped instrumentation passes: each populates PROT prefixes
/// differently, so together they exercise the prot-propagation paths
/// (full, partial, none, random) of both backends.
const PASSES: [Pass; 5] = [
    Pass::Arch,
    Pass::Ct,
    Pass::Cts,
    Pass::Unr,
    Pass::Rand { prob: 0.5, seed: 7 },
];

/// A random instrumented program plus fuzzer-shaped input state.
fn arb_case(rng: &mut Rng) -> (u64, Vec<Program>, ArchState) {
    let seed = rng.gen::<u64>();
    let raw = generate(&GenConfig {
        segments: 3 + (seed % 4) as usize,
        gadget_bias: 0.2 + (seed >> 8 & 0x3f) as f64 / 100.0,
        seed,
    });
    let programs = PASSES
        .iter()
        .map(|pass| compile_with(&raw, *pass).program)
        .collect();
    let mut state = ArchState::new();
    init_cold_chain(&mut state.mem);
    for i in 0u64..PUBLIC_SIZE / 8 {
        let v = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i.wrapping_mul(7))
            % 64;
        state.mem.write(PUBLIC_BASE + i * 8, 8, v);
    }
    for i in 0..6 {
        state.set_reg(Reg::gpr(i), (seed.wrapping_mul(31) + i as u64 * 13) % 1024);
    }
    (seed, programs, state)
}

#[test]
fn threaded_oracle_matches_interpreter_exactly() {
    Checker::new("threaded_oracle_matches_interpreter_exactly")
        .cases(12)
        .run(arb_case, |(seed, programs, input)| {
            for program in programs {
                let threaded = ThreadedProgram::new(program);

                let mut interp = Emulator::new(program, input.clone());
                let (interp_exit, interp_records) = interp.run(MAX_STEPS);

                let mut fast = Emulator::with_threaded(program, &threaded, input.clone());
                let (fast_exit, fast_records) = fast.run(MAX_STEPS);

                let ctx = format!("seed={seed:#x}");
                assert_eq!(interp_exit, fast_exit, "exit status diverged: {ctx}");
                assert_eq!(interp.steps(), fast.steps(), "step count diverged: {ctx}");
                // The full record stream: every PC, operand read,
                // register/memory write, branch resolution, and
                // protection bit of every step.
                assert_eq!(
                    interp_records, fast_records,
                    "ExecRecord stream diverged: {ctx}"
                );
                // Final architectural state and ProtSet.
                for r in Reg::all() {
                    assert_eq!(interp.state.reg(r), fast.state.reg(r), "{r:?}: {ctx}");
                }
                assert_eq!(
                    interp.prot.protected_regs(),
                    fast.prot.protected_regs(),
                    "register ProtSet diverged: {ctx}"
                );
                assert_eq!(
                    interp.prot.unprotected_byte_count(),
                    fast.prot.unprotected_byte_count(),
                    "memory ProtSet diverged: {ctx}"
                );

                // Every observer projection of the trace — ARCH, CT,
                // CTS (with this binary's secrecy typing), UNPROT —
                // agrees between the backends.
                for observer in [
                    ObserverMode::Arch,
                    ObserverMode::Ct,
                    ObserverMode::Cts(public_typing(program)),
                    ObserverMode::Unprot,
                ] {
                    assert_eq!(
                        observer.trace(&interp_records),
                        observer.trace(&fast_records),
                        "{} projection diverged: {ctx}",
                        observer.name()
                    );
                }
            }
        });
}
