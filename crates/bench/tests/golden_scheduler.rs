//! Golden-equivalence fixtures for the event-driven core scheduler.
//!
//! Runs a fixed, deterministic corpus of amulet-generated programs
//! through **every shipped defense** on several core configurations and
//! compares a full observational snapshot — exit reason, final
//! architectural registers, architectural protection bits, the
//! adversary-visible cache tag state, per-µop commit timing, and every
//! `Stats` counter — against a fixture committed *before* the scheduler
//! rewrite. Any drift in cycle counts, blocked-cycle attribution, or
//! squash behaviour fails this test: it is the proof that the
//! event-wheel scheduler and idle-cycle fast-forward are cycle-exact,
//! not approximately so.
//!
//! Regenerate (only when an *intentional* timing change lands) with:
//!
//! ```text
//! PROTEAN_GOLDEN_REGEN=1 cargo test -p protean-bench --test golden_scheduler
//! ```

use protean_amulet::{generate, init_cold_chain, GenConfig, PUBLIC_BASE, PUBLIC_SIZE};
use protean_arch::ArchState;
use protean_bench::Defense;
use protean_isa::{Program, Reg};
use protean_sim::{Core, CoreConfig, MemProtTracking, SpeculationModel};

/// Committed-instruction budget per run; corpus programs halt long
/// before this.
const MAX_INSTS: u64 = 50_000;
/// Cycle budget per run.
const MAX_CYCLES: u64 = 5_000_000;

/// Every defense the repo ships, including the originally-released
/// (buggy) baseline variants and the raw ProtISA mechanisms — the
/// scheduler must be exact under all of their gating patterns.
const DEFENSES: [Defense; 14] = [
    Defense::Unsafe,
    Defense::Nda,
    Defense::Stt,
    Defense::SttOriginal,
    Defense::Spt,
    Defense::SptOriginal,
    Defense::SptNoPerfFix,
    Defense::SptSb,
    Defense::SptSbOriginal,
    Defense::ProtDelay,
    Defense::ProtTrack,
    Defense::ProtTrackEntries(64),
    Defense::RawAccessDelay,
    Defense::RawAccessTrack,
];

/// The deterministic program corpus: seeds chosen to cover plain code,
/// gadget-heavy code, and longer multi-segment programs.
fn corpus() -> Vec<(String, Program)> {
    let shapes = [
        (1u64, 4usize, 0.5f64),
        (2, 6, 0.8),
        (3, 8, 0.3),
        (4, 10, 0.6),
    ];
    shapes
        .iter()
        .map(|&(seed, segments, gadget_bias)| {
            let cfg = GenConfig {
                segments,
                gadget_bias,
                seed,
            };
            (format!("g{seed}s{segments}"), generate(&cfg))
        })
        .collect()
}

/// Deterministic initial state, mirroring the fuzzer's input shape:
/// cold pointer chain, small public indices, small GPR values.
fn corpus_input(seed: u64) -> ArchState {
    let mut state = ArchState::new();
    init_cold_chain(&mut state.mem);
    for i in 0u64..PUBLIC_SIZE / 8 {
        let v = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i.wrapping_mul(7))
            % 64;
        state.mem.write(PUBLIC_BASE + i * 8, 8, v);
    }
    for i in 0..6 {
        state.set_reg(Reg::gpr(i), (seed.wrapping_mul(31) + i as u64 * 13) % 1024);
    }
    state
}

/// The core configurations under test: the tiny config (high squash
/// pressure, traced), both speculation models, and the memory
/// protection tracking ablations, plus a realistically sized core.
fn configs() -> Vec<(&'static str, CoreConfig, bool)> {
    let mut tiny_ctrl = CoreConfig::test_tiny();
    tiny_ctrl.speculation = SpeculationModel::Control;
    let mut tiny_shadow = CoreConfig::test_tiny();
    tiny_shadow.mem_prot = MemProtTracking::PerfectShadow;
    let mut tiny_noprot = CoreConfig::test_tiny();
    tiny_noprot.mem_prot = MemProtTracking::None;
    vec![
        ("tiny", CoreConfig::test_tiny(), true),
        ("tiny_ctrl", tiny_ctrl, false),
        ("tiny_shadow", tiny_shadow, false),
        ("tiny_noprot", tiny_noprot, false),
        ("e_core", CoreConfig::e_core(), false),
    ]
}

/// FNV-1a over a word stream — collision-resistant enough to pin large
/// vectors (registers, cache observations, timing tuples) to one
/// fixture token.
fn fnv(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One snapshot line: everything observable about a finished run.
fn snapshot(name: &str, program: &Program, config: &CoreConfig, traced: bool, seed: u64) -> String {
    let mut lines = String::new();
    for defense in DEFENSES {
        let input = corpus_input(seed);
        let mut core = Core::new(program, config.clone(), defense.make(), &input);
        if traced {
            core.record_traces(true);
        }
        let r = core.run(MAX_INSTS, MAX_CYCLES);
        let regs = fnv(r.final_regs.iter().copied());
        let prot = fnv(r.final_reg_prot.iter().map(|&b| b as u64));
        let cache = fnv(r.cache_obs.iter().copied());
        let timing = fnv(r.timing.iter().flat_map(|t| t.iter().copied()));
        lines.push_str(&format!(
            "{name}/{defense:?}: exit={:?} regs={regs:016x} prot={prot:016x} \
             cache={cache:016x} timing={timing:016x} stats={:?}\n",
            r.exit, r.stats
        ));
    }
    lines
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_scheduler.txt")
}

#[test]
fn scheduler_is_cycle_exact_against_golden_fixture() {
    let mut got = String::new();
    for (prog_name, program) in corpus() {
        for (cfg_name, config, traced) in configs() {
            let seed = prog_name.as_bytes().iter().map(|&b| b as u64).sum::<u64>();
            got.push_str(&snapshot(
                &format!("{prog_name}/{cfg_name}"),
                &program,
                &config,
                traced,
                seed,
            ));
        }
    }

    let path = fixture_path();
    if std::env::var_os("PROTEAN_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        println!(
            "regenerated {} ({} lines)",
            path.display(),
            got.lines().count()
        );
        return;
    }

    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             PROTEAN_GOLDEN_REGEN=1 cargo test -p protean-bench --test golden_scheduler",
            path.display()
        )
    });
    if got != want {
        let mut diffs = Vec::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diffs.push(format!("line {}:\n  want: {w}\n  got:  {g}", i + 1));
            }
        }
        let extra = got.lines().count() as i64 - want.lines().count() as i64;
        panic!(
            "golden fixture mismatch: {} differing line(s), line-count delta {extra}\n{}",
            diffs.len(),
            diffs.iter().take(8).cloned().collect::<Vec<_>>().join("\n")
        );
    }
}
