//! `Core::reset` equivalence: an arena core that is reset and reused
//! must be observationally indistinguishable from a freshly constructed
//! one.
//!
//! The fuzzer's hot loop reuses one `Core` per program (base run plus
//! every mutant run), so any state that survives a reset — a stale
//! predictor counter, a warm cache line, a leftover taint bit, an
//! unreturned physical register — would silently change campaign
//! results. This test drives an arena core through an interleaved
//! sequence of (program, defense, input) triples, resetting between
//! runs, and compares the *complete* observable result (exit reason,
//! every `Stats` counter, final registers and protection bits, the
//! adversary-visible cache state, commit timing, and committed indices)
//! against a fresh `Core::new` for the same triple. Defenses are
//! interleaved so consecutive arena runs switch policy (including the
//! L1D meta-fill polarity) and program every time.

use protean_amulet::{generate, init_cold_chain, GenConfig, PUBLIC_BASE, PUBLIC_SIZE};
use protean_arch::ArchState;
use protean_bench::Defense;
use protean_isa::{Program, Reg};
use protean_sim::{Core, CoreConfig, MemProtTracking, SimResult};

const MAX_INSTS: u64 = 50_000;
const MAX_CYCLES: u64 = 5_000_000;

/// A defense slice that flips every reset-sensitive axis: meta-fill
/// polarity (ProtISA defenses fill differently), taint tracking (STT,
/// SPT-SB), wakeup delays (NDA), and the unsafe baseline.
const DEFENSES: [Defense; 6] = [
    Defense::Unsafe,
    Defense::Nda,
    Defense::Stt,
    Defense::SptSb,
    Defense::ProtDelay,
    Defense::ProtTrack,
];

/// Two corpus programs with different shapes, matching the golden
/// fixture's generator settings.
fn corpus() -> Vec<(String, Program)> {
    [(1u64, 4usize, 0.5f64), (3, 8, 0.3)]
        .iter()
        .map(|&(seed, segments, gadget_bias)| {
            let cfg = GenConfig {
                segments,
                gadget_bias,
                seed,
            };
            (format!("g{seed}s{segments}"), generate(&cfg))
        })
        .collect()
}

/// Deterministic initial state (same shape as the golden fixture's).
fn corpus_input(seed: u64) -> ArchState {
    let mut state = ArchState::new();
    init_cold_chain(&mut state.mem);
    for i in 0u64..PUBLIC_SIZE / 8 {
        let v = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i.wrapping_mul(7))
            % 64;
        state.mem.write(PUBLIC_BASE + i * 8, 8, v);
    }
    for i in 0..6 {
        state.set_reg(Reg::gpr(i), (seed.wrapping_mul(31) + i as u64 * 13) % 1024);
    }
    state
}

/// Configs covering the traced tiny core, the shadow memory-protection
/// ablation (exercises `shadow_unprot` reset), and a realistic core.
fn configs() -> Vec<(&'static str, CoreConfig, bool)> {
    let mut tiny_shadow = CoreConfig::test_tiny();
    tiny_shadow.mem_prot = MemProtTracking::PerfectShadow;
    vec![
        ("tiny", CoreConfig::test_tiny(), true),
        ("tiny_shadow", tiny_shadow, false),
        ("e_core", CoreConfig::e_core(), false),
    ]
}

/// Everything observable about a finished run, in `Debug` form so a
/// mismatch names the diverging field directly.
fn digest(r: &SimResult) -> String {
    format!(
        "exit={:?} stats={:?} regs={:?} prot={:?} cache={:?} timing={:?} committed={:?}",
        r.exit, r.stats, r.final_regs, r.final_reg_prot, r.cache_obs, r.timing, r.committed_idxs
    )
}

#[test]
fn reset_core_matches_fresh_core() {
    for (cfg_name, config, traced) in configs() {
        let programs = corpus();
        let mut arena: Option<Core> = None;
        for (prog_name, program) in &programs {
            for defense in DEFENSES {
                let seed = prog_name.as_bytes().iter().map(|&b| b as u64).sum::<u64>();
                let input = corpus_input(seed);

                let mut fresh = Core::new(program, config.clone(), defense.make(), &input);
                fresh.record_traces(traced);
                let want = fresh.run(MAX_INSTS, MAX_CYCLES);

                match arena.as_mut() {
                    None => {
                        arena = Some(Core::new(program, config.clone(), defense.make(), &input));
                    }
                    Some(core) => core.reset(program, defense.make(), &input),
                }
                let core = arena.as_mut().expect("just constructed");
                core.record_traces(traced);
                let got = core.run_mut(MAX_INSTS, MAX_CYCLES);

                assert_eq!(
                    digest(&got),
                    digest(&want),
                    "reset core diverged from fresh core \
                     ({cfg_name}/{prog_name}/{defense:?})"
                );
            }
        }
    }
}
