//! Differential property test for the flat ROB-indexed scheduler: the
//! bitset/calendar-queue backend and the legacy ordered-set (`BTreeSet`
//! / `BTreeMap`) backend must produce **identical full observables** —
//! exit reason, final registers, architectural protection bits,
//! adversary-visible cache tags, per-µop commit timing, and every
//! `Stats` counter — on random amulet-generated programs under every
//! shipped defense.
//!
//! The two backends share nothing but the `Scheduler` wrapper: the flat
//! leg walks fixed-capacity bitsets anchored at the ROB head and drains
//! a generation-stamped calendar queue, while the legacy leg iterates
//! `BTreeSet<Seq>` and a `BTreeMap` completion wheel. Any ordering or
//! staleness bug in either shows up as a digest mismatch (the digest
//! includes the cycle-exact commit timing and the occupancy high-water
//! marks, which are computed impl-independently in the wrapper).

use protean_amulet::{generate, init_cold_chain, GenConfig, PUBLIC_BASE, PUBLIC_SIZE};
use protean_arch::ArchState;
use protean_bench::Defense;
use protean_isa::{Program, Reg};
use protean_sim::{Core, CoreConfig, SimResult};
use protean_testkit::{Checker, Rng};

const MAX_INSTS: u64 = 20_000;
const MAX_CYCLES: u64 = 2_000_000;

const DEFENSES: [Defense; 14] = [
    Defense::Unsafe,
    Defense::Nda,
    Defense::Stt,
    Defense::SttOriginal,
    Defense::Spt,
    Defense::SptOriginal,
    Defense::SptNoPerfFix,
    Defense::SptSb,
    Defense::SptSbOriginal,
    Defense::ProtDelay,
    Defense::ProtTrack,
    Defense::ProtTrackEntries(64),
    Defense::RawAccessDelay,
    Defense::RawAccessTrack,
];

/// A random program plus deterministic fuzzer-shaped input.
fn arb_case(rng: &mut Rng) -> (u64, Program, ArchState) {
    let seed = rng.gen::<u64>();
    let program = generate(&GenConfig {
        segments: 3 + (seed % 4) as usize,
        gadget_bias: 0.2 + (seed >> 8 & 0x3f) as f64 / 100.0,
        seed,
    });
    let mut state = ArchState::new();
    init_cold_chain(&mut state.mem);
    for i in 0u64..PUBLIC_SIZE / 8 {
        let v = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i.wrapping_mul(7))
            % 64;
        state.mem.write(PUBLIC_BASE + i * 8, 8, v);
    }
    for i in 0..6 {
        state.set_reg(Reg::gpr(i), (seed.wrapping_mul(31) + i as u64 * 13) % 1024);
    }
    (seed, program, state)
}

/// Everything observable about a finished run, rendered comparable.
fn digest(r: &SimResult) -> String {
    format!(
        "exit={:?} regs={:?} prot={:?} cache={:?} timing={:?} idxs={:?} stats={:?}",
        r.exit, r.final_regs, r.final_reg_prot, r.cache_obs, r.timing, r.committed_idxs, r.stats
    )
}

fn run(program: &Program, input: &ArchState, defense: Defense, flat_sched: bool) -> SimResult {
    let mut cfg = CoreConfig::test_tiny();
    cfg.flat_sched = flat_sched;
    let mut core = Core::new(program, cfg, defense.make(), input);
    core.record_traces(true);
    core.run(MAX_INSTS, MAX_CYCLES)
}

#[test]
fn flat_and_btree_schedulers_are_observationally_identical() {
    // Each case runs 2 legs × 14 defenses on the tiny (high squash
    // pressure) config, so a handful of cases covers ROB-ring
    // wraparound, stale wheel events surviving squashes, dep-arena slot
    // reuse, and every defense's block/wake pattern.
    Checker::new("flat_and_btree_schedulers_are_observationally_identical")
        .cases(6)
        .run(arb_case, |(seed, program, input)| {
            for defense in DEFENSES {
                let flat = run(program, input, defense, true);
                let legacy = run(program, input, defense, false);
                assert_eq!(
                    digest(&flat),
                    digest(&legacy),
                    "scheduler-backend divergence: seed={seed:#x} defense={defense:?}"
                );
            }
        });
}
