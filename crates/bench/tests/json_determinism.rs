//! The JSON bench reports are part of the regression workflow: a report
//! produced by a parallel sweep must be byte-identical to one produced
//! serially, or diffing two `bench_results/` directories becomes
//! meaningless. This test rebuilds the same report at 1 and 4 workers
//! through the same `protean_jobs` fan-out the bench binaries use and
//! compares the rendered bytes.

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{measure, Binary, Defense, Measured};
use protean_sim::json::Json;
use protean_sim::CoreConfig;
use protean_workloads::{cts_crypto, Scale};

/// Builds the same report the bench binaries would: one parallel job per
/// (defense × workload) cell, rows pushed in cell order afterwards.
fn build_report(workers: usize) -> String {
    let mut ws = cts_crypto(Scale(1));
    ws.truncate(2);
    let core = CoreConfig::e_core();
    let defenses = [("STT", Defense::Stt), ("NDA", Defense::Nda)];
    let cells: Vec<(usize, usize)> = (0..defenses.len())
        .flat_map(|d| (0..ws.len()).map(move |w| (d, w)))
        .collect();
    let measured: Vec<Measured> = protean_jobs::map_indexed_with(workers, cells.len(), |i| {
        let (d, w) = cells[i];
        measure(&ws[w], &core, defenses[d].1, Binary::Base)
    });
    let mut rep = BenchReport::new("determinism_probe");
    for (&(d, w), m) in cells.iter().zip(&measured) {
        let mut fields = vec![
            ("defense", Json::str(defenses[d].0)),
            ("workload", Json::str(ws[w].name.clone())),
        ];
        fields.extend(measure_fields(&m.run, m.norm));
        rep.row(fields);
    }
    rep.render()
}

#[test]
fn report_bytes_identical_across_worker_counts() {
    let serial = build_report(1);
    let parallel = build_report(4);
    assert_eq!(serial, parallel, "worker count leaked into the report");

    // And the report both parses and satisfies its own schema.
    let json = Json::parse(&serial).expect("report parses as JSON");
    BenchReport::validate(&json).expect("report satisfies the schema");
    let rows = json.get("rows").and_then(|r| r.as_arr()).expect("rows");
    assert_eq!(rows.len(), 4, "one row per (defense × workload) cell");
}
