//! A lightweight wall-clock benchmark harness.
//!
//! Replaces the workspace's former `criterion` dev-dependency with the
//! minimal feature set the benches use: warmup iterations, a fixed
//! sample count, and a median-of-samples text report. No statistics
//! beyond min/median/max are attempted — the benches here measure
//! simulator throughput where run-to-run noise is far smaller than the
//! effects of interest.
//!
//! Sample counts can be overridden without editing code via
//! `PROTEAN_BENCH_SAMPLES` and `PROTEAN_BENCH_WARMUP`.
//!
//! Setting `PROTEAN_BENCH_JSON=1` additionally writes each group's
//! results as a [`crate::report`] file (`harness_<group>.json`, one row
//! per case with `median_ns`/`min_ns`/`max_ns`) when the [`Bench`] is
//! dropped. This is opt-in — wall-clock numbers are machine-dependent,
//! so unlike the table/figure reports they are *not* expected to be
//! byte-identical across runs, and nothing is written during
//! `cargo test`.
//!
//! [`Bench::run_parallel`] fans a group's cases out on the
//! `protean-jobs` pool — cases run in parallel, the samples *within* a
//! case stay serial, and report lines print in case order once every
//! case has finished. Parallel cases contend for cores, so absolute
//! medians shift; set `PROTEAN_JOBS=1` when an uncontended wall-clock
//! number matters more than total sweep time.
//!
//! # Example
//!
//! ```no_run
//! use protean_bench::harness::Bench;
//!
//! let bench = Bench::new("sums");
//! bench.run("naive", || (0..1_000_000u64).sum::<u64>());
//! ```

use crate::report::BenchReport;
use protean_sim::json::Json;
use std::hint::black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A named benchmark case for [`Bench::run_parallel`]: a label plus the
/// closure to time.
pub type Case<'a, T> = (&'a str, Box<dyn Fn() -> T + Send + Sync + 'a>);

/// Default number of timed samples per case.
pub const DEFAULT_SAMPLES: u32 = 10;

/// Default number of untimed warmup iterations per case.
pub const DEFAULT_WARMUP: u32 = 2;

/// A named group of benchmark cases with shared sample settings.
#[derive(Debug)]
pub struct Bench {
    group: &'static str,
    samples: u32,
    warmup: u32,
    /// Case rows accumulated for the opt-in `PROTEAN_BENCH_JSON` report;
    /// `None` when JSON output is disabled.
    json: Option<Mutex<Vec<(String, Stats)>>>,
}

impl Bench {
    /// Creates a benchmark group named `group` (prefixes every case in
    /// the report). `PROTEAN_BENCH_SAMPLES` and `PROTEAN_BENCH_WARMUP`
    /// override the defaults and any values set with
    /// [`Bench::samples`]/[`Bench::warmup`]; `PROTEAN_BENCH_JSON=1`
    /// enables the JSON report written on drop.
    pub fn new(group: &'static str) -> Bench {
        let json_on = std::env::var("PROTEAN_BENCH_JSON")
            .is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0");
        Bench {
            group,
            samples: env_u32("PROTEAN_BENCH_SAMPLES")
                .unwrap_or(DEFAULT_SAMPLES)
                .max(1),
            warmup: env_u32("PROTEAN_BENCH_WARMUP").unwrap_or(DEFAULT_WARMUP),
            json: json_on.then(|| Mutex::new(Vec::new())),
        }
    }

    /// Sets the timed sample count (unless overridden by
    /// `PROTEAN_BENCH_SAMPLES`).
    pub fn samples(mut self, samples: u32) -> Bench {
        if std::env::var_os("PROTEAN_BENCH_SAMPLES").is_none() {
            self.samples = samples.max(1);
        }
        self
    }

    /// Sets the warmup iteration count (unless overridden by
    /// `PROTEAN_BENCH_WARMUP`).
    pub fn warmup(mut self, warmup: u32) -> Bench {
        if std::env::var_os("PROTEAN_BENCH_WARMUP").is_none() {
            self.warmup = warmup;
        }
        self
    }

    /// Times `f` (`warmup` untimed runs, then `samples` timed runs),
    /// prints one report line, and returns the statistics. The
    /// closure's result is passed through [`black_box`] so the work is
    /// not optimized away.
    pub fn run<T>(&self, case: &str, mut f: impl FnMut() -> T) -> Stats {
        let stats = self.measure(&mut f);
        self.report(case, &stats);
        stats
    }

    /// Times a group of cases **in parallel** (one `protean-jobs` job
    /// per case; `PROTEAN_JOBS` caps the workers). The warmup and timed
    /// samples of each case stay serial inside its job. Report lines
    /// print in case order after every case has finished — never
    /// interleaved — so the report layout is byte-identical at any
    /// worker count, though the measured durations themselves reflect
    /// whatever core contention the parallel cases created.
    pub fn run_parallel<T: Send>(&self, cases: Vec<Case<'_, T>>) -> Vec<Stats> {
        let all = protean_jobs::map(&cases, |_, (_, f)| {
            let mut f = || f();
            self.measure(&mut f)
        });
        for ((case, _), stats) in cases.iter().zip(&all) {
            self.report(case, stats);
        }
        all
    }

    fn measure<T>(&self, f: &mut impl FnMut() -> T) -> Stats {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        Stats {
            median: times[times.len() / 2],
            min: times[0],
            max: times[times.len() - 1],
            samples: self.samples,
        }
    }

    fn report(&self, case: &str, stats: &Stats) {
        println!(
            "{:<44} median {:>9}  min {:>9}  max {:>9}  ({} samples)",
            format!("{}/{}", self.group, case),
            fmt_duration(stats.median),
            fmt_duration(stats.min),
            fmt_duration(stats.max),
            stats.samples,
        );
        if let Some(rows) = &self.json {
            rows.lock().expect("bench rows").push((case.into(), *stats));
        }
    }
}

impl Drop for Bench {
    fn drop(&mut self) {
        let Some(rows) = &self.json else { return };
        let rows = std::mem::take(&mut *rows.lock().expect("bench rows"));
        if rows.is_empty() {
            return;
        }
        let mut rep = BenchReport::new(&format!("harness_{}", self.group));
        for (case, s) in rows {
            rep.row(vec![
                ("group", Json::str(self.group)),
                ("case", Json::str(case)),
                ("median_ns", Json::U64(s.median.as_nanos() as u64)),
                ("min_ns", Json::U64(s.min.as_nanos() as u64)),
                ("max_ns", Json::U64(s.max.as_nanos() as u64)),
                ("samples", Json::U64(u64::from(s.samples))),
            ]);
        }
        rep.write_and_announce();
    }
}

/// Timing summary of one benchmark case.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Median of the timed samples.
    pub median: Duration,
    /// Fastest timed sample.
    pub min: Duration,
    /// Slowest timed sample.
    pub max: Duration,
    /// Number of timed samples.
    pub samples: u32,
}

/// Formats a duration with an adaptive unit (ns/µs/ms/s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn env_u32(var: &str) -> Option<u32> {
    let raw = std::env::var(var).ok()?;
    let parsed = raw.trim().parse();
    Some(parsed.unwrap_or_else(|_| panic!("{var}={raw} is not a u32")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_ordered_and_sample_count_respected() {
        let stats = Bench::new("test")
            .samples(5)
            .warmup(1)
            .run("spin", || std::hint::black_box((0..1000u64).sum::<u64>()));
        assert_eq!(stats.samples, 5);
        assert!(stats.min <= stats.median && stats.median <= stats.max);
    }

    #[test]
    fn run_parallel_returns_stats_in_case_order() {
        let bench = Bench::new("par").samples(3).warmup(0);
        let cases: Vec<Case<'_, u64>> = vec![
            ("a", Box::new(|| black_box((0..100u64).sum::<u64>()))),
            ("b", Box::new(|| black_box((0..200u64).sum::<u64>()))),
            ("c", Box::new(|| black_box((0..300u64).sum::<u64>()))),
        ];
        let all = bench.run_parallel(cases);
        assert_eq!(all.len(), 3);
        for stats in all {
            assert_eq!(stats.samples, 3);
            assert!(stats.min <= stats.median && stats.median <= stats.max);
        }
    }

    #[test]
    fn duration_formatting_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(15)), "15ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00s");
    }
}
