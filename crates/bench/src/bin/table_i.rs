//! Reproduces **Tab. I**: the targeting matrix — which defenses secure
//! which vulnerable-code class, with the runtime overhead of the most
//! performant applicable defense per class (percentages derived from the
//! Tab. V suites, as in the paper), plus the §IV-C2a hardware-cost
//! footer.
//!
//! ```text
//! cargo run --release -p protean-bench --bin table_i [--quick]
//! ```

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{geomean, measure, Binary, Defense, TablePrinter};
use protean_cc::Pass;
use protean_core::area;
use protean_sim::json::Json;
use protean_sim::CoreConfig;
use protean_workloads::{arch_wasm, ct_crypto, cts_crypto, nginx, unr_crypto, Scale, Workload};

// One `protean-jobs` job per workload (base + defense run); the geomean
// consumes results in workload order, so the table — and the JSON rows
// pushed per workload — is byte-identical at any `PROTEAN_JOBS` setting.
fn overhead(
    rep: &mut BenchReport,
    defense_label: &str,
    suite: &str,
    ws: &[Workload],
    d: Defense,
    binary: impl Fn(&Workload) -> Binary + Sync,
) -> f64 {
    let core = CoreConfig::p_core();
    let measured = protean_jobs::map(ws, |_, w| measure(w, &core, d, binary(w)));
    for (w, m) in ws.iter().zip(&measured) {
        let mut fields = vec![
            ("defense", Json::str(defense_label)),
            ("suite", Json::str(suite)),
            ("workload", Json::str(w.name.clone())),
        ];
        fields.extend(measure_fields(&m.run, m.norm));
        rep.row(fields);
    }
    let norms: Vec<f64> = measured.iter().map(|m| m.norm).collect();
    (geomean(&norms) - 1.0) * 100.0
}

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let scale = Scale(scale);
    let mut suites: Vec<Vec<Workload>> = vec![
        arch_wasm(scale),
        cts_crypto(scale),
        ct_crypto(scale),
        unr_crypto(scale),
    ];
    let grid: &[(u64, u64)] = if quick {
        &[(1, 1)]
    } else {
        &[(1, 1), (2, 2), (4, 4)]
    };
    let multi: Vec<Workload> = grid.iter().map(|(c, r)| nginx(*c, *r, scale)).collect();
    if quick {
        for s in &mut suites {
            s.truncate(2);
        }
    }
    let [arch, cts, ct, unr] = <[Vec<Workload>; 4]>::try_from(suites).expect("four suites");

    let pct = |v: f64| format!("{v:.0}%");
    let base_bin = |_: &Workload| Binary::Base;

    // Per paper Tab. I: percentage = overhead of the most performant
    // available defense securing that class; ✗ = does not secure.
    let mut rep = BenchReport::new("table_i");
    let stt_arch = overhead(&mut rep, "STT", "ARCH-Wasm", &arch, Defense::Stt, base_bin);
    let spt_cts = overhead(&mut rep, "SPT", "CTS-Crypto", &cts, Defense::Spt, base_bin);
    let spt_ct = overhead(&mut rep, "SPT", "CT-Crypto", &ct, Defense::Spt, base_bin);
    let sptsb_unr = overhead(
        &mut rep,
        "SPT-SB",
        "UNR-Crypto",
        &unr,
        Defense::SptSb,
        base_bin,
    );
    let sptsb_multi = overhead(
        &mut rep,
        "SPT-SB",
        "nginx",
        &multi,
        Defense::SptSb,
        base_bin,
    );

    let mut protean = |d: Defense, label: &str| {
        let class_bin = |w: &Workload| Binary::SingleClass(Pass::for_class(w.class));
        (
            overhead(&mut rep, label, "ARCH-Wasm", &arch, d, class_bin),
            overhead(&mut rep, label, "CTS-Crypto", &cts, d, class_bin),
            overhead(&mut rep, label, "CT-Crypto", &ct, d, class_bin),
            overhead(&mut rep, label, "UNR-Crypto", &unr, d, class_bin),
            overhead(&mut rep, label, "nginx", &multi, d, |_| Binary::MultiClass),
        )
    };
    let (d_arch, d_cts, d_ct, d_unr, d_multi) = protean(Defense::ProtDelay, "PROTEAN (ProtDelay)");
    let (t_arch, t_cts, t_ct, t_unr, t_multi) = protean(Defense::ProtTrack, "PROTEAN (ProtTrack)");

    let t = TablePrinter::new(&[22, 14, 8, 8, 8, 8, 10]);
    println!("Table I: defenses, ProtSets, and targeted classes (measured overheads)");
    t.row(&[
        "defense".into(),
        "mechanism".into(),
        "ARCH".into(),
        "CTS".into(),
        "CT".into(),
        "UNR".into(),
        "multi".into(),
    ]);
    t.sep();
    t.row(&[
        "NDA/SpecShield".into(),
        "AccessDelay".into(),
        "Y".into(),
        "x".into(),
        "x".into(),
        "x".into(),
        "x".into(),
    ]);
    t.row(&[
        "STT".into(),
        "AccessTrack".into(),
        pct(stt_arch),
        "x".into(),
        "x".into(),
        "x".into(),
        "x".into(),
    ]);
    t.row(&[
        "SPT".into(),
        "AccessTrack+".into(),
        "Y".into(),
        pct(spt_cts),
        pct(spt_ct),
        "x".into(),
        "x".into(),
    ]);
    t.row(&[
        "SPT-SB".into(),
        "XmitDelay".into(),
        "Y".into(),
        "Y".into(),
        "Y".into(),
        pct(sptsb_unr),
        pct(sptsb_multi),
    ]);
    t.row(&[
        "PROTEAN (ProtDelay)".into(),
        "ProtDelay".into(),
        pct(d_arch),
        pct(d_cts),
        pct(d_ct),
        pct(d_unr),
        pct(d_multi),
    ]);
    t.row(&[
        "PROTEAN (ProtTrack)".into(),
        "ProtTrack".into(),
        pct(t_arch),
        pct(t_cts),
        pct(t_ct),
        pct(t_unr),
        pct(t_multi),
    ]);
    t.sep();
    println!(
        "Hardware cost (§IV-C2a): P-core prot bits {} KiB ({:.4} mm^2, {:.1}% of L1D); \
         E-core {} KiB ({:.4} mm^2, {:.1}% of L1D); access predictor 128 B",
        area::prot_bits_bytes(48 * 1024) / 1024,
        area::prot_bit_array_area_mm2(48 * 1024),
        area::prot_bit_area_overhead(48 * 1024, area::P_CORE_L1D_AREA_MM2) * 100.0,
        area::prot_bits_bytes(32 * 1024) / 1024,
        area::prot_bit_array_area_mm2(32 * 1024),
        area::prot_bit_area_overhead(32 * 1024, area::E_CORE_L1D_AREA_MM2) * 100.0,
    );
    rep.write_and_announce();
}
