//! `simulate`: run an assembly file under any defense configuration and
//! print statistics — the repository's one-off experimentation tool.
//!
//! ```text
//! cargo run --release -p protean-bench --bin simulate -- <file.pasm>
//!     [--defense unsafe|nda|stt|spt|spt-sb|delay|track]
//!     [--pass arch|cts|ct|unr|multi]     # ProtCC instrumentation
//!     [--core p|e|tiny]
//!     [--timeline N]                      # print the first N committed µops' stage timing
//!     [--trace]                           # pipeline diagram + defense audit log
//!     [--trace-json FILE]                 # write a Chrome trace-event JSON file
//!     [--max-insts N]
//! ```

use protean_arch::ArchState;
use protean_bench::{prepare, Binary, Defense};
use protean_cc::Pass;
use protean_isa::assemble;
use protean_sim::{Core, CoreConfig};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut defense = Defense::Unsafe;
    let mut binary = Binary::Base;
    let mut core = CoreConfig::p_core();
    let mut timeline = 0usize;
    let mut trace = false;
    let mut trace_json: Option<String> = None;
    let mut max_insts = 5_000_000u64;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--defense" => {
                defense = match it.next().map(String::as_str) {
                    Some("unsafe") => Defense::Unsafe,
                    Some("nda") => Defense::Nda,
                    Some("stt") => Defense::Stt,
                    Some("spt") => Defense::Spt,
                    Some("spt-sb") => Defense::SptSb,
                    Some("delay") => Defense::ProtDelay,
                    Some("track") => Defense::ProtTrack,
                    other => die(&format!("unknown defense {other:?}")),
                }
            }
            "--pass" => {
                binary = match it.next().map(String::as_str) {
                    Some("arch") => Binary::SingleClass(Pass::Arch),
                    Some("cts") => Binary::SingleClass(Pass::Cts),
                    Some("ct") => Binary::SingleClass(Pass::Ct),
                    Some("unr") => Binary::SingleClass(Pass::Unr),
                    Some("multi") => Binary::MultiClass,
                    other => die(&format!("unknown pass {other:?}")),
                }
            }
            "--core" => {
                core = match it.next().map(String::as_str) {
                    Some("p") => CoreConfig::p_core(),
                    Some("e") => CoreConfig::e_core(),
                    Some("tiny") => CoreConfig::test_tiny(),
                    other => die(&format!("unknown core {other:?}")),
                }
            }
            "--timeline" => {
                timeline = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--timeline needs a count"));
            }
            "--trace" => trace = true,
            "--trace-json" => {
                trace_json = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--trace-json needs a path")),
                );
            }
            "--max-insts" => {
                max_insts = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--max-insts needs a count"));
            }
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(other.to_string());
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let Some(file) = file else {
        die("usage: simulate <file.pasm> [--defense ...] [--pass ...] [--core ...]")
    };
    let source =
        std::fs::read_to_string(&file).unwrap_or_else(|e| die(&format!("cannot read {file}: {e}")));
    let program = assemble(&source).unwrap_or_else(|e| die(&format!("{file}: {e}")));
    let prepared = prepare(&program, binary);

    if trace || trace_json.is_some() {
        core.trace = true;
    }
    let mut c = Core::new(&prepared, core, defense.make(), &ArchState::new());
    if timeline > 0 {
        c.record_traces(true);
    }
    let r = c.run(max_insts, max_insts.saturating_mul(600));

    println!("exit:        {:?}", r.exit);
    println!("cycles:      {}", r.stats.cycles);
    println!(
        "committed:   {}  (IPC {:.3})",
        r.stats.committed,
        r.stats.ipc()
    );
    println!(
        "branches:    {}  ({:.2}% mispredicted)",
        r.stats.branches,
        r.stats.mispredict_rate() * 100.0
    );
    println!(
        "loads/stores: {}/{}  (forwarded {}; L1D hit rate {:.2}%)",
        r.stats.loads,
        r.stats.stores,
        r.stats.forwards,
        r.stats.l1d_hit_rate() * 100.0
    );
    println!(
        "squashes:    {}  (branch {}, mem-order {}, div-fault {})",
        r.stats.squashed,
        r.stats.branch_squashes,
        r.stats.memorder_squashes,
        r.stats.divfault_squashes
    );
    println!(
        "defense:     exec-blocked {}  wakeup-blocked {}  resolve-blocked {}",
        r.stats.exec_blocked_cycles, r.stats.wakeup_blocked_cycles, r.stats.resolve_blocked_cycles
    );
    for (k, v) in &r.stats.policy {
        println!("  {k}: {v:.4}");
    }
    if timeline > 0 {
        println!("\ntimeline (pc: fetch rename issue complete commit):");
        for row in r.timing.iter().take(timeline) {
            println!(
                "  {:#08x}: {:>6} {:>6} {:>6} {:>6} {:>6}",
                row[0], row[1], row[2], row[3], row[4], row[5]
            );
        }
    }
    if let Some(tr) = &r.trace {
        if trace {
            println!("\n{}", tr.render_pipeline(64, 160));
            println!("{}", tr.render_audit(32));
        }
        if let Some(path) = &trace_json {
            std::fs::write(path, tr.to_chrome_trace())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!("wrote chrome trace to {path}");
        }
    }
}
