//! `campaign_perf`: AMuLeT\* campaign-throughput benchmark (record-only).
//!
//! Times whole fuzzing campaigns — program generation, ProtCC
//! instrumentation, sequential contract traces, and defended hardware
//! runs — and reports **campaign runs per wall-second** (µarch
//! executions compared, `Report::tests`) and **committed-µop
//! throughput**. Contract-testing coverage is bounded by exactly this
//! number, so it is the headline metric for the allocation-free hot
//! paths (COW memory, `Core::reset` arenas).
//!
//! ```text
//! cargo run --release -p protean-bench --bin campaign_perf [--quick]
//! ```
//!
//! Two JSON files are written:
//!
//! * `campaign_perf.json` — wall-clock rows (machine-dependent, exempt
//!   from the byte-identical contract like `perf_smoke`);
//! * `campaign_perf_report.json` — the deterministic campaign counters
//!   only (tests / rejected pairs / violations / false positives /
//!   committed µops). This file **is** byte-identical at any
//!   `PROTEAN_JOBS` setting; `ci.sh` diffs it across worker counts.
//!
//! `PROTEAN_BENCH_SAMPLES` / `PROTEAN_BENCH_WARMUP` override the
//! default 3 samples / 1 warmup.

use protean_amulet::{
    fuzz, run_campaign, Adversary, CampaignConfig, ContractKind, FuzzConfig, Report,
};
use protean_bench::harness::Bench;
use protean_bench::report::BenchReport;
use protean_cc::Pass;
use protean_core::{ProtDelayPolicy, ProtTrackPolicy};
use protean_sim::json::Json;
use protean_sim::{DefensePolicy, UnsafePolicy};

/// One benchmark case: a named campaign configuration plus the defense
/// under test.
struct Case {
    name: &'static str,
    cfg: FuzzConfig,
    factory: &'static (dyn Fn() -> Box<dyn DefensePolicy> + Sync),
}

fn cases(programs: usize) -> Vec<Case> {
    let build = |pass, contract, adversary| {
        let mut cfg = FuzzConfig::quick(pass, contract, adversary);
        cfg.programs = programs;
        cfg.inputs_per_program = 3;
        cfg.gen.seed = 0xbead;
        // Timing benchmark: skip the rendered-trace re-runs for example
        // violations. Every deterministic report counter is unaffected.
        cfg.capture_traces = false;
        cfg
    };
    vec![
        Case {
            name: "unsafe/arch/cache",
            cfg: build(Pass::Arch, ContractKind::ArchSeq, Adversary::CacheTlb),
            factory: &|| Box::new(UnsafePolicy),
        },
        Case {
            name: "protdelay/ct/cache",
            cfg: build(Pass::Ct, ContractKind::CtSeq, Adversary::CacheTlb),
            factory: &|| Box::new(ProtDelayPolicy::new()),
        },
        Case {
            name: "prottrack/unprot/timing",
            cfg: build(
                Pass::Rand { prob: 0.5, seed: 7 },
                ContractKind::UnprotSeq,
                Adversary::Timing,
            ),
            factory: &|| Box::new(ProtTrackPolicy::new()),
        },
    ]
}

fn main() {
    let (quick, _) = protean_bench::parse_flags();
    let programs = if quick { 6 } else { 16 };

    println!("campaign_perf: AMuLeT* campaign throughput (record-only)");
    println!("========================================================\n");

    let bench = Bench::new("campaign_perf").samples(3).warmup(1);
    let mut timing_rep = BenchReport::new("campaign_perf");
    let mut det_rep = BenchReport::new("campaign_perf_report");

    // `PROTEAN_CAMPAIGN_ENGINE=1` routes every campaign through the
    // chunked engine with all features off — `ci.sh` byte-compares the
    // resulting deterministic report against the batch driver's to gate
    // the engine's features-off equivalence contract.
    let engine = std::env::var("PROTEAN_CAMPAIGN_ENGINE").is_ok_and(|v| v == "1");
    let run = move |cfg: &FuzzConfig,
                    factory: &'static (dyn Fn() -> Box<dyn DefensePolicy> + Sync)|
          -> Report {
        if engine {
            run_campaign(&CampaignConfig::new(cfg.clone()), factory).report
        } else {
            fuzz(cfg, factory)
        }
    };

    for case in cases(programs) {
        // One untimed run pins the deterministic counters; the timed
        // samples below re-run the identical campaign.
        let report: Report = run(&case.cfg, case.factory);
        let stats = bench.run(case.name, || run(&case.cfg, case.factory));
        let secs = stats.median.as_secs_f64();
        let runs_per_s = report.tests as f64 / secs;
        let kuops_per_s = report.committed_uops as f64 / secs / 1e3;
        println!(
            "  {:<24} {:>5} tests {:>9} µops  {:>8.1} runs/s  {:>9.1} kuops/s\n",
            case.name, report.tests, report.committed_uops, runs_per_s, kuops_per_s
        );
        timing_rep.row(vec![
            ("case", Json::str(case.name)),
            ("programs", Json::U64(programs as u64)),
            ("tests", Json::U64(report.tests)),
            ("committed_uops", Json::U64(report.committed_uops)),
            ("wall_ms_median", Json::F64(secs * 1e3)),
            ("runs_per_s", Json::F64(runs_per_s)),
            ("kuops_per_s", Json::F64(kuops_per_s)),
        ]);
        det_rep.row(vec![
            ("case", Json::str(case.name)),
            ("programs", Json::U64(programs as u64)),
            ("tests", Json::U64(report.tests)),
            ("pairs_rejected", Json::U64(report.pairs_rejected)),
            ("violations", Json::U64(report.violations)),
            ("false_positives", Json::U64(report.false_positives)),
            ("committed_uops", Json::U64(report.committed_uops)),
            ("hw_truncated", Json::U64(report.hw_truncated)),
            ("no_partner", Json::U64(report.no_partner)),
        ]);
    }

    timing_rep.write_and_announce();
    det_rep.write_and_announce();
    protean_bench::report::write_profile_report_if_enabled();
}
