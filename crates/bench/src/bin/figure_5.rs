//! Reproduces **Fig. 5**: the ProtTrack access-predictor sensitivity
//! study — misprediction rate and runtime overhead versus predictor size
//! (the paper picks n = 1024 because it is within 0.6 % misprediction
//! rate and 0.2 % overhead of an unbounded predictor).
//!
//! Averaged across ProtCC-ARCH- and ProtCC-CT-compiled SPEC2017int
//! benchmarks on a P-core, normalized to the unsafe baseline (§VI-B2a).
//!
//! ```text
//! cargo run --release -p protean-bench --bin figure_5 [--quick]
//! ```

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{geomean, run_workload, Binary, Defense, TablePrinter};
use protean_cc::Pass;
use protean_sim::json::Json;
use protean_sim::CoreConfig;
use protean_workloads::{spec2017_int, Scale};

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let scale = Scale(scale);
    let core = CoreConfig::p_core();
    let mut workloads = spec2017_int(scale);
    if quick {
        workloads.truncate(3);
    }
    let sizes: &[(String, Defense)] = &[
        ("16".into(), Defense::ProtTrackEntries(16)),
        ("64".into(), Defense::ProtTrackEntries(64)),
        ("256".into(), Defense::ProtTrackEntries(256)),
        ("1024".into(), Defense::ProtTrackEntries(1024)),
        ("4096".into(), Defense::ProtTrackEntries(4096)),
        ("unbounded".into(), Defense::ProtTrackUnbounded),
    ];

    // Unsafe baselines first (one job per workload), then one job per
    // (predictor size × pass × workload) cell; per-size aggregation
    // consumes cells in the serial iteration order, so the figure is
    // byte-identical at any `PROTEAN_JOBS` setting.
    let bases = protean_jobs::map(&workloads, |_, w| {
        run_workload(w, &core, Defense::Unsafe, Binary::Base)
    });
    let mut cells: Vec<(&String, Defense, Pass, usize)> = Vec::new();
    for (label, defense) in sizes {
        for pass in [Pass::Arch, Pass::Ct] {
            for w in 0..workloads.len() {
                cells.push((label, *defense, pass, w));
            }
        }
    }
    let runs = protean_jobs::map(&cells, |_, &(_, defense, pass, w)| {
        run_workload(&workloads[w], &core, defense, Binary::SingleClass(pass))
    });
    let measured: Vec<(f64, Option<f64>)> = runs
        .iter()
        .zip(&cells)
        .map(|(r, &(_, _, _, w))| (r.cycles as f64 / bases[w].cycles as f64, r.mispred_rate))
        .collect();

    let mut rep = BenchReport::new("figure_5");
    for ((&(label, _, pass, w), r), &(norm, mispred)) in cells.iter().zip(&runs).zip(&measured) {
        let mut fields = vec![
            ("entries", Json::str(label.clone())),
            ("pass", Json::str(pass.name())),
            ("workload", Json::str(workloads[w].name.clone())),
            ("mispred_rate", mispred.map(Json::F64).unwrap_or(Json::Null)),
        ];
        fields.extend(measure_fields(r, norm));
        rep.row(fields);
    }

    let t = TablePrinter::new(&[12, 16, 16]);
    println!("Figure 5: ProtTrack access-predictor sensitivity (SPEC2017int, P-core)");
    println!("(averaged over ProtCC-ARCH and ProtCC-CT binaries)");
    t.row(&["entries".into(), "mispred rate".into(), "overhead".into()]);
    t.sep();
    let per_size = 2 * workloads.len();
    for (s, (label, _)) in sizes.iter().enumerate() {
        let mut norms = Vec::new();
        let mut rates = Vec::new();
        for (norm, mispred) in &measured[s * per_size..(s + 1) * per_size] {
            norms.push(*norm);
            if let Some(m) = mispred {
                rates.push(*m);
            }
        }
        let rate = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
        t.row(&[
            label.clone(),
            format!("{:.3}%", rate * 100.0),
            format!("{:+.2}%", (geomean(&norms) - 1.0) * 100.0),
        ]);
    }
    rep.write_and_announce();
}
