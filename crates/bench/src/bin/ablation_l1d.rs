//! §IX-A3: protection-tagged L1D variants — no memory tracking (all
//! memory protected) vs the paper's tagged L1D vs an idealized perfect
//! shadow memory, for PROTEAN-Track-ARCH/-CT on SPEC2017int (P-core).

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{geomean, measure, Binary, Defense, TablePrinter};
use protean_cc::Pass;
use protean_sim::json::Json;
use protean_sim::{CoreConfig, MemProtTracking};
use protean_workloads::{spec2017_int, Scale};

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let mut ws = spec2017_int(Scale(scale));
    if quick {
        ws.truncate(3);
    }
    let t = TablePrinter::new(&[16, 14, 14]);
    println!("Ablation (IX-A3): ProtISA memory-protection tracking variants (Track)");
    t.row(&[
        "variant".into(),
        "ARCH overhead".into(),
        "CT overhead".into(),
    ]);
    t.sep();
    let variants = [
        ("disabled", MemProtTracking::None),
        ("tagged L1D", MemProtTracking::TaggedL1d),
        ("perfect shadow", MemProtTracking::PerfectShadow),
    ];
    // One job per (variant × pass × workload) cell; each cell runs its
    // own base because the tracking mode is a *core* parameter.
    let mut cells: Vec<(&'static str, MemProtTracking, Pass, usize)> = Vec::new();
    for (label, mode) in &variants {
        for pass in [Pass::Arch, Pass::Ct] {
            for w in 0..ws.len() {
                cells.push((label, *mode, pass, w));
            }
        }
    }
    let measured = protean_jobs::map(&cells, |_, &(_, mode, pass, w)| {
        let mut core = CoreConfig::p_core();
        core.mem_prot = mode;
        measure(&ws[w], &core, Defense::ProtTrack, Binary::SingleClass(pass))
    });
    let mut rep = BenchReport::new("ablation_l1d");
    for (&(label, _, pass, w), m) in cells.iter().zip(&measured) {
        let mut fields = vec![
            ("variant", Json::str(label)),
            ("pass", Json::str(pass.name())),
            ("workload", Json::str(ws[w].name.clone())),
        ];
        fields.extend(measure_fields(&m.run, m.norm));
        rep.row(fields);
    }
    let norms: Vec<f64> = measured.iter().map(|m| m.norm).collect();
    let mut chunks = norms.chunks_exact(ws.len());
    for (label, _) in variants {
        let mut cols = Vec::new();
        for _ in 0..2 {
            let chunk = chunks.next().expect("one chunk per pass");
            cols.push(format!("{:+.1}%", (geomean(chunk) - 1.0) * 100.0));
        }
        t.row(&[label.into(), cols[0].clone(), cols[1].clone()]);
    }
    rep.write_and_announce();
}
