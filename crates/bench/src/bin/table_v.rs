//! Reproduces **Tab. V**: normalized runtime of Protean on the
//! single-class suites (ARCH-Wasm vs STT, CTS-/CT-Crypto vs SPT,
//! UNR-Crypto vs SPT-SB) and the multi-class nginx web server vs SPT-SB,
//! all on a P-core.
//!
//! One `protean-jobs` job per table row (each row's four simulations —
//! unsafe base, baseline, ProtDelay, ProtTrack — stay serial inside the
//! job); rows print after ordered collection, so stdout is
//! byte-identical at any `PROTEAN_JOBS` setting.
//!
//! ```text
//! cargo run --release -p protean-bench --bin table_v [--quick] [--scale N]
//! ```

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{
    binary_for, fmt_norm, geomean, run_workload, Binary, Defense, RunResult, TablePrinter,
};
use protean_sim::json::Json;
use protean_sim::CoreConfig;
use protean_workloads::{arch_wasm, ct_crypto, cts_crypto, nginx, unr_crypto, Scale, Workload};

// Pushes the three defense-column JSON rows for one table row.
fn json_rows(
    rep: &mut BenchReport,
    suite: &str,
    workload: &str,
    baseline: Defense,
    runs: &[RunResult; 4],
) {
    let labels = [
        format!("{baseline:?}"),
        "ProtDelay".into(),
        "ProtTrack".into(),
    ];
    for (label, run) in labels.iter().zip(&runs[1..]) {
        let mut fields = vec![
            ("suite", Json::str(suite)),
            ("workload", Json::str(workload)),
            ("defense", Json::str(label.clone())),
        ];
        fields.extend(measure_fields(
            run,
            run.cycles as f64 / runs[0].cycles as f64,
        ));
        rep.row(fields);
    }
}

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let scale = Scale(scale);
    let core = CoreConfig::p_core();
    let t = TablePrinter::new(&[18, 10, 10, 10]);

    let mut suites: Vec<(&str, Defense, Vec<Workload>)> = vec![
        ("ARCH-Wasm", Defense::Stt, arch_wasm(scale)),
        ("CTS-Crypto", Defense::Spt, cts_crypto(scale)),
        ("CT-Crypto", Defense::Spt, ct_crypto(scale)),
        ("UNR-Crypto", Defense::SptSb, unr_crypto(scale)),
    ];
    if quick {
        for (_, _, ws) in &mut suites {
            ws.truncate(2);
        }
    }

    println!("Table V: normalized runtime on a P-core (baseline | Protean-Delay | Protean-Track)");

    // One job per workload row: the row's four runs stay serial inside
    // the job, rows fan out across workers.
    let row_jobs: Vec<(&'static str, &Workload, Defense)> = suites
        .iter()
        .flat_map(|(suite, baseline, ws)| ws.iter().map(move |w| (*suite, w, *baseline)))
        .collect();
    let row_runs = protean_jobs::map(&row_jobs, |_, &(_, w, baseline)| {
        let base = run_workload(w, &core, Defense::Unsafe, Binary::Base);
        let b = run_workload(w, &core, baseline, Binary::Base);
        let d = run_workload(
            w,
            &core,
            Defense::ProtDelay,
            binary_for(Defense::ProtDelay, w.class),
        );
        let k = run_workload(
            w,
            &core,
            Defense::ProtTrack,
            binary_for(Defense::ProtTrack, w.class),
        );
        [base, b, d, k]
    });
    let mut rep = BenchReport::new("table_v");
    for (&(suite, w, baseline), runs) in row_jobs.iter().zip(&row_runs) {
        json_rows(&mut rep, suite, &w.name, baseline, runs);
    }

    let mut next_row = row_runs.into_iter();
    for (suite, baseline, workloads) in &suites {
        t.sep();
        t.row(&[
            suite.to_string(),
            format!("{baseline:?}"),
            "Delay".into(),
            "Track".into(),
        ]);
        t.sep();
        let mut cols: [Vec<f64>; 3] = [vec![], vec![], vec![]];
        for w in workloads {
            let runs = next_row.next().expect("one result per row");
            let base = runs[0].cycles as f64;
            let (b, d, k) = (
                runs[1].cycles as f64 / base,
                runs[2].cycles as f64 / base,
                runs[3].cycles as f64 / base,
            );
            cols[0].push(b);
            cols[1].push(d);
            cols[2].push(k);
            t.row(&[w.name.clone(), fmt_norm(b), fmt_norm(d), fmt_norm(k)]);
        }
        t.row(&[
            "geomean".into(),
            fmt_norm(geomean(&cols[0])),
            fmt_norm(geomean(&cols[1])),
            fmt_norm(geomean(&cols[2])),
        ]);
    }

    // Multi-class nginx vs SPT-SB: one job per (cores × requests) grid
    // point, each building its own workload.
    t.sep();
    t.row(&[
        "Multi-Class".into(),
        "SPT-SB".into(),
        "Delay".into(),
        "Track".into(),
    ]);
    t.sep();
    let grid: &[(u64, u64)] = if quick {
        &[(1, 1)]
    } else {
        &[(1, 1), (2, 2), (1, 4), (4, 1), (4, 4)]
    };
    let grid_rows = protean_jobs::map(grid, |_, &(c, r)| {
        let w = nginx(c, r, scale);
        let base = run_workload(&w, &core, Defense::Unsafe, Binary::Base);
        let b = run_workload(&w, &core, Defense::SptSb, Binary::Base);
        let d = run_workload(&w, &core, Defense::ProtDelay, Binary::MultiClass);
        let k = run_workload(&w, &core, Defense::ProtTrack, Binary::MultiClass);
        (w.name.clone(), [base, b, d, k])
    });
    let mut cols: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    for (name, runs) in grid_rows {
        json_rows(&mut rep, "Multi-Class", &name, Defense::SptSb, &runs);
        let base = runs[0].cycles as f64;
        let (b, d, k) = (
            runs[1].cycles as f64 / base,
            runs[2].cycles as f64 / base,
            runs[3].cycles as f64 / base,
        );
        cols[0].push(b);
        cols[1].push(d);
        cols[2].push(k);
        t.row(&[name, fmt_norm(b), fmt_norm(d), fmt_norm(k)]);
    }
    t.row(&[
        "geomean".into(),
        fmt_norm(geomean(&cols[0])),
        fmt_norm(geomean(&cols[1])),
        fmt_norm(geomean(&cols[2])),
    ]);
    rep.write_and_announce();
}
