//! Reproduces **Tab. V**: normalized runtime of Protean on the
//! single-class suites (ARCH-Wasm vs STT, CTS-/CT-Crypto vs SPT,
//! UNR-Crypto vs SPT-SB) and the multi-class nginx web server vs SPT-SB,
//! all on a P-core.
//!
//! One `protean-jobs` job per table row (each row's four simulations —
//! unsafe base, baseline, ProtDelay, ProtTrack — stay serial inside the
//! job); rows print after ordered collection, so stdout is
//! byte-identical at any `PROTEAN_JOBS` setting.
//!
//! ```text
//! cargo run --release -p protean-bench --bin table_v [--quick] [--scale N]
//! ```

use protean_bench::{binary_for, fmt_norm, geomean, run_workload, Binary, Defense, TablePrinter};
use protean_sim::CoreConfig;
use protean_workloads::{arch_wasm, ct_crypto, cts_crypto, nginx, unr_crypto, Scale, Workload};

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let scale = Scale(scale);
    let core = CoreConfig::p_core();
    let t = TablePrinter::new(&[18, 10, 10, 10]);

    let mut suites: Vec<(&str, Defense, Vec<Workload>)> = vec![
        ("ARCH-Wasm", Defense::Stt, arch_wasm(scale)),
        ("CTS-Crypto", Defense::Spt, cts_crypto(scale)),
        ("CT-Crypto", Defense::Spt, ct_crypto(scale)),
        ("UNR-Crypto", Defense::SptSb, unr_crypto(scale)),
    ];
    if quick {
        for (_, _, ws) in &mut suites {
            ws.truncate(2);
        }
    }

    println!("Table V: normalized runtime on a P-core (baseline | Protean-Delay | Protean-Track)");

    // One job per workload row: the row's four runs stay serial inside
    // the job, rows fan out across workers.
    let row_jobs: Vec<(&Workload, Defense)> = suites
        .iter()
        .flat_map(|(_, baseline, ws)| ws.iter().map(move |w| (w, *baseline)))
        .collect();
    let row_norms = protean_jobs::map(&row_jobs, |_, &(w, baseline)| {
        let base = run_workload(w, &core, Defense::Unsafe, Binary::Base).cycles as f64;
        let b = run_workload(w, &core, baseline, Binary::Base).cycles as f64 / base;
        let d = run_workload(
            w,
            &core,
            Defense::ProtDelay,
            binary_for(Defense::ProtDelay, w.class),
        )
        .cycles as f64
            / base;
        let k = run_workload(
            w,
            &core,
            Defense::ProtTrack,
            binary_for(Defense::ProtTrack, w.class),
        )
        .cycles as f64
            / base;
        (b, d, k)
    });

    let mut next_row = row_norms.into_iter();
    for (suite, baseline, workloads) in &suites {
        t.sep();
        t.row(&[
            suite.to_string(),
            format!("{baseline:?}"),
            "Delay".into(),
            "Track".into(),
        ]);
        t.sep();
        let mut cols: [Vec<f64>; 3] = [vec![], vec![], vec![]];
        for w in workloads {
            let (b, d, k) = next_row.next().expect("one result per row");
            cols[0].push(b);
            cols[1].push(d);
            cols[2].push(k);
            t.row(&[w.name.clone(), fmt_norm(b), fmt_norm(d), fmt_norm(k)]);
        }
        t.row(&[
            "geomean".into(),
            fmt_norm(geomean(&cols[0])),
            fmt_norm(geomean(&cols[1])),
            fmt_norm(geomean(&cols[2])),
        ]);
    }

    // Multi-class nginx vs SPT-SB: one job per (cores × requests) grid
    // point, each building its own workload.
    t.sep();
    t.row(&[
        "Multi-Class".into(),
        "SPT-SB".into(),
        "Delay".into(),
        "Track".into(),
    ]);
    t.sep();
    let grid: &[(u64, u64)] = if quick {
        &[(1, 1)]
    } else {
        &[(1, 1), (2, 2), (1, 4), (4, 1), (4, 4)]
    };
    let grid_rows = protean_jobs::map(grid, |_, &(c, r)| {
        let w = nginx(c, r, scale);
        let base = run_workload(&w, &core, Defense::Unsafe, Binary::Base).cycles as f64;
        let b = run_workload(&w, &core, Defense::SptSb, Binary::Base).cycles as f64 / base;
        let d =
            run_workload(&w, &core, Defense::ProtDelay, Binary::MultiClass).cycles as f64 / base;
        let k =
            run_workload(&w, &core, Defense::ProtTrack, Binary::MultiClass).cycles as f64 / base;
        (w.name.clone(), b, d, k)
    });
    let mut cols: [Vec<f64>; 3] = [vec![], vec![], vec![]];
    for (name, b, d, k) in grid_rows {
        cols[0].push(b);
        cols[1].push(d);
        cols[2].push(k);
        t.row(&[name, fmt_norm(b), fmt_norm(d), fmt_norm(k)]);
    }
    t.row(&[
        "geomean".into(),
        fmt_norm(geomean(&cols[0])),
        fmt_norm(geomean(&cols[1])),
        fmt_norm(geomean(&cols[2])),
    ]);
}
