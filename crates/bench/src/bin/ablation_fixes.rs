//! §IX-A7: the performance cost of the paper's security fixes to the
//! secure baselines (division transmitters + pending-squash fix), and of
//! SPT's 32-bit untaint performance fix, on SPEC2017int (P-core).

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{geomean, measure, Binary, Defense, TablePrinter};
use protean_sim::json::Json;
use protean_sim::CoreConfig;
use protean_workloads::{spec2017_int, Scale};

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let mut ws = spec2017_int(Scale(scale));
    if quick {
        ws.truncate(3);
    }
    let core = CoreConfig::p_core();
    let t = TablePrinter::new(&[24, 12]);
    println!("Ablation (IX-A7): secure-baseline bug-fix overhead, SPEC2017int P-core");
    t.row(&["config".into(), "overhead".into()]);
    t.sep();
    let configs = [
        ("STT original", Defense::SttOriginal),
        ("STT fixed", Defense::Stt),
        ("SPT original", Defense::SptOriginal),
        ("SPT fixed, no perf fix", Defense::SptNoPerfFix),
        ("SPT fixed", Defense::Spt),
        ("SPT-SB original", Defense::SptSbOriginal),
        ("SPT-SB fixed", Defense::SptSb),
    ];
    // One job per (config × workload) cell, printed in config order.
    let cells: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|c| (0..ws.len()).map(move |w| (c, w)))
        .collect();
    let measured = protean_jobs::map(&cells, |_, &(c, w)| {
        measure(&ws[w], &core, configs[c].1, Binary::Base)
    });
    let mut rep = BenchReport::new("ablation_fixes");
    for (&(c, w), m) in cells.iter().zip(&measured) {
        let mut fields = vec![
            ("config", Json::str(configs[c].0)),
            ("workload", Json::str(ws[w].name.clone())),
        ];
        fields.extend(measure_fields(&m.run, m.norm));
        rep.row(fields);
    }
    let norms: Vec<f64> = measured.iter().map(|m| m.norm).collect();
    for ((label, _), chunk) in configs.iter().zip(norms.chunks_exact(ws.len())) {
        t.row(&[
            (*label).into(),
            format!("{:+.1}%", (geomean(chunk) - 1.0) * 100.0),
        ]);
    }
    rep.write_and_announce();
}
