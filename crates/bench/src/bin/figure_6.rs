//! Reproduces **Fig. 6**: per-benchmark normalized runtime of
//! PROTEAN-Track-ARCH/-CT versus STT/SPT on the SPEC2017 benchmarks
//! (`*.s`, P-core) and PARSEC (`*.p`, multi-core).
//!
//! ```text
//! cargo run --release -p protean-bench --bin figure_6 [--quick]
//! ```

use protean_bench::{fmt_norm, geomean, run_workload, Binary, Defense, TablePrinter};
use protean_cc::Pass;
use protean_sim::CoreConfig;
use protean_workloads::{parsec, spec2017, Scale, Workload};

fn series(workloads: &[Workload], core: &CoreConfig, t: &TablePrinter, acc: &mut [Vec<f64>; 4]) {
    for w in workloads {
        let base = run_workload(w, core, Defense::Unsafe, Binary::Base).cycles as f64;
        let stt = run_workload(w, core, Defense::Stt, Binary::Base).cycles as f64 / base;
        let t_arch = run_workload(w, core, Defense::ProtTrack, Binary::SingleClass(Pass::Arch))
            .cycles as f64
            / base;
        let spt = run_workload(w, core, Defense::Spt, Binary::Base).cycles as f64 / base;
        let t_ct = run_workload(w, core, Defense::ProtTrack, Binary::SingleClass(Pass::Ct)).cycles
            as f64
            / base;
        acc[0].push(stt);
        acc[1].push(t_arch);
        acc[2].push(spt);
        acc[3].push(t_ct);
        t.row(&[
            w.name.clone(),
            fmt_norm(stt),
            fmt_norm(t_arch),
            fmt_norm(spt),
            fmt_norm(t_ct),
        ]);
    }
}

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let scale = Scale(scale);
    let t = TablePrinter::new(&[18, 10, 12, 10, 12]);
    println!("Figure 6: per-benchmark normalized runtime");
    t.row(&[
        "benchmark".into(),
        "STT".into(),
        "Track-ARCH".into(),
        "SPT".into(),
        "Track-CT".into(),
    ]);
    t.sep();
    let mut acc: [Vec<f64>; 4] = [vec![], vec![], vec![], vec![]];
    let mut spec = spec2017(scale);
    let mut par = parsec(scale);
    if quick {
        spec.truncate(3);
        par.truncate(1);
    }
    series(&spec, &CoreConfig::p_core(), &t, &mut acc);
    series(&par, &CoreConfig::e_core_mt(), &t, &mut acc);
    t.sep();
    t.row(&[
        "geomean".into(),
        fmt_norm(geomean(&acc[0])),
        fmt_norm(geomean(&acc[1])),
        fmt_norm(geomean(&acc[2])),
        fmt_norm(geomean(&acc[3])),
    ]);
}
