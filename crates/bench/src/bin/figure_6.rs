//! Reproduces **Fig. 6**: per-benchmark normalized runtime of
//! PROTEAN-Track-ARCH/-CT versus STT/SPT on the SPEC2017 benchmarks
//! (`*.s`, P-core) and PARSEC (`*.p`, multi-core).
//!
//! ```text
//! cargo run --release -p protean-bench --bin figure_6 [--quick]
//! ```

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{fmt_norm, geomean, run_workload, Binary, Defense, TablePrinter};
use protean_cc::Pass;
use protean_sim::json::Json;
use protean_sim::CoreConfig;
use protean_workloads::{parsec, spec2017, Scale, Workload};

const SERIES: [&str; 4] = ["STT", "Track-ARCH", "SPT", "Track-CT"];

// One `protean-jobs` job per benchmark row (the row's five simulations
// stay serial inside the job); rows print after ordered collection, so
// stdout — and the JSON row order — is byte-identical at any
// `PROTEAN_JOBS` setting.
fn series(
    platform: &str,
    workloads: &[Workload],
    core: &CoreConfig,
    t: &TablePrinter,
    acc: &mut [Vec<f64>; 4],
    rep: &mut BenchReport,
) {
    let rows = protean_jobs::map(workloads, |_, w| {
        let base = run_workload(w, core, Defense::Unsafe, Binary::Base);
        let stt = run_workload(w, core, Defense::Stt, Binary::Base);
        let t_arch = run_workload(w, core, Defense::ProtTrack, Binary::SingleClass(Pass::Arch));
        let spt = run_workload(w, core, Defense::Spt, Binary::Base);
        let t_ct = run_workload(w, core, Defense::ProtTrack, Binary::SingleClass(Pass::Ct));
        (base, [stt, t_arch, spt, t_ct])
    });
    for (w, (base, runs)) in workloads.iter().zip(rows) {
        let mut norms = [0.0f64; 4];
        for (i, run) in runs.iter().enumerate() {
            norms[i] = run.cycles as f64 / base.cycles as f64;
            let mut fields = vec![
                ("platform", Json::str(platform)),
                ("workload", Json::str(w.name.clone())),
                ("defense", Json::str(SERIES[i])),
            ];
            fields.extend(measure_fields(run, norms[i]));
            rep.row(fields);
        }
        for (col, v) in acc.iter_mut().zip(norms) {
            col.push(v);
        }
        t.row(&[
            w.name.clone(),
            fmt_norm(norms[0]),
            fmt_norm(norms[1]),
            fmt_norm(norms[2]),
            fmt_norm(norms[3]),
        ]);
    }
}

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let scale = Scale(scale);
    let t = TablePrinter::new(&[18, 10, 12, 10, 12]);
    println!("Figure 6: per-benchmark normalized runtime");
    t.row(&[
        "benchmark".into(),
        "STT".into(),
        "Track-ARCH".into(),
        "SPT".into(),
        "Track-CT".into(),
    ]);
    t.sep();
    let mut acc: [Vec<f64>; 4] = [vec![], vec![], vec![], vec![]];
    let mut spec = spec2017(scale);
    let mut par = parsec(scale);
    if quick {
        spec.truncate(3);
        par.truncate(1);
    }
    let mut rep = BenchReport::new("figure_6");
    series(
        "SPEC2017",
        &spec,
        &CoreConfig::p_core(),
        &t,
        &mut acc,
        &mut rep,
    );
    series(
        "PARSEC",
        &par,
        &CoreConfig::e_core_mt(),
        &t,
        &mut acc,
        &mut rep,
    );
    t.sep();
    t.row(&[
        "geomean".into(),
        fmt_norm(geomean(&acc[0])),
        fmt_norm(geomean(&acc[1])),
        fmt_norm(geomean(&acc[2])),
        fmt_norm(geomean(&acc[3])),
    ]);
    rep.write_and_announce();
}
