//! §IX-A2: ProtCC instrumentation overhead — code size and runtime with
//! Protean's hardware protections *disabled* (instrumented binaries on
//! the unsafe core), SPEC2017int on a P-core.

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{geomean, prepare, run_workload, Binary, Defense, RunResult, TablePrinter};
use protean_cc::Pass;
use protean_isa::code_size;
use protean_sim::json::Json;
use protean_sim::CoreConfig;
use protean_workloads::{spec2017_int, Scale};

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let mut ws = spec2017_int(Scale(scale));
    if quick {
        ws.truncate(3);
    }
    let core = CoreConfig::p_core();
    let t = TablePrinter::new(&[10, 16, 18]);
    println!("Ablation (IX-A2): ProtCC instrumentation overhead, protections disabled");
    t.row(&[
        "pass".into(),
        "code size".into(),
        "runtime (unsafe HW)".into(),
    ]);
    t.sep();
    // One job per (pass × workload) cell, printed in pass order.
    let passes = [Pass::Cts, Pass::Ct, Pass::Unr];
    let cells: Vec<(Pass, usize)> = passes
        .iter()
        .flat_map(|&p| (0..ws.len()).map(move |w| (p, w)))
        .collect();
    let measured: Vec<(f64, f64, RunResult)> = protean_jobs::map(&cells, |_, &(pass, w)| {
        let w = &ws[w];
        let (program, _) = &w.threads[0];
        let instrumented = prepare(program, Binary::SingleClass(pass));
        let size = code_size(&instrumented) as f64 / code_size(program) as f64;
        let base = run_workload(w, &core, Defense::Unsafe, Binary::Base).cycles as f64;
        let inst = run_workload(w, &core, Defense::Unsafe, Binary::SingleClass(pass));
        (size, inst.cycles as f64 / base, inst)
    });
    let mut rep = BenchReport::new("ablation_protcc");
    for (&(pass, w), (size, norm, inst)) in cells.iter().zip(&measured) {
        let mut fields = vec![
            ("pass", Json::str(pass.name())),
            ("workload", Json::str(ws[w].name.clone())),
            ("code_size_ratio", Json::F64(*size)),
        ];
        fields.extend(measure_fields(inst, *norm));
        rep.row(fields);
    }
    for (pass, chunk) in passes.iter().zip(measured.chunks_exact(ws.len())) {
        let size: Vec<f64> = chunk.iter().map(|(s, _, _)| *s).collect();
        let runtime: Vec<f64> = chunk.iter().map(|(_, r, _)| *r).collect();
        t.row(&[
            pass.name().into(),
            format!("{:+.1}%", (geomean(&size) - 1.0) * 100.0),
            format!("{:+.1}%", (geomean(&runtime) - 1.0) * 100.0),
        ]);
    }
    rep.write_and_announce();
}
