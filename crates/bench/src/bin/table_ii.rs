//! Reproduces **Tab. II**: AMuLeT\*-detected contract violations for
//! ProtCC-RAND/-ARCH/-CTS/-CT/-UNR test binaries on the unsafe baseline
//! and on Protean (ProtDelay and ProtTrack). False positives in
//! parentheses. Campaign sizes are scaled down like the artifact's
//! `table-ii.py` (§A-F2); expect many violations for the unsafe column
//! and zero true positives for Protean.
//!
//! Every table cell is one job on the `protean-jobs` pool (and each
//! cell's campaign fans out further, one job per generated program), so
//! the table saturates the machine; `PROTEAN_JOBS` caps the worker
//! count and the printed table is byte-identical at any setting.
//!
//! ```text
//! cargo run --release -p protean-bench --bin table_ii [--quick]
//! ```

use protean_amulet::{fuzz, Adversary, ContractKind, FuzzConfig, Report};
use protean_bench::report::BenchReport;
use protean_bench::TablePrinter;
use protean_cc::Pass;
use protean_core::{ProtDelayPolicy, ProtTrackPolicy};
use protean_sim::json::Json;
use protean_sim::{DefensePolicy, UnsafePolicy};

fn campaign(
    pass: Pass,
    contract: ContractKind,
    programs: usize,
    factory: &(dyn Fn() -> Box<dyn DefensePolicy> + Sync),
) -> Report {
    // Both adversary models, like the paper's two-stage setup (§VII-B2).
    let mut total = Report::default();
    for adversary in [Adversary::CacheTlb, Adversary::Timing] {
        let mut cfg = FuzzConfig::quick(pass, contract, adversary);
        cfg.programs = programs;
        cfg.inputs_per_program = 3;
        cfg.gen.seed = 0xc0ffee;
        let r = fuzz(&cfg, factory);
        total.tests += r.tests;
        total.violations += r.violations;
        total.false_positives += r.false_positives;
        total.pairs_rejected += r.pairs_rejected;
    }
    total
}

fn main() {
    let (quick, _) = protean_bench::parse_flags();
    let programs = if quick { 8 } else { 30 };
    let rows: Vec<(&str, &str, Pass, ContractKind)> = vec![
        (
            "UNPROT-SEQ",
            "ProtCC-RAND",
            Pass::Rand { prob: 0.5, seed: 7 },
            ContractKind::UnprotSeq,
        ),
        ("ARCH-SEQ", "ProtCC-ARCH", Pass::Arch, ContractKind::ArchSeq),
        ("CTS-SEQ", "ProtCC-CTS", Pass::Cts, ContractKind::CtsSeq),
        ("CT-SEQ", "ProtCC-CT", Pass::Ct, ContractKind::CtSeq),
        ("CT-SEQ", "ProtCC-UNR", Pass::Unr, ContractKind::CtSeq),
    ];

    // One job per table cell (row × defense column); results land in
    // cell order, so the printed table is independent of scheduling.
    let cells: Vec<(usize, usize)> = (0..rows.len())
        .flat_map(|r| (0..3).map(move |c| (r, c)))
        .collect();
    let reports = protean_jobs::map(&cells, |_, &(r, c)| {
        let (_, _, pass, contract) = rows[r];
        match c {
            0 => campaign(pass, contract, programs, &|| Box::new(UnsafePolicy)),
            1 => campaign(pass, contract, programs, &|| {
                Box::new(ProtDelayPolicy::new())
            }),
            _ => campaign(pass, contract, programs, &|| {
                Box::new(ProtTrackPolicy::new())
            }),
        }
    });

    let t = TablePrinter::new(&[12, 14, 12, 12, 12]);
    println!("Table II: contract violations (true positives, false positives in parens)");
    println!("{programs} programs x 3 secret mutations x 2 adversary models per cell");
    t.row(&[
        "contract".into(),
        "instrument.".into(),
        "Unsafe".into(),
        "ProtDelay".into(),
        "ProtTrack".into(),
    ]);
    t.sep();
    let cell = |r: &Report| format!("{} ({})", r.violations, r.false_positives);
    for (r, (contract_name, instr, _, _)) in rows.iter().enumerate() {
        t.row(&[
            (*contract_name).into(),
            (*instr).into(),
            cell(&reports[r * 3]),
            cell(&reports[r * 3 + 1]),
            cell(&reports[r * 3 + 2]),
        ]);
    }
    t.sep();
    println!("Expected: >0 true positives for Unsafe, 0 for ProtDelay/ProtTrack.");

    let mut rep = BenchReport::new("table_ii");
    let defenses = ["Unsafe", "ProtDelay", "ProtTrack"];
    for (i, &(r, c)) in cells.iter().enumerate() {
        let (contract_name, instr, _, _) = rows[r];
        let report = &reports[i];
        rep.row(vec![
            ("contract", Json::str(contract_name)),
            ("instrumentation", Json::str(instr)),
            ("defense", Json::str(defenses[c])),
            ("tests", Json::U64(report.tests)),
            ("pairs_rejected", Json::U64(report.pairs_rejected)),
            ("violations", Json::U64(report.violations)),
            ("false_positives", Json::U64(report.false_positives)),
        ]);
    }
    rep.write_and_announce();
}
