//! Reproduces **Tab. IV**: geometric-mean normalized runtime of all
//! eight Protean single-class configurations against their best secure
//! baseline, on SPEC2017 (P-core and E-core) and PARSEC (multi-core).
//!
//! Simulations fan out on the `protean-jobs` pool — first the unsafe
//! baselines (one job per workload), then one job per table cell ×
//! workload — and rows are printed after ordered collection, so stdout
//! is byte-identical at any `PROTEAN_JOBS` setting.
//!
//! ```text
//! cargo run --release -p protean-bench --bin table_iv [--quick]
//! ```

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{fmt_norm, geomean, run_workload, Binary, Defense, TablePrinter};
use protean_cc::Pass;
use protean_sim::json::Json;
use protean_sim::CoreConfig;
use protean_workloads::{parsec, spec2017, Scale, Workload};

struct ClassRow {
    class: &'static str,
    baseline: Defense,
    pass: Pass,
}

fn rows() -> Vec<ClassRow> {
    vec![
        ClassRow {
            class: "ARCH",
            baseline: Defense::Stt,
            pass: Pass::Arch,
        },
        ClassRow {
            class: "CTS",
            baseline: Defense::Spt,
            pass: Pass::Cts,
        },
        ClassRow {
            class: "CT",
            baseline: Defense::Spt,
            pass: Pass::Ct,
        },
        ClassRow {
            class: "UNR",
            baseline: Defense::SptSb,
            pass: Pass::Unr,
        },
    ]
}

fn platform(
    label: &str,
    core: &CoreConfig,
    workloads: &[Workload],
    t: &TablePrinter,
    rep: &mut BenchReport,
) {
    // Unsafe baselines, once per workload (one job each).
    let bases = protean_jobs::map(workloads, |_, w| {
        run_workload(w, core, Defense::Unsafe, Binary::Base)
    });
    // One job per (class row × defense column × workload) simulation;
    // results come back in job order, so the geomeans below accumulate
    // in exactly the serial iteration order.
    let rows = rows();
    let mut cells: Vec<(&'static str, Defense, Binary, usize)> = Vec::new();
    for row in &rows {
        let binary = Binary::SingleClass(row.pass);
        for w in 0..workloads.len() {
            cells.push((row.class, row.baseline, Binary::Base, w));
            cells.push((row.class, Defense::ProtDelay, binary, w));
            cells.push((row.class, Defense::ProtTrack, binary, w));
        }
    }
    let runs = protean_jobs::map(&cells, |_, &(_, defense, binary, w)| {
        run_workload(&workloads[w], core, defense, binary)
    });
    let norms: Vec<f64> = runs
        .iter()
        .zip(&cells)
        .map(|(r, &(_, _, _, w))| r.cycles as f64 / bases[w].cycles as f64)
        .collect();
    for ((&(class, defense, _, w), run), &norm) in cells.iter().zip(&runs).zip(&norms) {
        let mut fields = vec![
            ("platform", Json::str(label)),
            ("class", Json::str(class)),
            ("defense", Json::str(format!("{defense:?}"))),
            ("workload", Json::str(workloads[w].name.clone())),
        ];
        fields.extend(measure_fields(run, norm));
        rep.row(fields);
    }
    let mut it = norms.chunks_exact(3);
    for row in &rows {
        let mut bl = Vec::new();
        let mut delay = Vec::new();
        let mut track = Vec::new();
        for _ in 0..workloads.len() {
            let cell = it.next().expect("one chunk per workload");
            bl.push(cell[0]);
            delay.push(cell[1]);
            track.push(cell[2]);
        }
        t.row(&[
            format!("{label} / {}", row.class),
            format!("{:?}", row.baseline),
            fmt_norm(geomean(&bl)),
            fmt_norm(geomean(&delay)),
            fmt_norm(geomean(&track)),
        ]);
    }
    t.sep();
}

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let scale = Scale(scale);
    let t = TablePrinter::new(&[22, 10, 10, 10, 10]);
    println!("Table IV: geomean normalized runtime (baseline | Protean-Delay | Protean-Track)");
    t.row(&[
        "platform / class".into(),
        "baseline".into(),
        "base".into(),
        "Delay".into(),
        "Track".into(),
    ]);
    t.sep();

    let mut spec = spec2017(scale);
    let mut par = parsec(scale);
    if quick {
        spec.truncate(3);
        par.truncate(2);
    }
    let mut rep = BenchReport::new("table_iv");
    platform(
        "SPEC2017 P-core",
        &CoreConfig::p_core(),
        &spec,
        &t,
        &mut rep,
    );
    platform(
        "SPEC2017 E-core",
        &CoreConfig::e_core(),
        &spec,
        &t,
        &mut rep,
    );
    platform("PARSEC", &CoreConfig::e_core_mt(), &par, &t, &mut rep);
    rep.write_and_announce();
}
