//! `validate_json`: check bench JSON reports against the schema.
//!
//! Validates every file named on the command line — or, with no
//! arguments, every `*.json` under `$PROTEAN_BENCH_DIR` (default
//! `bench_results/`) — against the [`protean_bench::report`] schema.
//! Exits non-zero if any file is missing, unparsable, or out of schema;
//! CI runs this after the bench smoke run.
//!
//! ```text
//! cargo run --release -p protean-bench --bin validate_json [files...]
//! ```

use protean_bench::report::BenchReport;
use protean_sim::json::Json;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<PathBuf> = if args.is_empty() {
        let dir = std::env::var_os("PROTEAN_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("bench_results"));
        let entries = std::fs::read_dir(&dir).unwrap_or_else(|e| {
            eprintln!("error: cannot read {}: {e}", dir.display());
            std::process::exit(2)
        });
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        paths
    } else {
        args.into_iter().map(PathBuf::from).collect()
    };
    if paths.is_empty() {
        eprintln!("error: no JSON reports to validate");
        std::process::exit(2);
    }

    let mut failed = false;
    for path in &paths {
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text))
            .and_then(|json| {
                BenchReport::validate(&json)?;
                let rows = json
                    .get("rows")
                    .and_then(|r| r.as_arr())
                    .map_or(0, |r| r.len());
                Ok(rows)
            });
        match verdict {
            Ok(rows) => println!("ok   {} ({rows} rows)", path.display()),
            Err(why) => {
                println!("FAIL {}: {why}", path.display());
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
