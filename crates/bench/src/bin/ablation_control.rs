//! §IX-A6: the noncomprehensive CONTROL speculation model case study —
//! PROTEAN-Track-ARCH/-CT versus STT/SPT on SPEC2017int (P-core) with
//! instructions considered speculative only until prior branches resolve.

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{geomean, measure, Binary, Defense, TablePrinter};
use protean_cc::Pass;
use protean_sim::json::Json;
use protean_sim::{CoreConfig, SpeculationModel};
use protean_workloads::{spec2017_int, Scale};

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let mut ws = spec2017_int(Scale(scale));
    if quick {
        ws.truncate(3);
    }
    let mut core = CoreConfig::p_core();
    core.speculation = SpeculationModel::Control;
    let t = TablePrinter::new(&[16, 14]);
    println!("Ablation (IX-A6): CONTROL speculation model, SPEC2017int P-core");
    println!("(note: CONTROL misses memory-order speculation — footnote 1)");
    t.row(&["config".into(), "overhead".into()]);
    t.sep();
    let configs: Vec<(&str, Defense, Binary)> = vec![
        ("STT", Defense::Stt, Binary::Base),
        (
            "Track-ARCH",
            Defense::ProtTrack,
            Binary::SingleClass(Pass::Arch),
        ),
        ("SPT", Defense::Spt, Binary::Base),
        (
            "Track-CT",
            Defense::ProtTrack,
            Binary::SingleClass(Pass::Ct),
        ),
    ];
    // One job per (config × workload) cell, printed in config order.
    let cells: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|c| (0..ws.len()).map(move |w| (c, w)))
        .collect();
    let measured = protean_jobs::map(&cells, |_, &(c, w)| {
        let (_, d, binary) = configs[c];
        measure(&ws[w], &core, d, binary)
    });
    let mut rep = BenchReport::new("ablation_control");
    for (&(c, w), m) in cells.iter().zip(&measured) {
        let mut fields = vec![
            ("config", Json::str(configs[c].0)),
            ("workload", Json::str(ws[w].name.clone())),
        ];
        fields.extend(measure_fields(&m.run, m.norm));
        rep.row(fields);
    }
    let norms: Vec<f64> = measured.iter().map(|m| m.norm).collect();
    for ((label, _, _), chunk) in configs.iter().zip(norms.chunks_exact(ws.len())) {
        t.row(&[
            (*label).into(),
            format!("{:+.1}%", (geomean(chunk) - 1.0) * 100.0),
        ]);
    }
    rep.write_and_announce();
}
