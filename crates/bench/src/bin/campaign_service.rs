//! `campaign_service`: the resumable campaign engine as a service-style
//! driver over the quick fuzzing roster.
//!
//! Runs the same three campaigns as `campaign_perf` — unsafe baseline,
//! ProtDelay, and ProtTrack — through `amulet::run_campaign` with every
//! engine feature on (two-stage SEQ prefilter, coverage-guided
//! generation, audit-signature triage) and a per-case snapshot under
//! `$PROTEAN_BENCH_DIR`. The snapshots use the BenchReport row schema,
//! so the `validate_json` CI gate covers them automatically.
//!
//! ```text
//! cargo run --release -p protean-bench --bin campaign_service [--kill-after N]
//! ```
//!
//! `--kill-after N` processes at most `N` chunks per campaign and exits
//! *without* writing the report — simulating a preempted service. A
//! later invocation resumes each campaign from its snapshot. The final
//! `campaign_service.json` (written only once every campaign completes)
//! is **byte-identical** whether or not the service was killed along the
//! way, at any `PROTEAN_JOBS` worker count; `ci.sh` diffs exactly that.
//!
//! Reported per case: the deterministic campaign counters plus the two
//! engine-quality headline numbers — the stage-1 **prefilter hit rate**
//! (admitted pairs / SEQ-traced pairs: how much cycle-accurate replay
//! the cheap oracle saves) and the triage **dedup ratio** (candidate
//! violations per root-cause bucket).

use protean_amulet::{run_campaign, Adversary, CampaignConfig, ContractKind, FuzzConfig};
use protean_bench::report::BenchReport;
use protean_cc::Pass;
use protean_core::{ProtDelayPolicy, ProtTrackPolicy};
use protean_sim::json::Json;
use protean_sim::{DefensePolicy, UnsafePolicy};
use std::path::PathBuf;

struct Case {
    name: &'static str,
    cfg: CampaignConfig,
    factory: &'static (dyn Fn() -> Box<dyn DefensePolicy> + Sync),
}

fn cases(kill_after: Option<usize>) -> Vec<Case> {
    let build = |name: &str, pass, contract, adversary| {
        let mut fuzz = FuzzConfig::quick(pass, contract, adversary);
        fuzz.programs = 6;
        fuzz.inputs_per_program = 3;
        fuzz.gen.seed = 0xbead;
        fuzz.capture_traces = false;
        let mut cfg = CampaignConfig::new(fuzz);
        cfg.chunk_size = 2;
        cfg.coverage_guided = true;
        cfg.prefilter = true;
        cfg.triage = true;
        cfg.snapshot = Some(snapshot_path(name));
        cfg.max_chunks_per_call = kill_after;
        cfg
    };
    vec![
        Case {
            name: "unsafe/arch/cache",
            cfg: build(
                "unsafe/arch/cache",
                Pass::Arch,
                ContractKind::ArchSeq,
                Adversary::CacheTlb,
            ),
            factory: &|| Box::new(UnsafePolicy),
        },
        Case {
            name: "protdelay/ct/cache",
            cfg: build(
                "protdelay/ct/cache",
                Pass::Ct,
                ContractKind::CtSeq,
                Adversary::CacheTlb,
            ),
            factory: &|| Box::new(ProtDelayPolicy::new()),
        },
        Case {
            name: "prottrack/unprot/timing",
            cfg: build(
                "prottrack/unprot/timing",
                Pass::Rand { prob: 0.5, seed: 7 },
                ContractKind::UnprotSeq,
                Adversary::Timing,
            ),
            factory: &|| Box::new(ProtTrackPolicy::new()),
        },
    ]
}

/// `$PROTEAN_BENCH_DIR/campaign_snapshot_<case>.json` with the case
/// name's separators flattened for the filesystem.
fn snapshot_path(case: &str) -> PathBuf {
    let dir = std::env::var_os("PROTEAN_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("bench_results"));
    dir.join(format!("campaign_snapshot_{}.json", case.replace('/', "_")))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kill_after: Option<usize> = args.iter().position(|a| a == "--kill-after").map(|i| {
        args.get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--kill-after requires an integer");
                std::process::exit(2);
            })
    });

    println!("campaign_service: resumable coverage-guided campaigns");
    println!("=====================================================\n");

    let mut rep = BenchReport::new("campaign_service");
    let mut all_complete = true;
    for case in cases(kill_after) {
        let r = run_campaign(&case.cfg, case.factory);
        let traced = r.prefilter_pairs + r.prefilter_rejected;
        let hit_rate = if traced > 0 {
            r.prefilter_pairs as f64 / traced as f64
        } else {
            0.0
        };
        let buckets = r.triage.len() as u64;
        let dedup_ratio = if buckets > 0 {
            r.candidates as f64 / buckets as f64
        } else {
            0.0
        };
        println!(
            "  {:<24} {:>2}/{} programs{} {:>3} tests  {:>2} violations  \
             prefilter {:>5.1}%  {} buckets ({:.1}x dedup)",
            case.name,
            r.programs_done,
            case.cfg.fuzz.programs,
            if r.resumed { " (resumed)" } else { "" },
            r.report.tests,
            r.report.violations,
            hit_rate * 100.0,
            buckets,
            dedup_ratio,
        );
        if !r.complete {
            all_complete = false;
            continue;
        }
        rep.row(vec![
            ("case", Json::str(case.name)),
            ("programs", Json::U64(case.cfg.fuzz.programs as u64)),
            ("chunks", Json::U64(r.chunks_done)),
            ("tests", Json::U64(r.report.tests)),
            ("pairs_rejected", Json::U64(r.report.pairs_rejected)),
            ("violations", Json::U64(r.report.violations)),
            ("false_positives", Json::U64(r.report.false_positives)),
            ("committed_uops", Json::U64(r.report.committed_uops)),
            ("hw_truncated", Json::U64(r.report.hw_truncated)),
            ("no_partner", Json::U64(r.report.no_partner)),
            ("prefilter_pairs", Json::U64(r.prefilter_pairs)),
            ("prefilter_rejected", Json::U64(r.prefilter_rejected)),
            ("prefilter_hit_rate", Json::F64(hit_rate)),
            ("hw_pairs", Json::U64(r.hw_pairs)),
            ("candidates", Json::U64(r.candidates)),
            ("triage_buckets", Json::U64(buckets)),
            ("dedup_ratio", Json::F64(dedup_ratio)),
            ("coverage_keys", Json::U64(r.coverage.len() as u64)),
        ]);
    }

    if all_complete {
        rep.write_and_announce();
    } else {
        println!("\nkilled before completion; snapshots saved — rerun to resume");
    }
}
