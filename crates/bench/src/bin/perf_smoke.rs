//! `perf_smoke`: simulator-throughput smoke benchmark (record-only).
//!
//! Runs a fixed seed corpus of amulet-generated programs through the
//! unprotected core, ProtDelay, and ProtTrack, and reports simulator
//! throughput in **kilo-µops-committed per wall-second** to
//! `bench_results/perf_smoke.json`. There is no pass/fail gate — the
//! point is to accumulate a perf trajectory across commits so scheduler
//! regressions show up in the JSON history.
//!
//! ```text
//! cargo run --release -p protean-bench --bin perf_smoke
//! ```
//!
//! `PROTEAN_BENCH_SAMPLES` / `PROTEAN_BENCH_WARMUP` tune the sample
//! counts like every other harness user; wall-clock numbers are
//! machine-dependent by nature, so this JSON is exempt from the
//! byte-identical-across-runs contract the table/figure reports obey.

use protean_amulet::{generate, init_cold_chain, GenConfig, PUBLIC_BASE, PUBLIC_SIZE};
use protean_arch::ArchState;
use protean_bench::harness::Bench;
use protean_bench::report::BenchReport;
use protean_bench::Defense;
use protean_isa::{Program, Reg};
use protean_sim::json::Json;
use protean_sim::{Core, CoreConfig, SimExit};

/// Committed-instruction budget per corpus program.
const MAX_INSTS: u64 = 200_000;
/// Cycle budget per corpus program.
const MAX_CYCLES: u64 = 20_000_000;

/// The fixed corpus: a spread of program shapes large enough that one
/// sweep commits a few hundred thousand µops per defense.
fn corpus() -> Vec<(Program, ArchState)> {
    (0u64..8)
        .map(|i| {
            let cfg = GenConfig {
                segments: 24,
                gadget_bias: 0.5,
                seed: 100 + i,
            };
            let mut state = ArchState::new();
            init_cold_chain(&mut state.mem);
            for j in 0u64..PUBLIC_SIZE / 8 {
                state
                    .mem
                    .write(PUBLIC_BASE + j * 8, 8, (i * 17 + j * 7) % 64);
            }
            for r in 0..6 {
                state.set_reg(Reg::gpr(r), (i * 31 + r as u64 * 13) % 1024);
            }
            (generate(&cfg), state)
        })
        .collect()
}

/// One full sweep of the corpus under `defense`; returns (cycles,
/// committed) summed over the corpus. The caller-owned arena core is
/// re-armed per program (`Core::reset`), so the sweep times simulation
/// rather than the tens of MiB of cache-metadata allocation a fresh
/// `Core::new` pays per program — the same reuse pattern the fuzzing
/// campaigns (this simulator's real workload) run.
fn sweep<'a>(
    core: &mut Core<'a>,
    corpus: &'a [(Program, ArchState)],
    defense: Defense,
) -> (u64, u64) {
    let mut cycles = 0;
    let mut committed = 0;
    for (program, input) in corpus {
        core.reset(program, defense.make(), input);
        let r = core.run_mut(MAX_INSTS, MAX_CYCLES);
        assert_eq!(r.exit, SimExit::Halted, "perf_smoke corpus must halt");
        cycles += r.stats.cycles;
        committed += r.stats.committed;
    }
    (cycles, committed)
}

fn main() {
    println!("perf_smoke: simulator throughput (record-only)");
    println!("==============================================\n");

    let corpus = corpus();
    let bench = Bench::new("perf_smoke");
    let mut report = BenchReport::new("perf_smoke");
    let mut arena = Core::new(
        &corpus[0].0,
        CoreConfig::e_core(),
        Defense::Unsafe.make(),
        &corpus[0].1,
    );

    for defense in [Defense::Unsafe, Defense::ProtDelay, Defense::ProtTrack] {
        let label = format!("{defense:?}");
        let (cycles, committed) = sweep(&mut arena, &corpus, defense);
        let stats = bench.run(&label, || sweep(&mut arena, &corpus, defense));
        let secs = stats.median.as_secs_f64();
        let kuops_per_s = committed as f64 / secs / 1e3;
        let sim_mcycles_per_s = cycles as f64 / secs / 1e6;
        println!(
            "  {label:<10} {committed:>9} µops {cycles:>10} cycles  \
             {kuops_per_s:>9.1} kuops/s  {sim_mcycles_per_s:>7.2} Mcycles/s"
        );
        report.row(vec![
            ("defense", Json::str(label)),
            ("committed", Json::U64(committed)),
            ("cycles", Json::U64(cycles)),
            ("wall_ms_median", Json::F64(secs * 1e3)),
            ("kuops_per_s", Json::F64(kuops_per_s)),
            ("sim_mcycles_per_s", Json::F64(sim_mcycles_per_s)),
        ]);
    }

    report.write_and_announce();
    protean_bench::report::write_profile_report_if_enabled();
}
