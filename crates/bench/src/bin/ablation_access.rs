//! §IX-A4: raw AccessDelay/AccessTrack applied directly to ProtISA
//! (ProtDelay's selective wakeup and ProtTrack's access predictor
//! disabled) versus the full mechanisms, on SPEC2017int (P-core),
//! averaged across ProtCC-ARCH and ProtCC-CT binaries.

use protean_bench::{geomean, run_workload, Binary, Defense, TablePrinter};
use protean_cc::Pass;
use protean_sim::CoreConfig;
use protean_workloads::{spec2017_int, Scale};

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let mut ws = spec2017_int(Scale(scale));
    if quick {
        ws.truncate(3);
    }
    let core = CoreConfig::p_core();
    let t = TablePrinter::new(&[24, 14, 14]);
    println!("Ablation (IX-A4): raw access-based mechanisms under ProtISA");
    t.row(&[
        "mechanism".into(),
        "ARCH overhead".into(),
        "CT overhead".into(),
    ]);
    t.sep();
    let rows = [
        ("ProtDelay", Defense::ProtDelay),
        ("raw AccessDelay", Defense::RawAccessDelay),
        ("ProtTrack", Defense::ProtTrack),
        ("raw AccessTrack", Defense::RawAccessTrack),
    ];
    // One job per (mechanism × pass × workload) cell; aggregation below
    // consumes cells in serial iteration order (byte-identical stdout at
    // any PROTEAN_JOBS setting).
    let mut cells: Vec<(Defense, Pass, usize)> = Vec::new();
    for (_, d) in &rows {
        for pass in [Pass::Arch, Pass::Ct] {
            for w in 0..ws.len() {
                cells.push((*d, pass, w));
            }
        }
    }
    let norms = protean_jobs::map(&cells, |_, &(d, pass, w)| {
        let base = run_workload(&ws[w], &core, Defense::Unsafe, Binary::Base).cycles as f64;
        run_workload(&ws[w], &core, d, Binary::SingleClass(pass)).cycles as f64 / base
    });
    let mut chunks = norms.chunks_exact(ws.len());
    for (label, _) in rows {
        let mut cols = Vec::new();
        for _ in 0..2 {
            let chunk = chunks.next().expect("one chunk per pass");
            cols.push(format!("{:+.1}%", (geomean(chunk) - 1.0) * 100.0));
        }
        t.row(&[label.into(), cols[0].clone(), cols[1].clone()]);
    }
}
