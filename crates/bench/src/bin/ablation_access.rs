//! §IX-A4: raw AccessDelay/AccessTrack applied directly to ProtISA
//! (ProtDelay's selective wakeup and ProtTrack's access predictor
//! disabled) versus the full mechanisms, on SPEC2017int (P-core),
//! averaged across ProtCC-ARCH and ProtCC-CT binaries.

use protean_bench::report::{measure_fields, BenchReport};
use protean_bench::{geomean, measure, Binary, Defense, TablePrinter};
use protean_cc::Pass;
use protean_sim::json::Json;
use protean_sim::CoreConfig;
use protean_workloads::{spec2017_int, Scale};

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let mut ws = spec2017_int(Scale(scale));
    if quick {
        ws.truncate(3);
    }
    let core = CoreConfig::p_core();
    let t = TablePrinter::new(&[24, 14, 14]);
    println!("Ablation (IX-A4): raw access-based mechanisms under ProtISA");
    t.row(&[
        "mechanism".into(),
        "ARCH overhead".into(),
        "CT overhead".into(),
    ]);
    t.sep();
    let rows = [
        ("ProtDelay", Defense::ProtDelay),
        ("raw AccessDelay", Defense::RawAccessDelay),
        ("ProtTrack", Defense::ProtTrack),
        ("raw AccessTrack", Defense::RawAccessTrack),
    ];
    // One job per (mechanism × pass × workload) cell; aggregation below
    // consumes cells in serial iteration order (byte-identical stdout at
    // any PROTEAN_JOBS setting).
    let mut cells: Vec<(&'static str, Defense, Pass, usize)> = Vec::new();
    for (label, d) in &rows {
        for pass in [Pass::Arch, Pass::Ct] {
            for w in 0..ws.len() {
                cells.push((label, *d, pass, w));
            }
        }
    }
    let measured = protean_jobs::map(&cells, |_, &(_, d, pass, w)| {
        measure(&ws[w], &core, d, Binary::SingleClass(pass))
    });
    let mut rep = BenchReport::new("ablation_access");
    for (&(label, _, pass, w), m) in cells.iter().zip(&measured) {
        let mut fields = vec![
            ("mechanism", Json::str(label)),
            ("pass", Json::str(pass.name())),
            ("workload", Json::str(ws[w].name.clone())),
        ];
        fields.extend(measure_fields(&m.run, m.norm));
        rep.row(fields);
    }
    let norms: Vec<f64> = measured.iter().map(|m| m.norm).collect();
    let mut chunks = norms.chunks_exact(ws.len());
    for (label, _) in rows {
        let mut cols = Vec::new();
        for _ in 0..2 {
            let chunk = chunks.next().expect("one chunk per pass");
            cols.push(format!("{:+.1}%", (geomean(chunk) - 1.0) * 100.0));
        }
        t.row(&[label.into(), cols[0].clone(), cols[1].clone()]);
    }
    rep.write_and_announce();
}
