//! §IX-A4: raw AccessDelay/AccessTrack applied directly to ProtISA
//! (ProtDelay's selective wakeup and ProtTrack's access predictor
//! disabled) versus the full mechanisms, on SPEC2017int (P-core),
//! averaged across ProtCC-ARCH and ProtCC-CT binaries.

use protean_bench::{geomean, run_workload, Binary, Defense, TablePrinter};
use protean_cc::Pass;
use protean_sim::CoreConfig;
use protean_workloads::{spec2017_int, Scale};

fn main() {
    let (quick, scale) = protean_bench::parse_flags();
    let mut ws = spec2017_int(Scale(scale));
    if quick {
        ws.truncate(3);
    }
    let core = CoreConfig::p_core();
    let t = TablePrinter::new(&[24, 14, 14]);
    println!("Ablation (IX-A4): raw access-based mechanisms under ProtISA");
    t.row(&[
        "mechanism".into(),
        "ARCH overhead".into(),
        "CT overhead".into(),
    ]);
    t.sep();
    for (label, d) in [
        ("ProtDelay", Defense::ProtDelay),
        ("raw AccessDelay", Defense::RawAccessDelay),
        ("ProtTrack", Defense::ProtTrack),
        ("raw AccessTrack", Defense::RawAccessTrack),
    ] {
        let mut cols = Vec::new();
        for pass in [Pass::Arch, Pass::Ct] {
            let mut norms = Vec::new();
            for w in &ws {
                let base = run_workload(w, &core, Defense::Unsafe, Binary::Base).cycles as f64;
                let c = run_workload(w, &core, d, Binary::SingleClass(pass)).cycles as f64;
                norms.push(c / base);
            }
            cols.push(format!("{:+.1}%", (geomean(&norms) - 1.0) * 100.0));
        }
        t.row(&[label.into(), cols[0].clone(), cols[1].clone()]);
    }
}
