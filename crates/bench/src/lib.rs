//! # protean-bench
//!
//! The benchmark harness that regenerates every results table and figure
//! of *"Protean: A Programmable Spectre Defense"* (HPCA 2026). Each
//! binary corresponds to one table/figure (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md`):
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table_i` | Tab. I — targeting matrix with headline overheads |
//! | `table_ii` | Tab. II — AMuLeT\* contract-violation campaigns |
//! | `table_iv` | Tab. IV — SPEC2017 (P/E-core) + PARSEC geomeans |
//! | `table_v` | Tab. V — single-class suites + multi-class nginx |
//! | `figure_5` | Fig. 5 — access-predictor sensitivity sweep |
//! | `figure_6` | Fig. 6 — per-benchmark normalized runtimes |
//! | `ablation_*` | §IX-A2…A7 studies |
//!
//! All binaries accept `--quick` (smaller rosters) and print normalized
//! runtimes (defense cycles / unsafe-baseline cycles on the same
//! workload and core).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod report;

use protean_baselines::{AccessDelayPolicy, SptPolicy, SptSbPolicy, SttPolicy};
use protean_cc::{compile, compile_with, Pass};
use protean_core::{ProtDelayPolicy, ProtTrackPolicy};
use protean_isa::{Program, SecurityClass};
use protean_sim::{Core, CoreConfig, DefensePolicy, Multicore, SimExit, Thread, UnsafePolicy};
use protean_workloads::Workload;

/// A defense configuration to benchmark.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Defense {
    /// The unmodified core.
    Unsafe,
    /// NDA (AccessDelay).
    Nda,
    /// STT, fully patched.
    Stt,
    /// SPT, fully patched.
    Spt,
    /// SPT without the 32-bit untaint performance fix (§IX-A7).
    SptNoPerfFix,
    /// SPT-SB, fully patched.
    SptSb,
    /// STT as originally released (§IX-A7).
    SttOriginal,
    /// SPT as originally released.
    SptOriginal,
    /// SPT-SB as originally released.
    SptSbOriginal,
    /// Protean with ProtDelay.
    ProtDelay,
    /// Protean with ProtTrack (1024-entry predictor).
    ProtTrack,
    /// ProtTrack with a custom predictor size (Fig. 5).
    ProtTrackEntries(usize),
    /// ProtTrack with an unbounded predictor (Fig. 5 asymptote).
    ProtTrackUnbounded,
    /// Raw AccessDelay under ProtISA (§IX-A4).
    RawAccessDelay,
    /// Raw AccessTrack under ProtISA (§IX-A4).
    RawAccessTrack,
}

impl Defense {
    /// Instantiates the policy.
    pub fn make(self) -> Box<dyn DefensePolicy> {
        match self {
            Defense::Unsafe => Box::new(UnsafePolicy),
            Defense::Nda => Box::new(AccessDelayPolicy::nda()),
            Defense::Stt => Box::new(SttPolicy::fixed()),
            Defense::Spt => Box::new(SptPolicy::fixed()),
            Defense::SptNoPerfFix => Box::new(SptPolicy::fixed_without_perf_fix()),
            Defense::SptSb => Box::new(SptSbPolicy::fixed()),
            Defense::SttOriginal => Box::new(SttPolicy::original()),
            Defense::SptOriginal => Box::new(SptPolicy::original()),
            Defense::SptSbOriginal => Box::new(SptSbPolicy::original()),
            Defense::ProtDelay => Box::new(ProtDelayPolicy::new()),
            Defense::ProtTrack => Box::new(ProtTrackPolicy::new()),
            Defense::ProtTrackEntries(n) => Box::new(ProtTrackPolicy::with_predictor_entries(n)),
            Defense::ProtTrackUnbounded => Box::new(ProtTrackPolicy::unbounded_predictor()),
            Defense::RawAccessDelay => Box::new(ProtDelayPolicy::raw_access_delay()),
            Defense::RawAccessTrack => Box::new(ProtTrackPolicy::raw_access_track()),
        }
    }

    /// Whether this defense runs the ProtCC-instrumented binary (Protean
    /// configurations) rather than the base binary.
    pub fn wants_protcc(self) -> bool {
        matches!(
            self,
            Defense::ProtDelay
                | Defense::ProtTrack
                | Defense::ProtTrackEntries(_)
                | Defense::ProtTrackUnbounded
                | Defense::RawAccessDelay
                | Defense::RawAccessTrack
        )
    }
}

/// How to prepare the binary for a run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Binary {
    /// The base (uninstrumented) binary.
    Base,
    /// ProtCC with the given single-class pass.
    SingleClass(Pass),
    /// ProtCC multi-class compilation from the program's function labels.
    MultiClass,
}

/// Prepares the program for a run.
pub fn prepare(program: &Program, binary: Binary) -> Program {
    match binary {
        Binary::Base => program.clone(),
        Binary::SingleClass(pass) => compile_with(program, pass).program,
        Binary::MultiClass => compile(program, Pass::Arch).program,
    }
}

/// The single-class ProtCC pass for a workload's declared class.
pub fn pass_for(class: SecurityClass) -> Pass {
    Pass::for_class(class)
}

/// Result of one measured run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Execution time: cycles for single-thread, makespan for
    /// multi-thread.
    pub cycles: u64,
    /// Committed µops (summed over threads).
    pub committed: u64,
    /// Access-predictor misprediction rate, when the policy reports one.
    pub mispred_rate: Option<f64>,
    /// Cycles µops spent blocked at the execute gate (summed over
    /// threads).
    pub exec_blocked_cycles: u64,
    /// Cycles µops spent blocked at the wakeup gate (summed over
    /// threads).
    pub wakeup_blocked_cycles: u64,
    /// Cycles squashes spent blocked at the resolve gate (summed over
    /// threads).
    pub resolve_blocked_cycles: u64,
    /// Issue-queue occupancy high-water mark (max over threads).
    pub iq_hwm: u64,
    /// Completion-wheel occupancy high-water mark (max over threads).
    pub wheel_hwm: u64,
}

/// Runs `workload` under `defense` on `core`, preparing the binary per
/// `binary`.
///
/// # Panics
///
/// Panics if the simulation deadlocks or exceeds its budget — workloads
/// are sized to halt on their own.
pub fn run_workload(
    workload: &Workload,
    core: &CoreConfig,
    defense: Defense,
    binary: Binary,
) -> RunResult {
    let max_cycles = workload.max_insts * 600;
    if workload.is_multithreaded() {
        let programs: Vec<Program> = workload
            .threads
            .iter()
            .map(|(p, _)| prepare(p, binary))
            .collect();
        let threads: Vec<Thread<'_>> = programs
            .iter()
            .zip(&workload.threads)
            .map(|(p, (_, init))| Thread {
                program: p,
                initial: init.clone(),
                policy: defense.make(),
            })
            .collect();
        let result = Multicore::new(core.clone()).run(threads, workload.max_insts, max_cycles);
        for (i, t) in result.threads.iter().enumerate() {
            assert_eq!(
                t.exit,
                SimExit::Halted,
                "{} thread {i} under {defense:?}: {:?}",
                workload.name,
                t.exit
            );
        }
        let sum = |f: fn(&protean_sim::Stats) -> u64| -> u64 {
            result.threads.iter().map(|t| f(&t.stats)).sum()
        };
        RunResult {
            cycles: result.makespan,
            committed: result.total_committed(),
            mispred_rate: mispred_of(&result.threads[0].stats.policy),
            exec_blocked_cycles: sum(|s| s.exec_blocked_cycles),
            wakeup_blocked_cycles: sum(|s| s.wakeup_blocked_cycles),
            resolve_blocked_cycles: sum(|s| s.resolve_blocked_cycles),
            // Occupancy peaks are per-core facts: max, not sum.
            iq_hwm: result
                .threads
                .iter()
                .map(|t| t.stats.iq_hwm)
                .max()
                .unwrap_or(0),
            wheel_hwm: result
                .threads
                .iter()
                .map(|t| t.stats.wheel_hwm)
                .max()
                .unwrap_or(0),
        }
    } else {
        let (program, init) = &workload.threads[0];
        let prepared = prepare(program, binary);
        let c = Core::new(&prepared, core.clone(), defense.make(), init);
        let result = c.run(workload.max_insts, max_cycles);
        assert_eq!(
            result.exit,
            SimExit::Halted,
            "{} under {defense:?}: {:?}",
            workload.name,
            result.exit
        );
        RunResult {
            cycles: result.stats.cycles,
            committed: result.stats.committed,
            mispred_rate: mispred_of(&result.stats.policy),
            exec_blocked_cycles: result.stats.exec_blocked_cycles,
            wakeup_blocked_cycles: result.stats.wakeup_blocked_cycles,
            resolve_blocked_cycles: result.stats.resolve_blocked_cycles,
            iq_hwm: result.stats.iq_hwm,
            wheel_hwm: result.stats.wheel_hwm,
        }
    }
}

fn mispred_of(policy_stats: &[(String, f64)]) -> Option<f64> {
    policy_stats
        .iter()
        .find(|(k, _)| k == "access_pred_mispred_rate")
        .map(|(_, v)| *v)
}

/// One measured table cell: the defense run, its unsafe baseline on the
/// same core, and the normalized runtime relating them.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// The defense run.
    pub run: RunResult,
    /// The unsafe-baseline run on the same workload and core.
    pub base: RunResult,
    /// `run.cycles / base.cycles`.
    pub norm: f64,
}

/// Runs `defense` and the unsafe baseline on `workload`, returning both
/// results plus the normalized runtime. The JSON-emitting bench binaries
/// use this instead of [`normalized`] so a single cell job yields every
/// reported counter.
pub fn measure(
    workload: &Workload,
    core: &CoreConfig,
    defense: Defense,
    binary: Binary,
) -> Measured {
    let base = run_workload(workload, core, Defense::Unsafe, Binary::Base);
    let run = run_workload(workload, core, defense, binary);
    Measured {
        run,
        base,
        norm: run.cycles as f64 / base.cycles as f64,
    }
}

/// Normalized runtime of `defense` on `workload`: defense cycles divided
/// by the unsafe baseline's cycles (both on `core`).
pub fn normalized(workload: &Workload, core: &CoreConfig, defense: Defense, binary: Binary) -> f64 {
    measure(workload, core, defense, binary).norm
}

/// The binary a defense should run for a single-class workload.
pub fn binary_for(defense: Defense, class: SecurityClass) -> Binary {
    if defense.wants_protcc() {
        Binary::SingleClass(pass_for(class))
    } else {
        Binary::Base
    }
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Simple aligned table printer.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Creates a printer with the given column widths.
    pub fn new(widths: &[usize]) -> TablePrinter {
        TablePrinter {
            widths: widths.to_vec(),
        }
    }

    /// Prints one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(12);
            line.push_str(&format!("{cell:<w$} "));
        }
        println!("{}", line.trim_end());
    }

    /// Prints a separator.
    pub fn sep(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + self.widths.len();
        println!("{}", "-".repeat(total));
    }
}

/// Formats a normalized runtime like the paper (`1.369`).
pub fn fmt_norm(v: f64) -> String {
    format!("{v:.3}")
}

/// Parses the common CLI flags: returns (quick, scale).
pub fn parse_flags() -> (bool, u64) {
    let mut quick = false;
    let mut scale = 1u64;
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        match a.as_str() {
            "--quick" => quick = true,
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale requires an integer");
                        std::process::exit(2);
                    });
            }
            _ => {}
        }
    }
    (quick, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use protean_workloads::{cts_crypto, Scale};

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn normalized_is_one_for_unsafe() {
        let w = &cts_crypto(Scale(1))[1]; // a small kernel
        let n = normalized(w, &CoreConfig::test_tiny(), Defense::Unsafe, Binary::Base);
        assert!((n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn protean_runs_instrumented_binaries() {
        let w = &cts_crypto(Scale(1))[1];
        let n = normalized(
            w,
            &CoreConfig::test_tiny(),
            Defense::ProtTrack,
            binary_for(Defense::ProtTrack, w.class),
        );
        assert!(n >= 0.95, "normalized runtime {n} suspiciously low");
        assert!(n < 5.0, "normalized runtime {n} suspiciously high");
    }
}
