//! Machine-readable bench output: schema-stable JSON rows written next
//! to the text tables.
//!
//! Every table/figure/ablation binary assembles a [`BenchReport`] — a
//! named list of flat JSON row objects — and writes it to
//! `bench_results/<name>.json` (directory overridable via
//! `PROTEAN_BENCH_DIR`). The format is deliberately rigid so downstream
//! tooling can diff perf trajectories across commits:
//!
//! ```json
//! {"bench":"table_iv","schema":1,"rows":[
//!   {"suite":"spec","workload":"mcf","core":"P-core","defense":"STT",
//!    "norm":1.369,"cycles":123,"committed":456,
//!    "exec_blocked_cycles":7,"wakeup_blocked_cycles":0,
//!    "resolve_blocked_cycles":3},
//!   ...
//! ]}
//! ```
//!
//! Schema rules (checked by [`BenchReport::validate`]):
//!
//! * the top level is an object with exactly `bench` (string), `schema`
//!   (the integer [`SCHEMA_VERSION`]), and `rows` (array);
//! * every row is an object whose values are scalars (no nesting);
//! * every row has the same key sequence as the first row — column
//!   stability, so rows parse positionally as a table.
//!
//! Rendering goes through `protean_sim::json` (insertion-ordered keys,
//! deterministic float formatting), which — together with the
//! `protean-jobs` ordered merge — makes the files **byte-identical at
//! any `PROTEAN_JOBS` setting**.

use protean_sim::json::Json;
use std::path::PathBuf;

/// Version of the row schema. Bump when a field is renamed/removed (new
/// trailing fields are compatible: consumers match by key).
pub const SCHEMA_VERSION: u64 = 1;

/// An accumulating JSON report for one bench binary.
#[derive(Clone, Debug)]
pub struct BenchReport {
    bench: String,
    rows: Vec<Json>,
}

impl BenchReport {
    /// Creates an empty report for the bench binary `bench` (the output
    /// file is `bench_results/<bench>.json`).
    pub fn new(bench: &str) -> BenchReport {
        BenchReport {
            bench: bench.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Field order is preserved verbatim — every row
    /// of a report must use the same field sequence.
    pub fn row(&mut self, fields: Vec<(&str, Json)>) {
        self.rows.push(Json::obj(fields));
    }

    /// Number of rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The full report as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bench", Json::str(self.bench.clone())),
            ("schema", Json::U64(SCHEMA_VERSION)),
            ("rows", Json::Arr(self.rows.clone())),
        ])
    }

    /// Renders the report (line-per-row pretty form; deterministic).
    pub fn render(&self) -> String {
        let mut s = self.to_json().render_pretty();
        s.push('\n');
        s
    }

    /// Validates a parsed report against the schema rules (see module
    /// docs). Returns a human-readable reason on failure.
    pub fn validate(json: &Json) -> Result<(), String> {
        let bench = json
            .get("bench")
            .ok_or("missing key: bench")?
            .as_str()
            .ok_or("bench is not a string")?;
        if bench.is_empty() {
            return Err("bench name is empty".into());
        }
        match json.get("schema") {
            Some(Json::U64(v)) if *v == SCHEMA_VERSION => {}
            Some(other) => return Err(format!("schema must be {SCHEMA_VERSION}, got {other:?}")),
            None => return Err("missing key: schema".into()),
        }
        let rows = json
            .get("rows")
            .ok_or("missing key: rows")?
            .as_arr()
            .ok_or("rows is not an array")?;
        let mut first_keys: Option<Vec<&str>> = None;
        for (i, row) in rows.iter().enumerate() {
            let Json::Obj(fields) = row else {
                return Err(format!("row {i} is not an object"));
            };
            let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
            for (k, v) in fields {
                if !v.is_scalar() {
                    return Err(format!("row {i} field {k} is not a scalar"));
                }
            }
            match &first_keys {
                None => first_keys = Some(keys),
                Some(expect) if *expect != keys => {
                    return Err(format!(
                        "row {i} keys {keys:?} differ from row 0 keys {expect:?}"
                    ));
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// The output path: `$PROTEAN_BENCH_DIR/<bench>.json`, defaulting to
    /// `bench_results/` under the current directory.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var_os("PROTEAN_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("bench_results"));
        dir.join(format!("{}.json", self.bench))
    }

    /// Validates and writes the report to [`BenchReport::path`]
    /// (creating the directory), returning the path written.
    ///
    /// # Panics
    ///
    /// Panics if the report violates its own schema — a bug in the bench
    /// binary, not an I/O condition.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let json = self.to_json();
        if let Err(why) = Self::validate(&json) {
            panic!("bench {} produced an invalid report: {why}", self.bench);
        }
        let path = self.path();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Writes the report and prints a one-line confirmation (or the
    /// error, without failing the bench) — the common tail call of every
    /// bench binary.
    pub fn write_and_announce(&self) {
        match self.write() {
            Ok(path) => println!("\nwrote {} rows to {}", self.len(), path.display()),
            Err(e) => eprintln!("could not write {}: {e}", self.path().display()),
        }
    }
}

/// The standard measurement fields shared by every per-cell row:
/// normalized runtime, raw cycles, committed µops, the per-gate
/// defense cycle-attribution counters, and the scheduler occupancy
/// high-water marks (trailing fields — schema-compatible additions).
pub fn measure_fields(r: &crate::RunResult, norm: f64) -> Vec<(&'static str, Json)> {
    vec![
        ("norm", Json::F64(norm)),
        ("cycles", Json::U64(r.cycles)),
        ("committed", Json::U64(r.committed)),
        ("exec_blocked_cycles", Json::U64(r.exec_blocked_cycles)),
        ("wakeup_blocked_cycles", Json::U64(r.wakeup_blocked_cycles)),
        (
            "resolve_blocked_cycles",
            Json::U64(r.resolve_blocked_cycles),
        ),
        ("iq_hwm", Json::U64(r.iq_hwm)),
        ("wheel_hwm", Json::U64(r.wheel_hwm)),
    ]
}

/// Writes a `profile.json` report from the process-wide section-timer
/// totals — a no-op unless the run had `PROTEAN_PROFILE` set. Call at
/// the tail of a bench main, after the bench's own report.
pub fn write_profile_report_if_enabled() {
    if !protean_sim::profile::enabled() {
        return;
    }
    let totals = protean_sim::profile::totals();
    let all: u64 = totals.iter().map(|&(_, ns, _)| ns).sum();
    let mut rep = BenchReport::new("profile");
    for (section, nanos, calls) in totals {
        let share = if all == 0 {
            0.0
        } else {
            nanos as f64 * 100.0 / all as f64
        };
        rep.row(vec![
            ("section", Json::str(section)),
            ("nanos", Json::U64(nanos)),
            ("calls", Json::U64(calls)),
            ("share_pct", Json::F64(share)),
        ]);
    }
    rep.write_and_announce();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut rep = BenchReport::new("unit_test");
        rep.row(vec![
            ("workload", Json::str("a")),
            ("norm", Json::F64(1.25)),
            ("cycles", Json::U64(100)),
        ]);
        rep.row(vec![
            ("workload", Json::str("b")),
            ("norm", Json::F64(2.0)),
            ("cycles", Json::U64(200)),
        ]);
        rep
    }

    #[test]
    fn report_roundtrips_and_validates() {
        let rep = sample();
        let rendered = rep.render();
        let parsed = Json::parse(&rendered).expect("parses");
        BenchReport::validate(&parsed).expect("valid");
        assert_eq!(
            parsed.get("bench").and_then(|b| b.as_str()),
            Some("unit_test")
        );
        assert_eq!(
            parsed.get("rows").and_then(|r| r.as_arr()).map(|r| r.len()),
            Some(2)
        );
    }

    #[test]
    fn validate_rejects_mismatched_keys() {
        let mut rep = sample();
        rep.row(vec![("different", Json::U64(1))]);
        let err = BenchReport::validate(&rep.to_json()).unwrap_err();
        assert!(err.contains("differ from row 0"), "{err}");
    }

    #[test]
    fn validate_rejects_nested_values() {
        let mut rep = BenchReport::new("x");
        rep.row(vec![("nested", Json::Arr(vec![Json::U64(1)]))]);
        let err = BenchReport::validate(&rep.to_json()).unwrap_err();
        assert!(err.contains("not a scalar"), "{err}");
    }

    #[test]
    fn validate_rejects_wrong_schema_version() {
        let bad = Json::obj([
            ("bench", Json::str("x")),
            ("schema", Json::U64(SCHEMA_VERSION + 1)),
            ("rows", Json::Arr(Vec::new())),
        ]);
        assert!(BenchReport::validate(&bad).is_err());
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(sample().render(), sample().render());
    }
}
