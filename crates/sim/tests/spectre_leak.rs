//! The unsafe out-of-order core must be Spectre-vulnerable: a classic
//! bounds-check-bypass gadget leaks a transiently loaded secret into the
//! cache tag state, and the misprediction squash correctly restores
//! architectural state. This is the behaviour every defense in this
//! repository exists to prevent.

use protean_arch::ArchState;
use protean_isa::{assemble, Program};
use protean_sim::{Core, CoreConfig, SimExit, SimResult, UnsafePolicy};

const ARRAY_A: u64 = 0x10000; // 16 public elements (u64)
const SECRET: u64 = 0x10000 + 16 * 8; // right past the bounds check
const ARRAY_B: u64 = 0x40000; // probe array, indexed by secret * 64

/// `if (idx < len) { x = A[idx]; y = B[x * 64]; }` in a training loop:
/// the last iteration presents an out-of-bounds idx while the branch
/// predictor still says "in bounds". As in a real Spectre-v1 gadget, the
/// bound `len` is slow to arrive (a cold two-hop pointer chase — the
/// equivalent of `clflush(&len)`), giving the wrong path time to run.
fn gadget() -> Program {
    assemble(
        r#"
          mov r0, 0            ; trip counter
          mov r5, 0            ; idx
          mov r8, 0x100000     ; len pointer-chain cursor (cold every iter)
        loop:
          cmp r0, 40
          jeq attack
          and r5, r0, 15       ; in-bounds idx while training
          jmp victim
        attack:
          mov r5, 16           ; out-of-bounds: A[16] = the secret
        victim:
          load r7, [r8]        ; cold miss
          load r7, [r7]        ; dependent cold miss -> len = 16, late
          cmp r5, r7
          juge skip            ; bounds check (predicted not-taken)
          load r1, [r5*8 + 0x10000]   ; x = A[idx] (transient secret read)
          shl r2, r1, 6               ; x * 64
          load r3, [r2 + 0x40000]     ; transmit via cache set
        skip:
          add r8, r8, 4096     ; next chain cell (never cached)
          add r0, r0, 1
          cmp r0, 41
          jlt loop
          halt
        "#,
    )
    .unwrap()
}

fn run_with_secret(secret: u64) -> SimResult {
    let prog = gadget();
    let mut init = ArchState::new();
    for i in 0..16u64 {
        init.mem.write(ARRAY_A + i * 8, 8, i); // public, small values
    }
    init.mem.write(SECRET, 8, secret);
    // The len pointer chain: [0x100000 + i*4096] -> 0x200000 + i*4096,
    // which holds len = 16. Fresh (cold) cells every iteration.
    for i in 0..42u64 {
        init.mem.write(0x100000 + i * 4096, 8, 0x200000 + i * 4096);
        init.mem.write(0x200000 + i * 4096, 8, 16);
    }
    let mut core = Core::new(
        &prog,
        CoreConfig::test_tiny(),
        Box::new(UnsafePolicy),
        &init,
    );
    core.record_traces(true);
    let r = core.run(100_000, 2_000_000);
    assert_eq!(r.exit, SimExit::Halted);
    r
}

#[test]
fn unsafe_core_leaks_transient_secret_via_cache() {
    let a = run_with_secret(100);
    let b = run_with_secret(200);
    // Architectural state is identical: the secret never committed to a
    // register (the bounds check squashed the wrong path).
    assert_eq!(a.final_regs, b.final_regs);
    assert_eq!(a.committed_idxs, b.committed_idxs);
    // But the cache tag state differs: B[secret * 64] was transiently
    // fetched — the Spectre leak.
    assert_ne!(
        a.cache_obs, b.cache_obs,
        "unsafe core must leak the secret into the cache"
    );
    let _ = ARRAY_B;
}

#[test]
fn wrong_path_never_commits() {
    let r = run_with_secret(100);
    // The attack iteration's bounds check must architecturally skip the
    // array loads: 40 training iterations commit 4 loads each (2 len-chain
    // hops + A + B); the attack iteration commits only the 2 len hops.
    assert_eq!(r.stats.loads, 40 * 4 + 2);
    // The attack iteration mispredicted at least once.
    assert!(r.stats.mispredicts >= 1);
    assert!(r.stats.squashed > 0);
}

#[test]
fn training_makes_predictor_confident() {
    let r = run_with_secret(100);
    // With 40 training iterations the overall branch misprediction rate
    // must be low (the gadget depends on it).
    assert!(
        r.stats.mispredict_rate() < 0.2,
        "mispredict rate {} too high for training to work",
        r.stats.mispredict_rate()
    );
}
