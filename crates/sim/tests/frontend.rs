//! Front-end regression tests for the decode-once/batched-fetch path:
//! the L1I stats fix (exactly one access booked per fetched µop), the
//! per-cycle fetch-group trace events, and the audit-log/`Stats`
//! reconciliation under batched fetch.

use protean_arch::ArchState;
use protean_isa::{assemble, Program};
use protean_sim::{Core, CoreConfig, SimExit, SimResult, UnsafePolicy};

/// A straight-line program long enough to span several I-cache lines
/// (4 bytes per instruction, 64-byte lines): no branches, so no
/// wrong-path fetch and no squashes — every µop that passes through
/// fetch is renamed and counted in `Stats::fetched`.
fn straight_line(n_adds: usize) -> Program {
    let mut src = String::from("mov r0, 0\n");
    for _ in 0..n_adds {
        src.push_str("add r0, r0, 1\n");
    }
    src.push_str("halt\n");
    assemble(&src).unwrap()
}

fn run(prog: &Program, cfg: CoreConfig) -> SimResult {
    let core = Core::new(prog, cfg, Box::new(UnsafePolicy), &ArchState::new());
    let result = core.run(100_000, 10_000_000);
    assert_eq!(result.exit, SimExit::Halted);
    result
}

/// The L1I double-count regression (the old fetch path probed, stalled,
/// then accessed *again* on resume, booking a spurious hit per real
/// miss): on a cold cache with straight-line code, L1I accesses must
/// equal fetched µops exactly.
#[test]
fn l1i_accesses_equal_fetched_uops_on_cold_cache() {
    for cfg in [CoreConfig::test_tiny(), CoreConfig::p_core()] {
        let prog = straight_line(200);
        let r = run(&prog, cfg.clone());
        assert_eq!(r.stats.committed, 202);
        assert!(
            r.stats.l1i_misses > 0,
            "{}: a cold cache must miss at least once",
            cfg.name
        );
        assert_eq!(
            r.stats.l1i_hits + r.stats.l1i_misses,
            r.stats.fetched,
            "{}: exactly one L1I access per fetched µop (hits={} misses={} fetched={})",
            cfg.name,
            r.stats.l1i_hits,
            r.stats.l1i_misses,
            r.stats.fetched
        );
        // 202 µops at 4 bytes each over 64-byte lines: ceil(808/64).
        assert_eq!(r.stats.l1i_misses, 13, "{}: one miss per line", cfg.name);
    }
}

/// The decode-cache switch may not change the corrected L1I accounting
/// (the fix lives in the fetch loop both paths share).
#[test]
fn l1i_accounting_identical_with_and_without_decode_cache() {
    let prog = straight_line(100);
    let mut on = CoreConfig::test_tiny();
    on.decode_cache = true;
    let mut off = CoreConfig::test_tiny();
    off.decode_cache = false;
    let a = run(&prog, on);
    let b = run(&prog, off);
    assert_eq!(a.stats.l1i_hits, b.stats.l1i_hits);
    assert_eq!(a.stats.l1i_misses, b.stats.l1i_misses);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.final_regs, b.final_regs);
}

/// Batched fetch hands whole groups to rename: with tracing on, the
/// per-cycle fetch-group events must cover every fetch (group sizes in
/// `1..=fetch_width`, strictly increasing cycles, and total µops equal
/// to the L1I access count — fetch is the sole L1I client).
#[test]
fn fetch_group_events_cover_all_fetched_uops() {
    let prog = straight_line(150);
    let mut cfg = CoreConfig::test_tiny();
    cfg.trace = true;
    let r = run(&prog, cfg.clone());
    let trace = r.trace.expect("traced run");
    assert!(!trace.fetch_groups.is_empty());
    let mut last_cycle = None;
    let mut total = 0u64;
    for g in &trace.fetch_groups {
        assert!(g.len >= 1 && g.len as usize <= cfg.fetch_width, "{g:?}");
        assert!(Some(g.cycle) > last_cycle, "one group per cycle: {g:?}");
        last_cycle = Some(g.cycle);
        total += g.len as u64;
    }
    assert_eq!(total, r.stats.l1i_hits + r.stats.l1i_misses);
    // Straight-line code: groups are contiguous index runs.
    for g in &trace.fetch_groups {
        assert!(g.start_idx as u64 + g.len as u64 <= prog.len() as u64);
    }
}

/// The audit log still reconciles exactly with `Stats` under batched
/// fetch (the group hand-off may not change when µops reach rename, so
/// blocked-cycle attribution is unchanged; see also
/// `tests/trace.rs::audit_log_reconciles_with_stats_counters`).
#[test]
fn audit_reconciles_under_batched_fetch() {
    use protean_sim::{BlockPoint, DefensePolicy, DynInst, RegTags, SpecFrontier};

    struct DelayLoads;
    impl DefensePolicy for DelayLoads {
        fn name(&self) -> String {
            "delay-loads".into()
        }
        fn may_execute(&self, u: &DynInst, _t: &RegTags, fr: &SpecFrontier) -> bool {
            !u.is_load() || fr.is_non_speculative(u.seq)
        }
        fn block_rule(
            &self,
            _u: &DynInst,
            _p: BlockPoint,
            _t: &RegTags,
            _fr: &SpecFrontier,
        ) -> &'static str {
            "delay-loads"
        }
    }

    let prog = assemble(
        r#"
          mov r0, 0x20000
          mov r1, 0
        loop:
          load r2, [r0 + r1*8]
          add r3, r3, r2
          add r1, r1, 1
          cmp r1, 24
          jlt loop
          halt
        "#,
    )
    .unwrap();
    let mut cfg = CoreConfig::test_tiny();
    cfg.trace = true;
    let core = Core::new(&prog, cfg, Box::new(DelayLoads), &ArchState::new());
    let r = core.run(100_000, 10_000_000);
    assert_eq!(r.exit, SimExit::Halted);
    let trace = r.trace.expect("traced run");
    let totals = trace.blocked_totals();
    assert!(totals[0] > 0, "the delaying policy must block");
    assert_eq!(totals[0], r.stats.exec_blocked_cycles);
    assert_eq!(totals[1], r.stats.wakeup_blocked_cycles);
    assert_eq!(totals[2], r.stats.resolve_blocked_cycles);
    assert!(!trace.fetch_groups.is_empty());
}
