//! Differential test: TAGE's incremental folded-history registers
//! against the reference `fold_history` they replaced.
//!
//! The predictor maintains one folded register per tagged table,
//! updated in O(1) on every history shift; the invariant is that after
//! *any* sequence of speculate/update/restore/reset operations, each
//! register equals [`TagePredictor::fold_reference`] of the current
//! global history masked to that table's length — for all three
//! geometric lengths (4/16/64), including the length-64 table whose
//! out-shifted bit drops on every update once the history fills.

use protean_sim::{TagePredictor, HIST_LENGTHS};
use protean_testkit::{Checker, Rng};

/// One history-mutating predictor operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    Speculate(u64, bool),
    Update(u64, bool),
    Snapshot,
    Restore,
    Reset,
}

fn arb_ops(rng: &mut Rng) -> Vec<Op> {
    let n = rng.gen_range(1usize..300);
    (0..n)
        .map(|_| {
            let pc = rng.gen_range(0u64..0x4000) & !3;
            let taken = rng.gen::<bool>();
            match rng.gen_range(0u32..16) {
                // Shifts dominate so the 64-bit history regularly fills
                // and the drop-out path runs.
                0..=8 => Op::Speculate(pc, taken),
                9..=12 => Op::Update(pc, taken),
                13 => Op::Snapshot,
                14 => Op::Restore,
                _ => Op::Reset,
            }
        })
        .collect()
}

fn assert_folds_match_reference(p: &TagePredictor, step: usize) {
    let folds = p.folds();
    for (t, &len) in HIST_LENGTHS.iter().enumerate() {
        assert_eq!(
            folds[t],
            TagePredictor::fold_reference(p.history(), len),
            "table {t} (history length {len}) diverged from the \
             reference fold at step {step} (history {:#018x})",
            p.history()
        );
    }
}

#[test]
fn incremental_folds_match_reference_over_random_streams() {
    Checker::new("incremental_folds_match_reference_over_random_streams")
        .cases(400)
        .run(arb_ops, |ops| {
            let mut p = TagePredictor::new();
            let mut snap = 0u64;
            assert_folds_match_reference(&p, 0);
            for (i, op) in ops.iter().enumerate() {
                match *op {
                    Op::Speculate(pc, taken) => p.speculate(pc, taken),
                    Op::Update(pc, taken) => {
                        let pred = p.predict(pc);
                        p.update(pc, pred, taken);
                    }
                    Op::Snapshot => snap = p.history(),
                    Op::Restore => p.restore_history(snap),
                    Op::Reset => {
                        p.reset();
                        snap = 0;
                    }
                }
                assert_folds_match_reference(&p, i + 1);
            }
        });
}

/// Single-step transition from an arbitrary 64-bit history: restoring
/// `h` then shifting one bit must land every register exactly on the
/// reference fold of `(h << 1) | b` — the raw algebraic identity the
/// incremental update implements, checked from states a run could take
/// thousands of shifts to reach.
#[test]
fn single_shift_from_arbitrary_history_matches_reference() {
    Checker::new("single_shift_from_arbitrary_history_matches_reference")
        .cases(600)
        .run(
            |rng| (rng.gen::<u64>(), rng.gen::<bool>()),
            |&(h, taken)| {
                let mut p = TagePredictor::new();
                p.restore_history(h);
                assert_folds_match_reference(&p, 0);
                p.speculate(0x1000, taken);
                assert_eq!(p.history(), (h << 1) | taken as u64);
                assert_folds_match_reference(&p, 1);
            },
        );
}
