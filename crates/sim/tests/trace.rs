//! Observability-layer integration tests: tracing must be a pure
//! observer (identical architectural results and cycle counts), the
//! defense-decision audit log must reconcile exactly with the blocked
//! counters in `Stats`, squashes must carry their cause, and the Chrome
//! trace-event export must be well-formed JSON.

use protean_arch::ArchState;
use protean_isa::{assemble, Program};
use protean_sim::{
    BlockPoint, Core, CoreConfig, DefensePolicy, DynInst, RegTags, SimExit, SimResult,
    SpecFrontier, SquashKind, UnsafePolicy,
};

/// A branchy, memory-heavy program: data-dependent branches over an
/// array (cold-predictor mispredictions guaranteed) plus stores.
fn workload() -> (Program, ArchState) {
    let prog = assemble(
        r#"
          mov r0, 0x10000   ; base
          mov r1, 0         ; i
          mov r2, 0         ; sum of odd elements
        loop:
          load r3, [r0 + r1*8]
          and r4, r3, 1
          cmp r4, 0
          jeq even
          add r2, r2, r3
        even:
          add r1, r1, 1
          cmp r1, 48
          jlt loop
          store [r0 - 8], r2
          halt
        "#,
    )
    .unwrap();
    let mut init = ArchState::new();
    // Deterministic but irregular parities so the `jeq` mispredicts.
    let mut x = 0x9e3779b97f4a7c15u64;
    for i in 0..48 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        init.mem.write(0x10000 + i * 8, 8, x >> 17);
    }
    (prog, init)
}

fn run(policy: Box<dyn DefensePolicy>, trace: bool) -> SimResult {
    let (prog, init) = workload();
    let mut cfg = CoreConfig::test_tiny();
    cfg.trace = trace;
    let mut core = Core::new(&prog, cfg, policy, &init);
    core.record_traces(true);
    let result = core.run(10_000, 1_000_000);
    assert_eq!(result.exit, SimExit::Halted);
    result
}

/// A policy that blocks at all three gates, with distinct rule names.
struct BlockyPolicy;

impl DefensePolicy for BlockyPolicy {
    fn name(&self) -> String {
        "blocky".into()
    }

    fn may_execute(&self, u: &DynInst, _tags: &RegTags, fr: &SpecFrontier) -> bool {
        u.inst.is_branch() || !u.is_load() || fr.is_non_speculative(u.seq)
    }

    fn may_wakeup(&self, u: &DynInst, _tags: &RegTags, fr: &SpecFrontier) -> bool {
        !u.is_load() || fr.is_non_speculative(u.seq)
    }

    fn may_resolve(&self, u: &DynInst, _tags: &RegTags, fr: &SpecFrontier) -> bool {
        fr.is_non_speculative(u.seq)
    }

    fn block_rule(
        &self,
        _u: &DynInst,
        point: BlockPoint,
        _tags: &RegTags,
        _fr: &SpecFrontier,
    ) -> &'static str {
        match point {
            BlockPoint::Execute => "test-exec-rule",
            BlockPoint::Wakeup => "test-wakeup-rule",
            BlockPoint::Resolve => "test-resolve-rule",
        }
    }
}

#[test]
fn tracing_is_a_pure_observer() {
    let plain = run(Box::new(UnsafePolicy), false);
    let traced = run(Box::new(UnsafePolicy), true);
    assert!(plain.trace.is_none(), "tracing off must yield no trace");
    assert!(traced.trace.is_some(), "tracing on must yield a trace");
    assert_eq!(plain.committed_idxs, traced.committed_idxs);
    assert_eq!(plain.final_regs, traced.final_regs);
    assert_eq!(plain.stats.cycles, traced.stats.cycles);
    assert_eq!(plain.stats.squashed, traced.stats.squashed);
}

#[test]
fn tracing_is_a_pure_observer_under_blocking_policy() {
    let plain = run(Box::new(BlockyPolicy), false);
    let traced = run(Box::new(BlockyPolicy), true);
    assert_eq!(plain.committed_idxs, traced.committed_idxs);
    assert_eq!(plain.final_regs, traced.final_regs);
    assert_eq!(plain.stats.cycles, traced.stats.cycles);
    assert_eq!(
        plain.stats.exec_blocked_cycles,
        traced.stats.exec_blocked_cycles
    );
}

#[test]
fn audit_log_reconciles_with_stats_counters() {
    let r = run(Box::new(BlockyPolicy), true);
    let trace = r.trace.expect("traced run");
    let totals = trace.blocked_totals();
    assert!(
        totals.iter().any(|&t| t > 0),
        "the blocking policy must actually block"
    );
    assert_eq!(totals[0], r.stats.exec_blocked_cycles, "execute gate");
    assert_eq!(totals[1], r.stats.wakeup_blocked_cycles, "wakeup gate");
    assert_eq!(totals[2], r.stats.resolve_blocked_cycles, "resolve gate");

    // Per-rule breakdown sums back to the same totals, under the rule
    // names the policy chose.
    let by_rule = trace.blocked_by_rule();
    for (point, expected) in [
        (BlockPoint::Execute, "test-exec-rule"),
        (BlockPoint::Wakeup, "test-wakeup-rule"),
        (BlockPoint::Resolve, "test-resolve-rule"),
    ] {
        let sum: u64 = by_rule
            .iter()
            .filter(|(p, rule, _)| {
                assert!(
                    *p != point || *rule == expected,
                    "{point:?} blocked under unexpected rule {rule}"
                );
                *p == point
            })
            .map(|(_, _, c)| *c)
            .sum();
        assert_eq!(sum, totals[point as usize]);
    }

    // Audit records agree with the per-µop blocked spans.
    for rec in trace.audit() {
        assert!(rec.cycles > 0);
        assert!(rec.first_cycle <= rec.last_cycle);
    }
}

#[test]
fn branch_squashes_are_cause_tagged() {
    let r = run(Box::new(UnsafePolicy), true);
    assert!(
        r.stats.branch_squashes > 0,
        "workload must mispredict at least once"
    );
    let trace = r.trace.expect("traced run");
    let squashed: Vec<_> = trace
        .uops
        .iter()
        .filter_map(|u| u.squash.map(|s| s.cause))
        .collect();
    assert!(
        squashed.iter().any(|&c| c == SquashKind::Branch),
        "at least one µop must be tagged as branch-squashed"
    );
    // A squashed µop never commits.
    for u in &trace.uops {
        if u.squash.is_some() {
            assert_eq!(u.commit_cycle, None, "squashed µop seq {} committed", u.seq);
        }
    }
}

#[test]
fn committed_uop_count_matches_stats() {
    let r = run(Box::new(UnsafePolicy), true);
    let trace = r.trace.expect("traced run");
    let committed = trace
        .uops
        .iter()
        .filter(|u| u.commit_cycle.is_some())
        .count() as u64;
    assert_eq!(committed, r.stats.committed);
    // Monotone per-µop stage ordering.
    for u in &trace.uops {
        assert!(u.fetch_cycle <= u.rename_cycle);
        if let Some(issue) = u.issue_cycle {
            assert!(u.rename_cycle <= issue);
            if let Some(done) = u.complete_cycle {
                assert!(issue <= done);
                if let Some(commit) = u.commit_cycle {
                    assert!(done <= commit);
                }
            }
        }
    }
}

#[test]
fn chrome_trace_is_wellformed_json() {
    let r = run(Box::new(BlockyPolicy), true);
    let trace = r.trace.expect("traced run");
    let json = protean_sim::json::Json::parse(&trace.to_chrome_trace()).expect("parses");
    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Rendered audit/pipeline views exist and mention the rule names.
    let audit = trace.render_audit(16);
    assert!(audit.contains("test-"), "audit render names rules: {audit}");
    let pipe = trace.render_pipeline(32, 120);
    assert!(pipe.contains('C'), "pipeline render shows commits: {pipe}");
}
