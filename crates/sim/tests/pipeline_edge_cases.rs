//! Targeted pipeline edge cases: structural-hazard stalls, RSB
//! underflow, divider contention, squash interactions with in-flight
//! stores, and wrong-path fetch containment.

use protean_arch::{ArchState, Emulator, ExitStatus};
use protean_isa::{assemble, Program};
use protean_sim::{Core, CoreConfig, SimExit, SimResult, UnsafePolicy};

fn run_cfg(src: &str, init: ArchState, cfg: CoreConfig) -> SimResult {
    let prog = assemble(src).unwrap();
    check_against_emulator(&prog, &init);
    let mut core = Core::new(&prog, cfg, Box::new(UnsafePolicy), &init);
    core.record_traces(true);
    let r = core.run(500_000, 60_000_000);
    assert_eq!(r.exit, SimExit::Halted);
    r
}

fn run(src: &str, init: ArchState) -> SimResult {
    run_cfg(src, init, CoreConfig::test_tiny())
}

fn check_against_emulator(prog: &Program, init: &ArchState) {
    let mut emu = Emulator::new(prog, init.clone());
    let (status, _) = emu.run(500_000);
    assert_eq!(status, ExitStatus::Halted);
}

/// Deep recursion overflows the 8-entry RSB; returns past the capacity
/// mispredict, but results stay exact.
#[test]
fn rsb_overflow_recursion() {
    let r = run(
        r#"
          mov rsp, 0x80000
          mov r0, 20          ; recursion depth > RSB capacity
          call rec
          halt
        rec:
          cmp r0, 0
          jeq base
          sub r0, r0, 1
          call rec
          add r1, r1, 1
          ret
        base:
          ret
        "#,
        ArchState::new(),
    );
    assert_eq!(r.final_regs[1], 20);
    // Deep returns beyond the RSB must mispredict at least once.
    assert!(r.stats.mispredicts > 0, "RSB underflow should mispredict");
}

/// The (non-pipelined) divider serializes back-to-back divisions; the
/// second waits for the first's operand-dependent latency.
#[test]
fn divider_contention() {
    let serial = run(
        "mov r1, 0xffffffffffffffff\nmov r2, 3\ndiv r3, r1, r2\ndiv r4, r1, r2\ndiv r5, r1, r2\nhalt\n",
        ArchState::new(),
    );
    let single = run(
        "mov r1, 0xffffffffffffffff\nmov r2, 3\ndiv r3, r1, r2\nnop\nnop\nhalt\n",
        ArchState::new(),
    );
    assert!(
        serial.stats.cycles >= single.stats.cycles + 2 * 30,
        "three max-latency divisions must serialize: {} vs {}",
        serial.stats.cycles,
        single.stats.cycles
    );
}

/// Store-queue capacity: more in-flight stores than SQ entries must
/// stall rename, not corrupt state.
#[test]
fn store_queue_pressure() {
    let mut src = String::from("mov r0, 0x10000\n");
    for i in 0..32 {
        src.push_str(&format!("store [r0 + {}], {}\n", i * 8, i));
    }
    src.push_str("halt\n");
    let r = run(&src, ArchState::new()); // tiny core: SQ = 8
    assert_eq!(r.stats.stores, 32);
}

/// A store whose data arrives *after* a squash of younger instructions
/// must still commit the correct value.
#[test]
fn store_data_capture_survives_squash() {
    let mut init = ArchState::new();
    init.mem.write(0x20000, 8, 99); // drives the mispredicted branch
    let r = run(
        r#"
          mov r0, 0x10000
          mov r4, 0
        loop:
          load r1, [0x20000]       ; slow-ish data for the branch
          mul r2, r1, 7            ; store data, arrives late
          store [r0 + 8], r2
          cmp r1, 50
          jlt small                ; mispredicts on first trips
          add r4, r4, 1
        small:
          add r5, r5, 1
          cmp r5, 30
          jlt loop
          load r6, [r0 + 8]
          halt
        "#,
        init,
    );
    assert_eq!(r.final_regs[6], 99 * 7);
    assert_eq!(r.final_regs[4], 30);
}

/// Wrong-path execution must never commit: a trained branch guarding a
/// halt-free region, with the wrong path containing a `halt`.
#[test]
fn wrong_path_halt_never_commits() {
    let r = run(
        r#"
          mov r0, 0
        loop:
          add r0, r0, 1
          cmp r0, 200
          jult loop                ; taken 199 times; not-taken path: halt
          halt
        "#,
        ArchState::new(),
    );
    // Exactly 200 iterations committed despite the halt sitting on the
    // fall-through (often-fetched wrong) path.
    assert_eq!(r.final_regs[0], 200);
}

/// Physical-register exhaustion: a burst of writes wider than the free
/// list must stall rename and recover.
#[test]
fn phys_reg_pressure() {
    let mut src = String::new();
    for round in 0..40 {
        for i in 0..8 {
            src.push_str(&format!("add r{i}, r{i}, {round}\n"));
        }
    }
    src.push_str("halt\n");
    let r = run(&src, ArchState::new()); // tiny core: 64 phys regs
    assert_eq!(r.stats.committed, 40 * 8 + 1);
}

/// The same program must produce identical cycle counts on repeated runs
/// (full determinism — the bedrock of the fuzzer's pair comparisons).
#[test]
fn simulation_is_deterministic() {
    let src = r#"
      mov r0, 0x30000
      mov r1, 0
    loop:
      and r2, r1, 0xff8
      load r3, [r0 + r2*1]
      add r4, r4, r3
      cmp r3, 100
      jlt skip
      xor r4, r4, r1
    skip:
      add r1, r1, 8
      cmp r1, 4000
      jlt loop
      halt
    "#;
    let mut init = ArchState::new();
    for i in 0..512u64 {
        init.mem.write(0x30000 + i * 8, 8, i * 31 % 257);
    }
    let a = run(src, init.clone());
    let b = run(src, init);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.timing, b.timing);
    assert_eq!(a.cache_obs, b.cache_obs);
}

/// P-core and E-core presets both run a mixed kernel correctly, and the
/// E-core (smaller ROB) takes at least as many cycles.
#[test]
fn core_presets_sanity() {
    let src = r#"
      mov r0, 0x40000
      mov r1, 0
    loop:
      load r2, [r0 + r1*8]
      mul r3, r2, 3
      store [r0 + 0x8000 + r1*8], r3
      add r1, r1, 1
      cmp r1, 400
      jlt loop
      halt
    "#;
    let p = run_cfg(src, ArchState::new(), CoreConfig::p_core());
    let e = run_cfg(src, ArchState::new(), CoreConfig::e_core());
    assert_eq!(p.final_regs, e.final_regs);
    assert!(e.stats.cycles >= p.stats.cycles * 9 / 10);
}
