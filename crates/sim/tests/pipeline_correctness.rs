//! Differential correctness: the out-of-order pipeline must commit
//! exactly the instruction stream the sequential emulator executes, with
//! identical final architectural state — under every defense policy
//! (defenses change timing, never architectural results).

use protean_arch::{ArchState, Emulator, ExitStatus};
use protean_isa::{assemble, Mem, Program, ProgramBuilder, Reg};
use protean_rng::Rng;
use protean_sim::{Core, CoreConfig, DefensePolicy, SimExit, UnsafePolicy};

fn run_both(prog: &Program, init: &ArchState, cfg: CoreConfig) {
    run_both_with(prog, init, cfg, Box::new(UnsafePolicy));
}

fn run_both_with(
    prog: &Program,
    init: &ArchState,
    cfg: CoreConfig,
    policy: Box<dyn DefensePolicy>,
) {
    let mut emu = Emulator::new(prog, init.clone());
    let (status, records) = emu.run(200_000);
    assert_eq!(status, ExitStatus::Halted, "emulator must halt");

    let mut core = Core::new(prog, cfg, policy, init);
    core.record_traces(true);
    let result = core.run(300_000, 3_000_000);
    assert_eq!(result.exit, SimExit::Halted, "pipeline must halt");

    // Same committed instruction sequence.
    let emu_idxs: Vec<u32> = records.iter().map(|r| r.idx).collect();
    assert_eq!(
        result.committed_idxs, emu_idxs,
        "committed instruction streams diverge"
    );
    // Same final architectural registers.
    for r in Reg::all() {
        assert_eq!(
            result.final_regs[r.index()],
            emu.state.reg(r),
            "final value of {r} diverges"
        );
    }
}

#[test]
fn straight_line_arithmetic() {
    let prog = assemble(
        r#"
        mov r0, 10
        mov r1, 3
        add r2, r0, r1
        mul r3, r2, r2
        sub r4, r3, 19
        div r5, r4, r1
        xor r6, r5, 0xff
        halt
        "#,
    )
    .unwrap();
    run_both(&prog, &ArchState::new(), CoreConfig::test_tiny());
}

/// Width-faithful ALU flags observed through a `cmov` consumer in the
/// pipeline: a W32 add that carries into bit 32 truncates to zero and
/// must set ZF (historically the flags were computed on the raw 64-bit
/// value, so the cmov went the wrong way), and a W32 shift count is
/// masked mod 32, not mod 64.
#[test]
fn width_truncated_flags_drive_cmov() {
    let prog = assemble(
        r#"
        mov r0, 0xffffffff
        add.w r1, r0, 1      ; 32-bit result is 0 -> ZF
        mov r2, 111
        mov r3, 222
        cmov.eq r2, r3       ; must take r3
        mov r4, 0x80000000
        or.w r5, r4, 0       ; bit 31 set -> SF at W32
        mov r6, 333
        mov r7, 444
        cmov.lt r6, r7       ; lt = SF != OF; OF clear -> observes SF
        mov r8, 3
        shl.w r9, r8, 33     ; count 33 mod 32 = 1 -> 6
        halt
        "#,
    )
    .unwrap();
    let init = ArchState::new();

    let mut emu = Emulator::new(&prog, init.clone());
    let (status, _) = emu.run(10_000);
    assert_eq!(status, ExitStatus::Halted);
    assert_eq!(emu.state.reg(Reg::gpr(1)), 0, "W32 add truncates to zero");
    assert_eq!(emu.state.reg(Reg::gpr(2)), 222, "ZF from truncated result");
    assert_eq!(emu.state.reg(Reg::gpr(6)), 444, "SF from bit 31 at W32");
    assert_eq!(emu.state.reg(Reg::gpr(9)), 6, "W32 shift count mod 32");

    let mut core = Core::new(
        &prog,
        CoreConfig::test_tiny(),
        Box::new(UnsafePolicy),
        &init,
    );
    core.record_traces(true);
    let result = core.run(10_000, 100_000);
    assert_eq!(result.exit, SimExit::Halted);
    assert_eq!(result.final_regs[Reg::gpr(2).index()], 222);
    assert_eq!(result.final_regs[Reg::gpr(6).index()], 444);
    assert_eq!(result.final_regs[Reg::gpr(9).index()], 6);
}

#[test]
fn loop_with_memory() {
    // Sum an array of 64 elements.
    let prog = assemble(
        r#"
          mov r0, 0x10000   ; base
          mov r1, 0         ; i
          mov r2, 0         ; sum
        loop:
          load r3, [r0 + r1*8]
          add r2, r2, r3
          add r1, r1, 1
          cmp r1, 64
          jlt loop
          store [r0 - 8], r2
          halt
        "#,
    )
    .unwrap();
    let mut init = ArchState::new();
    for i in 0..64u64 {
        init.mem.write(0x10000 + i * 8, 8, i * i);
    }
    run_both(&prog, &init, CoreConfig::test_tiny());
}

#[test]
fn call_ret_nesting() {
    let prog = assemble(
        r#"
          mov rsp, 0x80000
          mov r0, 0
          call f1
          add r0, r0, 1000
          halt
        f1:
          add r0, r0, 1
          call f2
          add r0, r0, 10
          ret
        f2:
          add r0, r0, 100
          ret
        "#,
    )
    .unwrap();
    run_both(&prog, &ArchState::new(), CoreConfig::test_tiny());
}

#[test]
fn store_load_aliasing_memory_order() {
    // A store whose address arrives late, with younger loads to the same
    // address: forces memory-order violations and squashes, but the
    // committed result must be correct.
    let prog = assemble(
        r#"
          mov r0, 0x20000
          mov r1, 1
        loop:
          mul r2, r1, 8       ; slow-ish address computation
          add r2, r2, r0
          and r2, r2, 0xfff8  ; alias everything into a small window
          store [r2], r1
          load r3, [r0 + 8]   ; frequently aliases the store
          add r4, r4, r3
          add r1, r1, 1
          cmp r1, 40
          jlt loop
          store [r0], r4
          halt
        "#,
    )
    .unwrap();
    run_both(&prog, &ArchState::new(), CoreConfig::test_tiny());
}

#[test]
fn partial_width_and_cmov() {
    let prog = assemble(
        r#"
          mov r0, 0xffffffffffffffff
          mov.b r0, 0x12
          mov.h r1, 0x3456
          mov.w r2, 0xdeadbeefcafebabe
          cmp r0, r1
          cmov.ult r3, r0
          cmov.uge r3, r1
          add.b r4, r0, r1
          halt
        "#,
    )
    .unwrap();
    run_both(&prog, &ArchState::new(), CoreConfig::test_tiny());
}

#[test]
fn div_by_zero_machine_clear() {
    let prog = assemble(
        r#"
          mov r0, 100
          mov r1, 0
          div r2, r0, r1     ; faults (suppressed): machine clear at commit
          add r3, r2, 1
          mov r4, 7
          div r5, r0, r4
          halt
        "#,
    )
    .unwrap();
    run_both(&prog, &ArchState::new(), CoreConfig::test_tiny());
}

#[test]
fn indirect_jump_via_table() {
    let mut b = ProgramBuilder::new();
    let case1 = b.label("case1");
    let done = b.label("done");
    // Compute target PC of case1 into r1, jump through register.
    b.mov_imm(Reg::R1, 0); // patched below via pc arithmetic
    b.jmpreg(Reg::R1);
    b.bind(case1);
    b.mov_imm(Reg::R2, 42);
    b.jmp(done);
    b.bind(done);
    b.halt();
    let mut prog = b.build().unwrap();
    // Patch: r1 = pc_of(case1) = pc_of(2).
    let pc = prog.pc_of(2);
    prog.insts[0] = protean_isa::Inst::new(protean_isa::Op::MovImm {
        dst: Reg::R1,
        imm: pc,
        width: protean_isa::Width::W64,
    });
    run_both(&prog, &ArchState::new(), CoreConfig::test_tiny());
}

#[test]
fn mispredicted_branches_flush_correctly() {
    // A data-dependent branch pattern the predictor cannot learn.
    let prog = assemble(
        r#"
          mov r0, 0x30000
          mov r1, 0          ; i
          mov r2, 0          ; acc
        loop:
          load r3, [r0 + r1*8]
          cmp r3, 0
          jeq skip
          add r2, r2, r3
          jmp next
        skip:
          add r2, r2, 1
        next:
          add r1, r1, 1
          cmp r1, 100
          jlt loop
          halt
        "#,
    )
    .unwrap();
    let mut init = ArchState::new();
    let mut rng = Rng::seed_from_u64(7);
    for i in 0..100u64 {
        let v: u64 = if rng.gen_bool(0.5) {
            0
        } else {
            rng.gen_range(1..100)
        };
        init.mem.write(0x30000 + i * 8, 8, v);
    }
    run_both(&prog, &init, CoreConfig::test_tiny());
}

#[test]
fn p_core_and_e_core_run_correctly() {
    let prog = assemble(
        r#"
          mov r0, 0
          mov r1, 0x40000
        loop:
          store [r1 + r0*8], r0
          load r2, [r1 + r0*8]
          add r3, r3, r2
          add r0, r0, 1
          cmp r0, 50
          jlt loop
          halt
        "#,
    )
    .unwrap();
    run_both(&prog, &ArchState::new(), CoreConfig::p_core());
    run_both(&prog, &ArchState::new(), CoreConfig::e_core());
}

/// Random structured programs: straight-line blocks, bounded loops,
/// loads/stores in a data window, calls, divisions.
fn random_program(seed: u64) -> (Program, ArchState) {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let data_base = 0x50000u64;
    b.mov_imm(Reg::RSP, 0x80000);
    // Seed registers.
    for i in 0..8 {
        b.mov_imm(Reg::gpr(i), rng.gen_range(0..1_000_000));
    }
    let n_blocks = rng.gen_range(2..6);
    for _ in 0..n_blocks {
        // A bounded loop.
        let counter = Reg::R12;
        let iters = rng.gen_range(1..20u64);
        b.mov_imm(counter, 0);
        let top = b.here("top");
        let n_body = rng.gen_range(3..10);
        for _ in 0..n_body {
            match rng.gen_range(0..10) {
                0..=3 => {
                    let op = protean_isa::AluOp::ALL[rng.gen_range(0..11usize)];
                    let dst = Reg::gpr(rng.gen_range(0..8));
                    let s1 = Reg::gpr(rng.gen_range(0..8));
                    if rng.gen_bool(0.5) {
                        b.alu(op, dst, s1, Reg::gpr(rng.gen_range(0..8)));
                    } else {
                        b.alu(op, dst, s1, rng.gen_range(0..256u64));
                    }
                }
                4..=5 => {
                    // Load from the data window.
                    let dst = Reg::gpr(rng.gen_range(0..8));
                    let idx = Reg::gpr(rng.gen_range(0..8));
                    b.and(Reg::R13, idx, 0xff8);
                    b.load(dst, Mem::abs(data_base).with_index(Reg::R13, 1));
                }
                6..=7 => {
                    let src = Reg::gpr(rng.gen_range(0..8));
                    let idx = Reg::gpr(rng.gen_range(0..8));
                    b.and(Reg::R13, idx, 0xff8);
                    b.store(Mem::abs(data_base).with_index(Reg::R13, 1), src);
                }
                8 => {
                    let dst = Reg::gpr(rng.gen_range(0..8));
                    let s1 = Reg::gpr(rng.gen_range(0..8));
                    let s2 = Reg::gpr(rng.gen_range(0..8));
                    b.div(dst, s1, s2);
                }
                _ => {
                    // Data-dependent conditional skip.
                    let skip = b.label("skip");
                    b.cmp(Reg::gpr(rng.gen_range(0..8)), rng.gen_range(0..100u64));
                    b.jcc(protean_isa::Cond::ALL[rng.gen_range(0..10usize)], skip);
                    b.add(
                        Reg::gpr(rng.gen_range(0..8)),
                        Reg::gpr(rng.gen_range(0..8)),
                        1,
                    );
                    b.bind(skip);
                }
            }
        }
        b.add(counter, counter, 1);
        b.cmp(counter, iters);
        b.jcc(protean_isa::Cond::Ult, top);
    }
    b.halt();
    let prog = b.build().unwrap();
    let mut init = ArchState::new();
    for i in 0..0x1000 / 8 {
        init.mem.write(data_base + i * 8, 8, rng.gen());
    }
    (prog, init)
}

#[test]
fn differential_random_programs() {
    for seed in 0..25 {
        let (prog, init) = random_program(seed);
        prog.validate().expect("generated program is well-formed");
        run_both(&prog, &init, CoreConfig::test_tiny());
    }
}

#[test]
fn differential_random_programs_realistic_core() {
    for seed in 100..110 {
        let (prog, init) = random_program(seed);
        run_both(&prog, &init, CoreConfig::p_core());
    }
}
