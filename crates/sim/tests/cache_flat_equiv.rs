//! Differential test: the flat SoA + word-bitmap [`Cache`] against the
//! retained boxed-`bool` oracle [`BoolMetaCache`].
//!
//! Random interleavings of every public cache operation — access,
//! invalidate, probe, `meta_set`/`meta_any`/`meta_all` with cross-line
//! spans, and full `tag_observation` snapshots — over varied geometries
//! (ways, sets, line sizes below/at/above one metadata word) and both
//! `meta_fill` polarities. Address streams deliberately mix a small hot
//! region (so sets and ways actually collide) with the last line of the
//! address space, so the wrapping byte-count contract (`u64::MAX - 3`
//! + 8 bytes wraps through 0) is exercised on every run.

use protean_sim::{BoolMetaCache, Cache, CacheConfig};
use protean_testkit::{Checker, Rng};

/// One cache operation of the differential scripts.
#[derive(Clone, Copy, Debug)]
enum Op {
    Access(u64),
    Invalidate(u64),
    Probe(u64),
    MetaSet(u64, u64, bool),
    MetaAny(u64, u64),
    MetaAll(u64, u64),
    Observation,
}

/// Adversarial address mix: mostly a small region that collides in the
/// tiny geometries, sometimes the very top of the address space (the
/// wrap cases), sometimes anywhere.
fn arb_addr(rng: &mut Rng, line_bytes: u64) -> u64 {
    match rng.gen_range(0u32..8) {
        0..=4 => rng.gen_range(0u64..line_bytes * 24),
        5 | 6 => u64::MAX - rng.gen_range(0u64..line_bytes * 3),
        _ => rng.gen::<u64>(),
    }
}

fn arb_op(rng: &mut Rng, line_bytes: u64) -> Op {
    let addr = arb_addr(rng, line_bytes);
    // Sizes from 0 (empty range) past two full lines (multi-chunk walks).
    let size = rng.gen_range(0u64..line_bytes * 2 + 3);
    match rng.gen_range(0u32..12) {
        0..=3 => Op::Access(addr),
        4 => Op::Invalidate(addr),
        5 => Op::Probe(addr),
        6 | 7 => Op::MetaSet(addr, size, rng.gen::<bool>()),
        8 => Op::MetaAny(addr, size),
        9 => Op::MetaAll(addr, size),
        10 => Op::Observation,
        // The pinned regression shape: unprotect 8 bytes at MAX-3.
        _ => Op::MetaSet(u64::MAX - 3, 8, false),
    }
}

#[derive(Debug)]
struct Case {
    cfg: CacheConfig,
    meta_fill: bool,
    ops: Vec<Op>,
}

fn arb_case(rng: &mut Rng) -> Case {
    // Line sizes below, at, and above one 64-bit metadata word.
    let line_bytes = [16usize, 32, 64, 128][rng.gen_range(0u32..4) as usize];
    let ways = rng.gen_range(1usize..5);
    let sets = 1 << rng.gen_range(0u32..4);
    let cfg = CacheConfig {
        size_bytes: sets * ways * line_bytes,
        ways,
        line_bytes,
        latency: 1,
    };
    let n = rng.gen_range(1usize..200);
    let ops = (0..n).map(|_| arb_op(rng, line_bytes as u64)).collect();
    Case {
        cfg,
        meta_fill: rng.gen::<bool>(),
        ops,
    }
}

fn run_case(case: &Case) {
    let mut flat = Cache::new(case.cfg, case.meta_fill);
    let mut oracle = BoolMetaCache::new(case.cfg, case.meta_fill);
    for (i, op) in case.ops.iter().enumerate() {
        match *op {
            Op::Access(a) => {
                assert_eq!(flat.access(a), oracle.access(a), "access {a:#x} at op {i}");
            }
            Op::Invalidate(a) => {
                assert_eq!(
                    flat.invalidate(a),
                    oracle.invalidate(a),
                    "invalidate {a:#x} at op {i}"
                );
            }
            Op::Probe(a) => {
                assert_eq!(flat.probe(a), oracle.probe(a), "probe {a:#x} at op {i}");
            }
            Op::MetaSet(a, s, v) => {
                flat.meta_set(a, s, v);
                oracle.meta_set(a, s, v);
            }
            Op::MetaAny(a, s) => {
                assert_eq!(
                    flat.meta_any(a, s),
                    oracle.meta_any(a, s),
                    "meta_any({a:#x}, {s}) at op {i}"
                );
            }
            Op::MetaAll(a, s) => {
                assert_eq!(
                    flat.meta_all(a, s),
                    oracle.meta_all(a, s),
                    "meta_all({a:#x}, {s}) at op {i}"
                );
            }
            Op::Observation => {
                assert_eq!(
                    flat.tag_observation(),
                    oracle.tag_observation(),
                    "tag_observation at op {i}"
                );
            }
        }
    }
    // Final state: observation, counters, and a metadata sweep of the
    // hot region plus the wrap window.
    assert_eq!(flat.tag_observation(), oracle.tag_observation());
    assert_eq!((flat.hits, flat.misses), (oracle.hits, oracle.misses));
    let lb = case.cfg.line_bytes as u64;
    for base in 0..4 * lb {
        assert_eq!(flat.meta_any(base, 3), oracle.meta_any(base, 3));
        assert_eq!(flat.meta_all(base, 3), oracle.meta_all(base, 3));
    }
    for off in 0..2 * lb {
        let a = u64::MAX - off;
        assert_eq!(flat.meta_any(a, lb + 2), oracle.meta_any(a, lb + 2));
        assert_eq!(flat.meta_all(a, lb + 2), oracle.meta_all(a, lb + 2));
    }
}

#[test]
fn cache_flat_matches_boxed_bool_oracle() {
    Checker::new("cache_flat_matches_boxed_bool_oracle")
        .cases(400)
        .run(arb_case, run_case);
}

/// The pinned regression scenarios from the unit suite, verbatim,
/// through the differential harness (deterministic, not sampled).
#[test]
fn cache_flat_equiv_pinned_wrap_cases() {
    let cfg = CacheConfig {
        size_bytes: 256,
        ways: 2,
        line_bytes: 64,
        latency: 1,
    };
    for meta_fill in [true, false] {
        let ops = vec![
            Op::Access(u64::MAX - 3),
            Op::Access(0),
            Op::MetaSet(u64::MAX - 3, 8, false),
            Op::MetaAny(u64::MAX - 3, 8),
            Op::MetaAny(0, 4),
            Op::MetaAny(0, 5),
            Op::MetaAll(u64::MAX, 1),
            Op::MetaSet(0, 4, true),
            Op::MetaAny(u64::MAX - 3, 8),
            Op::MetaAll(u64::MAX - 3, 8),
            Op::Observation,
            Op::Access(0x78),
            Op::Access(0x80),
            Op::MetaSet(0x7c, 8, false),
            Op::MetaAny(0x7c, 8),
            Op::Invalidate(u64::MAX - 3),
            Op::MetaAny(u64::MAX - 3, 8),
            Op::Observation,
        ];
        run_case(&Case {
            cfg,
            meta_fill,
            ops,
        });
    }
}
