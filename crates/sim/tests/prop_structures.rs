//! Property tests on the simulator's hardware structures.

use proptest::prelude::*;
use protean_sim::{Btb, Cache, CacheConfig, Rsb, TagePredictor};

fn cache_cfg(sets_pow: u32, ways: usize) -> CacheConfig {
    CacheConfig {
        size_bytes: (1 << sets_pow) * ways * 64,
        ways,
        line_bytes: 64,
        latency: 3,
    }
}

proptest! {
    /// An accessed line is resident until at least `ways` other lines of
    /// the same set are accessed (LRU lower bound), and `probe` never
    /// changes state.
    #[test]
    fn cache_access_then_probe(addrs in prop::collection::vec(0u64..0x10_0000, 1..128)) {
        let mut cache = Cache::new(cache_cfg(4, 4), true);
        for a in &addrs {
            cache.access(*a);
            prop_assert!(cache.probe(*a), "just-accessed line must be resident");
        }
        prop_assert_eq!(cache.hits + cache.misses, addrs.len() as u64);
    }

    /// meta_any and meta_all agree on uniform ranges and bracket each
    /// other in general.
    #[test]
    fn cache_meta_consistency(
        base in 0u64..0x1000,
        size in 1u64..64,
        set_value in any::<bool>()
    ) {
        let mut cache = Cache::new(cache_cfg(3, 2), true);
        cache.access(base);
        cache.access(base + size);
        cache.meta_set(base, size, set_value);
        let any = cache.meta_any(base, size);
        let all = cache.meta_all(base, size);
        // all => any.
        prop_assert!(!all || any);
        if set_value {
            prop_assert!(any);
        }
    }

    /// Invalidate really removes a line, and re-fill restores the
    /// metadata default.
    #[test]
    fn cache_invalidate_resets_meta(addr in 0u64..0x8000) {
        let mut cache = Cache::new(cache_cfg(3, 2), true);
        cache.access(addr);
        cache.access(addr + 7); // the range may straddle a line boundary
        cache.meta_set(addr, 8, false);
        prop_assert!(!cache.meta_any(addr, 8));
        cache.invalidate(addr);
        cache.invalidate(addr + 7);
        prop_assert!(!cache.probe(addr));
        cache.access(addr);
        prop_assert!(cache.meta_any(addr, 8), "refill restores protected default");
    }

    /// The BTB only ever returns a target that was stored for exactly
    /// that PC.
    #[test]
    fn btb_never_lies(updates in prop::collection::vec((0u64..0x4000, any::<u64>()), 1..64)) {
        let mut btb = Btb::new(64);
        let mut last = std::collections::HashMap::new();
        for (pc, target) in &updates {
            let pc = pc & !3;
            btb.update(pc, *target);
            last.insert(pc, *target);
        }
        for (pc, _) in &updates {
            let pc = pc & !3;
            if let Some(t) = btb.lookup(pc) {
                prop_assert_eq!(t, last[&pc], "stale or aliased target for {:#x}", pc);
            }
        }
    }

    /// RSB: pushes and pops behave like a bounded stack (LIFO suffix).
    #[test]
    fn rsb_is_a_bounded_stack(values in prop::collection::vec(any::<u64>(), 1..40)) {
        let cap = 8;
        let mut rsb = Rsb::new(cap);
        for v in &values {
            rsb.push(*v);
        }
        let expected: Vec<u64> = values.iter().rev().take(cap).copied().collect();
        let mut got = Vec::new();
        while let Some(v) = rsb.pop() {
            got.push(v);
        }
        prop_assert_eq!(got, expected);
    }

    /// TAGE history snapshot/restore is exact, and predictions are
    /// deterministic functions of (state, pc).
    #[test]
    fn tage_snapshot_determinism(
        pcs in prop::collection::vec(0u64..0x1000, 1..64),
        outcomes in prop::collection::vec(any::<bool>(), 64)
    ) {
        let mut p = TagePredictor::new();
        for (i, pc) in pcs.iter().enumerate() {
            let pc = pc & !3;
            let pred = p.predict(pc);
            prop_assert_eq!(pred, p.predict(pc), "predict must be repeatable");
            let h = p.history();
            p.restore_history(h);
            prop_assert_eq!(p.history(), h);
            p.update(pc, pred, outcomes[i % outcomes.len()]);
        }
    }
}
