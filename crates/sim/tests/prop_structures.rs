//! Property tests on the simulator's hardware structures.

use protean_sim::{Btb, Cache, CacheConfig, Rsb, TagePredictor};
use protean_testkit::{Checker, Rng};

fn cache_cfg(sets_pow: u32, ways: usize) -> CacheConfig {
    CacheConfig {
        size_bytes: (1 << sets_pow) * ways * 64,
        ways,
        line_bytes: 64,
        latency: 3,
    }
}

fn vec_of<T>(
    rng: &mut Rng,
    len: std::ops::Range<usize>,
    mut f: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = rng.gen_range(len);
    (0..n).map(|_| f(rng)).collect()
}

/// An accessed line is resident until at least `ways` other lines of
/// the same set are accessed (LRU lower bound), and `probe` never
/// changes state.
#[test]
fn cache_access_then_probe() {
    Checker::new("cache_access_then_probe").run(
        |rng| vec_of(rng, 1..128, |r| r.gen_range(0u64..0x10_0000)),
        |addrs| {
            let mut cache = Cache::new(cache_cfg(4, 4), true);
            for a in addrs {
                cache.access(*a);
                assert!(cache.probe(*a), "just-accessed line must be resident");
            }
            assert_eq!(cache.hits + cache.misses, addrs.len() as u64);
        },
    );
}

/// meta_any and meta_all agree on uniform ranges and bracket each
/// other in general.
#[test]
fn cache_meta_consistency() {
    Checker::new("cache_meta_consistency").run(
        |rng| {
            (
                rng.gen_range(0u64..0x1000),
                rng.gen_range(1u64..64),
                rng.gen::<bool>(),
            )
        },
        |&(base, size, set_value)| {
            let mut cache = Cache::new(cache_cfg(3, 2), true);
            cache.access(base);
            cache.access(base + size);
            cache.meta_set(base, size, set_value);
            let any = cache.meta_any(base, size);
            let all = cache.meta_all(base, size);
            // all => any.
            assert!(!all || any);
            if set_value {
                assert!(any);
            }
        },
    );
}

fn check_invalidate_resets_meta(addr: u64) {
    let mut cache = Cache::new(cache_cfg(3, 2), true);
    cache.access(addr);
    cache.access(addr + 7); // the range may straddle a line boundary
    cache.meta_set(addr, 8, false);
    assert!(!cache.meta_any(addr, 8));
    cache.invalidate(addr);
    cache.invalidate(addr + 7);
    assert!(!cache.probe(addr));
    cache.access(addr);
    assert!(cache.meta_any(addr, 8), "refill restores protected default");
}

/// Invalidate really removes a line, and re-fill restores the
/// metadata default.
#[test]
fn cache_invalidate_resets_meta() {
    Checker::new("cache_invalidate_resets_meta").run(
        |rng| rng.gen_range(0u64..0x8000),
        |&addr| check_invalidate_resets_meta(addr),
    );
}

/// Former proptest counterexample (`shrinks to addr = 18233`): an
/// 8-byte range straddling a line boundary, where only the lower line
/// is re-filled after invalidation. `meta_any` must still report the
/// protected default because the non-resident upper line contributes
/// the fill value.
#[test]
fn regression_invalidate_straddling_line_boundary() {
    check_invalidate_resets_meta(18233);
}

/// The BTB only ever returns a target that was stored for exactly
/// that PC.
#[test]
fn btb_never_lies() {
    Checker::new("btb_never_lies").run(
        |rng| vec_of(rng, 1..64, |r| (r.gen_range(0u64..0x4000), r.gen::<u64>())),
        |updates| {
            let mut btb = Btb::new(64);
            let mut last = std::collections::HashMap::new();
            for (pc, target) in updates {
                let pc = pc & !3;
                btb.update(pc, *target);
                last.insert(pc, *target);
            }
            for (pc, _) in updates {
                let pc = pc & !3;
                if let Some(t) = btb.lookup(pc) {
                    assert_eq!(t, last[&pc], "stale or aliased target for {pc:#x}");
                }
            }
        },
    );
}

/// RSB: pushes and pops behave like a bounded stack (LIFO suffix).
#[test]
fn rsb_is_a_bounded_stack() {
    Checker::new("rsb_is_a_bounded_stack").run(
        |rng| vec_of(rng, 1..40, |r| r.gen::<u64>()),
        |values| {
            let cap = 8;
            let mut rsb = Rsb::new(cap);
            for v in values {
                rsb.push(*v);
            }
            let expected: Vec<u64> = values.iter().rev().take(cap).copied().collect();
            let mut got = Vec::new();
            while let Some(v) = rsb.pop() {
                got.push(v);
            }
            assert_eq!(got, expected);
        },
    );
}

/// TAGE history snapshot/restore is exact, and predictions are
/// deterministic functions of (state, pc).
#[test]
fn tage_snapshot_determinism() {
    Checker::new("tage_snapshot_determinism").run(
        |rng| {
            (
                vec_of(rng, 1..64, |r| r.gen_range(0u64..0x1000)),
                (0..64).map(|_| rng.gen::<bool>()).collect::<Vec<bool>>(),
            )
        },
        |(pcs, outcomes)| {
            let mut p = TagePredictor::new();
            for (i, pc) in pcs.iter().enumerate() {
                let pc = pc & !3;
                let pred = p.predict(pc);
                assert_eq!(pred, p.predict(pc), "predict must be repeatable");
                let h = p.history();
                p.restore_history(h);
                assert_eq!(p.history(), h);
                p.update(pc, pred, outcomes[i % outcomes.len()]);
            }
        },
    );
}
