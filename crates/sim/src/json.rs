//! A minimal, hand-rolled JSON value tree, writer, and parser.
//!
//! The workspace is hermetic (no `serde`), but the observability layer
//! needs machine-readable output: Chrome `chrome://tracing` event files
//! from [`crate::trace`], and the schema-stable `bench_results/*.json`
//! rows written by `protean-bench`. This module is the shared substrate:
//! a [`Json`] value tree whose objects preserve insertion order (so a
//! writer that always inserts keys in the same order produces
//! byte-identical output), a compact renderer, and a small
//! recursive-descent parser used by tests and the `validate_json` CI
//! gate.
//!
//! # Determinism
//!
//! [`Json::render`] is a pure function of the value tree: object keys
//! are emitted in insertion order (never sorted, never hashed), floats
//! are rendered with Rust's shortest-roundtrip `Display` (stable across
//! runs and platforms), and no whitespace is emitted. Two runs that
//! build the same tree therefore produce byte-identical files — the
//! property the `PROTEAN_JOBS` determinism tests assert.
//!
//! # Examples
//!
//! ```
//! use protean_sim::json::Json;
//!
//! let doc = Json::obj([
//!     ("name", Json::str("trace")),
//!     ("events", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
//! ]);
//! assert_eq!(doc.render(), r#"{"name":"trace","events":[1,2]}"#);
//! assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
//! ```

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters/cycles).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float. Non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: key/value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key on an object (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if numeric (any of `U64`/`I64`/`F64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether the value is a scalar (not an array or object).
    pub fn is_scalar(&self) -> bool {
        !matches!(self, Json::Arr(_) | Json::Obj(_))
    }

    /// Renders the value as compact JSON (no whitespace). Deterministic:
    /// see the module docs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders with `rows`-style pretty-printing: the top-level object
    /// is one key per line and each element of a top-level `"rows"` /
    /// `"events"` array gets its own line. Still deterministic; just
    /// diffable. Nested values stay compact.
    pub fn render_pretty(&self) -> String {
        let Json::Obj(pairs) = self else {
            return self.render();
        };
        let mut out = String::from("{\n");
        for (i, (k, v)) in pairs.iter().enumerate() {
            let _ = write!(out, "  ");
            escape_into(k, &mut out);
            out.push_str(": ");
            match v {
                Json::Arr(items) if !items.is_empty() => {
                    out.push_str("[\n");
                    for (j, item) in items.iter().enumerate() {
                        out.push_str("    ");
                        item.render_into(&mut out);
                        if j + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    out.push_str("  ]");
                }
                other => other.render_into(&mut out),
            }
            if i + 1 < pairs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest-roundtrip Display; force a decimal point
                    // or exponent so the value parses back as a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Errors carry a byte offset.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chunk_start = *pos;
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos])
                        .map_err(|_| "invalid UTF-8".to_string())?,
                );
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos])
                        .map_err(|_| "invalid UTF-8".to_string())?,
                );
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "invalid \\u escape")?,
                            16,
                        )
                        .map_err(|e| format!("invalid \\u escape at byte {pos}: {e}"))?;
                        // Surrogates are not paired up — the writer never
                        // emits them (it escapes only control chars).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
                chunk_start = *pos;
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|e| format!("invalid number `{text}` at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(2.0).render(), "2.0"); // forced decimal point
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\n").render(), r#""a\"b\n""#);
    }

    #[test]
    fn roundtrip_nested() {
        let doc = Json::obj([
            ("s", Json::str("hé\t\"x\"")),
            ("n", Json::U64(u64::MAX)),
            ("i", Json::I64(-3)),
            ("f", Json::F64(0.125)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(false)])),
            ("o", Json::obj([("k", Json::U64(1))])),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parse_whitespace_and_escapes() {
        let doc = Json::parse(" { \"a\" : [ 1 , 2.5 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("A")
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn object_order_is_insertion_order() {
        let doc = Json::obj([("z", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(doc.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_rows_are_line_per_element() {
        let doc = Json::obj([
            ("bench", Json::str("t")),
            ("rows", Json::Arr(vec![Json::obj([("a", Json::U64(1))])])),
        ]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"rows\": [\n    {\"a\":1}\n  ]"));
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }
}
