//! Simulation statistics.

/// Counters collected during a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed µops.
    pub committed: u64,
    /// Fetched µops (including wrong-path).
    pub fetched: u64,
    /// Squashed µops.
    pub squashed: u64,
    /// Branch-misprediction squashes.
    pub branch_squashes: u64,
    /// Memory-order-violation squashes.
    pub memorder_squashes: u64,
    /// Division-fault machine clears.
    pub divfault_squashes: u64,
    /// Committed conditional/indirect branches.
    pub branches: u64,
    /// Committed branches that had been mispredicted.
    pub mispredicts: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Loads that forwarded from the store queue.
    pub forwards: u64,
    /// µop-cycles in which a ready µop was blocked from executing by the
    /// defense (transmitter delay).
    pub exec_blocked_cycles: u64,
    /// µop-cycles in which a completed µop was blocked from waking its
    /// dependents by the defense (wakeup delay).
    pub wakeup_blocked_cycles: u64,
    /// Cycles a mispredicted branch's squash was delayed by the defense.
    pub resolve_blocked_cycles: u64,
    /// L1I hits. Exactly one L1I access is booked per fetched µop, so
    /// `l1i_hits + l1i_misses == fetched` (asserted by the front-end
    /// regression tests).
    pub l1i_hits: u64,
    /// L1I misses (each stalls the front end for the L2 hit latency).
    pub l1i_misses: u64,
    /// L1D hits / misses.
    pub l1d_hits: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// L3 misses (DRAM accesses).
    pub l3_misses: u64,
    /// High-water mark of issue-queue occupancy (waiting µops) — data
    /// for tuning `iq_size`.
    pub iq_hwm: u64,
    /// High-water mark of outstanding completion-wheel events (live and
    /// stale) — data for sizing the calendar-queue bucket ring.
    pub wheel_hwm: u64,
    /// Policy-specific statistics.
    pub policy: Vec<(String, f64)>,
}

impl Stats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate over committed branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// L1D hit rate.
    pub fn l1d_hit_rate(&self) -> f64 {
        let total = self.l1d_hits + self.l1d_misses;
        if total == 0 {
            1.0
        } else {
            self.l1d_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = Stats {
            cycles: 100,
            committed: 250,
            branches: 10,
            mispredicts: 2,
            l1d_hits: 90,
            l1d_misses: 10,
            ..Stats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-9);
        assert!((s.mispredict_rate() - 0.2).abs() < 1e-9);
        assert!((s.l1d_hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_safe() {
        let s = Stats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.l1d_hit_rate(), 1.0);
    }
}
