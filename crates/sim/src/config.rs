//! Core and memory-hierarchy configuration, with presets resembling the
//! Intel Alder Lake hybrid processor of the paper's Tab. III.

/// The speculation model: when an instruction stops being *speculative*
/// (paper §II-B2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SpeculationModel {
    /// An instruction is speculative until it reaches the head of the ROB.
    /// The strongest model; captures *all* speculation types (the paper's
    /// default).
    #[default]
    AtCommit,
    /// An instruction is speculative until all prior branches have
    /// resolved — control-flow speculation only (noncomprehensive; used
    /// for the §IX-A6 case study).
    Control,
}

/// Configuration of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Total number of lines (`sets * ways`) — the length of each of the
    /// flat per-line arrays backing [`crate::Cache`].
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// Number of `u64` words in one line's metadata bitmap
    /// (`ceil(line_bytes / 64)`): one bit per byte of the line.
    pub fn meta_words_per_line(&self) -> usize {
        (self.line_bytes + 63) / 64
    }
}

/// How ProtISA tracks memory protection (the §IX-A3 ablation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum MemProtTracking {
    /// No memory protection tracking: all memory is always considered
    /// protected (the "disabled" variant).
    None,
    /// Per-byte protection bits shadowing the L1D; evictions forget
    /// unprotection (the paper's design, §IV-C2a).
    #[default]
    TaggedL1d,
    /// An idealized shadow memory that never forgets (the upper bound).
    PerfectShadow,
}

/// Full configuration of one simulated core.
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Human-readable name (`P-core`, `E-core`).
    pub name: &'static str,
    /// Fetch/decode/rename width (instructions per cycle).
    pub fetch_width: usize,
    /// Issue width (instructions entering execution per cycle).
    pub issue_width: usize,
    /// Commit width.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-window: how deep into the ROB the scheduler scans.
    pub iq_size: usize,
    /// Load-queue entries.
    pub lq_size: usize,
    /// Store-queue entries.
    pub sq_size: usize,
    /// Physical registers (shared integer file).
    pub phys_regs: usize,
    /// Front-end depth: cycles from fetch to rename-ready.
    pub frontend_depth: u32,
    /// Branch-misprediction redirect penalty on top of pipeline refill.
    pub redirect_penalty: u32,
    /// Number of simple ALU ports.
    pub alu_ports: usize,
    /// Number of load/store ports.
    pub mem_ports: usize,
    /// Multiplier latency.
    pub mul_latency: u32,
    /// Branch-target-buffer entries.
    pub btb_entries: usize,
    /// Return-stack-buffer entries.
    pub rsb_entries: usize,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// DRAM latency.
    pub mem_latency: u32,
    /// The speculation model (paper §II-B2).
    pub speculation: SpeculationModel,
    /// ProtISA memory-protection tracking variant (§IX-A3).
    pub mem_prot: MemProtTracking,
    /// Record a per-µop pipeline trace and defense-decision audit log
    /// (see `crate::trace`). Off by default; the `PROTEAN_TRACE`
    /// environment variable (set to anything but `0`) also enables it.
    pub trace: bool,
    /// Use the per-program pre-decoded µop table built at `Core::reset`
    /// (the decode-once front end). `false` falls back to decoding every
    /// instruction on every dynamic visit — observationally identical,
    /// kept for differential testing. The `PROTEAN_DECODE_CACHE`
    /// environment variable overrides (set to `0` to disable).
    pub decode_cache: bool,
    /// Use the flat ROB-slot scheduler (bitset status sets, calendar-
    /// queue completion wheel; see `crate::sched`). `false` falls back
    /// to the legacy ordered-set scheduler — observationally identical,
    /// kept for differential testing. The `PROTEAN_SCHED` environment
    /// variable overrides (set to `btree` to fall back).
    pub flat_sched: bool,
}

impl CoreConfig {
    /// A Golden Cove-like performance core (Tab. III).
    pub fn p_core() -> CoreConfig {
        CoreConfig {
            name: "P-core",
            fetch_width: 6,
            issue_width: 6,
            commit_width: 6,
            rob_size: 512,
            iq_size: 160,
            lq_size: 192,
            sq_size: 114,
            phys_regs: 280,
            frontend_depth: 6,
            redirect_penalty: 3,
            alu_ports: 5,
            mem_ports: 3,
            mul_latency: 3,
            btb_entries: 4096,
            rsb_entries: 16,
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                ways: 12,
                line_bytes: 64,
                latency: 5,
            },
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 1280 * 1024,
                ways: 10,
                line_bytes: 64,
                latency: 15,
            },
            l3: CacheConfig {
                size_bytes: 30 * 1024 * 1024,
                ways: 12,
                line_bytes: 64,
                latency: 45,
            },
            mem_latency: 200,
            speculation: SpeculationModel::AtCommit,
            mem_prot: MemProtTracking::TaggedL1d,
            trace: false,
            decode_cache: true,
            flat_sched: true,
        }
    }

    /// A Gracemont-like efficiency core (Tab. III). Its smaller ROB means
    /// shorter speculation windows, which is why all defenses show lower
    /// overhead here (paper §IX-A5).
    pub fn e_core() -> CoreConfig {
        CoreConfig {
            name: "E-core",
            fetch_width: 6,
            issue_width: 6,
            commit_width: 6,
            rob_size: 256,
            iq_size: 96,
            lq_size: 80,
            sq_size: 50,
            phys_regs: 213,
            frontend_depth: 5,
            redirect_penalty: 2,
            alu_ports: 4,
            mem_ports: 2,
            mul_latency: 3,
            btb_entries: 4096,
            rsb_entries: 16,
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 4,
            },
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 13,
            },
            l3: CacheConfig {
                size_bytes: 30 * 1024 * 1024,
                ways: 12,
                line_bytes: 64,
                latency: 45,
            },
            mem_latency: 200,
            speculation: SpeculationModel::AtCommit,
            mem_prot: MemProtTracking::TaggedL1d,
            trace: false,
            decode_cache: true,
            flat_sched: true,
        }
    }

    /// The E-core variant used for multi-threaded runs: a 256 KiB private
    /// L2 slice instead of the full 2 MiB (Tab. III footnote).
    pub fn e_core_mt() -> CoreConfig {
        let mut cfg = CoreConfig::e_core();
        cfg.l2.size_bytes = 256 * 1024;
        cfg
    }

    /// A tiny configuration for fast unit tests.
    pub fn test_tiny() -> CoreConfig {
        CoreConfig {
            name: "tiny",
            fetch_width: 2,
            issue_width: 2,
            commit_width: 2,
            rob_size: 32,
            iq_size: 16,
            lq_size: 8,
            sq_size: 8,
            phys_regs: 64,
            frontend_depth: 3,
            redirect_penalty: 1,
            alu_ports: 2,
            mem_ports: 1,
            mul_latency: 3,
            btb_entries: 64,
            rsb_entries: 8,
            l1d: CacheConfig {
                size_bytes: 1024,
                ways: 2,
                line_bytes: 64,
                latency: 2,
            },
            l1i: CacheConfig {
                size_bytes: 2048,
                ways: 2,
                line_bytes: 64,
                latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 8,
            },
            l3: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                line_bytes: 64,
                latency: 20,
            },
            mem_latency: 60,
            speculation: SpeculationModel::AtCommit,
            mem_prot: MemProtTracking::TaggedL1d,
            trace: false,
            decode_cache: true,
            flat_sched: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for cfg in [
            CoreConfig::p_core(),
            CoreConfig::e_core(),
            CoreConfig::test_tiny(),
        ] {
            assert!(cfg.rob_size >= cfg.iq_size);
            assert!(cfg.phys_regs > 32);
            assert!(cfg.l1d.sets() > 0);
            assert_eq!(
                cfg.l1d.sets() * cfg.l1d.ways * cfg.l1d.line_bytes,
                cfg.l1d.size_bytes
            );
        }
    }

    #[test]
    fn paper_table_iii_parameters() {
        let p = CoreConfig::p_core();
        assert_eq!(p.rob_size, 512);
        assert_eq!(p.l1i.size_bytes, 32 * 1024); // Tab. III
        assert_eq!(CoreConfig::e_core().l1i.size_bytes, 64 * 1024);
        assert_eq!((p.lq_size, p.sq_size), (192, 114));
        assert_eq!(p.l1d.size_bytes, 48 * 1024);
        assert_eq!(p.l1d.ways, 12);
        let e = CoreConfig::e_core();
        assert_eq!(e.rob_size, 256);
        assert_eq!((e.lq_size, e.sq_size), (80, 50));
        assert_eq!(e.l1d.size_bytes, 32 * 1024);
        assert_eq!(CoreConfig::e_core_mt().l2.size_bytes, 256 * 1024);
    }
}
