//! µop-level pipeline tracing and the defense-decision audit log.
//!
//! When tracing is enabled (via [`crate::CoreConfig::trace`] or the
//! `PROTEAN_TRACE` environment variable), the core records one
//! [`UopTrace`] per renamed µop — its fetch/rename/issue/complete/commit
//! cycles, any squash event tagged with its cause, and, per defense gate
//! ([`BlockPoint`]), how many cycles the active [`DefensePolicy`] held
//! it back and under which rule. The full stream is exported as
//! [`SimResult::trace`](crate::SimResult) and renderable as:
//!
//! * a Konata-style text pipeline diagram ([`Trace::render_pipeline`]);
//! * a defense-decision audit log ([`Trace::audit`],
//!   [`Trace::render_audit`]) whose per-gate totals reconcile *exactly*
//!   with `Stats::{exec,wakeup,resolve}_blocked_cycles`;
//! * Chrome `chrome://tracing` / Perfetto trace-event JSON
//!   ([`Trace::to_chrome_trace`]), hand-rolled via [`crate::json`].
//!
//! Tracing is **observation-only**: enabling it never changes a single
//! architectural or microarchitectural decision (test-asserted), and
//! with tracing disabled the hot path performs one `Option` check per
//! event site and allocates nothing.
//!
//! [`DefensePolicy`]: crate::DefensePolicy

use crate::defense::{BlockPoint, Seq, SquashKind};
use crate::json::Json;
use crate::pipeline::DynInst;

/// Default cap on recorded µops (`PROTEAN_TRACE_LIMIT` overrides):
/// bounds trace memory on long runs; blocked-cycle *totals* keep
/// accumulating past the cap so audit reconciliation stays exact.
pub const DEFAULT_TRACE_LIMIT: usize = 1_000_000;

/// A squash observed on a µop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SquashEvent {
    /// Cycle the squash reached this µop.
    pub cycle: u64,
    /// Why the squash was initiated.
    pub cause: SquashKind,
}

/// Accumulated defense blocking of one µop at one gate.
#[derive(Clone, Copy, Debug, Default)]
pub struct BlockedAt {
    /// Number of cycles the gate denied this µop.
    pub cycles: u64,
    /// First cycle a denial was observed.
    pub first_cycle: u64,
    /// Last cycle a denial was observed.
    pub last_cycle: u64,
    /// The policy rule that denied (from
    /// [`crate::DefensePolicy::block_rule`]); `""` if never blocked.
    pub rule: &'static str,
}

/// One µop's recorded lifecycle.
#[derive(Clone, Debug)]
pub struct UopTrace {
    /// Global sequence number (1-based age order).
    pub seq: Seq,
    /// Static instruction index.
    pub idx: u32,
    /// Program counter.
    pub pc: u64,
    /// Disassembly of the instruction.
    pub disasm: String,
    /// Cycle the µop was fetched.
    pub fetch_cycle: u64,
    /// Cycle the µop was renamed into the ROB.
    pub rename_cycle: u64,
    /// Cycle the µop issued to execution (`None`: never issued).
    pub issue_cycle: Option<u64>,
    /// Cycle execution completed (`None`: never completed).
    pub complete_cycle: Option<u64>,
    /// Cycle the µop committed (`None`: squashed or still in flight).
    pub commit_cycle: Option<u64>,
    /// The squash that killed it, if any.
    pub squash: Option<SquashEvent>,
    /// Defense blocking per gate, indexed by [`BlockPoint`].
    pub blocked: [BlockedAt; 3],
}

impl UopTrace {
    /// Total cycles the defense held this µop across all gates.
    pub fn blocked_cycles(&self) -> u64 {
        self.blocked.iter().map(|b| b.cycles).sum()
    }
}

/// One row of the defense-decision audit log: a µop that a policy rule
/// held at a gate, with the cycle span and cost.
#[derive(Clone, Debug)]
pub struct AuditRecord {
    /// The blocked µop's sequence number.
    pub seq: Seq,
    /// Its static instruction index.
    pub idx: u32,
    /// Its program counter.
    pub pc: u64,
    /// Its disassembly.
    pub disasm: String,
    /// The gate that denied it.
    pub point: BlockPoint,
    /// The policy rule that denied it.
    pub rule: &'static str,
    /// Total cycles denied.
    pub cycles: u64,
    /// First denial cycle.
    pub first_cycle: u64,
    /// Last denial cycle.
    pub last_cycle: u64,
    /// Whether the µop eventually committed (`false`: squashed /
    /// in-flight at exit — blocked cycles on wrong-path work).
    pub committed: bool,
}

/// One front-end fetch group: the contiguous µop run fetched in a
/// single cycle and handed to rename as a unit (batched front end).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FetchGroupEvent {
    /// Cycle the group was fetched.
    pub cycle: u64,
    /// Static index of the group's first instruction.
    pub start_idx: u32,
    /// Number of µops in the group (bounded by the fetch width).
    pub len: u32,
}

/// The in-flight recorder owned by the core while tracing is enabled.
///
/// Event methods are O(1) per event; µops are stored in a flat `Vec`
/// indexed by `seq - 1` (sequence numbers are allocated densely at
/// rename).
#[derive(Clone, Debug)]
pub struct Tracer {
    policy: String,
    uops: Vec<UopTrace>,
    limit: usize,
    /// µops not recorded because the cap was reached.
    dropped: u64,
    /// Blocked cycles attributed to dropped µops, per gate — keeps
    /// [`Trace::blocked_totals`] exact regardless of the cap.
    overflow_blocked: [u64; 3],
    /// Front-end fetch groups (one per productive fetch cycle), capped
    /// at the same recording limit as µops.
    fetch_groups: Vec<FetchGroupEvent>,
}

impl Tracer {
    /// Creates a tracer for a run under `policy`. The recorded-µop cap
    /// comes from `PROTEAN_TRACE_LIMIT` (default
    /// [`DEFAULT_TRACE_LIMIT`]).
    pub fn new(policy: String) -> Tracer {
        let limit = std::env::var("PROTEAN_TRACE_LIMIT")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_TRACE_LIMIT);
        Tracer {
            policy,
            uops: Vec::new(),
            limit: limit.max(1),
            dropped: 0,
            overflow_blocked: [0; 3],
            fetch_groups: Vec::new(),
        }
    }

    /// The fetch stage produced a group of `len` µops starting at static
    /// index `start_idx` this cycle. Groups past the recording cap are
    /// dropped (they carry no Stats-reconciled totals).
    pub fn on_fetch_group(&mut self, cycle: u64, start_idx: u32, len: u32) {
        if self.fetch_groups.len() < self.limit {
            self.fetch_groups.push(FetchGroupEvent {
                cycle,
                start_idx,
                len,
            });
        }
    }

    fn slot(&mut self, seq: Seq) -> Option<&mut UopTrace> {
        let index = (seq - 1) as usize;
        self.uops.get_mut(index)
    }

    /// A µop entered the ROB. Must be called in `seq` order (the
    /// pipeline renames in age order).
    pub fn on_rename(&mut self, u: &DynInst, cycle: u64) {
        if self.uops.len() >= self.limit {
            self.dropped += 1;
            return;
        }
        debug_assert_eq!(self.uops.len() as u64 + 1, u.seq, "rename out of seq order");
        self.uops.push(UopTrace {
            seq: u.seq,
            idx: u.idx,
            pc: u.pc,
            disasm: u.inst.to_string(),
            fetch_cycle: u.fetch_cycle,
            rename_cycle: cycle,
            issue_cycle: None,
            complete_cycle: None,
            commit_cycle: None,
            squash: None,
            blocked: [BlockedAt::default(); 3],
        });
    }

    /// A µop issued to execution.
    pub fn on_issue(&mut self, seq: Seq, cycle: u64) {
        if let Some(t) = self.slot(seq) {
            t.issue_cycle = Some(cycle);
        }
    }

    /// A µop finished execution.
    pub fn on_complete(&mut self, seq: Seq, cycle: u64) {
        if let Some(t) = self.slot(seq) {
            t.complete_cycle = Some(cycle);
        }
    }

    /// A µop committed.
    pub fn on_commit(&mut self, seq: Seq, cycle: u64) {
        if let Some(t) = self.slot(seq) {
            t.commit_cycle = Some(cycle);
        }
    }

    /// A µop was squashed.
    pub fn on_squash(&mut self, seq: Seq, cycle: u64, cause: SquashKind) {
        if let Some(t) = self.slot(seq) {
            t.squash = Some(SquashEvent { cycle, cause });
        }
    }

    /// The defense denied a µop at `point` this cycle under `rule`.
    pub fn on_block(&mut self, seq: Seq, point: BlockPoint, cycle: u64, rule: &'static str) {
        match self.slot(seq) {
            Some(t) => {
                let b = &mut t.blocked[point as usize];
                if b.cycles == 0 {
                    b.first_cycle = cycle;
                    b.rule = rule;
                }
                b.cycles += 1;
                b.last_cycle = cycle;
            }
            None => self.overflow_blocked[point as usize] += 1,
        }
    }

    /// Bulk form of [`Tracer::on_block`]: the defense denied a µop at
    /// `point` for `delta` consecutive cycles ending at `last_cycle`,
    /// all under the same `rule` (idle-cycle fast-forward attributes the
    /// skipped cycles in one call). Equivalent to `delta` single-cycle
    /// `on_block` calls: `first_cycle`/`rule` are only recorded if this
    /// is the µop's first denial at the gate, and past-cap µops
    /// accumulate into the overflow counters so
    /// [`Trace::blocked_totals`] reconciliation stays exact.
    pub fn on_block_many(
        &mut self,
        seq: Seq,
        point: BlockPoint,
        first_cycle: u64,
        last_cycle: u64,
        delta: u64,
        rule: &'static str,
    ) {
        if delta == 0 {
            return;
        }
        match self.slot(seq) {
            Some(t) => {
                let b = &mut t.blocked[point as usize];
                if b.cycles == 0 {
                    b.first_cycle = first_cycle;
                    b.rule = rule;
                }
                b.cycles += delta;
                b.last_cycle = last_cycle;
            }
            None => self.overflow_blocked[point as usize] += delta,
        }
    }

    /// Seals the recording into an immutable [`Trace`].
    pub fn finish(self, cycles: u64) -> Trace {
        Trace {
            policy: self.policy,
            uops: self.uops,
            dropped: self.dropped,
            overflow_blocked: self.overflow_blocked,
            fetch_groups: self.fetch_groups,
            cycles,
        }
    }
}

/// A sealed pipeline trace, exported from
/// [`SimResult::trace`](crate::SimResult).
#[derive(Clone, Debug)]
pub struct Trace {
    /// Name of the defense policy the run used.
    pub policy: String,
    /// Per-µop lifecycle records, in `seq` order.
    pub uops: Vec<UopTrace>,
    /// µops beyond the `PROTEAN_TRACE_LIMIT` cap (not recorded).
    pub dropped: u64,
    /// Blocked cycles attributed to dropped µops, per gate.
    pub overflow_blocked: [u64; 3],
    /// Front-end fetch groups in fetch order (one per productive fetch
    /// cycle, capped at the recording limit). Every renamed µop belongs
    /// to exactly one group; group sizes are bounded by the fetch width.
    pub fetch_groups: Vec<FetchGroupEvent>,
    /// Total cycles of the run.
    pub cycles: u64,
}

impl Trace {
    /// Total defense-blocked cycles per gate, **including** µops past
    /// the recording cap — reconciles exactly with
    /// `Stats::{exec,wakeup,resolve}_blocked_cycles`.
    pub fn blocked_totals(&self) -> [u64; 3] {
        let mut totals = self.overflow_blocked;
        for u in &self.uops {
            for (t, b) in totals.iter_mut().zip(&u.blocked) {
                *t += b.cycles;
            }
        }
        totals
    }

    /// The defense-decision audit log: one record per (µop, gate) the
    /// policy denied at least once, in µop age order.
    pub fn audit(&self) -> Vec<AuditRecord> {
        let mut out = Vec::new();
        for u in &self.uops {
            for point in [BlockPoint::Execute, BlockPoint::Wakeup, BlockPoint::Resolve] {
                let b = &u.blocked[point as usize];
                if b.cycles == 0 {
                    continue;
                }
                out.push(AuditRecord {
                    seq: u.seq,
                    idx: u.idx,
                    pc: u.pc,
                    disasm: u.disasm.clone(),
                    point,
                    rule: b.rule,
                    cycles: b.cycles,
                    first_cycle: b.first_cycle,
                    last_cycle: b.last_cycle,
                    committed: u.commit_cycle.is_some(),
                });
            }
        }
        out
    }

    /// Blocked cycles aggregated per `(gate, rule)`, ordered by first
    /// appearance — the per-rule cost breakdown.
    pub fn blocked_by_rule(&self) -> Vec<(BlockPoint, &'static str, u64)> {
        let mut out: Vec<(BlockPoint, &'static str, u64)> = Vec::new();
        for u in &self.uops {
            for point in [BlockPoint::Execute, BlockPoint::Wakeup, BlockPoint::Resolve] {
                let b = &u.blocked[point as usize];
                if b.cycles == 0 {
                    continue;
                }
                match out.iter_mut().find(|(p, r, _)| *p == point && *r == b.rule) {
                    Some((_, _, c)) => *c += b.cycles,
                    None => out.push((point, b.rule, b.cycles)),
                }
            }
        }
        out
    }

    /// A stable root-cause signature for violation triage: the *set* of
    /// `(gate, rule)` pairs the defense fired during the run plus the
    /// set of squash causes observed, both sorted — cycle counts, µop
    /// identities, and event order are deliberately excluded, so two
    /// runs that leak through the same mechanism produce the same
    /// signature even when their inputs (and therefore their exact
    /// timings) differ. Campaign triage keys its dedup buckets on this
    /// string: one root cause, one bucket.
    pub fn audit_signature(&self) -> String {
        let mut rules: Vec<String> = self
            .blocked_by_rule()
            .iter()
            .map(|(point, rule, _)| format!("{}/{rule}", point.name()))
            .collect();
        rules.sort();
        rules.dedup();
        let causes = self.squash_causes();
        format!("rules[{}] squashes[{}]", rules.join(","), causes.join(","))
    }

    /// The sorted, deduplicated set of squash-cause names observed in
    /// the run — one axis of the campaign engine's coverage map.
    pub fn squash_causes(&self) -> Vec<&'static str> {
        let mut causes: Vec<&'static str> = self
            .uops
            .iter()
            .filter_map(|u| u.squash.map(|s| squash_name(s.cause)))
            .collect();
        causes.sort();
        causes.dedup();
        causes
    }

    /// Renders the defense-decision audit log as text (at most
    /// `max_records` rows, plus a per-rule summary and exact totals).
    pub fn render_audit(&self, max_records: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let totals = self.blocked_totals();
        let _ = writeln!(
            out,
            "defense audit: policy={} exec_blocked={} wakeup_blocked={} resolve_blocked={}",
            self.policy, totals[0], totals[1], totals[2]
        );
        for (point, rule, cycles) in self.blocked_by_rule() {
            let _ = writeln!(out, "  rule {}/{rule}: {cycles} cycles", point.name());
        }
        let audit = self.audit();
        for rec in audit.iter().take(max_records) {
            let _ = writeln!(
                out,
                "  seq={} idx={} pc={:#x} {} <{}> held {} cycles @{}..{} by {} ({})",
                rec.seq,
                rec.idx,
                rec.pc,
                rec.disasm,
                rec.point.name(),
                rec.cycles,
                rec.first_cycle,
                rec.last_cycle,
                rec.rule,
                if rec.committed {
                    "committed"
                } else {
                    "squashed"
                },
            );
        }
        if audit.len() > max_records {
            let _ = writeln!(out, "  ... {} more records", audit.len() - max_records);
        }
        out
    }

    /// Renders a Konata-style text pipeline diagram of the **last**
    /// `max_uops` recorded µops (the window that usually contains the
    /// behaviour of interest), at most `width` timeline columns.
    ///
    /// Lane characters: `f` frontend (fetch→rename), `.` waiting in the
    /// ROB, `E` executing, `-` complete but not committed, `C` commit,
    /// `X` squash; a trailing `+` marks truncation at `width`. Blocked
    /// µops carry a `[gate:rule xN]` annotation.
    pub fn render_pipeline(&self, max_uops: usize, width: usize) -> String {
        use std::fmt::Write;
        let width = width.max(8);
        let window = &self.uops[self.uops.len().saturating_sub(max_uops)..];
        let Some(origin) = window.iter().map(|u| u.fetch_cycle).min() else {
            return String::from("(empty trace)\n");
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pipeline trace: policy={} ({} uops shown of {}, cycle origin {})",
            self.policy,
            window.len(),
            self.uops.len(),
            origin
        );
        for u in window {
            let end_cycle = u
                .commit_cycle
                .or(u.squash.map(|s| s.cycle))
                .or(u.complete_cycle)
                .unwrap_or(u.rename_cycle);
            let mut lane = String::new();
            let start = (u.fetch_cycle - origin) as usize;
            let mut truncated = false;
            for _ in 0..start.min(width) {
                lane.push(' ');
            }
            let mut col = start;
            let mut push = |c: char, lane: &mut String| {
                if col < width {
                    lane.push(c);
                } else {
                    truncated = true;
                }
                col += 1;
            };
            for cycle in u.fetch_cycle..=end_cycle {
                let c = if cycle < u.rename_cycle {
                    'f'
                } else if Some(cycle) == u.commit_cycle {
                    'C'
                } else if u.squash.is_some_and(|s| s.cycle == cycle) {
                    'X'
                } else if u.issue_cycle.is_some_and(|i| cycle >= i)
                    && u.complete_cycle.is_none_or(|d| cycle < d)
                {
                    'E'
                } else if u.complete_cycle.is_some_and(|d| cycle >= d) {
                    '-'
                } else {
                    '.'
                };
                push(c, &mut lane);
            }
            if truncated {
                lane.truncate(width);
                lane.push('+');
            }
            let mut note = String::new();
            for point in [BlockPoint::Execute, BlockPoint::Wakeup, BlockPoint::Resolve] {
                let b = &u.blocked[point as usize];
                if b.cycles > 0 {
                    let _ = write!(note, " [{}:{} x{}]", point.name(), b.rule, b.cycles);
                }
            }
            if let Some(s) = u.squash {
                let _ = write!(note, " [squash:{}]", squash_name(s.cause));
            }
            let _ = writeln!(
                out,
                "{:>6} {:#08x} {:<24} |{lane}|{note}",
                u.seq, u.pc, u.disasm
            );
        }
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "({} uops dropped past PROTEAN_TRACE_LIMIT)",
                self.dropped
            );
        }
        out
    }

    /// Serializes the trace as Chrome `chrome://tracing` / Perfetto
    /// trace-event JSON. Cycles are mapped to microseconds (1 cycle =
    /// 1 µs). Each µop emits one complete (`"ph":"X"`) event per
    /// pipeline segment; squashes become instant events; defense blocks
    /// become complete events on the `defense` thread lane.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        for u in &self.uops {
            let lane = 1 + (u.seq - 1) % 64; // compact row reuse
            let mut span = |name: &str, start: u64, end: u64| {
                events.push(Json::obj([
                    ("name", Json::str(format!("{name} {}", u.disasm))),
                    ("cat", Json::str(name.to_string())),
                    ("ph", Json::str("X")),
                    ("ts", Json::U64(start)),
                    ("dur", Json::U64(end.saturating_sub(start).max(1))),
                    ("pid", Json::U64(0)),
                    ("tid", Json::U64(lane)),
                    (
                        "args",
                        Json::obj([
                            ("seq", Json::U64(u.seq)),
                            ("idx", Json::U64(u.idx as u64)),
                            ("pc", Json::str(format!("{:#x}", u.pc))),
                        ]),
                    ),
                ]));
            };
            span("frontend", u.fetch_cycle, u.rename_cycle);
            if let Some(issue) = u.issue_cycle {
                span("queue", u.rename_cycle, issue);
                span("execute", issue, u.complete_cycle.unwrap_or(issue + 1));
            }
            if let (Some(done), Some(commit)) = (u.complete_cycle, u.commit_cycle) {
                span("commit-wait", done, commit);
            }
            if let Some(s) = u.squash {
                events.push(Json::obj([
                    (
                        "name",
                        Json::str(format!("squash:{}", squash_name(s.cause))),
                    ),
                    ("cat", Json::str("squash")),
                    ("ph", Json::str("i")),
                    ("s", Json::str("t")),
                    ("ts", Json::U64(s.cycle)),
                    ("pid", Json::U64(0)),
                    ("tid", Json::U64(lane)),
                ]));
            }
        }
        for rec in self.audit() {
            events.push(Json::obj([
                (
                    "name",
                    Json::str(format!("{}:{}", rec.point.name(), rec.rule)),
                ),
                ("cat", Json::str("defense")),
                ("ph", Json::str("X")),
                ("ts", Json::U64(rec.first_cycle)),
                ("dur", Json::U64(rec.last_cycle - rec.first_cycle + 1)),
                ("pid", Json::U64(0)),
                ("tid", Json::U64(0)),
                (
                    "args",
                    Json::obj([
                        ("seq", Json::U64(rec.seq)),
                        ("uop", Json::str(rec.disasm.clone())),
                        ("cycles", Json::U64(rec.cycles)),
                    ]),
                ),
            ]));
        }
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
            (
                "otherData",
                Json::obj([
                    ("policy", Json::str(self.policy.clone())),
                    ("cycles", Json::U64(self.cycles)),
                    ("dropped_uops", Json::U64(self.dropped)),
                ]),
            ),
        ])
        .render_pretty()
    }
}

fn squash_name(kind: SquashKind) -> &'static str {
    match kind {
        SquashKind::Branch => "branch",
        SquashKind::MemOrder => "memory-order",
        SquashKind::DivFault => "div-fault",
    }
}
