//! The defense ↔ pipeline interface.
//!
//! Every hardware Spectre defense in this repository — the unsafe
//! baseline, NDA/SpecShield's AccessDelay, STT's AccessTrack, SPT,
//! SPT-SB's XmitDelay, and Protean's ProtDelay/ProtTrack — is a
//! [`DefensePolicy`]: a set of hooks the out-of-order pipeline calls at
//! rename, issue, wakeup, branch resolution, load data return, commit,
//! and squash. One pipeline implementation serves all defense
//! configurations, exactly as one gem5 tree hosted all of them in the
//! paper (§VII-B3).

use crate::pipeline::DynInst;
use crate::{Cache, SpeculationModel};
use protean_isa::TransmitterSet;

/// Global µop sequence numbers. Sequence `0` is reserved as "no root".
pub type Seq = u64;

/// Sentinel for "not tainted / no taint root".
pub const NO_ROOT: Seq = 0;

/// Per-physical-register defense metadata, owned by the pipeline and
/// manipulated by policies.
#[derive(Clone, Debug)]
pub struct RegTags {
    /// ProtISA protection tag (paper §IV-E: exposed throughout the
    /// backend).
    pub prot: Vec<bool>,
    /// Plain value taint (SPT-style: cleared by architectural
    /// transmission, not by time).
    pub taint: Vec<bool>,
    /// Youngest root of taint (STT-style): the sequence number of the
    /// youngest access instruction this value transitively depends on, or
    /// [`NO_ROOT`]. A value is *tainted* while its root is still
    /// speculative.
    pub yrot: Vec<Seq>,
}

impl RegTags {
    /// Creates tags for `n` physical registers. Initial architectural
    /// values start protected (ProtISA's initial ProtSet) and tainted
    /// (SPT considers untransmitted data private).
    pub fn new(n: usize, arch_regs: usize) -> RegTags {
        let mut tags = RegTags {
            prot: vec![false; n],
            taint: vec![false; n],
            yrot: vec![NO_ROOT; n],
        };
        for i in 0..arch_regs {
            tags.prot[i] = true;
            tags.taint[i] = true;
        }
        tags
    }

    /// Restores the freshly-constructed state in place (the
    /// `Core::reset` arena path).
    pub fn reset(&mut self, arch_regs: usize) {
        self.prot.fill(false);
        self.taint.fill(false);
        self.yrot.fill(NO_ROOT);
        for i in 0..arch_regs {
            self.prot[i] = true;
            self.taint[i] = true;
        }
    }
}

/// The speculation frontier: which sequence numbers are still speculative
/// this cycle, under the configured [`SpeculationModel`] (paper §II-B2).
#[derive(Clone, Copy, Debug)]
pub struct SpecFrontier {
    /// Sequence number of the ROB head (`Seq::MAX` if the ROB is empty).
    pub head_seq: Seq,
    /// Sequence number of the oldest unresolved branch (`Seq::MAX` if
    /// none).
    pub oldest_unresolved_branch: Seq,
    /// The active speculation model.
    pub model: SpeculationModel,
}

impl SpecFrontier {
    /// Whether the µop with sequence `seq` is non-speculative this cycle.
    ///
    /// Under `AtCommit`, a µop is non-speculative only once it reaches
    /// the ROB head; under `Control`, once all *prior* branches resolved
    /// — a branch does not keep itself speculative (`<=`), or a
    /// mispredicted branch could never be allowed to resolve.
    pub fn is_non_speculative(&self, seq: Seq) -> bool {
        match self.model {
            SpeculationModel::AtCommit => seq <= self.head_seq,
            SpeculationModel::Control => seq <= self.oldest_unresolved_branch,
        }
    }

    /// Whether a taint root is still speculative (i.e. the tainted value
    /// must still be considered secret). [`NO_ROOT`] is never tainted.
    pub fn root_speculative(&self, yrot: Seq) -> bool {
        yrot != NO_ROOT && !self.is_non_speculative(yrot)
    }
}

/// The pipeline gate at which a [`DefensePolicy`] denied a µop — the
/// three hook points whose denials are counted in
/// `Stats::{exec,wakeup,resolve}_blocked_cycles` and attributed per-µop
/// in the trace audit log.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BlockPoint {
    /// [`DefensePolicy::may_execute`] returned `false`.
    Execute = 0,
    /// [`DefensePolicy::may_wakeup`] returned `false`.
    Wakeup = 1,
    /// [`DefensePolicy::may_resolve`] returned `false`.
    Resolve = 2,
}

impl BlockPoint {
    /// Stable lowercase name (used in audit logs and JSON).
    pub fn name(self) -> &'static str {
        match self {
            BlockPoint::Execute => "execute",
            BlockPoint::Wakeup => "wakeup",
            BlockPoint::Resolve => "resolve",
        }
    }
}

/// Why a squash was initiated (statistics and the timing side channel).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SquashKind {
    /// Branch misprediction.
    Branch,
    /// Memory-order violation (a load executed before an older,
    /// conflicting store resolved its address).
    MemOrder,
    /// Division fault machine clear.
    DivFault,
}

/// A hardware protection mechanism (paper §III-B): decides which µops may
/// transmit, wake dependents, or resolve, and maintains its taint/shadow
/// state at the pipeline's hook points.
///
/// The default implementations are the **unsafe baseline**: never block
/// anything, track nothing.
pub trait DefensePolicy {
    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// The transmitter kinds this defense assumes (paper §II-B1). The
    /// final, fixed versions of all defenses treat division µops as
    /// transmitters; the pre-fix versions (`TransmitterSet::legacy`) are
    /// kept for the §VII-B4b reproduction.
    fn transmitters(&self) -> TransmitterSet {
        TransmitterSet::paper()
    }

    /// Whether the pipeline should maintain ProtISA's protection plumbing
    /// (rename-map prot bits, physical-register prot tags, LSQ prot bits,
    /// L1D byte prot bits) for this policy.
    fn uses_protisa(&self) -> bool {
        false
    }

    /// Metadata value for newly filled L1D lines (`true` = protected for
    /// ProtISA; `false` = private for SPT's shadow bits — both mean
    /// "assume secret").
    fn l1d_meta_fill(&self) -> bool {
        true
    }

    /// Reproduce the pending-squash bug inherited from STT's gem5
    /// implementation (§VII-B4b): the squash arbiter considers only the
    /// oldest mispredicted branch regardless of taint, so an older
    /// tainted branch blocks younger untainted ones.
    fn pending_squash_bug(&self) -> bool {
        false
    }

    /// Called after the pipeline renames `u` (srcs/dsts/prot fields
    /// filled). The policy assigns taint roots / wakeup delays and writes
    /// the destination tags.
    fn on_rename(&mut self, u: &mut DynInst, tags: &mut RegTags) {
        propagate_tags(u, tags);
    }

    /// May this ready µop begin execution this cycle? Returning `false`
    /// delays transmission (XmitDelay-style); the pipeline retries every
    /// cycle.
    fn may_execute(&self, _u: &DynInst, _tags: &RegTags, _fr: &SpecFrontier) -> bool {
        true
    }

    /// May this completed µop wake its dependents this cycle?
    /// (AccessDelay-style; the pipeline retries every cycle.)
    fn may_wakeup(&self, _u: &DynInst, _tags: &RegTags, _fr: &SpecFrontier) -> bool {
        true
    }

    /// May this executed, mispredicted branch initiate its squash this
    /// cycle? (Delayed branch resolution; the squash signal itself is a
    /// transmitter of the predicate.)
    fn may_resolve(&self, _u: &DynInst, _tags: &RegTags, _fr: &SpecFrontier) -> bool {
        true
    }

    /// Names the rule under which this policy just denied `u` at
    /// `point` — called by the tracer (only when tracing is enabled)
    /// right after `may_execute`/`may_wakeup`/`may_resolve` returned
    /// `false`, so the audit log can attribute blocked cycles to a
    /// policy-specific rule. Must not allocate (return a `&'static
    /// str`). The default is a generic label.
    fn block_rule(
        &self,
        _u: &DynInst,
        _point: BlockPoint,
        _tags: &RegTags,
        _fr: &SpecFrontier,
    ) -> &'static str {
        "blocked"
    }

    /// A load (or `ret`) received its data. `u.mem` carries the address,
    /// forwarding provenance, and — if ProtISA plumbing is on — the
    /// protection of the read bytes in `u.mem_prot`.
    fn on_load_data(&mut self, _u: &mut DynInst, _tags: &mut RegTags, _l1d: &Cache) {}

    /// `u` retires. `l1d` is provided for shadow-bit maintenance (SPT
    /// marks transmitted bytes public here).
    fn on_commit(&mut self, _u: &DynInst, _tags: &mut RegTags, _l1d: &mut Cache) {}

    /// Everything younger than `surviving_seq` was squashed.
    fn on_squash(&mut self, _surviving_seq: Seq) {}

    /// Policy-specific statistics (name, value).
    fn stats(&self) -> Vec<(String, f64)> {
        Vec::new()
    }
}

/// Default rename-time tag propagation: destination tags inherit the OR
/// of the source taints and the max of the source taint roots. Policies
/// call this and then strengthen (root new taint, untaint, etc.).
pub fn propagate_tags(u: &mut DynInst, tags: &mut RegTags) {
    let mut taint = false;
    let mut yrot = NO_ROOT;
    for &(_, phys) in &u.srcs {
        taint |= tags.taint[phys];
        yrot = yrot.max(tags.yrot[phys]);
    }
    u.in_taint = taint;
    u.in_yrot = yrot;
    for d in &u.dsts {
        tags.taint[d.new_phys] = taint;
        tags.yrot[d.new_phys] = yrot;
    }
}

/// Physical registers of `u`'s *sensitive* operands under transmitter set
/// `t` (the registers whose values the µop transmits). Allocation-free:
/// a µop has at most a handful of sources, so the result is inline.
pub fn sensitive_phys(u: &DynInst, t: &TransmitterSet) -> protean_isa::InlineVec<usize, 4> {
    let sens = t.sensitive_regs(&u.inst);
    u.srcs
        .iter()
        .filter(|(r, _)| sens.contains(*r))
        .map(|(_, p)| *p)
        .collect()
}

/// Whether any sensitive operand of `u` is tainted under STT-style
/// root-based taint.
pub fn sensitive_root_tainted(
    u: &DynInst,
    t: &TransmitterSet,
    tags: &RegTags,
    fr: &SpecFrontier,
) -> bool {
    sensitive_phys(u, t)
        .iter()
        .any(|&p| fr.root_speculative(tags.yrot[p]))
}

/// Whether any sensitive operand of `u` is tainted under SPT-style value
/// taint.
pub fn sensitive_value_tainted(u: &DynInst, t: &TransmitterSet, tags: &RegTags) -> bool {
    sensitive_phys(u, t).iter().any(|&p| tags.taint[p])
}

/// The unsafe baseline: the unmodified out-of-order core.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnsafePolicy;

impl DefensePolicy for UnsafePolicy {
    fn name(&self) -> String {
        "unsafe".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_at_commit() {
        let fr = SpecFrontier {
            head_seq: 10,
            oldest_unresolved_branch: Seq::MAX,
            model: SpeculationModel::AtCommit,
        };
        assert!(fr.is_non_speculative(10)); // at head
        assert!(fr.is_non_speculative(5)); // older than head (committed)
        assert!(!fr.is_non_speculative(11));
        assert!(!fr.root_speculative(NO_ROOT));
        assert!(fr.root_speculative(12));
        assert!(!fr.root_speculative(9));
    }

    #[test]
    fn frontier_control() {
        let fr = SpecFrontier {
            head_seq: 10,
            oldest_unresolved_branch: 20,
            model: SpeculationModel::Control,
        };
        // Under CONTROL, anything older than the oldest unresolved branch
        // is already non-speculative, even deep in the ROB — and the
        // branch itself has no *prior* unresolved branch.
        assert!(fr.is_non_speculative(19));
        assert!(fr.is_non_speculative(20));
        assert!(!fr.is_non_speculative(25));
    }

    #[test]
    fn unsafe_policy_blocks_nothing() {
        let p = UnsafePolicy;
        assert_eq!(p.name(), "unsafe");
        assert!(!p.uses_protisa());
        assert!(p.transmitters().divs);
    }
}
