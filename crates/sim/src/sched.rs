//! Event-driven scheduling structures for the out-of-order core.
//!
//! The original pipeline walked the entire ROB once per stage per cycle
//! — completion, store-data capture, branch resolution, and issue were
//! each O(ROB) even on cycles where nothing could possibly happen. The
//! [`Scheduler`] replaces those scans with explicit event sets keyed by
//! sequence number ([`Seq`]), all maintained incrementally by the
//! pipeline:
//!
//! * a **completion event wheel**: a µop entering execution schedules
//!   exactly one completion event, so the completion stage touches only
//!   µops finishing *this* cycle;
//! * **per-physical-register dependent lists**: a dispatched µop whose
//!   operands are not ready registers on one unready source; when that
//!   register is written back the list is drained and the µop either
//!   becomes issue-ready or re-registers on its next unready source
//!   (consumers are woken by producers instead of the issue stage
//!   re-polling every waiting µop's sources);
//! * an **issue-ready set**: the Waiting µops whose operand-readiness
//!   predicate holds — the only µops the issue stage examines;
//! * a **waiting set** (all Waiting µops in age order) — needed because
//!   the issue window counts *every* waiting µop toward `iq_size`,
//!   ready or not, so the cutoff sequence must be derivable exactly;
//! * a **store-data waiter set**: stores (and calls) that have computed
//!   their address but not yet captured their data operand;
//! * a **wakeup-pending set**: completed µops whose result broadcast the
//!   defense is still denying (`may_wakeup`) — re-checked each cycle
//!   until granted, exactly like the old per-ROB scan;
//! * a **resolve-pending set**: executed, unresolved, mispredicted
//!   branches — the exact candidate set of `resolve_branches`;
//! * an **unresolved-branch set** (every in-flight branch that has not
//!   resolved): its minimum is the speculative frontier's
//!   `oldest_unresolved_branch`, making the frontier O(1) to snapshot.
//!
//! # Flat, ROB-slot-indexed representation
//!
//! Every one of those sets holds µops that live in a ROB bounded at
//! `rob_size` entries, so the default [`FlatSched`] backs them with
//! fixed-capacity **bitsets over ROB ring slots** instead of ordered
//! trees. The scheduler mirrors the ROB ring with two monotonic
//! counters: `head_pos` (incremented when the head commits) and
//! `tail_pos` (incremented at dispatch, decremented per squashed µop),
//! with `tail_pos - head_pos == rob.len()` at every pipeline step. The
//! µop at ROB index `i` occupies slot `(head_pos + i) & (cap - 1)` where
//! `cap = rob_size.next_power_of_two()`; the window never exceeds `cap`
//! entries, so the mapping is collision-free *even across squashes*
//! (naive `seq % rob_size` indexing is not: squashes leave gaps in the
//! live sequence numbers, so the in-ROB seq spread is unbounded).
//!
//! Age order ≡ seq order ≡ ROB position order (sequence numbers are
//! assigned at dispatch and never reused), so age-ordered iteration of a
//! bitset is a trailing-zeros walk **anchored at the ROB head slot**:
//! the cyclic window `[head_slot, head_slot + len)` splits into at most
//! two linear word ranges, walked in order. This reproduces the
//! `BTreeSet` iteration order of the legacy scheduler exactly.
//!
//! The completion wheel becomes a **calendar queue**: a power-of-two
//! ring of per-cycle buckets sized past the maximum in-tree completion
//! latency (a DRAM-missing load, the worst-case divider, the
//! multiplier), plus a small sorted overflow list as a safety net for
//! events beyond the horizon. Bucket `Vec`s are pooled (cleared, never
//! dropped), so the steady state allocates nothing. Each event carries
//! its slot and a **per-slot generation stamp** (bumped at dispatch), so
//! a stale event from a squashed µop is recognised in O(1) — generation
//! mismatch, or slot outside the live window — without the legacy
//! seq-against-ROB filter. Stale events are deliberately *left in the
//! wheel* on squash, in both implementations: the cached minimum
//! deadline ([`Scheduler::next_completion_cycle`], an O(1) field
//! maintained on push and recomputed on drain) feeds idle-cycle
//! fast-forward, and removing stale events would change jump targets —
//! and with them the blocked-cycle span structure of the trace — away
//! from the legacy scheduler's stale-inclusive `BTreeMap` minimum.
//!
//! Per-physical-register dependent lists live in one **arena of
//! intrusive doubly-linked nodes indexed by ROB slot** (a µop parks on
//! at most one register at a time). Squash unlinks a parked node in
//! O(1) — lazy filtering would corrupt lists when a squashed µop's slot
//! is reused and re-parked — and `Core::reset` invalidates every list
//! head in O(1) by bumping an epoch.
//!
//! The legacy `BTreeSet`/`BTreeMap` scheduler ([`BTreeSched`]) is kept
//! behind [`crate::CoreConfig::flat_sched`] / the `PROTEAN_SCHED=btree`
//! environment override, as a differential-testing oracle (the
//! `sched_flat_equiv` bench test drives both over random programs ×
//! every defense and compares full-observable digests).
//!
//! The scheduler also powers **idle-cycle fast-forward**: when a tick
//! makes no progress (see [`Scheduler::progress`]), the pipeline asks
//! for the next cycle at which anything can change
//! ([`Scheduler::next_completion_cycle`], merged with front-end stall
//! deadlines by the core) and jumps there, bulk-attributing the skipped
//! blocked/no-commit cycles so `Stats` and the trace/audit
//! reconciliation stay byte-exact. See `DESIGN.md` for the invariant
//! argument.

use crate::defense::Seq;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Identifies one of the eight status sets (see module docs). The
/// numeric value indexes the per-implementation set arrays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum SetId {
    /// Every µop currently in `UopStatus::Waiting`, in age order.
    Waiting = 0,
    /// Waiting µops whose operand-readiness predicate holds.
    IssueReady = 1,
    /// Completed µops with results whose wakeup the defense has not yet
    /// granted.
    WakeupPending = 2,
    /// Stores/calls with a computed address still awaiting data capture.
    StoreWaiters = 3,
    /// Executed, unresolved, mispredicted branches (resolve candidates).
    ResolvePending = 4,
    /// Every in-flight branch that has not resolved (frontier input).
    UnresolvedBranches = 5,
    /// Every in-flight load (including `ret`), in age order: the memory
    /// disambiguation scans walk these instead of the whole ROB.
    InflightLoads = 6,
    /// Every in-flight store (including `call`), in age order.
    InflightStores = 7,
}

const N_SETS: usize = 8;

/// Event-driven scheduling state owned by the core (see module docs):
/// the flat ROB-slot scheduler by default, or the legacy ordered-set
/// scheduler for differential testing. All cross-implementation
/// bookkeeping (progress flag, scratch buffer, occupancy high-water
/// marks) lives here so both backends report identical statistics.
#[derive(Debug)]
pub(crate) struct Scheduler {
    imp: SchedImpl,
    /// High-water mark of the waiting set (issue-queue occupancy).
    iq_hwm: u64,
    /// Outstanding completion events (live + stale), and their maximum.
    wheel_live: u64,
    wheel_hwm: u64,
    /// Whether the current tick changed any simulator state (beyond
    /// blocked-cycle accounting). Cleared at tick start; an un-set flag
    /// at tick end certifies the cycle is repeatable and fast-forward is
    /// sound.
    progress: bool,
    /// Scratch buffer recycled by the pipeline's per-stage iteration
    /// (sets cannot be mutated while iterated).
    pub scratch: Vec<Seq>,
}

#[derive(Debug)]
enum SchedImpl {
    Flat(FlatSched),
    BTree(BTreeSched),
}

impl Scheduler {
    /// Creates a scheduler for a core with `n_phys` physical registers
    /// and a `rob_size`-entry ROB. `max_latency` bounds the completion
    /// latency any µop can schedule (sizes the calendar ring); `flat`
    /// selects the flat ROB-slot backend over the legacy ordered sets.
    pub fn new(n_phys: usize, rob_size: usize, max_latency: u32, flat: bool) -> Scheduler {
        let imp = if flat {
            SchedImpl::Flat(FlatSched::new(n_phys, rob_size, max_latency))
        } else {
            SchedImpl::BTree(BTreeSched::new(n_phys))
        };
        Scheduler {
            imp,
            iq_hwm: 0,
            wheel_live: 0,
            wheel_hwm: 0,
            progress: false,
            scratch: Vec::new(),
        }
    }

    /// Empties every event structure in place, keeping all backing
    /// allocations (the `Core::reset` arena path).
    pub fn reset(&mut self) {
        match &mut self.imp {
            SchedImpl::Flat(s) => s.reset(),
            SchedImpl::BTree(s) => s.reset(),
        }
        self.iq_hwm = 0;
        self.wheel_live = 0;
        self.wheel_hwm = 0;
        self.progress = false;
        self.scratch.clear();
    }

    // ---- ROB lifecycle ----------------------------------------------

    /// Registers a freshly renamed µop (about to be pushed at the ROB
    /// tail) with the scheduler. Must be called before any set insert
    /// for that µop.
    #[inline]
    pub fn on_dispatch(&mut self, seq: Seq) {
        if let SchedImpl::Flat(s) = &mut self.imp {
            s.on_dispatch(seq);
        }
    }

    /// The ROB head was just committed (popped). All set entries for the
    /// head must have been removed beforehand.
    #[inline]
    pub fn on_commit_head(&mut self) {
        if let SchedImpl::Flat(s) = &mut self.imp {
            s.on_commit_head();
        }
    }

    /// One µop (`seq`, the current ROB tail) was just squashed (popped
    /// from the back). Clears its membership in every status set and
    /// unlinks it from any dependent list; its completion events (if
    /// any) stay in the wheel as stale entries (see module docs).
    #[inline]
    pub fn on_squash_pop(&mut self, seq: Seq) {
        if let SchedImpl::Flat(s) = &mut self.imp {
            s.on_squash_pop(seq);
        }
    }

    /// Legacy bulk cleanup after a squash: discards every entry younger
    /// than `surviving` from the ordered sets (`split_off`). A no-op for
    /// the flat backend, whose [`Scheduler::on_squash_pop`] already
    /// cleared each popped µop.
    pub fn squash_after(&mut self, surviving: Seq) {
        if let SchedImpl::BTree(s) = &mut self.imp {
            s.squash_after(surviving);
        }
    }

    // ---- status sets ------------------------------------------------

    /// Inserts `seq` (at ROB index `rob_i`) into `set`. Idempotent.
    #[inline]
    pub fn insert(&mut self, set: SetId, seq: Seq, rob_i: usize) {
        let n = match &mut self.imp {
            SchedImpl::Flat(s) => {
                s.insert(set, seq, rob_i);
                s.sets[set as usize].len
            }
            SchedImpl::BTree(s) => {
                s.sets[set as usize].insert(seq);
                s.sets[set as usize].len()
            }
        };
        if set == SetId::Waiting && n as u64 > self.iq_hwm {
            self.iq_hwm = n as u64;
        }
    }

    /// Removes `seq` (at ROB index `rob_i`) from `set`. Idempotent.
    #[inline]
    pub fn remove(&mut self, set: SetId, seq: Seq, rob_i: usize) {
        match &mut self.imp {
            SchedImpl::Flat(s) => s.remove(set, seq, rob_i),
            SchedImpl::BTree(s) => {
                s.sets[set as usize].remove(&seq);
            }
        }
    }

    /// Number of entries in `set`.
    #[inline]
    pub fn len(&self, set: SetId) -> usize {
        match &self.imp {
            SchedImpl::Flat(s) => s.sets[set as usize].len,
            SchedImpl::BTree(s) => s.sets[set as usize].len(),
        }
    }

    /// Whether `set` is empty.
    #[inline]
    pub fn is_empty(&self, set: SetId) -> bool {
        self.len(set) == 0
    }

    /// The oldest entry of `set`, if any.
    #[inline]
    pub fn first(&self, set: SetId) -> Option<Seq> {
        match &self.imp {
            SchedImpl::Flat(s) => s.first(set),
            SchedImpl::BTree(s) => s.sets[set as usize].first().copied(),
        }
    }

    /// The `n`-th oldest entry of `set` (0-based), if any.
    pub fn nth(&self, set: SetId, n: usize) -> Option<Seq> {
        match &self.imp {
            SchedImpl::Flat(s) => s.nth(set, n),
            SchedImpl::BTree(s) => s.sets[set as usize].iter().nth(n).copied(),
        }
    }

    /// Appends every entry of `set` to `out`, oldest first.
    #[inline]
    pub fn collect(&self, set: SetId, out: &mut Vec<Seq>) {
        match &self.imp {
            SchedImpl::Flat(s) => s.collect(set, out),
            SchedImpl::BTree(s) => out.extend(s.sets[set as usize].iter().copied()),
        }
    }

    /// Appends every entry of `set` older than `bound` (exclusive) to
    /// `out`, oldest first.
    #[inline]
    pub fn collect_below(&self, set: SetId, bound: Seq, out: &mut Vec<Seq>) {
        match &self.imp {
            SchedImpl::Flat(s) => s.collect_below(set, bound, out),
            SchedImpl::BTree(s) => out.extend(s.sets[set as usize].range(..bound).copied()),
        }
    }

    /// Visits every in-flight store older than the load `(seq, rob_i)`,
    /// **youngest first** (the store-queue search order of
    /// `execute_load`). `f` returns `false` to stop the walk.
    #[inline]
    pub fn for_each_store_older(&self, seq: Seq, rob_i: usize, mut f: impl FnMut(Seq) -> bool) {
        match &self.imp {
            SchedImpl::Flat(s) => s.walk_desc_before(SetId::InflightStores, seq, rob_i, &mut f),
            SchedImpl::BTree(s) => {
                for &s_seq in s.sets[SetId::InflightStores as usize].range(..seq).rev() {
                    if !f(s_seq) {
                        break;
                    }
                }
            }
        }
    }

    /// Visits every in-flight load younger than the store `(seq, rob_i)`,
    /// **oldest first** (the violation-scan order of `execute_store`).
    /// `f` returns `false` to stop the walk.
    #[inline]
    pub fn for_each_load_younger(&self, seq: Seq, rob_i: usize, mut f: impl FnMut(Seq) -> bool) {
        match &self.imp {
            SchedImpl::Flat(s) => s.walk_asc_after(SetId::InflightLoads, seq, rob_i, &mut f),
            SchedImpl::BTree(s) => {
                for &l_seq in s.sets[SetId::InflightLoads as usize].range(seq + 1..) {
                    if !f(l_seq) {
                        break;
                    }
                }
            }
        }
    }

    // ---- completion wheel -------------------------------------------

    /// Schedules `seq` (at ROB index `rob_i`) to complete at `done`.
    #[inline]
    pub fn schedule_completion(&mut self, done: u64, seq: Seq, rob_i: usize) {
        match &mut self.imp {
            SchedImpl::Flat(s) => s.schedule_completion(done, seq, rob_i),
            SchedImpl::BTree(s) => s.wheel.entry(done).or_default().push(seq),
        }
        self.wheel_live += 1;
        if self.wheel_live > self.wheel_hwm {
            self.wheel_hwm = self.wheel_live;
        }
    }

    /// Removes every completion event due at or before `cycle` and fills
    /// `out` with the due µops in age order. The flat backend filters
    /// stale (squashed) events here in O(1) via generation stamps; the
    /// legacy backend leaves them for the caller's ROB check (which has
    /// no observable side effects, so the two are interchangeable).
    #[inline]
    pub fn pop_completions(&mut self, cycle: u64, out: &mut Vec<Seq>) {
        out.clear();
        let drained = match &mut self.imp {
            SchedImpl::Flat(s) => s.pop_completions(cycle, out),
            SchedImpl::BTree(s) => {
                while let Some(entry) = s.wheel.first_entry() {
                    if *entry.key() > cycle {
                        break;
                    }
                    out.extend(entry.remove());
                }
                out.len() as u64
            }
        };
        // Multiple deadlines can drain at once only after a squash or a
        // fast-forward jump; keep age order so processing matches the
        // old ROB scan.
        if out.len() > 1 {
            out.sort_unstable();
        }
        debug_assert!(drained <= self.wheel_live);
        self.wheel_live -= drained;
    }

    /// The cycle of the earliest outstanding completion event (live or
    /// stale), if any. O(1): a cached field in the flat backend
    /// (maintained on push, recomputed on drain; squash leaves it
    /// untouched because stale events stay in the wheel).
    #[inline]
    pub fn next_completion_cycle(&self) -> Option<u64> {
        match &self.imp {
            SchedImpl::Flat(s) => s.next_completion_cycle(),
            SchedImpl::BTree(s) => s.wheel.keys().next().copied(),
        }
    }

    // ---- dependent lists --------------------------------------------

    /// Parks `seq` (at ROB index `rob_i`) until physical register `phys`
    /// is written back. A µop is parked on at most one register at a
    /// time.
    #[inline]
    pub fn register_dep(&mut self, phys: usize, seq: Seq, rob_i: usize) {
        match &mut self.imp {
            SchedImpl::Flat(s) => s.register_dep(phys, seq, rob_i),
            SchedImpl::BTree(s) => s.dep_lists[phys].push(seq),
        }
    }

    /// Drains the dependent list of `phys` into `out` in registration
    /// order (the caller re-registers entries that are still not ready).
    /// The flat backend yields only live µops; the legacy backend may
    /// yield stale (squashed) entries for the caller to filter.
    #[inline]
    pub fn drain_deps(&mut self, phys: usize, out: &mut Vec<Seq>) {
        match &mut self.imp {
            SchedImpl::Flat(s) => s.drain_deps(phys, out),
            SchedImpl::BTree(s) => out.append(&mut s.dep_lists[phys]),
        }
    }

    // ---- occupancy statistics ---------------------------------------

    /// High-water mark of the waiting set (issue-queue occupancy).
    pub fn iq_hwm(&self) -> u64 {
        self.iq_hwm
    }

    /// High-water mark of outstanding completion-wheel events (live and
    /// stale alike — both occupy wheel storage).
    pub fn wheel_hwm(&self) -> u64 {
        self.wheel_hwm
    }

    // ---- progress flag ----------------------------------------------

    /// Clears the progress flag at tick start.
    #[inline]
    pub fn clear_progress(&mut self) {
        self.progress = false;
    }

    /// Marks that this tick changed simulator state.
    #[inline]
    pub fn mark_progress(&mut self) {
        self.progress = true;
    }

    /// Whether this tick changed simulator state.
    #[inline]
    pub fn progress(&self) -> bool {
        self.progress
    }
}

// ---------------------------------------------------------------------
// Legacy ordered-set backend
// ---------------------------------------------------------------------

/// The PR 4 scheduler: one `BTreeSet` per status set, a `BTreeMap`
/// completion wheel, per-register `Vec` dependent lists. Kept as the
/// differential-testing oracle for [`FlatSched`]; stale entries from
/// squashed µops are filtered lazily by the pipeline (sequence numbers
/// are never reused, so a stale entry can never be mistaken for live
/// work).
#[derive(Debug, Default)]
struct BTreeSched {
    wheel: BTreeMap<u64, Vec<Seq>>,
    sets: [BTreeSet<Seq>; N_SETS],
    dep_lists: Vec<Vec<Seq>>,
}

impl BTreeSched {
    fn new(n_phys: usize) -> BTreeSched {
        BTreeSched {
            dep_lists: vec![Vec::new(); n_phys],
            ..BTreeSched::default()
        }
    }

    fn reset(&mut self) {
        self.wheel.clear();
        for set in &mut self.sets {
            set.clear();
        }
        for list in &mut self.dep_lists {
            list.clear();
        }
    }

    fn squash_after(&mut self, surviving: Seq) {
        let bound = surviving + 1;
        for set in &mut self.sets {
            set.split_off(&bound);
        }
    }
}

// ---------------------------------------------------------------------
// Flat ROB-slot backend
// ---------------------------------------------------------------------

const NO_NODE: u32 = u32::MAX;

/// One fixed-capacity bitset over ROB ring slots.
#[derive(Debug)]
struct FlatSet {
    words: Vec<u64>,
    len: usize,
}

impl FlatSet {
    fn with_capacity(cap: usize) -> FlatSet {
        FlatSet {
            words: vec![0; cap.div_ceil(64)],
            len: 0,
        }
    }

    #[inline]
    fn insert(&mut self, slot: usize) {
        let (w, b) = (slot >> 6, 1u64 << (slot & 63));
        if self.words[w] & b == 0 {
            self.words[w] |= b;
            self.len += 1;
        }
    }

    #[inline]
    fn remove(&mut self, slot: usize) {
        let (w, b) = (slot >> 6, 1u64 << (slot & 63));
        if self.words[w] & b != 0 {
            self.words[w] &= !b;
            self.len -= 1;
        }
    }

    #[cfg(debug_assertions)]
    fn contains(&self, slot: usize) -> bool {
        self.words[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// The word range `[lo, hi)` of `self.words` masked to the slot
    /// range `[lo_slot, hi_slot)`; yields set slots ascending. `f`
    /// returns `false` to stop; the return value reports whether the
    /// walk ran to completion.
    #[inline]
    fn walk_asc(&self, lo: usize, hi: usize, f: &mut impl FnMut(usize) -> bool) -> bool {
        if lo >= hi {
            return true;
        }
        let (first_w, last_w) = (lo >> 6, (hi - 1) >> 6);
        for w in first_w..=last_w {
            let mut bits = self.words[w];
            if w == first_w {
                bits &= u64::MAX << (lo & 63);
            }
            if w == last_w && hi & 63 != 0 {
                bits &= (1u64 << (hi & 63)) - 1;
            }
            while bits != 0 {
                if !f((w << 6) | bits.trailing_zeros() as usize) {
                    return false;
                }
                bits &= bits - 1;
            }
        }
        true
    }

    /// As [`FlatSet::walk_asc`], descending.
    #[inline]
    fn walk_desc(&self, lo: usize, hi: usize, f: &mut impl FnMut(usize) -> bool) -> bool {
        if lo >= hi {
            return true;
        }
        let (first_w, last_w) = (lo >> 6, (hi - 1) >> 6);
        for w in (first_w..=last_w).rev() {
            let mut bits = self.words[w];
            if w == first_w {
                bits &= u64::MAX << (lo & 63);
            }
            if w == last_w && hi & 63 != 0 {
                bits &= (1u64 << (hi & 63)) - 1;
            }
            while bits != 0 {
                let b = 63 - bits.leading_zeros() as usize;
                if !f((w << 6) | b) {
                    return false;
                }
                bits &= !(1u64 << b);
            }
        }
        true
    }

    /// The `k`-th (0-based) set slot in `[lo, hi)`, or the residual
    /// count if fewer: word-popcount skipping, so a deep cutoff query
    /// touches O(words), not O(entries).
    fn select(&self, lo: usize, hi: usize, mut k: usize) -> Result<usize, usize> {
        if lo >= hi {
            return Err(k);
        }
        let (first_w, last_w) = (lo >> 6, (hi - 1) >> 6);
        for w in first_w..=last_w {
            let mut bits = self.words[w];
            if w == first_w {
                bits &= u64::MAX << (lo & 63);
            }
            if w == last_w && hi & 63 != 0 {
                bits &= (1u64 << (hi & 63)) - 1;
            }
            let c = bits.count_ones() as usize;
            if k < c {
                for _ in 0..k {
                    bits &= bits - 1;
                }
                return Ok((w << 6) | bits.trailing_zeros() as usize);
            }
            k -= c;
        }
        Err(k)
    }
}

/// One completion event: the slot and dispatch generation it was
/// scheduled for (the O(1) staleness check) plus the sequence number
/// it yields when live.
#[derive(Clone, Copy, Debug)]
struct WheelEvent {
    slot: u32,
    gen: u32,
    seq: Seq,
}

/// The flat ROB-slot scheduler (see module docs).
#[derive(Debug)]
struct FlatSched {
    /// Ring capacity: `rob_size.next_power_of_two()`.
    cap: usize,
    /// Monotonic position counters mirroring the ROB ring; the window
    /// `[head_pos, tail_pos)` maps to slots via `pos & (cap - 1)`.
    head_pos: u64,
    tail_pos: u64,
    /// Sequence number occupying each slot (valid within the window).
    slot_seq: Vec<Seq>,
    /// Per-slot dispatch generation, bumped when a slot is (re)claimed:
    /// distinguishes a squashed µop's leftovers from the slot's current
    /// occupant.
    slot_gen: Vec<u32>,
    /// The eight status sets as slot bitsets.
    sets: [FlatSet; N_SETS],

    // ---- dependent-list arena ---------------------------------------
    /// Intrusive doubly-linked node per slot (`NO_NODE` = nil). A µop is
    /// parked on at most one physical register at a time (`dep_phys`).
    dep_next: Vec<u32>,
    dep_prev: Vec<u32>,
    dep_phys: Vec<u32>,
    /// Per-physical-register list head/tail, valid only when the
    /// register's epoch matches `dep_epoch_cur` (the O(1) reset).
    dep_head: Vec<u32>,
    dep_tail: Vec<u32>,
    dep_epoch: Vec<u64>,
    dep_epoch_cur: u64,

    // ---- calendar queue ---------------------------------------------
    /// Power-of-two bucket ring over completion cycles; `stamp[b]` is
    /// the deadline of bucket `b`'s current contents (meaningful only
    /// while non-empty). Bucket storage is pooled: drained buckets are
    /// cleared in place, never deallocated.
    wmask: u64,
    buckets: Vec<Vec<WheelEvent>>,
    stamp: Vec<u64>,
    /// Events beyond the ring horizon (or colliding with an occupied
    /// bucket of a different deadline): kept sorted by deadline,
    /// descending, so the nearest pops from the back. A safety net —
    /// empty whenever every scheduled latency fits the ring, which the
    /// ring sizing guarantees for all in-tree latencies.
    overflow: Vec<(u64, WheelEvent)>,
    /// Cached minimum deadline across the buckets (`u64::MAX` when none)
    /// and the bucketed-event count. The overall wheel minimum is
    /// `min(bucket_min, overflow.last())` — O(1) for the idle-cycle
    /// fast-forward query that used to be a fresh `BTreeMap` first-key
    /// lookup per no-progress tick.
    bucket_min: u64,
    bucket_events: u64,
}

impl FlatSched {
    fn new(n_phys: usize, rob_size: usize, max_latency: u32) -> FlatSched {
        let cap = rob_size.next_power_of_two();
        // Every in-tree completion schedules at most `max_latency + 1`
        // cycles ahead; the ring must strictly exceed that so two
        // outstanding deadlines never alias a bucket.
        let wsize = (max_latency as u64 + 2).next_power_of_two().max(16) as usize;
        FlatSched {
            cap,
            head_pos: 0,
            tail_pos: 0,
            slot_seq: vec![0; cap],
            slot_gen: vec![0; cap],
            sets: std::array::from_fn(|_| FlatSet::with_capacity(cap)),
            dep_next: vec![NO_NODE; cap],
            dep_prev: vec![NO_NODE; cap],
            dep_phys: vec![NO_NODE; cap],
            dep_head: vec![NO_NODE; n_phys],
            dep_tail: vec![NO_NODE; n_phys],
            dep_epoch: vec![0; n_phys],
            dep_epoch_cur: 1,
            wmask: wsize as u64 - 1,
            buckets: (0..wsize).map(|_| Vec::new()).collect(),
            stamp: vec![0; wsize],
            overflow: Vec::new(),
            bucket_min: u64::MAX,
            bucket_events: 0,
        }
    }

    fn reset(&mut self) {
        self.head_pos = 0;
        self.tail_pos = 0;
        // Slot generations are deliberately *not* reset: monotonic per
        // slot across runs, so nothing ever aliases a previous run.
        for set in &mut self.sets {
            set.clear();
        }
        self.dep_epoch_cur += 1; // O(1) dependent-list invalidation
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.bucket_min = u64::MAX;
        self.bucket_events = 0;
    }

    // ---- ring geometry ----------------------------------------------

    #[inline]
    fn mask(&self) -> u64 {
        self.cap as u64 - 1
    }

    #[inline]
    fn window_len(&self) -> usize {
        (self.tail_pos - self.head_pos) as usize
    }

    #[inline]
    fn head_slot(&self) -> usize {
        (self.head_pos & self.mask()) as usize
    }

    #[inline]
    fn slot_of(&self, rob_i: usize) -> usize {
        debug_assert!(rob_i < self.window_len(), "ROB index outside the window");
        ((self.head_pos + rob_i as u64) & self.mask()) as usize
    }

    /// The cyclic offset range `[start_off, end_off)` from the head as
    /// up to two linear slot ranges, in age order.
    #[inline]
    fn pieces(&self, start_off: usize, end_off: usize) -> ((usize, usize), (usize, usize)) {
        debug_assert!(start_off <= end_off && end_off <= self.window_len());
        let n = end_off - start_off;
        let s = (self.head_slot() + start_off) & (self.cap - 1);
        if s + n <= self.cap {
            ((s, s + n), (0, 0))
        } else {
            ((s, self.cap), (0, s + n - self.cap))
        }
    }

    // ---- lifecycle --------------------------------------------------

    #[inline]
    fn on_dispatch(&mut self, seq: Seq) {
        debug_assert!(
            self.window_len() < self.cap,
            "ROB window exceeds scheduler ring capacity"
        );
        let slot = (self.tail_pos & self.mask()) as usize;
        self.tail_pos += 1;
        self.slot_seq[slot] = seq;
        self.slot_gen[slot] = self.slot_gen[slot].wrapping_add(1);
        self.dep_phys[slot] = NO_NODE;
        #[cfg(debug_assertions)]
        for set in &self.sets {
            debug_assert!(!set.contains(slot), "fresh slot still in a status set");
        }
    }

    #[inline]
    fn on_commit_head(&mut self) {
        debug_assert!(self.window_len() > 0, "commit from an empty window");
        #[cfg(debug_assertions)]
        {
            let slot = self.head_slot();
            for set in &self.sets {
                debug_assert!(!set.contains(slot), "committed head still in a status set");
            }
            debug_assert_eq!(self.dep_phys[slot], NO_NODE, "committed head still parked");
        }
        self.head_pos += 1;
    }

    fn on_squash_pop(&mut self, seq: Seq) {
        debug_assert!(self.window_len() > 0, "squash from an empty window");
        self.tail_pos -= 1;
        let slot = (self.tail_pos & self.mask()) as usize;
        debug_assert_eq!(self.slot_seq[slot], seq, "squash pops the ROB tail");
        let _ = seq;
        for set in &mut self.sets {
            set.remove(slot);
        }
        self.unlink_dep(slot);
        // Completion events stay in the wheel as stale entries (module
        // docs): the cached minimum must keep counting them so the
        // fast-forward jump targets match the legacy scheduler exactly.
    }

    // ---- status sets ------------------------------------------------

    #[inline]
    fn insert(&mut self, set: SetId, seq: Seq, rob_i: usize) {
        let slot = self.slot_of(rob_i);
        debug_assert_eq!(self.slot_seq[slot], seq, "seq/index mismatch");
        let _ = seq;
        self.sets[set as usize].insert(slot);
    }

    #[inline]
    fn remove(&mut self, set: SetId, seq: Seq, rob_i: usize) {
        let slot = self.slot_of(rob_i);
        debug_assert_eq!(self.slot_seq[slot], seq, "seq/index mismatch");
        let _ = seq;
        self.sets[set as usize].remove(slot);
    }

    fn first(&self, set: SetId) -> Option<Seq> {
        let ((a0, a1), (b0, b1)) = self.pieces(0, self.window_len());
        let s = &self.sets[set as usize];
        let mut found = None;
        let mut f = |slot: usize| {
            found = Some(self.slot_seq[slot]);
            false
        };
        if s.walk_asc(a0, a1, &mut f) {
            s.walk_asc(b0, b1, &mut f);
        }
        found
    }

    fn nth(&self, set: SetId, n: usize) -> Option<Seq> {
        let ((a0, a1), (b0, b1)) = self.pieces(0, self.window_len());
        let s = &self.sets[set as usize];
        match s.select(a0, a1, n) {
            Ok(slot) => Some(self.slot_seq[slot]),
            Err(rest) => s.select(b0, b1, rest).ok().map(|slot| self.slot_seq[slot]),
        }
    }

    fn collect(&self, set: SetId, out: &mut Vec<Seq>) {
        let ((a0, a1), (b0, b1)) = self.pieces(0, self.window_len());
        let s = &self.sets[set as usize];
        let mut f = |slot: usize| {
            out.push(self.slot_seq[slot]);
            true
        };
        s.walk_asc(a0, a1, &mut f);
        s.walk_asc(b0, b1, &mut f);
    }

    fn collect_below(&self, set: SetId, bound: Seq, out: &mut Vec<Seq>) {
        let ((a0, a1), (b0, b1)) = self.pieces(0, self.window_len());
        let s = &self.sets[set as usize];
        // Age order ≡ seq order: stop at the first entry ≥ bound.
        let mut f = |slot: usize| {
            let seq = self.slot_seq[slot];
            if seq >= bound {
                return false;
            }
            out.push(seq);
            true
        };
        if s.walk_asc(a0, a1, &mut f) {
            s.walk_asc(b0, b1, &mut f);
        }
    }

    /// Walks `set` over ROB indices `[0, rob_i)`, youngest first.
    fn walk_desc_before(
        &self,
        set: SetId,
        seq: Seq,
        rob_i: usize,
        f: &mut impl FnMut(Seq) -> bool,
    ) {
        let ((a0, a1), (b0, b1)) = self.pieces(0, rob_i);
        let s = &self.sets[set as usize];
        let mut g = |slot: usize| {
            debug_assert!(self.slot_seq[slot] < seq, "older walk crossed the bound");
            f(self.slot_seq[slot])
        };
        let _ = seq;
        if s.walk_desc(b0, b1, &mut g) {
            s.walk_desc(a0, a1, &mut g);
        }
    }

    /// Walks `set` over ROB indices `(rob_i, window)`, oldest first.
    fn walk_asc_after(&self, set: SetId, seq: Seq, rob_i: usize, f: &mut impl FnMut(Seq) -> bool) {
        let ((a0, a1), (b0, b1)) = self.pieces(rob_i + 1, self.window_len());
        let s = &self.sets[set as usize];
        let mut g = |slot: usize| {
            debug_assert!(self.slot_seq[slot] > seq, "younger walk crossed the bound");
            f(self.slot_seq[slot])
        };
        let _ = seq;
        if s.walk_asc(a0, a1, &mut g) {
            s.walk_asc(b0, b1, &mut g);
        }
    }

    // ---- calendar queue ---------------------------------------------

    #[inline]
    fn schedule_completion(&mut self, done: u64, seq: Seq, rob_i: usize) {
        let slot = self.slot_of(rob_i);
        debug_assert_eq!(self.slot_seq[slot], seq, "seq/index mismatch");
        let ev = WheelEvent {
            slot: slot as u32,
            gen: self.slot_gen[slot],
            seq,
        };
        let b = (done & self.wmask) as usize;
        if self.buckets[b].is_empty() {
            self.stamp[b] = done;
            self.buckets[b].push(ev);
        } else if self.stamp[b] == done {
            self.buckets[b].push(ev);
        } else {
            // Beyond the ring horizon: sorted overflow (descending, so
            // the nearest deadline pops from the back).
            let pos = self.overflow.partition_point(|(d, _)| *d > done);
            self.overflow.insert(pos, (done, ev));
            return;
        }
        self.bucket_events += 1;
        if done < self.bucket_min {
            self.bucket_min = done;
        }
    }

    /// Whether a drained event still denotes a live µop: its slot must
    /// hold the same dispatch generation and lie inside the window.
    /// (Generation alone misses squashed-not-reused slots; the window
    /// test alone misses reused slots — together they are exact.)
    #[inline]
    fn event_live(&self, ev: WheelEvent) -> bool {
        let slot = ev.slot as usize;
        if self.slot_gen[slot] != ev.gen {
            return false;
        }
        let off = (slot + self.cap - self.head_slot()) & (self.cap - 1);
        let live = off < self.window_len();
        debug_assert!(!live || self.slot_seq[slot] == ev.seq);
        live
    }

    fn pop_completions(&mut self, cycle: u64, out: &mut Vec<Seq>) -> u64 {
        debug_assert_eq!(self.bucket_min, self.recomputed_bucket_min(), "stale cache");
        let mut drained = 0u64;
        if self.bucket_min <= cycle {
            // Deadlines at or before `cycle`: every such bucket has its
            // stamp in `[bucket_min, cycle]` (the pipeline drains every
            // tick and on every fast-forward landing, so this range is
            // at most one jump long).
            for c in self.bucket_min..=cycle {
                let b = (c & self.wmask) as usize;
                if self.buckets[b].is_empty() || self.stamp[b] != c {
                    continue;
                }
                let mut bucket = std::mem::take(&mut self.buckets[b]);
                drained += bucket.len() as u64;
                self.bucket_events -= bucket.len() as u64;
                for &ev in &bucket {
                    if self.event_live(ev) {
                        out.push(ev.seq);
                    }
                }
                bucket.clear();
                self.buckets[b] = bucket; // pooled
                if self.bucket_events == 0 {
                    break;
                }
            }
            self.bucket_min = if self.bucket_events == 0 {
                u64::MAX
            } else {
                // All remaining bucketed deadlines lie in
                // (cycle, cycle + ring), because every push happened at
                // a cycle ≤ `cycle` with latency < ring size.
                let mut min = u64::MAX;
                for c in cycle + 1..=cycle + self.wmask + 1 {
                    let b = (c & self.wmask) as usize;
                    if !self.buckets[b].is_empty() && self.stamp[b] == c {
                        min = c;
                        break;
                    }
                }
                debug_assert_ne!(min, u64::MAX, "bucketed event outside the ring horizon");
                min
            };
        }
        while let Some(&(done, ev)) = self.overflow.last() {
            if done > cycle {
                break;
            }
            self.overflow.pop();
            drained += 1;
            if self.event_live(ev) {
                out.push(ev.seq);
            }
        }
        drained
    }

    fn next_completion_cycle(&self) -> Option<u64> {
        debug_assert_eq!(self.bucket_min, self.recomputed_bucket_min(), "stale cache");
        let min = match self.overflow.last() {
            Some(&(done, _)) => self.bucket_min.min(done),
            None => self.bucket_min,
        };
        (min != u64::MAX).then_some(min)
    }

    /// Debug-only ground truth for the cached bucket minimum.
    fn recomputed_bucket_min(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(i, _)| self.stamp[i])
            .min()
            .unwrap_or(u64::MAX)
    }

    // ---- dependent-list arena ---------------------------------------

    /// The list head for `phys`, honouring the epoch (a stale head from
    /// before the last reset reads as empty).
    #[inline]
    fn dep_head_of(&self, phys: usize) -> u32 {
        if self.dep_epoch[phys] == self.dep_epoch_cur {
            self.dep_head[phys]
        } else {
            NO_NODE
        }
    }

    #[inline]
    fn register_dep(&mut self, phys: usize, seq: Seq, rob_i: usize) {
        let slot = self.slot_of(rob_i);
        debug_assert_eq!(self.slot_seq[slot], seq, "seq/index mismatch");
        let _ = seq;
        debug_assert_eq!(self.dep_phys[slot], NO_NODE, "µop parked twice");
        self.dep_phys[slot] = phys as u32;
        self.dep_next[slot] = NO_NODE;
        let head = self.dep_head_of(phys);
        if head == NO_NODE {
            self.dep_epoch[phys] = self.dep_epoch_cur;
            self.dep_head[phys] = slot as u32;
            self.dep_tail[phys] = slot as u32;
            self.dep_prev[slot] = NO_NODE;
        } else {
            let tail = self.dep_tail[phys] as usize;
            self.dep_next[tail] = slot as u32;
            self.dep_prev[slot] = tail as u32;
            self.dep_tail[phys] = slot as u32;
        }
    }

    #[inline]
    fn drain_deps(&mut self, phys: usize, out: &mut Vec<Seq>) {
        let mut node = self.dep_head_of(phys);
        if node == NO_NODE {
            return;
        }
        while node != NO_NODE {
            let slot = node as usize;
            debug_assert_eq!(self.dep_phys[slot], phys as u32);
            out.push(self.slot_seq[slot]);
            self.dep_phys[slot] = NO_NODE;
            node = self.dep_next[slot];
        }
        self.dep_head[phys] = NO_NODE;
        self.dep_tail[phys] = NO_NODE;
    }

    /// Unlinks `slot` from its dependent list, if parked. O(1); eager
    /// unlinking is required (not an optimisation): the slot is about to
    /// be reused, and a stale link from a lazily-filtered list would be
    /// rewritten by the new occupant's park, truncating the old list.
    fn unlink_dep(&mut self, slot: usize) {
        let phys = self.dep_phys[slot];
        if phys == NO_NODE {
            return;
        }
        let phys = phys as usize;
        let (prev, next) = (self.dep_prev[slot], self.dep_next[slot]);
        if prev == NO_NODE {
            self.dep_head[phys] = next;
        } else {
            self.dep_next[prev as usize] = next;
        }
        if next == NO_NODE {
            self.dep_tail[phys] = prev;
        } else {
            self.dep_prev[next as usize] = prev;
        }
        self.dep_phys[slot] = NO_NODE;
    }
}

// ---------------------------------------------------------------------
// Fetch-group hand-off
// ---------------------------------------------------------------------

/// One fetched µop, as produced by the fetch stage: the static index
/// plus the dynamic prediction state rename needs. Per-entry front-end
/// timing lives on the owning [`FetchGroup`] — all µops fetched in one
/// cycle become rename-ready together.
pub(crate) struct FetchEntry {
    /// Static instruction index.
    pub idx: u32,
    /// Predicted next instruction index (`None` = predicted stop).
    pub pred_next: Option<u32>,
    /// For conditional branches: predicted direction.
    pub pred_taken: bool,
    /// TAGE global-history snapshot from before this µop's fetch.
    pub hist_snapshot: u64,
    /// Interned RSB snapshot from before this µop's fetch.
    pub rsb_snapshot: Arc<[u64]>,
}

/// A fetch group: the µops fetched in one cycle, handed to rename as a
/// unit. A group ends at a predicted-taken control transfer, at the
/// fetch width, or at a front-end stall (L1I miss / queue cap).
pub(crate) struct FetchGroup {
    /// Cycle at which the whole group reaches rename (fetch cycle +
    /// front-end depth). Strictly increasing across queued groups, so
    /// one group-level check replaces the old per-entry check exactly.
    pub ready_cycle: u64,
    /// Index of the next unconsumed entry (rename may drain a group
    /// across several cycles under structural stalls).
    cursor: usize,
    entries: Vec<FetchEntry>,
}

impl FetchGroup {
    /// Entries rename has not consumed yet.
    pub fn remaining(&self) -> &[FetchEntry] {
        &self.entries[self.cursor..]
    }
}

/// The front-end queue in group form: fetch pushes one [`FetchGroup`]
/// per cycle; rename consumes entries from the front group in order.
/// Group entry buffers are pooled so the steady state allocates nothing
/// (the PR 5 arena discipline).
#[derive(Default)]
pub(crate) struct FetchQueue {
    groups: VecDeque<FetchGroup>,
    /// Spent entry buffers, kept for reuse.
    pool: Vec<Vec<FetchEntry>>,
    /// Total unconsumed entries across all groups (the old
    /// `fetch_queue.len()` — the fetch stage's cap is on µops, not
    /// groups).
    pending: usize,
}

impl FetchQueue {
    /// Takes an empty entry buffer for fetch to fill (pooled).
    pub fn begin_group(&mut self) -> Vec<FetchEntry> {
        self.pool.pop().unwrap_or_default()
    }

    /// Queues a filled group with its rename-ready cycle. An empty
    /// buffer (fetch stalled before producing anything) is returned to
    /// the pool without queuing a group.
    pub fn push_group(&mut self, entries: Vec<FetchEntry>, ready_cycle: u64) {
        if entries.is_empty() {
            self.pool.push(entries);
            return;
        }
        debug_assert!(
            self.groups
                .back()
                .is_none_or(|g| g.ready_cycle < ready_cycle),
            "group ready cycles must be strictly increasing"
        );
        self.pending += entries.len();
        self.groups.push_back(FetchGroup {
            ready_cycle,
            cursor: 0,
            entries,
        });
    }

    /// The front group's next unconsumed entry, with the group's
    /// ready cycle.
    pub fn head(&self) -> Option<(&FetchEntry, u64)> {
        self.groups
            .front()
            .map(|g| (&g.entries[g.cursor], g.ready_cycle))
    }

    /// The front group's ready cycle (fast-forward wake point).
    pub fn head_ready_cycle(&self) -> Option<u64> {
        self.groups.front().map(|g| g.ready_cycle)
    }

    /// The front group itself (diagnostics).
    pub fn front_group(&self) -> Option<&FetchGroup> {
        self.groups.front()
    }

    /// Consumes the entry returned by [`FetchQueue::head`]; exhausted
    /// groups are retired and their buffers pooled.
    pub fn advance_head(&mut self) {
        let g = self.groups.front_mut().expect("advance past empty queue");
        g.cursor += 1;
        self.pending -= 1;
        if g.cursor == g.entries.len() {
            let mut g = self.groups.pop_front().expect("front exists");
            g.entries.clear();
            self.pool.push(g.entries);
        }
    }

    /// Total unconsumed µops across all groups.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Discards every queued group (fetch redirect), pooling their
    /// buffers.
    pub fn clear(&mut self) {
        while let Some(mut g) = self.groups.pop_front() {
            g.entries.clear();
            self.pool.push(g.entries);
        }
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_SETS: [SetId; N_SETS] = [
        SetId::Waiting,
        SetId::IssueReady,
        SetId::WakeupPending,
        SetId::StoreWaiters,
        SetId::ResolvePending,
        SetId::UnresolvedBranches,
        SetId::InflightLoads,
        SetId::InflightStores,
    ];

    /// A small scheduler (8-slot ring, 32-bucket wheel) in either
    /// backend — wrap-around is a handful of dispatches away.
    fn sched(flat: bool) -> Scheduler {
        Scheduler::new(8, 8, 30, flat)
    }

    fn contents(s: &Scheduler, set: SetId) -> Vec<Seq> {
        let mut out = Vec::new();
        s.collect(set, &mut out);
        out
    }

    #[test]
    fn wheel_pops_due_events_in_age_order() {
        for flat in [true, false] {
            let mut s = sched(flat);
            for (i, seq) in [1u64, 2, 3, 7].into_iter().enumerate() {
                s.on_dispatch(seq);
                let _ = i;
            }
            s.schedule_completion(10, 3, 2);
            s.schedule_completion(5, 7, 3);
            s.schedule_completion(5, 2, 1);
            s.schedule_completion(12, 1, 0);
            let mut out = Vec::new();
            s.pop_completions(4, &mut out);
            assert!(out.is_empty(), "flat={flat}");
            assert_eq!(s.next_completion_cycle(), Some(5), "flat={flat}");
            s.pop_completions(10, &mut out);
            assert_eq!(out, vec![2, 3, 7], "flat={flat}");
            assert_eq!(s.next_completion_cycle(), Some(12), "flat={flat}");
            s.pop_completions(100, &mut out);
            assert_eq!(out, vec![1], "flat={flat}");
            assert_eq!(s.next_completion_cycle(), None, "flat={flat}");
        }
    }

    #[test]
    fn squash_discards_only_younger_entries() {
        for flat in [true, false] {
            let mut s = sched(flat);
            for (i, seq) in [1u64, 5, 9].into_iter().enumerate() {
                s.on_dispatch(seq);
                for set in ALL_SETS {
                    s.insert(set, seq, i);
                }
            }
            // The pipeline squash: pop younger µops (tail first), then
            // the legacy bulk cleanup.
            s.on_squash_pop(9);
            s.squash_after(5);
            for set in ALL_SETS {
                assert_eq!(contents(&s, set), vec![1, 5], "flat={flat}");
            }
        }
    }

    #[test]
    fn squash_and_age_order_across_ring_wraparound() {
        for flat in [true, false] {
            let mut s = sched(flat);
            // Fill most of the 8-slot ring...
            for (i, seq) in (10..16).enumerate() {
                s.on_dispatch(seq);
                s.insert(SetId::Waiting, seq, i);
            }
            // ...commit 5 heads so later dispatches wrap slots 0..=2.
            for seq in 10..15 {
                s.remove(SetId::Waiting, seq, 0);
                s.on_commit_head();
            }
            for (i, seq) in (20..26).enumerate() {
                s.on_dispatch(seq);
                s.insert(SetId::Waiting, seq, 1 + i);
                s.insert(SetId::InflightLoads, seq, 1 + i);
            }
            // Age order across the wrap: head is µop 15 at ROB index 0.
            assert_eq!(
                contents(&s, SetId::Waiting),
                vec![15, 20, 21, 22, 23, 24, 25],
                "flat={flat}"
            );
            assert_eq!(s.nth(SetId::Waiting, 3), Some(22), "flat={flat}");
            let mut below = Vec::new();
            s.collect_below(SetId::Waiting, 23, &mut below);
            assert_eq!(below, vec![15, 20, 21, 22], "flat={flat}");
            // Squash the youngest three (all on wrapped slots).
            for seq in [25, 24, 23] {
                s.on_squash_pop(seq);
            }
            s.squash_after(22);
            assert_eq!(
                contents(&s, SetId::Waiting),
                vec![15, 20, 21, 22],
                "flat={flat}"
            );
            assert_eq!(
                contents(&s, SetId::InflightLoads),
                vec![20, 21, 22],
                "flat={flat}"
            );
            // Refill the squashed slots: no leakage from the dead µops.
            for (i, seq) in (30..33).enumerate() {
                s.on_dispatch(seq);
                s.insert(SetId::Waiting, seq, 4 + i);
            }
            assert_eq!(
                contents(&s, SetId::Waiting),
                vec![15, 20, 21, 22, 30, 31, 32],
                "flat={flat}"
            );
        }
    }

    #[test]
    fn generation_stamps_skip_stale_wheel_events() {
        let mut s = sched(true);
        s.on_dispatch(1);
        s.on_dispatch(2);
        s.schedule_completion(50, 2, 1);
        s.on_squash_pop(2);
        s.squash_after(1);
        // The stale event stays in the wheel and keeps feeding the
        // cached minimum (fast-forward jump-target parity)...
        assert_eq!(s.next_completion_cycle(), Some(50));
        // ...and the reused slot's new occupant shares its bucket.
        s.on_dispatch(3);
        s.schedule_completion(50, 3, 1);
        let mut out = Vec::new();
        s.pop_completions(50, &mut out);
        assert_eq!(
            out,
            vec![3],
            "stale event for squashed seq 2 must be skipped"
        );
        assert_eq!(s.next_completion_cycle(), None);
        // Stale event whose slot was *not* reused: window check.
        s.on_dispatch(4);
        s.schedule_completion(60, 4, 2);
        s.on_squash_pop(4);
        s.squash_after(3);
        out.clear();
        s.pop_completions(60, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn wheel_overflow_beyond_horizon() {
        // max_latency 30 → 32-bucket ring: deadlines 32 cycles apart
        // collide and the younger goes to the sorted overflow list.
        let mut s = sched(true);
        s.on_dispatch(1);
        s.on_dispatch(2);
        s.schedule_completion(5, 1, 0);
        s.schedule_completion(5 + 32, 2, 1);
        assert_eq!(s.next_completion_cycle(), Some(5));
        let mut out = Vec::new();
        s.pop_completions(5, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(s.next_completion_cycle(), Some(37));
        s.pop_completions(37, &mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(s.next_completion_cycle(), None);
    }

    #[test]
    fn dep_lists_roundtrip_in_registration_order() {
        for flat in [true, false] {
            let mut s = sched(flat);
            s.on_dispatch(4);
            s.on_dispatch(8);
            s.register_dep(1, 4, 0);
            s.register_dep(1, 8, 1);
            let mut out = Vec::new();
            s.drain_deps(1, &mut out);
            assert_eq!(out, vec![4, 8], "flat={flat}");
            out.clear();
            s.drain_deps(1, &mut out);
            s.drain_deps(0, &mut out);
            assert!(out.is_empty(), "flat={flat}");
        }
    }

    #[test]
    fn flat_dep_lists_unlink_on_squash_and_reset_by_epoch() {
        let mut s = sched(true);
        s.on_dispatch(1);
        s.on_dispatch(2);
        s.on_dispatch(3);
        s.register_dep(5, 1, 0);
        s.register_dep(5, 2, 1);
        s.register_dep(5, 3, 2);
        // Squash the middle registrant's younger sibling and the middle
        // one itself: both unlink in O(1), the head survives.
        s.on_squash_pop(3);
        s.on_squash_pop(2);
        s.squash_after(1);
        let mut out = Vec::new();
        s.drain_deps(5, &mut out);
        assert_eq!(out, vec![1]);
        // Epoch reset: parked µops from before reset() read as empty.
        s.on_dispatch(9);
        s.register_dep(5, 9, 1);
        s.reset();
        out.clear();
        s.drain_deps(5, &mut out);
        assert!(out.is_empty());
        // The arena is fully usable after the O(1) reset.
        s.on_dispatch(11);
        s.register_dep(5, 11, 0);
        out.clear();
        s.drain_deps(5, &mut out);
        assert_eq!(out, vec![11]);
    }

    #[test]
    fn disambiguation_walks_match_across_backends() {
        let mut flat = sched(true);
        let mut btree = sched(false);
        for s in [&mut flat, &mut btree] {
            for (i, seq) in (1..=6).enumerate() {
                s.on_dispatch(seq);
                if seq % 2 == 1 {
                    s.insert(SetId::InflightStores, seq, i);
                } else {
                    s.insert(SetId::InflightLoads, seq, i);
                }
            }
        }
        for s in [&flat, &btree] {
            let mut stores = Vec::new();
            // Stores older than the load seq 6 (ROB index 5),
            // youngest first.
            s.for_each_store_older(6, 5, |q| {
                stores.push(q);
                true
            });
            assert_eq!(stores, vec![5, 3, 1]);
            let mut loads = Vec::new();
            // Loads younger than the store seq 1 (ROB index 0), oldest
            // first, with an early stop.
            s.for_each_load_younger(1, 0, |q| {
                loads.push(q);
                q != 4
            });
            assert_eq!(loads, vec![2, 4]);
        }
    }

    #[test]
    fn occupancy_high_water_marks() {
        for flat in [true, false] {
            let mut s = sched(flat);
            for (i, seq) in (1..=3).enumerate() {
                s.on_dispatch(seq);
                s.insert(SetId::Waiting, seq, i);
            }
            s.remove(SetId::Waiting, 3, 2);
            s.insert(SetId::Waiting, 3, 2);
            assert_eq!(s.iq_hwm(), 3, "flat={flat}");
            s.schedule_completion(4, 1, 0);
            s.schedule_completion(4, 2, 1);
            let mut out = Vec::new();
            s.pop_completions(4, &mut out);
            s.schedule_completion(9, 3, 2);
            assert_eq!(s.wheel_hwm(), 2, "flat={flat}");
            s.reset();
            assert_eq!((s.iq_hwm(), s.wheel_hwm()), (0, 0), "flat={flat}");
        }
    }

    #[test]
    fn progress_flag_lifecycle() {
        let mut s = sched(true);
        assert!(!s.progress());
        s.mark_progress();
        assert!(s.progress());
        s.clear_progress();
        assert!(!s.progress());
    }

    fn entry(idx: u32) -> FetchEntry {
        FetchEntry {
            idx,
            pred_next: Some(idx + 1),
            pred_taken: false,
            hist_snapshot: 0,
            rsb_snapshot: Arc::from(&[][..]),
        }
    }

    #[test]
    fn fetch_queue_groups_drain_in_order() {
        let mut q = FetchQueue::default();
        assert!(q.head().is_none());
        let mut g = q.begin_group();
        g.push(entry(0));
        g.push(entry(1));
        q.push_group(g, 10);
        let mut g = q.begin_group();
        g.push(entry(2));
        q.push_group(g, 11);
        assert_eq!(q.pending(), 3);
        assert_eq!(q.head_ready_cycle(), Some(10));

        let (e, rc) = q.head().expect("head");
        assert_eq!((e.idx, rc), (0, 10));
        q.advance_head();
        // The front group is handed over as a slice; the cursor tracks
        // what rename has consumed.
        let rem: Vec<u32> = q.groups[0].remaining().iter().map(|e| e.idx).collect();
        assert_eq!(rem, vec![1]);
        let (e, rc) = q.head().expect("head");
        assert_eq!((e.idx, rc), (1, 10));
        q.advance_head();
        // First group exhausted: head moves to the second group.
        let (e, rc) = q.head().expect("head");
        assert_eq!((e.idx, rc), (2, 11));
        assert_eq!(q.pending(), 1);
        q.advance_head();
        assert!(q.head().is_none());
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn fetch_queue_empty_group_and_clear_recycle() {
        let mut q = FetchQueue::default();
        let g = q.begin_group();
        q.push_group(g, 5); // empty: no group queued
        assert!(q.head().is_none());
        let mut g = q.begin_group();
        g.push(entry(7));
        q.push_group(g, 6);
        assert_eq!(q.pending(), 1);
        q.clear();
        assert_eq!(q.pending(), 0);
        assert!(q.head().is_none());
        // Pooled buffers come back empty.
        assert!(q.begin_group().is_empty());
    }
}
